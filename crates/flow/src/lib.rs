//! # dlb-flow — minimum-cost flow substrate
//!
//! The paper's Appendix reduces the *negative-cycle removal* problem —
//! rerouting relayed requests so that server loads are preserved while
//! total communication cost is minimized — to a minimum-cost
//! maximum-flow computation. This crate implements that substrate from
//! scratch:
//!
//! * [`graph::FlowNetwork`] — residual-graph representation with paired
//!   forward/backward edges and `f64` capacities and costs,
//! * [`bellman_ford`] — shortest paths and negative-cycle detection on
//!   weighted digraphs (used both by the solvers and by the error-graph
//!   analysis in `dlb-distributed`),
//! * [`ssp`] — successive shortest paths with Johnson potentials
//!   (Dijkstra inner loop) for min-cost max-flow,
//! * [`cycle_cancel`] — negative-cycle cancelling, turning any feasible
//!   flow into a minimum-cost one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auction;
pub mod bellman_ford;
pub mod cycle_cancel;
pub mod graph;
#[cfg(all(test, feature = "proptests"))]
mod proptests;
pub mod ssp;

pub use auction::{auction_assignment, AuctionResult};
pub use graph::{EdgeId, FlowNetwork};

/// Capacities / flows below this are treated as zero.
pub const FLOW_EPS: f64 = 1e-9;
