//! Residual flow-network representation.

use crate::FLOW_EPS;

/// Identifier of a directed edge added with
/// [`FlowNetwork::add_edge`]; use it to query flow after solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub(crate) to: u32,
    /// Remaining residual capacity.
    pub(crate) cap: f64,
    pub(crate) cost: f64,
}

/// A directed flow network with `f64` capacities and per-unit costs,
/// stored as a residual graph: every call to [`FlowNetwork::add_edge`]
/// creates a forward edge and its zero-capacity reverse companion.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    n: usize,
    pub(crate) edges: Vec<Edge>,
    pub(crate) adj: Vec<Vec<u32>>,
    /// Original capacity of each forward edge (even indices).
    original_cap: Vec<f64>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            original_cap: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when the network has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of forward edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a directed edge `u → v` with the given capacity and per-unit
    /// cost; returns its id.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, negative/NaN capacity, or NaN
    /// cost. (Negative *costs* are allowed; infinite capacity is allowed.)
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64, cost: f64) -> EdgeId {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert!(cap >= 0.0, "capacity must be non-negative");
        assert!(!cost.is_nan(), "cost must not be NaN");
        let id = self.edges.len();
        self.edges.push(Edge {
            to: v as u32,
            cap,
            cost,
        });
        self.edges.push(Edge {
            to: u as u32,
            cap: 0.0,
            cost: -cost,
        });
        self.adj[u].push(id as u32);
        self.adj[v].push(id as u32 + 1);
        self.original_cap.push(cap);
        EdgeId(id)
    }

    /// Flow currently pushed through edge `e` (forward direction).
    pub fn flow(&self, e: EdgeId) -> f64 {
        // Residual capacity of the reverse edge equals the flow.
        let f = self.edges[e.0 + 1].cap;
        if f.abs() < FLOW_EPS {
            0.0
        } else {
            f
        }
    }

    /// Remaining residual capacity of edge `e`.
    pub fn residual(&self, e: EdgeId) -> f64 {
        self.edges[e.0].cap
    }

    /// Original capacity of edge `e` as passed to `add_edge`.
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.original_cap[e.0 / 2]
    }

    /// Total cost of the current flow, `Σ flow(e) · cost(e)`.
    pub fn total_cost(&self) -> f64 {
        (0..self.edges.len())
            .step_by(2)
            .map(|i| self.flow(EdgeId(i)) * self.edges[i].cost)
            .sum()
    }

    /// Net flow out of node `u` (outgoing minus incoming); zero for
    /// interior nodes of a feasible flow.
    pub fn net_outflow(&self, u: usize) -> f64 {
        let mut net = 0.0;
        for &eid in &self.adj[u] {
            let e = eid as usize;
            if e.is_multiple_of(2) {
                net += self.flow(EdgeId(e));
            } else {
                net -= self.flow(EdgeId(e - 1));
            }
        }
        net
    }

    /// Pushes `amount` along residual edge index `eid` (internal).
    pub(crate) fn push(&mut self, eid: usize, amount: f64) {
        self.edges[eid].cap -= amount;
        self.edges[eid ^ 1].cap += amount;
    }

    /// Verifies conservation at every node except `sources`/`sinks`;
    /// returns the first violation.
    pub fn check_conservation(&self, exempt: &[usize]) -> Result<(), String> {
        for u in 0..self.n {
            if exempt.contains(&u) {
                continue;
            }
            let net = self.net_outflow(u);
            if net.abs() > 1e-6 {
                return Err(format!("node {u} has net outflow {net}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_bookkeeping() {
        let mut g = FlowNetwork::new(3);
        let e = g.add_edge(0, 1, 5.0, 2.0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.flow(e), 0.0);
        assert_eq!(g.residual(e), 5.0);
        assert_eq!(g.capacity(e), 5.0);
        assert_eq!(g.total_cost(), 0.0);
    }

    #[test]
    fn push_moves_flow() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 5.0, 3.0);
        g.push(0, 2.0);
        assert_eq!(g.flow(e), 2.0);
        assert_eq!(g.residual(e), 3.0);
        assert_eq!(g.total_cost(), 6.0);
        assert_eq!(g.net_outflow(0), 2.0);
        assert_eq!(g.net_outflow(1), -2.0);
    }

    #[test]
    fn conservation_check() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 5.0, 0.0);
        g.add_edge(1, 2, 5.0, 0.0);
        g.push(0, 3.0);
        g.push(2, 3.0);
        assert!(g.check_conservation(&[0, 2]).is_ok());
        assert!(g.check_conservation(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 5, 1.0, 0.0);
    }
}
