//! Bellman-Ford shortest paths and negative-cycle detection.
//!
//! Used in two places: as the generic shortest-path engine for
//! min-cost-flow (initial potentials, cycle cancelling) and directly by
//! `dlb-distributed` to analyze the *error graph* of Proposition 1.

use crate::FLOW_EPS;

/// A plain weighted directed edge for the standalone graph algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEdge {
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Edge weight (may be negative).
    pub weight: f64,
}

/// Result of a Bellman-Ford run.
#[derive(Debug, Clone)]
pub struct BellmanFordResult {
    /// Tentative distances from the source (`f64::INFINITY` when
    /// unreachable).
    pub dist: Vec<f64>,
    /// Predecessor edge index per node.
    pub pred: Vec<Option<usize>>,
    /// A negative cycle (as a node sequence, first == last) when one is
    /// reachable from the source set.
    pub negative_cycle: Option<Vec<usize>>,
}

/// Runs Bellman-Ford from a virtual super-source connected to all
/// `sources` with zero weight. Detects any negative cycle reachable
/// from the sources.
pub fn bellman_ford(n: usize, edges: &[WeightedEdge], sources: &[usize]) -> BellmanFordResult {
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    for &s in sources {
        dist[s] = 0.0;
    }
    let mut updated_node = None;
    for round in 0..n {
        updated_node = None;
        for (ei, e) in edges.iter().enumerate() {
            if dist[e.from].is_finite() && dist[e.from] + e.weight < dist[e.to] - FLOW_EPS {
                dist[e.to] = dist[e.from] + e.weight;
                pred[e.to] = Some(ei);
                updated_node = Some(e.to);
            }
        }
        if updated_node.is_none() {
            break;
        }
        // An update in round n-1 (0-indexed) implies a negative cycle.
        let _ = round;
    }
    let negative_cycle = updated_node.map(|start| extract_cycle(n, edges, &pred, start));
    BellmanFordResult {
        dist,
        pred,
        negative_cycle,
    }
}

/// Walks predecessors back `n` steps to land inside a cycle, then
/// extracts it (first node repeated at the end).
fn extract_cycle(
    n: usize,
    edges: &[WeightedEdge],
    pred: &[Option<usize>],
    start: usize,
) -> Vec<usize> {
    let mut v = start;
    for _ in 0..n {
        v = edges[pred[v].expect("updated node must have a predecessor")].from;
    }
    let mut cycle = vec![v];
    let mut u = edges[pred[v].expect("cycle node has predecessor")].from;
    while u != v {
        cycle.push(u);
        u = edges[pred[u].expect("cycle node has predecessor")].from;
    }
    cycle.push(v);
    cycle.reverse();
    cycle
}

/// Returns `true` when the graph contains a negative-weight cycle
/// (reachable from anywhere).
pub fn has_negative_cycle(n: usize, edges: &[WeightedEdge]) -> bool {
    let all: Vec<usize> = (0..n).collect();
    bellman_ford(n, edges, &all).negative_cycle.is_some()
}

/// Total weight of a node cycle (first == last).
pub fn cycle_weight(edges: &[WeightedEdge], cycle: &[usize]) -> f64 {
    let mut w = 0.0;
    for pair in cycle.windows(2) {
        let (u, v) = (pair[0], pair[1]);
        let e = edges
            .iter()
            .filter(|e| e.from == u && e.to == v)
            .min_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap())
            .expect("cycle edge must exist");
        w += e.weight;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(from: usize, to: usize, weight: f64) -> WeightedEdge {
        WeightedEdge { from, to, weight }
    }

    #[test]
    fn shortest_paths_simple() {
        let edges = vec![e(0, 1, 4.0), e(0, 2, 1.0), e(2, 1, 2.0), e(1, 3, 1.0)];
        let r = bellman_ford(4, &edges, &[0]);
        assert_eq!(r.dist, vec![0.0, 3.0, 1.0, 4.0]);
        assert!(r.negative_cycle.is_none());
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let edges = vec![e(0, 1, 1.0)];
        let r = bellman_ford(3, &edges, &[0]);
        assert!(r.dist[2].is_infinite());
    }

    #[test]
    fn handles_negative_edges_without_cycle() {
        let edges = vec![e(0, 1, 5.0), e(1, 2, -3.0), e(0, 2, 4.0)];
        let r = bellman_ford(3, &edges, &[0]);
        assert_eq!(r.dist[2], 2.0);
        assert!(r.negative_cycle.is_none());
    }

    #[test]
    fn detects_negative_cycle() {
        let edges = vec![e(0, 1, 1.0), e(1, 2, -2.0), e(2, 1, 1.0)];
        let r = bellman_ford(3, &edges, &[0]);
        let cycle = r.negative_cycle.expect("cycle expected");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
        let w = cycle_weight(&edges, &cycle);
        assert!(w < 0.0, "cycle weight {w} should be negative");
    }

    #[test]
    fn no_false_positives_on_zero_cycle() {
        let edges = vec![e(0, 1, 1.0), e(1, 0, -1.0)];
        assert!(!has_negative_cycle(2, &edges));
    }

    #[test]
    fn multi_source() {
        let edges = vec![e(0, 2, 10.0), e(1, 2, 1.0)];
        let r = bellman_ford(3, &edges, &[0, 1]);
        assert_eq!(r.dist[2], 1.0);
    }

    #[test]
    fn negative_cycle_not_reachable_from_source() {
        let edges = vec![e(1, 2, -2.0), e(2, 1, 1.0)];
        let r = bellman_ford(3, &edges, &[0]);
        assert!(r.negative_cycle.is_none());
        assert!(has_negative_cycle(3, &edges));
    }
}
