//! Bertsekas' auction algorithm for the assignment problem.
//!
//! The paper's appendix points at auction algorithms as the
//! *distributed* way to solve the min-cost-flow instance behind
//! negative-cycle removal: every source bids for its favourite sink
//! using only local prices, so the computation maps onto the same
//! message-passing substrate as the balancing protocol itself
//! (`dlb-runtime`). This module implements the classic forward auction
//! with ε-scaling for dense square assignment problems and is
//! cross-validated against the successive-shortest-paths solver.
//!
//! We *minimize* total cost; internally the algorithm maximizes the
//! negated benefit, as in Bertsekas' formulation. With integer costs
//! scaled by `n + 1`, ε-scaling down to `ε < 1/(n+1)` yields an exact
//! optimum; for `f64` costs the result is optimal to within `n·ε_min`,
//! which the caller controls.

/// Result of an auction run.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionResult {
    /// `assignment[i] = j`: person (source) `i` takes object (sink) `j`.
    pub assignment: Vec<usize>,
    /// Total cost of the assignment under the input matrix.
    pub total_cost: f64,
    /// Bidding rounds executed (across all ε phases).
    pub rounds: usize,
}

/// Solves the dense square assignment problem `min Σ_i cost[i][assignment[i]]`
/// by forward auction with ε-scaling.
///
/// `eps_min` bounds the final suboptimality by `n · eps_min`; pass
/// something small relative to the cost scale (e.g. `1e-9 · max|cost|`).
///
/// # Panics
///
/// Panics when the matrix is not square or is empty, or when any cost
/// is not finite.
pub fn auction_assignment(cost: &[Vec<f64>], eps_min: f64) -> AuctionResult {
    let n = cost.len();
    assert!(n > 0, "assignment problem needs at least one row");
    let mut max_abs: f64 = 0.0;
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
        for &c in row {
            assert!(c.is_finite(), "costs must be finite");
            max_abs = max_abs.max(c.abs());
        }
    }
    let eps_min = eps_min.max(f64::EPSILON * max_abs.max(1.0));
    // Benefits: maximize b[i][j] = -cost[i][j].
    let benefit = |i: usize, j: usize| -cost[i][j];

    let mut prices = vec![0.0f64; n];
    let mut owner: Vec<Option<usize>> = vec![None; n]; // object -> person
    let mut assigned: Vec<Option<usize>> = vec![None; n]; // person -> object
    let mut rounds = 0usize;

    // ε-scaling: start coarse, divide by 4 until below eps_min.
    let mut eps = (max_abs / 2.0).max(eps_min);
    loop {
        // Reset assignments for this phase (prices persist — that is
        // what makes scaling fast).
        owner.iter_mut().for_each(|o| *o = None);
        assigned.iter_mut().for_each(|a| *a = None);
        let mut unassigned: Vec<usize> = (0..n).collect();
        while let Some(i) = unassigned.pop() {
            rounds += 1;
            // Find best and second-best net value for person i.
            let mut best_j = 0;
            let mut best_v = f64::NEG_INFINITY;
            let mut second_v = f64::NEG_INFINITY;
            for j in 0..n {
                let v = benefit(i, j) - prices[j];
                if v > best_v {
                    second_v = best_v;
                    best_v = v;
                    best_j = j;
                } else if v > second_v {
                    second_v = v;
                }
            }
            // Bid: raise the price by the value margin plus ε.
            let raise = if second_v.is_finite() {
                best_v - second_v + eps
            } else {
                eps
            };
            prices[best_j] += raise;
            if let Some(prev) = owner[best_j].replace(i) {
                assigned[prev] = None;
                unassigned.push(prev);
            }
            assigned[i] = Some(best_j);
        }
        if eps <= eps_min {
            break;
        }
        eps = (eps / 4.0).max(eps_min * 0.999_999);
    }

    let assignment: Vec<usize> = assigned
        .into_iter()
        .map(|a| a.expect("auction terminates fully assigned"))
        .collect();
    let total_cost = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum();
    AuctionResult {
        assignment,
        total_cost,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowNetwork;
    use crate::ssp::min_cost_max_flow;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        // Exhaustive permutation search (n ≤ 8).
        let n = cost.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f64::INFINITY;
        permute(&mut perm, 0, cost, &mut best);
        best
    }

    fn permute(perm: &mut Vec<usize>, k: usize, cost: &[Vec<f64>], best: &mut f64) {
        let n = perm.len();
        if k == n {
            let total: f64 = (0..n).map(|i| cost[i][perm[i]]).sum();
            if total < *best {
                *best = total;
            }
            return;
        }
        for i in k..n {
            perm.swap(k, i);
            permute(perm, k + 1, cost, best);
            perm.swap(k, i);
        }
    }

    fn random_matrix(n: usize, seed: u64) -> Vec<Vec<f64>> {
        // SplitMix64-style generator to stay dependency-free here.
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        (0..n)
            .map(|_| (0..n).map(|_| (next() * 100.0).round()).collect())
            .collect()
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        for seed in 0..8u64 {
            let cost = random_matrix(6, seed);
            let res = auction_assignment(&cost, 1e-9);
            let exact = brute_force(&cost);
            assert!(
                (res.total_cost - exact).abs() < 1e-6,
                "seed {seed}: auction {} vs exact {exact}",
                res.total_cost
            );
            // assignment must be a permutation
            let mut seen = [false; 6];
            for &j in &res.assignment {
                assert!(!seen[j], "object {j} assigned twice");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn matches_ssp_on_larger_instances() {
        for seed in 0..4u64 {
            let n = 20;
            let cost = random_matrix(n, 100 + seed);
            let res = auction_assignment(&cost, 1e-9);
            // Assignment as min-cost flow: source → persons → objects → sink.
            let s = 2 * n;
            let t = 2 * n + 1;
            let mut net = FlowNetwork::new(2 * n + 2);
            for i in 0..n {
                net.add_edge(s, i, 1.0, 0.0);
                net.add_edge(n + i, t, 1.0, 0.0);
                for j in 0..n {
                    net.add_edge(i, n + j, 1.0, cost[i][j]);
                }
            }
            let flow = min_cost_max_flow(&mut net, s, t, f64::INFINITY);
            assert!(
                (res.total_cost - flow.cost).abs() < 1e-6,
                "seed {seed}: auction {} vs ssp {}",
                res.total_cost,
                flow.cost
            );
        }
    }

    #[test]
    fn identity_is_found_when_diagonal_dominates() {
        let n = 10;
        let mut cost = vec![vec![50.0; n]; n];
        for (i, row) in cost.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let res = auction_assignment(&cost, 1e-9);
        for (i, &j) in res.assignment.iter().enumerate() {
            assert_eq!(i, j);
        }
        assert!((res.total_cost - n as f64).abs() < 1e-9);
    }

    #[test]
    fn single_element() {
        let res = auction_assignment(&[vec![7.5]], 1e-9);
        assert_eq!(res.assignment, vec![0]);
        assert_eq!(res.total_cost, 7.5);
    }

    #[test]
    fn handles_negative_costs() {
        let cost = vec![vec![-5.0, 2.0], vec![3.0, -1.0]];
        let res = auction_assignment(&cost, 1e-12);
        assert_eq!(res.assignment, vec![0, 1]);
        assert!((res.total_cost - (-6.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = auction_assignment(&[vec![1.0, 2.0]], 1e-9);
    }
}
