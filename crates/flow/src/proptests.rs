//! Cross-algorithm property tests for the flow substrate.
//!
//! The strongest correctness signal available without an external LP
//! solver: two independent algorithms — successive shortest paths from
//! scratch, and greedy max-flow followed by negative-cycle cancelling —
//! must agree on the minimum cost of random transport instances.

#![cfg(test)]

use proptest::prelude::*;

use crate::cycle_cancel::{cancel_negative_cycles, find_negative_cycle};
use crate::graph::FlowNetwork;
use crate::ssp::min_cost_max_flow;

/// A random bipartite transport instance: `n` supply nodes, `n` demand
/// nodes, full transport layer with the given costs.
fn build_transport(
    n: usize,
    supplies: &[f64],
    demands: &[f64],
    costs: &[f64],
) -> (FlowNetwork, usize, usize) {
    let s = 2 * n;
    let t = 2 * n + 1;
    let mut g = FlowNetwork::new(2 * n + 2);
    for i in 0..n {
        g.add_edge(s, i, supplies[i], 0.0);
        g.add_edge(n + i, t, demands[i], 0.0);
    }
    for i in 0..n {
        for j in 0..n {
            g.add_edge(i, n + j, f64::INFINITY, costs[i * n + j]);
        }
    }
    (g, s, t)
}

/// Ships everything greedily (arbitrary routing) to obtain *some*
/// maximal feasible flow, deliberately ignoring costs.
fn greedy_max_flow(g: &mut FlowNetwork, s: usize, t: usize) {
    // Zero-cost SSP view: temporarily treat costs as zero by running a
    // plain augmenting loop over the residual graph (BFS).
    loop {
        let n = g.len();
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        let mut seen = vec![false; n];
        seen[s] = true;
        while let Some(u) = queue.pop_front() {
            for &eid in &g.adj[u] {
                let e = &g.edges[eid as usize];
                let v = e.to as usize;
                if !seen[v] && e.cap > crate::FLOW_EPS {
                    seen[v] = true;
                    pred[v] = Some(eid as usize);
                    queue.push_back(v);
                }
            }
        }
        if !seen[t] {
            break;
        }
        let mut bottleneck = f64::INFINITY;
        let mut v = t;
        while let Some(eid) = pred[v] {
            bottleneck = bottleneck.min(g.edges[eid].cap);
            v = g.edges[eid ^ 1].to as usize;
        }
        let mut v = t;
        while let Some(eid) = pred[v] {
            g.push(eid, bottleneck);
            v = g.edges[eid ^ 1].to as usize;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SSP-from-scratch and greedy-then-cancel agree on min cost.
    #[test]
    fn ssp_equals_greedy_plus_cycle_cancel(
        supplies in prop::collection::vec(0.5f64..5.0, 3),
        demands_raw in prop::collection::vec(0.5f64..5.0, 3),
        costs in prop::collection::vec(0.0f64..20.0, 9),
    ) {
        let n = 3;
        // Make total demand equal total supply so max flow saturates.
        let supply_total: f64 = supplies.iter().sum();
        let demand_total: f64 = demands_raw.iter().sum();
        let demands: Vec<f64> =
            demands_raw.iter().map(|d| d * supply_total / demand_total).collect();

        let (mut g1, s, t) = build_transport(n, &supplies, &demands, &costs);
        let r1 = min_cost_max_flow(&mut g1, s, t, f64::INFINITY);

        let (mut g2, s2, t2) = build_transport(n, &supplies, &demands, &costs);
        greedy_max_flow(&mut g2, s2, t2);
        cancel_negative_cycles(&mut g2, 10_000);
        let cost2 = g2.total_cost();

        prop_assert!((r1.flow - supply_total).abs() < 1e-6,
            "ssp must saturate: {} vs {supply_total}", r1.flow);
        prop_assert!((r1.cost - cost2).abs() < 1e-6 * r1.cost.abs().max(1.0),
            "ssp cost {} vs cancel cost {cost2}", r1.cost);
        // After cancelling, no negative cycle can remain.
        prop_assert!(find_negative_cycle(&g2).is_none());
    }

    /// SSP flows always satisfy conservation and capacity limits.
    #[test]
    fn ssp_flows_are_feasible(
        supplies in prop::collection::vec(0.1f64..4.0, 4),
        demands in prop::collection::vec(0.1f64..4.0, 4),
        costs in prop::collection::vec(0.0f64..10.0, 16),
    ) {
        let n = 4;
        let (mut g, s, t) = build_transport(n, &supplies, &demands, &costs);
        let r = min_cost_max_flow(&mut g, s, t, f64::INFINITY);
        let expected: f64 = supplies.iter().sum::<f64>()
            .min(demands.iter().sum::<f64>());
        prop_assert!((r.flow - expected).abs() < 1e-6,
            "max flow {} vs min(supply, demand) {expected}", r.flow);
        prop_assert!(g.check_conservation(&[s, t]).is_ok());
    }
}
