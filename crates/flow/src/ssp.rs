//! Successive shortest paths min-cost max-flow with Johnson potentials.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::FlowNetwork;
use crate::FLOW_EPS;

/// Outcome of a min-cost max-flow computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Total flow shipped from source to sink.
    pub flow: f64,
    /// Total cost `Σ flow(e)·cost(e)` of the final flow.
    pub cost: f64,
    /// Number of augmenting iterations performed.
    pub iterations: usize,
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes a minimum-cost maximum flow from `s` to `t`, shipping at
/// most `limit` units (use `f64::INFINITY` for the true max flow).
///
/// Requires all *initial* residual edges to have non-negative reduced
/// cost under zero potentials — i.e. no negative-cost forward edges.
/// (All graphs built by this workspace satisfy this; for general graphs
/// run [`crate::cycle_cancel::cancel_negative_cycles`] afterwards.)
///
/// # Panics
/// Panics when a negative-cost forward edge is present.
pub fn min_cost_max_flow(g: &mut FlowNetwork, s: usize, t: usize, limit: f64) -> FlowResult {
    let n = g.len();
    for i in (0..g.edges.len()).step_by(2) {
        assert!(
            g.edges[i].cost >= 0.0 || g.edges[i].cap <= FLOW_EPS,
            "min_cost_max_flow requires non-negative forward costs"
        );
    }
    let mut potential = vec![0.0f64; n];
    let mut total_flow = 0.0;
    let mut iterations = 0usize;

    let mut dist = vec![f64::INFINITY; n];
    let mut pred_edge: Vec<Option<usize>> = vec![None; n];

    while total_flow < limit - FLOW_EPS {
        // Dijkstra on reduced costs.
        dist.iter_mut().for_each(|d| *d = f64::INFINITY);
        pred_edge.iter_mut().for_each(|p| *p = None);
        dist[s] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem { dist: 0.0, node: s });
        while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
            if d > dist[u] + FLOW_EPS {
                continue;
            }
            for &eid in &g.adj[u] {
                let e = &g.edges[eid as usize];
                if e.cap <= FLOW_EPS {
                    continue;
                }
                let v = e.to as usize;
                let reduced = e.cost + potential[u] - potential[v];
                debug_assert!(
                    reduced >= -1e-6,
                    "negative reduced cost {reduced}; potentials inconsistent"
                );
                let nd = d + reduced.max(0.0);
                if nd < dist[v] - FLOW_EPS {
                    dist[v] = nd;
                    pred_edge[v] = Some(eid as usize);
                    heap.push(HeapItem { dist: nd, node: v });
                }
            }
        }
        if !dist[t].is_finite() {
            break; // sink unreachable: max flow reached
        }
        // Update potentials.
        for v in 0..n {
            if dist[v].is_finite() {
                potential[v] += dist[v];
            }
        }
        // Find bottleneck along the augmenting path.
        let mut bottleneck = limit - total_flow;
        let mut v = t;
        while let Some(eid) = pred_edge[v] {
            bottleneck = bottleneck.min(g.edges[eid].cap);
            v = g.edges[eid ^ 1].to as usize;
        }
        if bottleneck <= FLOW_EPS {
            break;
        }
        // Push.
        let mut v = t;
        while let Some(eid) = pred_edge[v] {
            g.push(eid, bottleneck);
            v = g.edges[eid ^ 1].to as usize;
        }
        total_flow += bottleneck;
        iterations += 1;
    }

    FlowResult {
        flow: total_flow,
        cost: g.total_cost(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 4.0, 3.0);
        let r = min_cost_max_flow(&mut g, 0, 1, f64::INFINITY);
        assert_eq!(r.flow, 4.0);
        assert_eq!(r.cost, 12.0);
        assert_eq!(g.flow(e), 4.0);
    }

    #[test]
    fn prefers_cheap_path() {
        // Two parallel 0→1 paths: direct cost 5, via 2 cost 1+1=2.
        let mut g = FlowNetwork::new(3);
        let direct = g.add_edge(0, 1, 10.0, 5.0);
        let a = g.add_edge(0, 2, 3.0, 1.0);
        let b = g.add_edge(2, 1, 3.0, 1.0);
        let r = min_cost_max_flow(&mut g, 0, 1, 5.0);
        assert_eq!(r.flow, 5.0);
        // 3 units via cheap path (cost 6), 2 direct (cost 10).
        assert_eq!(g.flow(a), 3.0);
        assert_eq!(g.flow(b), 3.0);
        assert_eq!(g.flow(direct), 2.0);
        assert!((r.cost - 16.0).abs() < 1e-9);
    }

    #[test]
    fn respects_limit() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 100.0, 1.0);
        let r = min_cost_max_flow(&mut g, 0, 1, 7.5);
        assert_eq!(r.flow, 7.5);
        assert!((r.cost - 7.5).abs() < 1e-9);
    }

    #[test]
    fn max_flow_value_on_classic_graph() {
        // CLRS-style example with min cut 23.
        let mut g = FlowNetwork::new(6);
        g.add_edge(0, 1, 16.0, 0.0);
        g.add_edge(0, 2, 13.0, 0.0);
        g.add_edge(1, 2, 10.0, 0.0);
        g.add_edge(2, 1, 4.0, 0.0);
        g.add_edge(1, 3, 12.0, 0.0);
        g.add_edge(3, 2, 9.0, 0.0);
        g.add_edge(2, 4, 14.0, 0.0);
        g.add_edge(4, 3, 7.0, 0.0);
        g.add_edge(3, 5, 20.0, 0.0);
        g.add_edge(4, 5, 4.0, 0.0);
        let r = min_cost_max_flow(&mut g, 0, 5, f64::INFINITY);
        assert!((r.flow - 23.0).abs() < 1e-9);
        g.check_conservation(&[0, 5]).unwrap();
    }

    #[test]
    fn min_cost_assignment_like_graph() {
        // Bipartite: 2 sources, 2 sinks via a transport layer.
        // Supplies: s→a (2 units), s→b (2). Demands: x→t (2), y→t (2).
        // Costs: a→x 1, a→y 10, b→x 10, b→y 1: optimum routes straight.
        let (s, a, b, x, y, t) = (0, 1, 2, 3, 4, 5);
        let mut g = FlowNetwork::new(6);
        g.add_edge(s, a, 2.0, 0.0);
        g.add_edge(s, b, 2.0, 0.0);
        let ax = g.add_edge(a, x, f64::INFINITY, 1.0);
        let ay = g.add_edge(a, y, f64::INFINITY, 10.0);
        let bx = g.add_edge(b, x, f64::INFINITY, 10.0);
        let by = g.add_edge(b, y, f64::INFINITY, 1.0);
        g.add_edge(x, t, 2.0, 0.0);
        g.add_edge(y, t, 2.0, 0.0);
        let r = min_cost_max_flow(&mut g, s, t, f64::INFINITY);
        assert!((r.flow - 4.0).abs() < 1e-9);
        assert!((r.cost - 4.0).abs() < 1e-9);
        assert_eq!(g.flow(ax), 2.0);
        assert_eq!(g.flow(by), 2.0);
        assert_eq!(g.flow(ay), 0.0);
        assert_eq!(g.flow(bx), 0.0);
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 5.0, 1.0);
        let r = min_cost_max_flow(&mut g, 0, 2, f64::INFINITY);
        assert_eq!(r.flow, 0.0);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 0.75, 2.0);
        g.add_edge(1, 2, 0.5, 1.0);
        let r = min_cost_max_flow(&mut g, 0, 2, f64::INFINITY);
        assert!((r.flow - 0.5).abs() < 1e-9);
        assert!((r.cost - 1.5).abs() < 1e-9);
    }
}
