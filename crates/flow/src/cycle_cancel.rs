//! Negative-cycle cancelling on residual graphs.
//!
//! Given *any* feasible flow, repeatedly finding a negative-cost cycle
//! in the residual graph and saturating it yields a minimum-cost flow of
//! the same value (Klein's algorithm). The paper's Appendix uses exactly
//! this idea: a "negative cycle" of relayed requests can be dismantled
//! without changing any server's load, strictly reducing communication
//! time.

use crate::graph::FlowNetwork;
use crate::FLOW_EPS;

/// Result of a cycle-cancelling pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CancelResult {
    /// Number of cycles cancelled.
    pub cycles_cancelled: usize,
    /// Total cost reduction achieved (non-negative).
    pub cost_reduction: f64,
}

/// Cancels negative-cost residual cycles until none remain (up to
/// `max_cycles` as a safety valve; the fractional problems here converge
/// in far fewer).
pub fn cancel_negative_cycles(g: &mut FlowNetwork, max_cycles: usize) -> CancelResult {
    let before = g.total_cost();
    let mut cancelled = 0usize;
    while cancelled < max_cycles {
        match find_negative_cycle(g) {
            Some(cycle_edges) => {
                let bottleneck = cycle_edges
                    .iter()
                    .map(|&e| g.edges[e].cap)
                    .fold(f64::INFINITY, f64::min);
                if bottleneck <= FLOW_EPS {
                    break;
                }
                for &e in &cycle_edges {
                    g.push(e, bottleneck);
                }
                cancelled += 1;
            }
            None => break,
        }
    }
    CancelResult {
        cycles_cancelled: cancelled,
        cost_reduction: before - g.total_cost(),
    }
}

/// Finds a negative-cost cycle in the residual graph and returns the
/// residual-edge indices along it, or `None`.
pub fn find_negative_cycle(g: &FlowNetwork) -> Option<Vec<usize>> {
    let n = g.len();
    // Bellman-Ford over residual edges from a virtual source attached to
    // every node (dist 0 everywhere).
    let mut dist = vec![0.0f64; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut last_updated = None;
    for _round in 0..n {
        last_updated = None;
        for (eid, e) in g.edges.iter().enumerate() {
            if e.cap <= FLOW_EPS {
                continue;
            }
            let u = g.edges[eid ^ 1].to as usize;
            let v = e.to as usize;
            if dist[u] + e.cost < dist[v] - FLOW_EPS {
                dist[v] = dist[u] + e.cost;
                pred[v] = Some(eid);
                last_updated = Some(v);
            }
        }
        last_updated?;
    }
    let start = last_updated?;
    // Walk back n steps to guarantee we are on the cycle.
    let mut v = start;
    for _ in 0..n {
        let eid = pred[v]?;
        v = g.edges[eid ^ 1].to as usize;
    }
    // Extract edge ids around the cycle.
    let mut edges = Vec::new();
    let cycle_node = v;
    loop {
        let eid = pred[v].expect("cycle nodes have predecessors");
        edges.push(eid);
        v = g.edges[eid ^ 1].to as usize;
        if v == cycle_node {
            break;
        }
    }
    edges.reverse();
    Some(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a triangle with a deliberately suboptimal feasible flow:
    /// 1 unit shipped 0→1→2 (cost 10 each) while a direct 0→2 edge of
    /// cost 1 sits idle. The residual graph then contains the negative
    /// cycle 0→2 (cost 1), 2→1 reverse (-10), 1→0 reverse (-10).
    fn suboptimal_triangle() -> (FlowNetwork, crate::EdgeId, crate::EdgeId, crate::EdgeId) {
        let mut g = FlowNetwork::new(3);
        let e01 = g.add_edge(0, 1, 1.0, 10.0);
        let e12 = g.add_edge(1, 2, 1.0, 10.0);
        let e02 = g.add_edge(0, 2, 1.0, 1.0);
        g.push(e01.0, 1.0);
        g.push(e12.0, 1.0);
        (g, e01, e12, e02)
    }

    #[test]
    fn finds_and_cancels_cycle() {
        let (mut g, e01, e12, e02) = suboptimal_triangle();
        assert_eq!(g.total_cost(), 20.0);
        assert!(find_negative_cycle(&g).is_some());
        let r = cancel_negative_cycles(&mut g, 100);
        assert_eq!(r.cycles_cancelled, 1);
        assert!((r.cost_reduction - 19.0).abs() < 1e-9);
        assert_eq!(g.flow(e01), 0.0);
        assert_eq!(g.flow(e12), 0.0);
        assert_eq!(g.flow(e02), 1.0);
        assert!(find_negative_cycle(&g).is_none());
    }

    #[test]
    fn optimal_flow_has_no_negative_cycle() {
        let mut g = FlowNetwork::new(3);
        let e = g.add_edge(0, 2, 1.0, 1.0);
        g.add_edge(0, 1, 1.0, 10.0);
        g.add_edge(1, 2, 1.0, 10.0);
        g.push(e.0, 1.0);
        assert!(find_negative_cycle(&g).is_none());
        let r = cancel_negative_cycles(&mut g, 10);
        assert_eq!(r.cycles_cancelled, 0);
        assert_eq!(r.cost_reduction, 0.0);
    }

    #[test]
    fn cancelling_preserves_node_balance() {
        let (mut g, ..) = suboptimal_triangle();
        let before: Vec<f64> = (0..3).map(|u| g.net_outflow(u)).collect();
        cancel_negative_cycles(&mut g, 100);
        let after: Vec<f64> = (0..3).map(|u| g.net_outflow(u)).collect();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - a).abs() < 1e-9, "node balance changed: {b} -> {a}");
        }
    }

    #[test]
    fn agrees_with_ssp_on_random_instances() {
        use crate::ssp::min_cost_max_flow;
        // Build a small layered graph; route max flow greedily (expensive
        // first), then cancel cycles; cost must match SSP from scratch.
        let build = || {
            let mut g = FlowNetwork::new(4);
            let edges = vec![
                g.add_edge(0, 1, 2.0, 4.0),
                g.add_edge(0, 2, 2.0, 1.0),
                g.add_edge(1, 3, 2.0, 1.0),
                g.add_edge(2, 3, 2.0, 2.0),
                g.add_edge(1, 2, 2.0, 1.0),
            ];
            (g, edges)
        };
        // Suboptimal feasible flow: 2 units via 0→1→3, 2 via 0→2→3.
        let (mut g1, e1) = build();
        g1.push(e1[0].0, 2.0);
        g1.push(e1[2].0, 2.0);
        g1.push(e1[1].0, 2.0);
        g1.push(e1[3].0, 2.0);
        cancel_negative_cycles(&mut g1, 100);

        let (mut g2, _) = build();
        let r2 = min_cost_max_flow(&mut g2, 0, 3, 4.0);
        assert!((r2.flow - 4.0).abs() < 1e-9);
        assert!(
            (g1.total_cost() - r2.cost).abs() < 1e-6,
            "cycle-cancel {} vs ssp {}",
            g1.total_cost(),
            r2.cost
        );
    }
}
