//! Multiple-subset-sum rounding of fractional prescriptions.
//!
//! After solving the fractional problem, organization `i` must send a
//! *subset* `S_i(j)` of its actual tasks to each server `j` so that
//! `Σ_{k ∈ S_i(j)} p_i(k) ≈ ρ_ij n_i`. Minimizing the total deviation is
//! the multiple subset sum problem with different knapsack capacities —
//! NP-complete, but well approximated by a greedy largest-first pass
//! (deviation per server bounded by the largest task) followed by
//! single-move / swap local search.

/// Assigns tasks (by size) to servers given per-server target volumes.
/// Returns `assignment[k] = j` (task `k` goes to server `j`).
///
/// # Panics
/// Panics when `targets` is empty while tasks exist.
pub fn round_tasks(sizes: &[f64], targets: &[f64]) -> Vec<usize> {
    if sizes.is_empty() {
        return Vec::new();
    }
    assert!(!targets.is_empty(), "no servers to assign tasks to");
    let m = targets.len();
    let mut remaining: Vec<f64> = targets.to_vec();
    // Greedy: largest task first, to the server with the largest
    // remaining deficit.
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].partial_cmp(&sizes[a]).expect("sizes comparable"));
    let mut assignment = vec![0usize; sizes.len()];
    for &k in &order {
        let mut best = 0usize;
        for j in 1..m {
            if remaining[j] > remaining[best] {
                best = j;
            }
        }
        assignment[k] = best;
        remaining[best] -= sizes[k];
    }
    local_search(sizes, targets, &mut assignment, 50);
    assignment
}

/// Total rounding error `Σ_j |Σ_{k ∈ S(j)} p_k − target_j|`
/// (the paper's `Σ err(S_i(j))`).
pub fn rounding_error(sizes: &[f64], targets: &[f64], assignment: &[usize]) -> f64 {
    let mut volumes = vec![0.0; targets.len()];
    for (k, &j) in assignment.iter().enumerate() {
        volumes[j] += sizes[k];
    }
    volumes
        .iter()
        .zip(targets.iter())
        .map(|(v, t)| (v - t).abs())
        .sum()
}

/// Hill-climbing polish: single-task moves and pairwise swaps accepted
/// while they reduce the rounding error.
fn local_search(sizes: &[f64], targets: &[f64], assignment: &mut [usize], max_passes: usize) {
    let m = targets.len();
    let mut volumes = vec![0.0; m];
    for (k, &j) in assignment.iter().enumerate() {
        volumes[j] += sizes[k];
    }
    let err_pair = |va: f64, ta: f64, vb: f64, tb: f64| (va - ta).abs() + (vb - tb).abs();
    for _ in 0..max_passes {
        let mut improved = false;
        // Single moves.
        for k in 0..sizes.len() {
            let from = assignment[k];
            for to in 0..m {
                if to == from {
                    continue;
                }
                let before = err_pair(volumes[from], targets[from], volumes[to], targets[to]);
                let after = err_pair(
                    volumes[from] - sizes[k],
                    targets[from],
                    volumes[to] + sizes[k],
                    targets[to],
                );
                if after + 1e-12 < before {
                    volumes[from] -= sizes[k];
                    volumes[to] += sizes[k];
                    assignment[k] = to;
                    improved = true;
                }
            }
        }
        // Pairwise swaps.
        for a in 0..sizes.len() {
            for b in (a + 1)..sizes.len() {
                let (ja, jb) = (assignment[a], assignment[b]);
                if ja == jb {
                    continue;
                }
                let before = err_pair(volumes[ja], targets[ja], volumes[jb], targets[jb]);
                let delta = sizes[b] - sizes[a];
                let after = err_pair(
                    volumes[ja] + delta,
                    targets[ja],
                    volumes[jb] - delta,
                    targets[jb],
                );
                if after + 1e-12 < before {
                    volumes[ja] += delta;
                    volumes[jb] -= delta;
                    assignment.swap(a, b);
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_split_has_zero_error() {
        let sizes = vec![2.0, 3.0, 5.0];
        let targets = vec![5.0, 5.0];
        let a = round_tasks(&sizes, &targets);
        assert_eq!(rounding_error(&sizes, &targets, &a), 0.0);
    }

    #[test]
    fn single_server_takes_everything() {
        let sizes = vec![1.0, 2.0, 3.0];
        let a = round_tasks(&sizes, &[6.0]);
        assert!(a.iter().all(|&j| j == 0));
        assert_eq!(rounding_error(&sizes, &[6.0], &a), 0.0);
    }

    #[test]
    fn empty_tasks() {
        assert!(round_tasks(&[], &[1.0, 2.0]).is_empty());
    }

    #[test]
    fn error_bounded_by_max_task_per_server() {
        let sizes: Vec<f64> = (1..=30).map(|i| (i % 7 + 1) as f64).collect();
        let total: f64 = sizes.iter().sum();
        let targets = vec![total * 0.5, total * 0.3, total * 0.2];
        let a = round_tasks(&sizes, &targets);
        let err = rounding_error(&sizes, &targets, &a);
        let p_max = sizes.iter().copied().fold(0.0, f64::max);
        assert!(
            err <= targets.len() as f64 * p_max,
            "err {err} above m·p_max bound"
        );
    }

    #[test]
    fn unbalanced_targets_respected() {
        let sizes = vec![1.0; 100];
        let targets = vec![80.0, 20.0];
        let a = round_tasks(&sizes, &targets);
        let to_first = a.iter().filter(|&&j| j == 0).count();
        assert_eq!(to_first, 80);
        assert_eq!(rounding_error(&sizes, &targets, &a), 0.0);
    }

    proptest! {
        #[test]
        fn prop_every_task_assigned_and_error_bounded(
            sizes in prop::collection::vec(0.1f64..5.0, 1..40),
            weights in prop::collection::vec(0.05f64..1.0, 2..5),
        ) {
            let total: f64 = sizes.iter().sum();
            let wsum: f64 = weights.iter().sum();
            let targets: Vec<f64> = weights.iter().map(|w| w / wsum * total).collect();
            let a = round_tasks(&sizes, &targets);
            prop_assert_eq!(a.len(), sizes.len());
            prop_assert!(a.iter().all(|&j| j < targets.len()));
            let err = rounding_error(&sizes, &targets, &a);
            let p_max = sizes.iter().copied().fold(0.0f64, f64::max);
            // Greedy + local search keeps the error within m·p_max
            // (comfortably; usually much tighter).
            prop_assert!(err <= targets.len() as f64 * p_max + 1e-9,
                "err {err} vs bound {}", targets.len() as f64 * p_max);
        }

        #[test]
        fn prop_unit_tasks_round_near_perfectly(
            count in 10usize..120,
            w0 in 0.1f64..0.9,
        ) {
            let sizes = vec![1.0; count];
            let total = count as f64;
            let targets = vec![total * w0, total * (1.0 - w0)];
            let a = round_tasks(&sizes, &targets);
            let err = rounding_error(&sizes, &targets, &a);
            // Unit tasks can match any split to within one task total.
            prop_assert!(err <= 1.0 + 1e-9, "err {err}");
        }
    }
}
