//! # dlb-extensions — §VII: heterogeneous tasks and replication
//!
//! The base model assumes unit-size requests. Section VII of the paper
//! extends it in two directions, both implemented here:
//!
//! * **Tasks of different processing times** — solve the fractional
//!   problem with `n_i = Σ_k p_i(k)`, then *round*: partition each
//!   organization's task set so that the total size sent to each server
//!   matches the fractional prescription. This is the multiple subset
//!   sum problem (NP-complete; the paper cites a PTAS); [`rounding`]
//!   ships a greedy largest-first heuristic with local-search polish and
//!   a per-server error bounded by the largest task size.
//! * **R-replication** — every task must run at `R` distinct locations.
//!   The fractional problem gains the cap `ρ_ij ≤ 1/R`, after which
//!   `R·ρ_ij` is a valid inclusion probability; [`replication`] realizes
//!   placements with Madow systematic sampling, which picks exactly `R`
//!   distinct servers with those marginals.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod replication;
pub mod rounding;
pub mod tasks;

pub use replication::place_replicas;
pub use rounding::{round_tasks, rounding_error};
pub use tasks::TaskSet;
