//! R-replication: placing R copies of each task at distinct servers.
//!
//! With the cap `ρ_ij ≤ 1/R` enforced on the fractional solution,
//! `π_j = R·ρ_ij` is a valid inclusion-probability vector (`0 ≤ π_j ≤ 1`,
//! `Σ_j π_j = R`). Madow's systematic sampling then draws exactly `R`
//! *distinct* servers whose inclusion marginals are exactly `π` — so
//! the expected number of copies of each task placed on server `j` is
//! `R·ρ_ij`, matching the paper's §VII interpretation.

use rand::Rng;

/// Draws `r` distinct servers for one task given the task owner's
/// fraction row `rho` (must satisfy `ρ_j ≤ 1/r` and `Σ ρ_j = 1`, both
/// up to `1e-6`).
///
/// # Panics
/// Panics when the fraction row violates the cap or does not sum to 1.
pub fn place_replicas<R: Rng + ?Sized>(rho: &[f64], r: usize, rng: &mut R) -> Vec<usize> {
    assert!(r >= 1, "need at least one replica");
    assert!(r <= rho.len(), "more replicas than servers");
    let sum: f64 = rho.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "fractions must sum to 1 (got {sum})"
    );
    let cap = 1.0 / r as f64 + 1e-9;
    for (j, &f) in rho.iter().enumerate() {
        assert!(f >= -1e-12, "negative fraction at {j}");
        assert!(
            f <= cap,
            "fraction ρ_{j} = {f} violates the 1/R = {} cap",
            1.0 / r as f64
        );
    }
    // Madow systematic sampling on π = R·ρ.
    let u: f64 = rng.gen::<f64>();
    let mut picks = Vec::with_capacity(r);
    let mut cumulative = 0.0;
    let mut next_point = u; // points u, u+1, ..., u+R-1
    for (j, &f) in rho.iter().enumerate() {
        let pi = f * r as f64;
        let upper = cumulative + pi;
        while next_point < upper - 1e-15 && picks.len() < r {
            picks.push(j);
            next_point += 1.0;
        }
        cumulative = upper;
    }
    // Numerical tail: if rounding starved the last pick(s), take the
    // largest-π unpicked servers.
    while picks.len() < r {
        let missing = (0..rho.len())
            .filter(|j| !picks.contains(j))
            .max_by(|&a, &b| rho[a].partial_cmp(&rho[b]).expect("comparable"))
            .expect("enough servers for r replicas");
        picks.push(missing);
    }
    debug_assert_eq!(picks.len(), r);
    picks
}

/// Caps-and-renormalizes helper: clamps a fraction row to `1/R` and
/// redistributes the excess over uncapped entries (useful when a
/// fractional solution was computed without replication awareness).
pub fn enforce_replication_cap(rho: &mut [f64], r: usize) {
    assert!(r >= 1 && r <= rho.len());
    let cap = 1.0 / r as f64;
    for _ in 0..rho.len() {
        let mut excess = 0.0;
        let mut headroom = 0.0;
        for &f in rho.iter() {
            if f > cap {
                excess += f - cap;
            } else {
                headroom += cap - f;
            }
        }
        if excess <= 1e-12 {
            break;
        }
        let scale = (excess / headroom).min(1.0);
        for f in rho.iter_mut() {
            if *f > cap {
                *f = cap;
            } else {
                *f += (cap - *f) * scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::rngutil::rng_for;

    #[test]
    fn picks_exactly_r_distinct() {
        let mut rng = rng_for(1, 0);
        let rho = vec![0.25; 4];
        for r in 1..=4 {
            let mut rho_r = rho.clone();
            enforce_replication_cap(&mut rho_r, r);
            let picks = place_replicas(&rho_r, r, &mut rng);
            assert_eq!(picks.len(), r);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), r, "picks must be distinct: {picks:?}");
        }
    }

    #[test]
    fn marginals_match_r_rho() {
        let mut rng = rng_for(2, 0);
        let rho = vec![0.4, 0.3, 0.2, 0.1];
        let r = 2;
        let trials = 40_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            for j in place_replicas(&rho, r, &mut rng) {
                counts[j] += 1;
            }
        }
        for j in 0..4 {
            let empirical = counts[j] as f64 / trials as f64;
            let expected = rho[j] * r as f64;
            assert!(
                (empirical - expected).abs() < 0.02,
                "server {j}: {empirical} vs {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn rejects_cap_violation() {
        let mut rng = rng_for(3, 0);
        // ρ_0 = 0.8 > 1/2
        place_replicas(&[0.8, 0.1, 0.1], 2, &mut rng);
    }

    #[test]
    fn r_equals_one_is_plain_sampling() {
        let mut rng = rng_for(4, 0);
        let rho = vec![0.7, 0.3];
        let mut count0 = 0;
        for _ in 0..20_000 {
            if place_replicas(&rho, 1, &mut rng)[0] == 0 {
                count0 += 1;
            }
        }
        let p = count0 as f64 / 20_000.0;
        assert!((p - 0.7).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn enforce_cap_preserves_simplex() {
        let mut rho = vec![0.9, 0.05, 0.03, 0.02];
        enforce_replication_cap(&mut rho, 2);
        let sum: f64 = rho.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(rho.iter().all(|&f| f <= 0.5 + 1e-9));
        assert!(rho.iter().all(|&f| f >= 0.0));
    }

    #[test]
    fn enforce_cap_noop_when_feasible() {
        let mut rho = vec![0.3, 0.3, 0.4];
        let before = rho.clone();
        enforce_replication_cap(&mut rho, 2);
        for (a, b) in rho.iter().zip(before.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
