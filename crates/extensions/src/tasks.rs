//! Discrete task sets with heterogeneous processing times.

use dlb_core::rngutil::rng_for;
use rand::Rng;

/// The tasks of one organization (`J_i` in the paper); `sizes[k]` is
/// `p_i(k)`, the processing time of task `J_i(k)` on a unit-speed
/// server.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    /// Task sizes.
    pub sizes: Vec<f64>,
}

impl TaskSet {
    /// Wraps explicit sizes.
    pub fn new(sizes: Vec<f64>) -> Self {
        assert!(
            sizes.iter().all(|&p| p > 0.0),
            "task sizes must be positive"
        );
        Self { sizes }
    }

    /// Total load `n_i = Σ_k p_i(k)` the set contributes to the
    /// fractional model.
    pub fn total(&self) -> f64 {
        self.sizes.iter().sum()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Returns `true` when the set holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Largest task size.
    pub fn max_size(&self) -> f64 {
        self.sizes.iter().copied().fold(0.0, f64::max)
    }

    /// Uniform sizes in `[lo, hi]`.
    pub fn uniform(count: usize, lo: f64, hi: f64, seed: u64) -> Self {
        assert!(lo > 0.0 && hi >= lo);
        let mut rng = rng_for(seed, 0x7A5C);
        Self::new((0..count).map(|_| rng.gen_range(lo..=hi)).collect())
    }

    /// Zipf-like sizes (`size ∝ 1/rank^exponent`, scaled so the mean is
    /// `mean_size`) — the heavy-tailed popularity profile of CDN
    /// content.
    pub fn zipf(count: usize, exponent: f64, mean_size: f64, seed: u64) -> Self {
        assert!(count > 0 && exponent >= 0.0 && mean_size > 0.0);
        let mut rng = rng_for(seed, 0x21FF);
        let raw: Vec<f64> = (1..=count)
            .map(|rank| 1.0 / (rank as f64).powf(exponent))
            .collect();
        let mean_raw: f64 = raw.iter().sum::<f64>() / count as f64;
        let mut sizes: Vec<f64> = raw.iter().map(|&r| r / mean_raw * mean_size).collect();
        // Shuffle so task index does not encode popularity.
        for i in (1..sizes.len()).rev() {
            let j = rng.gen_range(0..=i);
            sizes.swap(i, j);
        }
        Self::new(sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_max() {
        let t = TaskSet::new(vec![1.0, 3.0, 2.0]);
        assert_eq!(t.total(), 6.0);
        assert_eq!(t.max_size(), 3.0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn uniform_sizes_in_range() {
        let t = TaskSet::uniform(1000, 0.5, 2.0, 1);
        assert!(t.sizes.iter().all(|&p| (0.5..=2.0).contains(&p)));
        let mean = t.total() / 1000.0;
        assert!((mean - 1.25).abs() < 0.1);
    }

    #[test]
    fn zipf_mean_is_calibrated() {
        let t = TaskSet::zipf(500, 1.0, 4.0, 2);
        let mean = t.total() / 500.0;
        assert!((mean - 4.0).abs() < 1e-9);
        // heavy tail: max far above mean
        assert!(t.max_size() > 3.0 * mean);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_sizes() {
        TaskSet::new(vec![1.0, 0.0]);
    }
}
