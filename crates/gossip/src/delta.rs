//! Delta-encoded sharded gossip: the bandwidth-frugal control plane.
//!
//! [`crate::EventGossip`] ships the **full** m-entry view on every
//! exchange — at m = 5000 that is ~100 kB per frame, the bandwidth
//! bill the ROADMAP calls out. [`DeltaGossip`] runs the same versioned
//! push-pull merge on the same virtual-time heap but encodes what it
//! actually sends ([`crate::wire::DeltaFrame`]):
//!
//! - **Hot set (rumor mongering).** Every entry a node heard within the
//!   last `hot_ticks` of its own periods is "hot" and rides along in
//!   the frame's `changed` list. A fresh publish therefore spreads
//!   epidemically in O(log m) periods, exactly like full-view push-pull
//!   — but the frame carries only the entries that recently moved.
//! - **Rotating shard fallback (anti-entropy).** Each frame also
//!   carries the *complete* contents of one shard
//!   ([`crate::ShardMap`]), rotating through the shards with the
//!   sender's tick. Replies pick the shard whose per-shard version
//!   summary (`since`, carried in the request) lags the responder's
//!   view the most. The fallback guarantees convergence even when a
//!   rumor dies out or a summary comparison is uninformative: a missed
//!   delta costs *time* (until the rotation covers the shard), never
//!   correctness — the same loss philosophy as the fault layer.
//!
//! Steady-state traffic per frame is O(hot entries + one shard) instead
//! of O(m): at m = 5000 with 256-entry shards that is a ~17× cut,
//! measured end-to-end in `BENCH_gossip.json` (the frames really pass
//! through [`crate::wire::encode_delta`]/[`crate::wire::decode_delta`],
//! and [`GossipTraffic`] counts the encoded bytes).
//!
//! Unlike the one-shot [`EventGossip::run`](crate::EventGossip::run)
//! loop, the heap here is persistent: [`DeltaGossip::advance`] drains
//! events up to a virtual instant and returns, so an external driver —
//! the engine's `GossipFeed` — can interleave publishes and partial
//! advances with its own iteration clock. Everything is deterministic
//! per seed: peers come from a seeded RNG and the heap orders
//! deliveries by `(due, seq)`.

use dlb_core::events::{EventHeap, Scheduled};
use dlb_core::rngutil::rng_for;
use dlb_obs::{NullSink, TraceEvent, TraceKind, TraceSink};
use rand::rngs::StdRng;
use rand::Rng;

use crate::push_pull::Entry;
use crate::shard::ShardMap;
use crate::wire::{self, DeltaFrame, WireEntry};
use bytes::Bytes;

/// Timing and rumor-window knobs for [`DeltaGossip`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaGossipConfig {
    /// Virtual ms between one node's successive exchange initiations.
    pub period_ms: f64,
    /// How many of a node's own ticks an entry stays "hot" (rides in
    /// the `changed` list) after being heard. `0` = auto:
    /// `2·⌈log2 m⌉ + 2`, enough for a rumor to spread w.h.p. before it
    /// cools.
    pub hot_ticks: u32,
}

impl Default for DeltaGossipConfig {
    fn default() -> Self {
        Self {
            period_ms: 100.0,
            hot_ticks: 0,
        }
    }
}

/// Wire-traffic counters for a delta-gossip network, accumulated over
/// its whole life (snapshot and subtract to meter an interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GossipTraffic {
    /// Frames put on the wire (requests + replies, even ones still in
    /// flight).
    pub frames: u64,
    /// Encoded bytes of those frames.
    pub bytes: u64,
    /// Completed push-pull exchanges (reply delivered and merged).
    pub exchanges: u64,
    /// Hot-set (`changed`) entries shipped.
    pub delta_entries: u64,
    /// Fallback-shard (`full`) entries shipped.
    pub full_entries: u64,
}

impl GossipTraffic {
    /// `true` when nothing was ever put on the wire — used to keep
    /// records of gossip-free runs byte-identical.
    pub fn is_quiet(&self) -> bool {
        self.frames == 0
    }

    /// Counter-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &GossipTraffic) -> GossipTraffic {
        GossipTraffic {
            frames: self.frames - earlier.frames,
            bytes: self.bytes - earlier.bytes,
            exchanges: self.exchanges - earlier.exchanges,
            delta_entries: self.delta_entries - earlier.delta_entries,
            full_entries: self.full_entries - earlier.full_entries,
        }
    }
}

#[derive(Debug, Clone)]
struct NodeState {
    /// `view[origin]` — what this node believes about `origin`.
    view: Vec<Entry>,
    /// Own tick at which each entry last changed; [`NEVER`] = cold.
    heard: Vec<u32>,
    /// Per-shard sum of held versions — the monotone summary shipped as
    /// a delta frame's `since` watermark.
    vsum: Vec<u64>,
    /// Completed initiation periods.
    tick: u32,
}

/// `heard` sentinel for entries that never changed (version 0, or
/// warm-started ancient history): never hot.
const NEVER: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum What {
    /// A node initiates its periodic exchange.
    Tick { node: u32 },
    /// An encoded delta frame arrives at `to`; it merges and replies.
    Request { from: u32, to: u32, frame: Bytes },
    /// The encoded reply frame arrives back at the initiator.
    Reply { from: u32, to: u32, frame: Bytes },
}

/// A sharded delta-gossip network on a persistent virtual-time heap
/// (see the module docs).
#[derive(Debug, Clone)]
pub struct DeltaGossip {
    shards: ShardMap,
    nodes: Vec<NodeState>,
    /// Per origin: the globally freshest version.
    newest: Vec<u64>,
    /// Per origin: how many nodes hold the freshest version.
    fresh: Vec<usize>,
    /// Stale `(node, origin)` pairs; `0` ⇔ fully disseminated.
    deficit: usize,
    /// Virtual instant dissemination last completed (sticky until the
    /// next staleness-creating publish).
    completed_at: Option<f64>,
    now: f64,
    period_ms: f64,
    hot_ticks: u32,
    heap: EventHeap<What>,
    rng: StdRng,
    traffic: GossipTraffic,
}

impl DeltaGossip {
    /// A cold-started network: each node initially knows only its own
    /// load (version 1).
    pub fn new(loads: &[f64], seed: u64, config: DeltaGossipConfig) -> Self {
        let m = loads.len();
        let mut net = Self::bare(loads, seed, config, false);
        net.deficit = m * m.saturating_sub(1);
        net.completed_at = if net.deficit == 0 { Some(0.0) } else { None };
        net.debug_check();
        net
    }

    /// A warm-started network: every node already holds every entry at
    /// version 1 (as after an initial dissemination round), all cold.
    /// This is the steady-state starting point the engine feed uses —
    /// the balancer's paper model assumes dissemination ran before
    /// balancing starts.
    pub fn warm(loads: &[f64], seed: u64, config: DeltaGossipConfig) -> Self {
        let mut net = Self::bare(loads, seed, config, true);
        net.completed_at = Some(0.0);
        net.debug_check();
        net
    }

    fn bare(loads: &[f64], seed: u64, config: DeltaGossipConfig, warm: bool) -> Self {
        let m = loads.len();
        let shards = ShardMap::auto(m);
        let hot_ticks = if config.hot_ticks > 0 {
            config.hot_ticks
        } else {
            2 * (usize::BITS - m.max(1).leading_zeros()) + 2
        };
        let nodes: Vec<NodeState> = (0..m)
            .map(|node| {
                let view: Vec<Entry> = (0..m)
                    .map(|origin| Entry {
                        load: if warm || node == origin {
                            loads[origin]
                        } else {
                            0.0
                        },
                        version: if warm || node == origin { 1 } else { 0 },
                    })
                    .collect();
                let heard: Vec<u32> = (0..m)
                    .map(|origin| {
                        // A cold start's own entry is "just published";
                        // a warm start is all ancient history.
                        if !warm && node == origin {
                            0
                        } else {
                            NEVER
                        }
                    })
                    .collect();
                let mut vsum = vec![0u64; shards.count()];
                for (origin, e) in view.iter().enumerate() {
                    vsum[shards.shard_of(origin)] += e.version;
                }
                NodeState {
                    view,
                    heard,
                    vsum,
                    tick: 0,
                }
            })
            .collect();
        let mut heap = EventHeap::new();
        if m >= 2 {
            for node in 0..m as u32 {
                heap.push(0.0, What::Tick { node });
            }
        }
        Self {
            shards,
            nodes,
            newest: vec![1; m],
            fresh: vec![if warm { m } else { 1 }; m],
            deficit: 0,
            completed_at: Some(0.0),
            now: 0.0,
            period_ms: config.period_ms,
            hot_ticks,
            heap,
            rng: rng_for(seed, 0xDE17A),
            traffic: GossipTraffic::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for the empty network.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The shard layout in use.
    pub fn shards(&self) -> &ShardMap {
        &self.shards
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> f64 {
        self.now
    }

    /// Wire-traffic counters accumulated so far.
    pub fn traffic(&self) -> GossipTraffic {
        self.traffic
    }

    /// Virtual instant at which the last full dissemination completed,
    /// if currently complete.
    pub fn completed_at(&self) -> Option<f64> {
        self.completed_at
    }

    /// Returns `true` when every node holds the globally freshest
    /// version of every origin's entry (O(1) counter check).
    pub fn fully_disseminated(&self) -> bool {
        self.deficit == 0
    }

    /// A node publishes a new local load (bumps its version; the entry
    /// becomes hot and starts spreading on subsequent exchanges).
    pub fn publish(&mut self, node: usize, load: f64) {
        let v = self.nodes[node].view[node].version + 1;
        let tick = self.nodes[node].tick;
        let shard = self.shards.shard_of(node);
        let state = &mut self.nodes[node];
        state.view[node] = Entry { load, version: v };
        state.heard[node] = tick;
        state.vsum[shard] += 1;
        self.deficit += self.fresh[node] - 1;
        self.newest[node] = v;
        self.fresh[node] = 1;
        if self.deficit > 0 {
            self.completed_at = None;
        }
        self.debug_check();
    }

    /// The load vector as node `node` currently believes it.
    pub fn view(&self, node: usize) -> Vec<f64> {
        self.nodes[node].view.iter().map(|e| e.load).collect()
    }

    /// Copies node `node`'s believed load vector into `out` without
    /// allocating.
    pub fn view_into(&self, node: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.nodes[node].view.iter().map(|e| e.load));
    }

    /// Drains scheduled events up to virtual time `until_ms`
    /// (inclusive) and parks the clock there. `delays(i, j)` is the
    /// one-way delivery delay in virtual ms. The heap persists, so
    /// callers can interleave [`publish`](Self::publish) with repeated
    /// advances.
    pub fn advance<D: Fn(usize, usize) -> f64>(&mut self, until_ms: f64, delays: D) {
        self.advance_observed(until_ms, delays, &mut NullSink);
    }

    /// [`advance`](Self::advance) with a [`TraceSink`] observing frame
    /// deliveries: every merged frame emits a `gossip_delta` event when
    /// its hot set is non-empty and a `gossip_full` event when its
    /// fallback shard is, stamped with receiver/sender and the shard
    /// index. A [`NullSink`] run is bit-identical to the untraced path.
    pub fn advance_observed<D: Fn(usize, usize) -> f64, T: TraceSink>(
        &mut self,
        until_ms: f64,
        delays: D,
        tracer: &mut T,
    ) {
        assert!(
            until_ms >= self.now,
            "virtual time cannot run backwards ({} < {})",
            until_ms,
            self.now
        );
        while let Some(due) = self.heap.peek_due() {
            if due > until_ms {
                break;
            }
            let event = self.heap.pop().expect("peeked");
            self.now = event.due;
            self.handle(event, &delays, tracer);
        }
        self.now = until_ms;
    }

    /// Drains events until full dissemination or `max_ms` more virtual
    /// time elapses. Returns `(complete, virtual_ms)` where
    /// `virtual_ms` is the exact completion instant (or the deadline).
    pub fn run_until_complete<D: Fn(usize, usize) -> f64>(
        &mut self,
        max_ms: f64,
        delays: D,
    ) -> (bool, f64) {
        self.run_until_complete_observed(max_ms, delays, &mut NullSink)
    }

    /// [`run_until_complete`](Self::run_until_complete) with a
    /// [`TraceSink`] observing frame deliveries (see
    /// [`advance_observed`](Self::advance_observed)).
    pub fn run_until_complete_observed<D: Fn(usize, usize) -> f64, T: TraceSink>(
        &mut self,
        max_ms: f64,
        delays: D,
        tracer: &mut T,
    ) -> (bool, f64) {
        let deadline = self.now + max_ms;
        while self.completed_at.is_none() {
            match self.heap.peek_due() {
                Some(due) if due <= deadline => {
                    let event = self.heap.pop().expect("peeked");
                    self.now = event.due;
                    self.handle(event, &delays, tracer);
                }
                _ => {
                    self.now = deadline;
                    return (false, deadline);
                }
            }
        }
        let t = self.completed_at.expect("loop exit condition");
        self.now = self.now.max(t);
        (true, t)
    }

    /// Emits the dissemination events for a frame merged at `node` from
    /// `peer`: `gossip_delta` when the hot set rode along, `gossip_full`
    /// when the fallback shard did, `detail` carrying the entry count
    /// and `round` the shard index.
    fn trace_frame<T: TraceSink>(
        tracer: &mut T,
        now: f64,
        node: u32,
        peer: u32,
        frame: &DeltaFrame,
    ) {
        if !tracer.enabled() {
            return;
        }
        for (kind, entries) in [
            (TraceKind::GossipDelta, frame.changed.len()),
            (TraceKind::GossipFull, frame.full.len()),
        ] {
            if entries > 0 {
                tracer.emit(&TraceEvent {
                    kind,
                    at_ms: now,
                    node,
                    peer,
                    round: u64::from(frame.shard),
                    tag: 0,
                    detail: entries as f64,
                });
            }
        }
    }

    fn handle<D: Fn(usize, usize) -> f64, T: TraceSink>(
        &mut self,
        event: Scheduled<What>,
        delays: &D,
        tracer: &mut T,
    ) {
        let now = event.due;
        let m = self.len();
        match event.item {
            What::Tick { node } => {
                let n = node as usize;
                let mut peer = self.rng.gen_range(0..m - 1) as u32;
                if peer >= node {
                    peer += 1;
                }
                let fallback = (self.nodes[n].tick as usize) % self.shards.count();
                let frame = self.build_frame(n, fallback);
                self.nodes[n].tick += 1;
                self.heap.push(
                    now + delays(n, peer as usize),
                    What::Request {
                        from: node,
                        to: peer,
                        frame,
                    },
                );
                self.heap.push(now + self.period_ms, What::Tick { node });
            }
            What::Request { from, to, frame } => {
                let decoded = wire::decode_delta(frame).expect("internally produced frame");
                let t = to as usize;
                Self::trace_frame(tracer, now, to, from, &decoded);
                self.merge_frame(t, &decoded, now);
                // Reply with whatever shard the requester's summary
                // says it lags most on; when nothing lags, fall back to
                // the responder's own rotation so anti-entropy keeps
                // sweeping.
                let gap = |s: usize| {
                    let theirs = decoded.since.get(s).copied().unwrap_or(0);
                    self.nodes[t].vsum[s].saturating_sub(theirs)
                };
                let mut fallback = (self.nodes[t].tick as usize) % self.shards.count();
                let mut best = 0u64;
                for s in 0..self.shards.count() {
                    if gap(s) > best {
                        best = gap(s);
                        fallback = s;
                    }
                }
                let reply = self.build_frame(t, fallback);
                self.heap.push(
                    now + delays(t, from as usize),
                    What::Reply {
                        from: to,
                        to: from,
                        frame: reply,
                    },
                );
            }
            What::Reply { from, to, frame } => {
                let decoded = wire::decode_delta(frame).expect("internally produced frame");
                Self::trace_frame(tracer, now, to, from, &decoded);
                self.merge_frame(to as usize, &decoded, now);
                self.traffic.exchanges += 1;
            }
        }
    }

    /// Assembles and encodes node `n`'s frame: its hot set plus the
    /// complete known contents of `fallback`, metering the traffic
    /// counters.
    fn build_frame(&mut self, n: usize, fallback: usize) -> Bytes {
        let state = &self.nodes[n];
        let tick = state.tick;
        let in_fallback = self.shards.range(fallback);
        let hot = |origin: usize| {
            let heard = state.heard[origin];
            heard != NEVER && tick.saturating_sub(heard) < self.hot_ticks
        };
        let entry = |origin: usize| WireEntry {
            origin: origin as u32,
            version: state.view[origin].version,
            load: state.view[origin].load,
        };
        let changed: Vec<WireEntry> = (0..self.len())
            .filter(|&o| state.view[o].version > 0 && hot(o) && !in_fallback.contains(&o))
            .map(entry)
            .collect();
        let full: Vec<WireEntry> = in_fallback
            .clone()
            .filter(|&o| state.view[o].version > 0)
            .map(entry)
            .collect();
        let frame = DeltaFrame {
            shard: fallback as u32,
            since: state.vsum.clone(),
            changed,
            full,
        };
        let encoded = wire::encode_delta(&frame);
        self.traffic.frames += 1;
        self.traffic.bytes += encoded.len() as u64;
        self.traffic.delta_entries += frame.changed.len() as u64;
        self.traffic.full_entries += frame.full.len() as u64;
        encoded
    }

    /// Keep-freshest merge of a decoded frame into `node`'s view,
    /// maintaining the freshness counters and shard summaries.
    fn merge_frame(&mut self, node: usize, frame: &DeltaFrame, now: f64) {
        let m = self.len();
        for e in frame.changed.iter().chain(&frame.full) {
            let origin = e.origin as usize;
            if origin >= m {
                continue; // hostile frame; internally never happens
            }
            let tick = self.nodes[node].tick;
            let mine = &mut self.nodes[node].view[origin];
            if e.version > mine.version {
                debug_assert!(e.version <= self.newest[origin]);
                let gained = e.version - mine.version;
                *mine = Entry {
                    load: e.load,
                    version: e.version,
                };
                self.nodes[node].heard[origin] = tick;
                self.nodes[node].vsum[self.shards.shard_of(origin)] += gained;
                if e.version == self.newest[origin] {
                    self.fresh[origin] += 1;
                    self.deficit -= 1;
                    if self.deficit == 0 && self.completed_at.is_none() {
                        self.completed_at = Some(now);
                    }
                }
            }
        }
        self.debug_check();
    }

    /// Debug-only ground truth for the incremental counters. The full
    /// rescan is O(m²) per merge, so it only runs on test-sized
    /// networks — the counters it validates are size-independent.
    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        {
            let m = self.len();
            if m > 64 {
                return;
            }
            let mut stale = 0;
            for origin in 0..m {
                let newest = self
                    .nodes
                    .iter()
                    .map(|s| s.view[origin].version)
                    .max()
                    .unwrap_or(0);
                debug_assert_eq!(newest, self.newest[origin], "newest[{origin}] drifted");
                stale += self
                    .nodes
                    .iter()
                    .filter(|s| s.view[origin].version != newest)
                    .count();
            }
            debug_assert_eq!(stale, self.deficit, "deficit counter drifted");
            for (n, state) in self.nodes.iter().enumerate() {
                for s in 0..self.shards.count() {
                    let truth: u64 = self.shards.range(s).map(|o| state.view[o].version).sum();
                    debug_assert_eq!(truth, state.vsum[s], "vsum[{s}] drifted at node {n}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventGossip, EventGossipConfig};

    fn cfg() -> DeltaGossipConfig {
        DeltaGossipConfig::default()
    }

    #[test]
    fn cold_start_disseminates_fully() {
        let loads: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut net = DeltaGossip::new(&loads, 7, cfg());
        assert!(!net.fully_disseminated());
        let (complete, t) = net.run_until_complete(60_000.0, |_, _| 10.0);
        assert!(complete, "did not disseminate");
        assert!(t > 0.0 && t < 40.0 * 100.0, "completed at {t} ms");
        for node in 0..50 {
            assert_eq!(net.view(node), loads, "node {node} view wrong");
        }
        let traffic = net.traffic();
        assert!(traffic.frames > 0 && traffic.bytes > 0 && traffic.exchanges > 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let loads: Vec<f64> = (0..32).map(|i| (i * i) as f64).collect();
        let run = |seed| {
            let mut net = DeltaGossip::new(&loads, seed, cfg());
            let out =
                net.run_until_complete(60_000.0, |i, j| 1.0 + ((i * 31 + j * 17) % 13) as f64);
            (out, net.traffic(), net.view(5))
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).0, run(4).0, "seed must matter");
    }

    #[test]
    fn clones_replay_identically() {
        // The engine feed relies on Engine: Clone cloning the whole
        // network mid-flight (heap, RNG, counters and all).
        let loads: Vec<f64> = (0..24).map(|i| (i % 7) as f64).collect();
        let mut a = DeltaGossip::new(&loads, 9, cfg());
        a.advance(350.0, |_, _| 5.0);
        let mut b = a.clone();
        a.publish(3, 99.0);
        b.publish(3, 99.0);
        a.advance(5_000.0, |_, _| 5.0);
        b.advance(5_000.0, |_, _| 5.0);
        assert_eq!(a.traffic(), b.traffic());
        for node in 0..24 {
            assert_eq!(a.view(node), b.view(node));
        }
    }

    #[test]
    fn warm_start_is_complete_and_quiet_until_published() {
        let loads: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut net = DeltaGossip::warm(&loads, 3, cfg());
        assert!(net.fully_disseminated());
        assert_eq!(net.completed_at(), Some(0.0));
        for node in 0..40 {
            assert_eq!(net.view(node), loads);
        }
        net.publish(17, 1000.0);
        assert!(!net.fully_disseminated());
        let (complete, t) = net.run_until_complete(60_000.0, |_, _| 5.0);
        assert!(complete);
        assert!(t > 0.0);
        for node in 0..40 {
            assert_eq!(net.view(node)[17], 1000.0, "node {node} stale");
        }
    }

    #[test]
    fn delta_views_match_full_view_gossip_views() {
        // Protocol-level delta∘apply ≡ full view: after quiescence both
        // layers must hold the identical, exact load vector everywhere.
        let loads: Vec<f64> = (0..48).map(|i| (i * 3 % 11) as f64).collect();
        let mut full = EventGossip::new(&loads, 21);
        full.run(&EventGossipConfig::default(), |_, _| 4.0);
        let mut delta = DeltaGossip::new(&loads, 21, cfg());
        let (complete, _) = delta.run_until_complete(60_000.0, |_, _| 4.0);
        assert!(complete);
        for node in 0..48 {
            assert_eq!(delta.view(node), full.view(node), "node {node} differs");
        }
    }

    #[test]
    fn interleaved_publishes_and_advances_converge() {
        let loads: Vec<f64> = (0..36).map(|i| i as f64).collect();
        let mut net = DeltaGossip::warm(&loads, 5, cfg());
        let delays = |i: usize, j: usize| 1.0 + ((i + 2 * j) % 7) as f64;
        for step in 0..30u32 {
            if step % 3 == 0 {
                let node = (step as usize * 7) % 36;
                net.publish(node, 500.0 + step as f64);
            }
            let until = net.now_ms() + 100.0;
            net.advance(until, delays);
        }
        let (complete, _) = net.run_until_complete(60_000.0, delays);
        assert!(complete);
        let reference = net.view(0);
        for node in 1..36 {
            assert_eq!(net.view(node), reference, "node {node} diverged");
        }
    }

    #[test]
    fn steady_state_frames_are_much_smaller_than_full_views() {
        // Once everything is cold, a frame is one shard + summaries —
        // nowhere near the m-entry full view. This is the bandwidth
        // property the bench quantifies at m=5000.
        let m = 512;
        let loads: Vec<f64> = (0..m).map(|i| i as f64).collect();
        let mut net = DeltaGossip::warm(&loads, 1, cfg());
        let before = net.traffic();
        net.advance(1_000.0, |_, _| 1.0);
        let t = net.traffic().since(&before);
        assert!(t.frames > 0);
        let per_frame = t.bytes as f64 / t.frames as f64;
        let full_view = wire::view_bytes(m) as f64;
        assert!(
            per_frame * 4.0 < full_view,
            "steady frame {per_frame} B vs full view {full_view} B"
        );
        assert_eq!(t.delta_entries, 0, "cold network must ship no rumors");
    }

    #[test]
    fn traced_runs_observe_deltas_and_shards_without_perturbing_the_protocol() {
        use dlb_obs::MemorySink;
        // m = 100 so ShardMap::auto yields several shards — with a
        // single shard every entry rides in `full` and no delta can
        // ever ship.
        let loads: Vec<f64> = (0..100).map(|i| (i * 5 % 13) as f64).collect();
        let delays = |i: usize, j: usize| 2.0 + ((i + 3 * j) % 5) as f64;

        let mut traced = DeltaGossip::new(&loads, 11, cfg());
        let mut sink = MemorySink::default();
        let out_traced = traced.run_until_complete_observed(60_000.0, delays, &mut sink);

        let mut plain = DeltaGossip::new(&loads, 11, cfg());
        let out_plain = plain.run_until_complete(60_000.0, delays);

        // Observation is passive: same completion instant, traffic, and
        // views whether or not a sink is attached.
        assert_eq!(out_traced, out_plain);
        assert_eq!(traced.traffic(), plain.traffic());
        for node in 0..100 {
            assert_eq!(traced.view(node), plain.view(node));
        }

        // A cold start spreads by rumor and shard alike, and every
        // frame merge is on the record.
        let deltas = sink
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::GossipDelta)
            .count();
        let fulls = sink
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::GossipFull)
            .count();
        assert!(deltas > 0, "cold start must ship rumors");
        assert!(fulls > 0, "anti-entropy shards must ride along");
        for e in &sink.events {
            assert!(e.detail >= 1.0, "events carry entry counts");
            assert!((e.node as usize) < 100 && (e.peer as usize) < 100);
            assert!((e.round as usize) < traced.shards().count());
        }
    }

    #[test]
    fn trivial_networks_are_complete_and_silent() {
        let mut single = DeltaGossip::new(&[9.0], 1, cfg());
        assert!(single.fully_disseminated());
        let (complete, t) = single.run_until_complete(1_000.0, |_, _| 1.0);
        assert!(complete);
        assert_eq!(t, 0.0);
        assert!(single.traffic().is_quiet());
        assert!(!single.is_empty());
        assert_eq!(single.len(), 1);
    }
}
