//! Contiguous sharding of the origin space for delta gossip.
//!
//! [`DeltaGossip`](crate::DeltaGossip) splits the `m` origins into
//! fixed contiguous shards so each node can keep one version-summary
//! word per shard and each frame can carry one shard's full contents as
//! its anti-entropy fallback. The shard size is the knob that trades
//! fallback-frame size (smaller shards → smaller frames) against
//! summary size and worst-case repair time (more shards → longer
//! rotation); [`ShardMap::auto`] picks a size that keeps the fallback a
//! small fraction of the full view at production scale while not
//! degenerating to one-origin shards on tiny test systems.

/// Maps origins `0..m` onto contiguous fixed-size shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    m: usize,
    shard_size: usize,
}

impl ShardMap {
    /// Largest shard [`auto`](Self::auto) will pick; 256 entries ≈ 5 kB
    /// encoded, a UDP-friendly fallback even at m = 100 000.
    pub const MAX_AUTO_SHARD: usize = 256;

    /// Smallest shard [`auto`](Self::auto) will pick, so tiny systems
    /// don't fragment into per-origin shards.
    pub const MIN_AUTO_SHARD: usize = 32;

    /// A map with an explicit shard size.
    pub fn with_shard_size(m: usize, shard_size: usize) -> Self {
        assert!(shard_size > 0, "shard size must be positive");
        ShardMap { m, shard_size }
    }

    /// Picks a shard size for `m` origins: roughly m/8 (so even small
    /// systems rotate through several shards), clamped to
    /// [[`MIN_AUTO_SHARD`](Self::MIN_AUTO_SHARD),
    /// [`MAX_AUTO_SHARD`](Self::MAX_AUTO_SHARD)].
    pub fn auto(m: usize) -> Self {
        let target = m.div_ceil(8);
        let shard_size = target.clamp(Self::MIN_AUTO_SHARD, Self::MAX_AUTO_SHARD);
        ShardMap { m, shard_size }
    }

    /// Number of origins covered.
    pub fn origins(&self) -> usize {
        self.m
    }

    /// Number of shards (at least 1 even for an empty system, so the
    /// rotation `tick % count` is always well defined).
    pub fn count(&self) -> usize {
        self.m.div_ceil(self.shard_size).max(1)
    }

    /// Entries per shard (the last shard may be shorter).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Which shard an origin belongs to.
    pub fn shard_of(&self, origin: usize) -> usize {
        debug_assert!(origin < self.m, "origin {origin} out of range {}", self.m);
        origin / self.shard_size
    }

    /// The origin range a shard covers.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        let lo = shard * self.shard_size;
        let hi = (lo + self.shard_size).min(self.m);
        debug_assert!(lo < hi || self.m == 0, "shard {shard} out of range");
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_origin_space() {
        for m in [1, 31, 32, 33, 100, 255, 256, 257, 5000] {
            let map = ShardMap::auto(m);
            let mut seen = vec![false; m];
            for s in 0..map.count() {
                for o in map.range(s) {
                    assert!(!seen[o], "origin {o} covered twice (m={m})");
                    seen[o] = true;
                    assert_eq!(map.shard_of(o), s, "m={m} origin={o}");
                }
            }
            assert!(seen.iter().all(|&b| b), "m={m}: some origin uncovered");
        }
    }

    #[test]
    fn auto_sizing_hits_the_production_target() {
        // At m=5000 the fallback shard must be a small fraction of the
        // full view — this ratio is what buys the ≥10× bandwidth win.
        let map = ShardMap::auto(5000);
        assert_eq!(map.shard_size(), 256);
        assert!(map.count() >= 15, "only {} shards", map.count());
        // Small systems still rotate through several shards…
        assert!(ShardMap::auto(100).count() >= 3);
        // …but never fragment below the minimum shard size.
        assert_eq!(ShardMap::auto(8).count(), 1);
    }

    #[test]
    fn explicit_shard_size_is_respected() {
        let map = ShardMap::with_shard_size(10, 4);
        assert_eq!(map.count(), 3);
        assert_eq!(map.range(2), 8..10);
        assert_eq!(map.shard_of(9), 2);
    }
}
