//! Property-based tests for the gossip wire encoding.

#![cfg(test)]

use bytes::Bytes;
use proptest::prelude::*;

use crate::shard::ShardMap;
use crate::wire::{
    decode, decode_delta, decode_delta_from, decode_from, encode, encode_delta, DeltaFrame,
    WireEntry, ENTRY_SIZE,
};

fn arb_entry() -> impl Strategy<Value = WireEntry> {
    (any::<u32>(), any::<u64>(), 0.0f64..1e12).prop_map(|(origin, version, load)| WireEntry {
        origin,
        version,
        load,
    })
}

fn arb_entries() -> impl Strategy<Value = Vec<WireEntry>> {
    proptest::collection::vec(arb_entry(), 0..64)
}

fn arb_delta_frame() -> impl Strategy<Value = DeltaFrame> {
    (
        any::<u32>(),
        proptest::collection::vec(any::<u64>(), 0..24),
        arb_entries(),
        arb_entries(),
    )
        .prop_map(|(shard, since, changed, full)| DeltaFrame {
            shard,
            since,
            changed,
            full,
        })
}

proptest! {
    /// Every message round-trips exactly, and its size follows the
    /// documented 4 + n·ENTRY_SIZE layout.
    #[test]
    fn roundtrip_and_size(entries in arb_entries()) {
        let bytes = encode(&entries);
        prop_assert_eq!(bytes.len(), 4 + entries.len() * ENTRY_SIZE);
        let back = decode(bytes).expect("well-formed message decodes");
        prop_assert_eq!(back, entries);
    }

    /// No truncated prefix of a valid message may decode (the length
    /// prefix and the fixed entry size make every cut detectable), and
    /// none may panic.
    #[test]
    fn truncation_is_always_rejected(entries in arb_entries()) {
        let bytes = encode(&entries);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode(bytes.slice(0..cut)).is_none(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    /// Arbitrary bytes never panic the decoder, and whatever decodes
    /// re-encodes to the exact input (decode is injective on valid
    /// buffers).
    #[test]
    fn garbage_never_panics_and_valid_decodes_reencode(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let bytes = Bytes::from(raw.clone());
        if let Some(entries) = decode(bytes) {
            // NaN loads cannot round-trip through PartialEq entries,
            // but the byte-level re-encoding must still be exact.
            prop_assert_eq!(encode(&entries).as_ref(), &raw[..]);
        }
    }

    /// Concatenated full-view frames decode one at a time through the
    /// consume-from-buffer path, in order, leaving nothing behind —
    /// while the strict decoder rejects the concatenation outright.
    #[test]
    fn concatenated_frames_stream_decode(frames in proptest::collection::vec(arb_entries(), 1..6)) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(encode(f).as_ref());
        }
        if frames.len() > 1 {
            prop_assert!(decode(Bytes::from(stream.clone())).is_none());
        }
        let mut buf = Bytes::from(stream);
        for f in &frames {
            prop_assert_eq!(&decode_from(&mut buf).expect("one frame"), f);
        }
        prop_assert!(buf.is_empty());
    }

    /// Delta frames round-trip exactly through both decoder flavours,
    /// and the encoded size matches `encoded_len`.
    #[test]
    fn delta_roundtrip_and_size(frame in arb_delta_frame()) {
        let bytes = encode_delta(&frame);
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        prop_assert_eq!(&decode_delta(bytes.clone()).expect("strict"), &frame);
        let mut buf = bytes;
        prop_assert_eq!(&decode_delta_from(&mut buf).expect("streaming"), &frame);
        prop_assert!(buf.is_empty());
    }

    /// No truncated prefix of a delta frame decodes, through either
    /// flavour, and failed streaming decodes leave the buffer intact.
    #[test]
    fn delta_truncation_is_always_rejected(frame in arb_delta_frame()) {
        let bytes = encode_delta(&frame);
        for cut in 0..bytes.len() {
            let prefix = bytes.slice(0..cut);
            prop_assert!(decode_delta(prefix.clone()).is_none(), "strict decoded a {cut}-byte prefix");
            let mut buf = prefix.clone();
            prop_assert!(decode_delta_from(&mut buf).is_none(), "streaming decoded a {cut}-byte prefix");
            prop_assert_eq!(buf, prefix);
        }
    }

    /// Garbage never panics the delta decoder either, and whatever
    /// decodes re-encodes byte-exactly.
    #[test]
    fn delta_garbage_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Some(frame) = decode_delta(Bytes::from(raw.clone())) {
            prop_assert_eq!(encode_delta(&frame).as_ref(), &raw[..]);
        }
    }

    /// delta ∘ apply ≡ full view: merging a sender's hot subset plus
    /// every per-shard fallback frame into a receiver view produces
    /// exactly the same result as merging the sender's full view —
    /// the algebra that lets DeltaGossip ship O(changed) bytes without
    /// changing what converges.
    #[test]
    fn delta_apply_equals_full_view_merge(
        sender_versions in proptest::collection::vec(0u64..6, 1..48),
        receiver_versions in proptest::collection::vec(0u64..6, 1..48),
        hot_mask in proptest::collection::vec(any::<bool>(), 1..48),
    ) {
        let m = sender_versions.len().min(receiver_versions.len()).min(hot_mask.len());
        let shards = ShardMap::with_shard_size(m, 5);
        let entry = |o: usize, v: u64| WireEntry { origin: o as u32, version: v, load: (o * 100) as f64 + v as f64 };
        let sender: Vec<WireEntry> = (0..m).map(|o| entry(o, sender_versions[o])).collect();
        let receiver: Vec<WireEntry> = (0..m).map(|o| entry(o, receiver_versions[o])).collect();

        // Keep-freshest merge of a decoded entry list into a view.
        let merge = |view: &mut Vec<WireEntry>, incoming: &[WireEntry]| {
            for e in incoming {
                let mine = &mut view[e.origin as usize];
                if e.version > mine.version {
                    *mine = *e;
                }
            }
        };

        // Full-view path: one frame with everything.
        let mut via_full = receiver.clone();
        let full_frame = decode(encode(&sender)).expect("full view");
        merge(&mut via_full, &full_frame);

        // Delta path: the sender's hot subset rides `changed`; every
        // shard is eventually somebody's fallback, so apply one frame
        // per shard, each through the real codec.
        let mut via_delta = receiver.clone();
        for s in 0..shards.count() {
            let frame = DeltaFrame {
                shard: s as u32,
                since: vec![0; shards.count()],
                changed: (0..m)
                    .filter(|&o| hot_mask[o] && sender[o].version > 0)
                    .map(|o| sender[o])
                    .collect(),
                full: shards.range(s).map(|o| sender[o]).collect(),
            };
            let decoded = decode_delta(encode_delta(&frame)).expect("delta frame");
            merge(&mut via_delta, &decoded.changed);
            merge(&mut via_delta, &decoded.full);
        }
        prop_assert_eq!(via_delta, via_full);
    }
}
