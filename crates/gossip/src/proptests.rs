//! Property-based tests for the gossip wire encoding.

#![cfg(test)]

use bytes::Bytes;
use proptest::prelude::*;

use crate::wire::{decode, encode, WireEntry, ENTRY_SIZE};

fn arb_entry() -> impl Strategy<Value = WireEntry> {
    (any::<u32>(), any::<u64>(), 0.0f64..1e12).prop_map(|(origin, version, load)| WireEntry {
        origin,
        version,
        load,
    })
}

fn arb_entries() -> impl Strategy<Value = Vec<WireEntry>> {
    proptest::collection::vec(arb_entry(), 0..64)
}

proptest! {
    /// Every message round-trips exactly, and its size follows the
    /// documented 4 + n·ENTRY_SIZE layout.
    #[test]
    fn roundtrip_and_size(entries in arb_entries()) {
        let bytes = encode(&entries);
        prop_assert_eq!(bytes.len(), 4 + entries.len() * ENTRY_SIZE);
        let back = decode(bytes).expect("well-formed message decodes");
        prop_assert_eq!(back, entries);
    }

    /// No truncated prefix of a valid message may decode (the length
    /// prefix and the fixed entry size make every cut detectable), and
    /// none may panic.
    #[test]
    fn truncation_is_always_rejected(entries in arb_entries()) {
        let bytes = encode(&entries);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode(bytes.slice(0..cut)).is_none(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    /// Arbitrary bytes never panic the decoder, and whatever decodes
    /// re-encodes to the exact input (decode is injective on valid
    /// buffers).
    #[test]
    fn garbage_never_panics_and_valid_decodes_reencode(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let bytes = Bytes::from(raw.clone());
        if let Some(entries) = decode(bytes) {
            // NaN loads cannot round-trip through PartialEq entries,
            // but the byte-level re-encoding must still be exact.
            prop_assert_eq!(encode(&entries).as_ref(), &raw[..]);
        }
    }
}
