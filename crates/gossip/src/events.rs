//! Push-pull dissemination as scheduled events under real link delays.
//!
//! [`GossipNetwork`](crate::push_pull::GossipNetwork) runs synchronous
//! rounds: every node exchanges with a random peer, instantaneously,
//! once per round. That answers "how many rounds?" but not the
//! question a deployment asks — *how much time* does dissemination
//! take when every exchange crosses a network link? This module runs
//! the same versioned push-pull merge on a virtual-time event heap,
//! the pattern the `dlb-runtime` event executor establishes: each node
//! initiates an exchange every `period_ms`, the request view travels
//! `delay(i, j)` ms, the pulled reply travels `delay(j, i)` ms back,
//! and dissemination completes at a measurable virtual instant.
//!
//! Everything is deterministic per seed: peers are drawn from a seeded
//! RNG, the heap orders deliveries by `(due time, sequence number)`,
//! and the delay function is pure — rerunning a configuration
//! reproduces the same exchanges, views, and completion time bit for
//! bit.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use dlb_core::rngutil::rng_for;
use rand::rngs::StdRng;
use rand::Rng;

use crate::push_pull::Entry;

/// Timing of an event-driven gossip run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventGossipConfig {
    /// Virtual ms between one node's successive exchange initiations.
    pub period_ms: f64,
    /// Give up (report incomplete) past this virtual time.
    pub max_ms: f64,
}

impl Default for EventGossipConfig {
    fn default() -> Self {
        Self {
            period_ms: 100.0,
            max_ms: 60_000.0,
        }
    }
}

/// Outcome of [`EventGossip::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventGossipStats {
    /// Virtual time at which every node held the freshest version of
    /// every entry (or `max_ms` when incomplete).
    pub virtual_ms: f64,
    /// Completed push-pull exchanges (reply delivered).
    pub exchanges: usize,
    /// Whether full dissemination was reached within `max_ms`.
    pub complete: bool,
}

#[derive(Debug)]
enum What {
    /// A node initiates its periodic exchange.
    Tick { node: u32 },
    /// A pushed view arrives at `to`; it merges and replies.
    Request {
        from: u32,
        to: u32,
        view: Vec<Entry>,
    },
    /// The pulled view arrives back at the initiator.
    Reply { to: u32, view: Vec<Entry> },
}

#[derive(Debug)]
struct Event {
    due: f64,
    seq: u64,
    what: What,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.due
            .total_cmp(&other.due)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A gossip network whose exchanges are scheduled events (see the
/// module docs).
#[derive(Debug, Clone)]
pub struct EventGossip {
    /// `views[node][origin]` — what `node` believes about `origin`.
    views: Vec<Vec<Entry>>,
    rng: StdRng,
}

impl EventGossip {
    /// Creates a network where each node initially knows only its own
    /// load.
    pub fn new(loads: &[f64], seed: u64) -> Self {
        let m = loads.len();
        let views = (0..m)
            .map(|node| {
                (0..m)
                    .map(|origin| Entry {
                        load: if node == origin { loads[origin] } else { 0.0 },
                        version: if node == origin { 1 } else { 0 },
                    })
                    .collect()
            })
            .collect();
        Self {
            views,
            rng: rng_for(seed, 0x6E57),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Returns `true` for the empty network.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// A node publishes a new local load (bumps its version).
    pub fn publish(&mut self, node: usize, load: f64) {
        let v = self.views[node][node].version + 1;
        self.views[node][node] = Entry { load, version: v };
    }

    /// The load vector as node `node` currently believes it.
    pub fn view(&self, node: usize) -> Vec<f64> {
        self.views[node].iter().map(|e| e.load).collect()
    }

    /// Returns `true` when every node holds the globally freshest
    /// version of every origin's entry.
    pub fn fully_disseminated(&self) -> bool {
        let m = self.len();
        for origin in 0..m {
            let newest = self
                .views
                .iter()
                .map(|v| v[origin].version)
                .max()
                .unwrap_or(0);
            if self.views.iter().any(|v| v[origin].version != newest) {
                return false;
            }
        }
        true
    }

    /// Keep-freshest merge of a received view into `node`'s.
    fn merge(&mut self, node: u32, view: &[Entry]) {
        for (mine, theirs) in self.views[node as usize].iter_mut().zip(view) {
            if theirs.version > mine.version {
                *mine = *theirs;
            }
        }
    }

    /// Runs scheduled exchanges until full dissemination (or
    /// `config.max_ms`). `delays(i, j)` is the one-way delivery delay
    /// in virtual ms.
    pub fn run<D: Fn(usize, usize) -> f64>(
        &mut self,
        config: &EventGossipConfig,
        delays: D,
    ) -> EventGossipStats {
        let m = self.len();
        let mut exchanges = 0usize;
        if m < 2 || self.fully_disseminated() {
            return EventGossipStats {
                virtual_ms: 0.0,
                exchanges,
                complete: true,
            };
        }
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Reverse<Event>>, due: f64, what: What| {
            heap.push(Reverse(Event { due, seq, what }));
            seq += 1;
        };
        for node in 0..m as u32 {
            push(&mut heap, 0.0, What::Tick { node });
        }
        while let Some(Reverse(event)) = heap.pop() {
            let now = event.due;
            if now > config.max_ms {
                return EventGossipStats {
                    virtual_ms: config.max_ms,
                    exchanges,
                    complete: false,
                };
            }
            match event.what {
                What::Tick { node } => {
                    let mut peer = self.rng.gen_range(0..m - 1) as u32;
                    if peer >= node {
                        peer += 1;
                    }
                    push(
                        &mut heap,
                        now + delays(node as usize, peer as usize),
                        What::Request {
                            from: node,
                            to: peer,
                            view: self.views[node as usize].clone(),
                        },
                    );
                    push(&mut heap, now + config.period_ms, What::Tick { node });
                }
                What::Request { from, to, view } => {
                    self.merge(to, &view);
                    // The push half alone can finish the job; checking
                    // only on replies would overstate the completion
                    // time by up to a full round trip.
                    if self.fully_disseminated() {
                        return EventGossipStats {
                            virtual_ms: now,
                            exchanges,
                            complete: true,
                        };
                    }
                    push(
                        &mut heap,
                        now + delays(to as usize, from as usize),
                        What::Reply {
                            to: from,
                            view: self.views[to as usize].clone(),
                        },
                    );
                }
                What::Reply { to, view } => {
                    self.merge(to, &view);
                    exchanges += 1;
                    if self.fully_disseminated() {
                        return EventGossipStats {
                            virtual_ms: now,
                            exchanges,
                            complete: true,
                        };
                    }
                }
            }
        }
        unreachable!("ticks reschedule forever; the max_ms guard exits first")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disseminates_in_bounded_virtual_time() {
        let loads: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut net = EventGossip::new(&loads, 7);
        let stats = net.run(&EventGossipConfig::default(), |_, _| 10.0);
        assert!(stats.complete, "did not disseminate: {stats:?}");
        assert!(net.fully_disseminated());
        assert!(stats.virtual_ms > 0.0);
        // Push-pull completes in O(log m) periods w.h.p.
        assert!(
            stats.virtual_ms < 40.0 * 100.0,
            "took {} ms",
            stats.virtual_ms
        );
        for node in 0..50 {
            assert_eq!(net.view(node), loads);
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let loads: Vec<f64> = (0..32).map(|i| (i * i) as f64).collect();
        let run = |seed| {
            let mut net = EventGossip::new(&loads, seed);
            let stats = net.run(&EventGossipConfig::default(), |i, j| {
                1.0 + ((i * 31 + j * 17) % 13) as f64
            });
            (stats, net.view(5))
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).0, run(4).0, "seed must matter");
    }

    #[test]
    fn slower_links_mean_later_completion() {
        let loads: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let config = EventGossipConfig::default();
        let mut fast = EventGossip::new(&loads, 9);
        let fast_stats = fast.run(&config, |_, _| 1.0);
        let mut slow = EventGossip::new(&loads, 9);
        let slow_stats = slow.run(&config, |_, _| 400.0);
        assert!(fast_stats.complete && slow_stats.complete);
        assert!(
            slow_stats.virtual_ms > fast_stats.virtual_ms,
            "slow {} vs fast {}",
            slow_stats.virtual_ms,
            fast_stats.virtual_ms
        );
    }

    #[test]
    fn completion_via_push_counts_at_request_time() {
        // Two nodes, symmetric delay d: both tick at t=0, both request
        // views land at t=d, and the two push merges alone disseminate
        // everything. Completion must be reported at d — not at the
        // first reply's 2d.
        let mut net = EventGossip::new(&[1.0, 2.0], 1);
        let stats = net.run(
            &EventGossipConfig {
                period_ms: 1000.0,
                max_ms: 10_000.0,
            },
            |_, _| 7.0,
        );
        assert!(stats.complete);
        assert_eq!(stats.virtual_ms, 7.0, "one-way push completes at d");
        assert!(net.fully_disseminated());
    }

    #[test]
    fn updates_propagate_with_versions() {
        let mut net = EventGossip::new(&[5.0, 6.0, 7.0, 8.0], 3);
        net.run(&EventGossipConfig::default(), |_, _| 2.0);
        net.publish(2, 70.0);
        assert!(!net.fully_disseminated());
        let stats = net.run(&EventGossipConfig::default(), |_, _| 2.0);
        assert!(stats.complete);
        for node in 0..4 {
            assert_eq!(net.view(node)[2], 70.0, "node {node} has stale entry");
        }
    }

    #[test]
    fn max_ms_bounds_a_partitioned_network() {
        // Infinite-delay links: requests never arrive, so the run must
        // stop at max_ms... but infinity would poison the heap order;
        // use a delay beyond the horizon instead.
        let loads = vec![1.0, 2.0, 3.0];
        let mut net = EventGossip::new(&loads, 1);
        let stats = net.run(
            &EventGossipConfig {
                period_ms: 50.0,
                max_ms: 500.0,
            },
            |_, _| 1e9,
        );
        assert!(!stats.complete);
        assert_eq!(stats.virtual_ms, 500.0);
    }

    #[test]
    fn trivial_networks_complete_instantly() {
        let mut single = EventGossip::new(&[9.0], 1);
        let stats = single.run(&EventGossipConfig::default(), |_, _| 1.0);
        assert!(stats.complete);
        assert_eq!(stats.virtual_ms, 0.0);
        assert_eq!(stats.exchanges, 0);
        assert!(!single.is_empty());
        assert_eq!(single.len(), 1);
    }
}
