//! Push-pull dissemination as scheduled events under real link delays.
//!
//! [`GossipNetwork`](crate::push_pull::GossipNetwork) runs synchronous
//! rounds: every node exchanges with a random peer, instantaneously,
//! once per round. That answers "how many rounds?" but not the
//! question a deployment asks — *how much time* does dissemination
//! take when every exchange crosses a network link? This module runs
//! the same versioned push-pull merge on the shared virtual-time event
//! heap ([`dlb_core::events::EventHeap`], the same primitive the
//! `dlb-runtime` event executor schedules through): each node
//! initiates an exchange every `period_ms`, the request view travels
//! `delay(i, j)` ms, the pulled reply travels `delay(j, i)` ms back,
//! and dissemination completes at a measurable virtual instant.
//!
//! Completion is tracked *incrementally*: the network maintains, per
//! origin, how many nodes already hold the globally freshest version,
//! so "is everyone up to date?" is an O(1) counter check per delivery
//! instead of an O(m²) rescan — the rescan is what used to cap the
//! staleness ablation's event-time column at m = 1000.
//!
//! [`EventGossip::run_faulted`] injects a `dlb-faults` script: nodes
//! that are down neither initiate nor receive, and lossy or
//! partition-crossing frames are simply **dropped** — push-pull is
//! periodic and idempotent, so a lost frame costs time, not
//! correctness, and dissemination-under-churn becomes a measurable
//! virtual-ms quantity. (Contrast the protocol executor, where loss
//! must manifest as retransmission delay; see the `dlb-faults` crate
//! docs.)
//!
//! Everything is deterministic per seed: peers are drawn from a seeded
//! RNG, the heap orders deliveries by `(due time, sequence number)`,
//! and the delay function and fault script are pure — rerunning a
//! configuration reproduces the same exchanges, views, drops, and
//! completion time bit for bit.

use dlb_core::events::EventHeap;
use dlb_core::rngutil::rng_for;
use dlb_faults::FaultScript;
use dlb_obs::event::{DROP_DEST_DOWN, DROP_LINK_LOSS};
use dlb_obs::{NullSink, TraceEvent, TraceKind, TraceSink};
use rand::rngs::StdRng;
use rand::Rng;

use crate::push_pull::Entry;

/// Timing of an event-driven gossip run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventGossipConfig {
    /// Virtual ms between one node's successive exchange initiations.
    pub period_ms: f64,
    /// Give up (report incomplete) past this virtual time.
    pub max_ms: f64,
}

impl Default for EventGossipConfig {
    fn default() -> Self {
        Self {
            period_ms: 100.0,
            max_ms: 60_000.0,
        }
    }
}

/// Outcome of [`EventGossip::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventGossipStats {
    /// Virtual time at which every node held the freshest version of
    /// every entry (or `max_ms` when incomplete).
    pub virtual_ms: f64,
    /// Completed exchanges: replies delivered, plus a final push whose
    /// merge finished dissemination on its own (that exchange did the
    /// decisive work; not counting it undercounted every run that
    /// completed on a push).
    pub exchanges: usize,
    /// Whether full dissemination was reached within `max_ms`.
    pub complete: bool,
    /// Frames the fault script swallowed (loss, partition crossings,
    /// down destinations). Zero for fault-free runs.
    pub dropped: usize,
    /// The subset of `dropped` that were replies — exchanges whose push
    /// half merged but whose pull half silently vanished. Previously
    /// indistinguishable from dropped requests.
    pub dropped_replies: usize,
    /// Encoded bytes put on the wire (every frame is a full m-entry
    /// view in [`crate::wire::encode`]'s layout, counted when sent —
    /// dropped frames still burned their bandwidth).
    pub bytes: u64,
}

#[derive(Debug)]
enum What {
    /// A node initiates its periodic exchange.
    Tick { node: u32 },
    /// A pushed view arrives at `to`; it merges and replies.
    Request {
        from: u32,
        to: u32,
        view: Vec<Entry>,
    },
    /// The pulled view arrives back at the initiator.
    Reply {
        from: u32,
        to: u32,
        view: Vec<Entry>,
    },
}

/// A gossip network whose exchanges are scheduled events (see the
/// module docs).
#[derive(Debug, Clone)]
pub struct EventGossip {
    /// `views[node][origin]` — what `node` believes about `origin`.
    views: Vec<Vec<Entry>>,
    /// Per origin: the globally freshest version (versions only
    /// originate at the origin itself, so this is
    /// `views[origin][origin].version`).
    newest: Vec<u64>,
    /// Per origin: how many nodes hold the freshest version.
    fresh: Vec<usize>,
    /// Total count of (node, origin) pairs still holding a stale
    /// version; `0` ⇔ fully disseminated.
    deficit: usize,
    rng: StdRng,
}

impl EventGossip {
    /// Creates a network where each node initially knows only its own
    /// load.
    pub fn new(loads: &[f64], seed: u64) -> Self {
        let m = loads.len();
        let views: Vec<Vec<Entry>> = (0..m)
            .map(|node| {
                (0..m)
                    .map(|origin| Entry {
                        load: if node == origin { loads[origin] } else { 0.0 },
                        version: if node == origin { 1 } else { 0 },
                    })
                    .collect()
            })
            .collect();
        Self {
            views,
            newest: vec![1; m],
            fresh: vec![1; m],
            deficit: m * m.saturating_sub(1),
            rng: rng_for(seed, 0x6E57),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Returns `true` for the empty network.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// A node publishes a new local load (bumps its version).
    pub fn publish(&mut self, node: usize, load: f64) {
        let v = self.views[node][node].version + 1;
        self.views[node][node] = Entry { load, version: v };
        // Everyone else just became stale for this origin.
        self.deficit += self.fresh[node] - 1;
        self.newest[node] = v;
        self.fresh[node] = 1;
        self.debug_check_deficit();
    }

    /// The load vector as node `node` currently believes it.
    pub fn view(&self, node: usize) -> Vec<f64> {
        self.views[node].iter().map(|e| e.load).collect()
    }

    /// Returns `true` when every node holds the globally freshest
    /// version of every origin's entry. O(1): the merge path maintains
    /// a stale-pair counter.
    pub fn fully_disseminated(&self) -> bool {
        self.deficit == 0
    }

    /// Debug-only ground truth for the incremental counter.
    fn debug_check_deficit(&self) {
        #[cfg(debug_assertions)]
        {
            let m = self.len();
            let mut stale = 0;
            for origin in 0..m {
                let newest = self
                    .views
                    .iter()
                    .map(|v| v[origin].version)
                    .max()
                    .unwrap_or(0);
                debug_assert_eq!(newest, self.newest[origin], "newest[{origin}] drifted");
                stale += self
                    .views
                    .iter()
                    .filter(|v| v[origin].version != newest)
                    .count();
            }
            debug_assert_eq!(stale, self.deficit, "deficit counter drifted");
        }
    }

    /// Keep-freshest merge of a received view into `node`'s,
    /// maintaining the per-origin freshness counters.
    fn merge(&mut self, node: u32, view: &[Entry]) {
        for (origin, (mine, theirs)) in self.views[node as usize].iter_mut().zip(view).enumerate() {
            if theirs.version > mine.version {
                *mine = *theirs;
                // Versions only originate at the origin, so an incoming
                // copy is never fresher than the global newest; it can
                // only promote this node *to* the newest.
                debug_assert!(theirs.version <= self.newest[origin]);
                if theirs.version == self.newest[origin] {
                    self.fresh[origin] += 1;
                    self.deficit -= 1;
                }
            }
        }
        self.debug_check_deficit();
    }

    /// Runs scheduled exchanges until full dissemination (or
    /// `config.max_ms`). `delays(i, j)` is the one-way delivery delay
    /// in virtual ms.
    pub fn run<D: Fn(usize, usize) -> f64>(
        &mut self,
        config: &EventGossipConfig,
        delays: D,
    ) -> EventGossipStats {
        let m = self.len();
        self.run_faulted(config, delays, &FaultScript::empty(m))
    }

    /// [`EventGossip::run`] under a fault script: down nodes neither
    /// initiate nor receive, and lossy or partition-crossing frames
    /// are dropped (see the [module docs](self)). Deterministic per
    /// `(seed, script)`; an empty script reproduces [`EventGossip::run`]
    /// bit for bit.
    pub fn run_faulted<D: Fn(usize, usize) -> f64>(
        &mut self,
        config: &EventGossipConfig,
        delays: D,
        script: &FaultScript,
    ) -> EventGossipStats {
        self.run_faulted_observed(config, delays, script, &mut NullSink)
    }

    /// [`run_faulted`](Self::run_faulted) with a [`TraceSink`]
    /// observing the delivery decisions: every merged view emits a
    /// `gossip_full` event (`detail` = entries carried) and every frame
    /// the fault script swallows emits a `frame_dropped` event whose
    /// `detail` names the reason — [`DROP_DEST_DOWN`] when the receiver
    /// is down, [`DROP_LINK_LOSS`] for loss and partition crossings. A
    /// [`NullSink`] run is bit-identical to the untraced path.
    pub fn run_faulted_observed<D: Fn(usize, usize) -> f64, T: TraceSink>(
        &mut self,
        config: &EventGossipConfig,
        delays: D,
        script: &FaultScript,
        tracer: &mut T,
    ) -> EventGossipStats {
        let m = self.len();
        assert_eq!(
            script.len(),
            m,
            "fault script compiled for a different size"
        );
        let mut exchanges = 0usize;
        let mut dropped = 0usize;
        let mut dropped_replies = 0usize;
        let mut bytes = 0u64;
        let frame_bytes = crate::wire::view_bytes(m) as u64;
        if m < 2 || self.fully_disseminated() {
            return EventGossipStats {
                virtual_ms: 0.0,
                exchanges,
                complete: true,
                dropped,
                dropped_replies,
                bytes,
            };
        }
        let mut heap: EventHeap<What> = EventHeap::new();
        for node in 0..m as u32 {
            heap.push(0.0, What::Tick { node });
        }
        while let Some(event) = heap.pop() {
            let now = event.due;
            if now > config.max_ms {
                return EventGossipStats {
                    virtual_ms: config.max_ms,
                    exchanges,
                    complete: false,
                    dropped,
                    dropped_replies,
                    bytes,
                };
            }
            match event.item {
                What::Tick { node } => {
                    if script.node_down(node as usize, now) {
                        // A crashed node sits the period out (it keeps
                        // its view for a warm restart).
                        heap.push(now + config.period_ms, What::Tick { node });
                        continue;
                    }
                    let mut peer = self.rng.gen_range(0..m - 1) as u32;
                    if peer >= node {
                        peer += 1;
                    }
                    bytes += frame_bytes;
                    heap.push(
                        now + delays(node as usize, peer as usize),
                        What::Request {
                            from: node,
                            to: peer,
                            view: self.views[node as usize].clone(),
                        },
                    );
                    heap.push(now + config.period_ms, What::Tick { node });
                }
                What::Request { from, to, view } => {
                    let dest_down = script.node_down(to as usize, now);
                    if dest_down
                        || script.crossing_blocked(now, from as usize, to as usize)
                        || script.loss_drops(now, event.seq)
                    {
                        Self::trace_drop(tracer, now, to, from, dest_down);
                        dropped += 1;
                        continue;
                    }
                    Self::trace_merge(tracer, now, to, from, view.len());
                    self.merge(to, &view);
                    // The push half alone can finish the job; checking
                    // only on replies would overstate the completion
                    // time by up to a full round trip. The exchange
                    // that did the decisive work still counts.
                    if self.fully_disseminated() {
                        exchanges += 1;
                        return EventGossipStats {
                            virtual_ms: now,
                            exchanges,
                            complete: true,
                            dropped,
                            dropped_replies,
                            bytes,
                        };
                    }
                    bytes += frame_bytes;
                    heap.push(
                        now + delays(to as usize, from as usize),
                        What::Reply {
                            from: to,
                            to: from,
                            view: self.views[to as usize].clone(),
                        },
                    );
                }
                What::Reply { from, to, view } => {
                    let dest_down = script.node_down(to as usize, now);
                    if dest_down
                        || script.crossing_blocked(now, from as usize, to as usize)
                        || script.loss_drops(now, event.seq)
                    {
                        Self::trace_drop(tracer, now, to, from, dest_down);
                        dropped += 1;
                        dropped_replies += 1;
                        continue;
                    }
                    Self::trace_merge(tracer, now, to, from, view.len());
                    self.merge(to, &view);
                    exchanges += 1;
                    if self.fully_disseminated() {
                        return EventGossipStats {
                            virtual_ms: now,
                            exchanges,
                            complete: true,
                            dropped,
                            dropped_replies,
                            bytes,
                        };
                    }
                }
            }
        }
        unreachable!("ticks reschedule forever; the max_ms guard exits first")
    }

    /// Emits the `frame_dropped` event for a frame the fault script
    /// swallowed at `to` (sent by `from`).
    fn trace_drop<T: TraceSink>(tracer: &mut T, now: f64, to: u32, from: u32, dest_down: bool) {
        if tracer.enabled() {
            tracer.emit(&TraceEvent {
                kind: TraceKind::FrameDropped,
                at_ms: now,
                node: to,
                peer: from,
                round: 0,
                tag: 0,
                detail: if dest_down {
                    DROP_DEST_DOWN
                } else {
                    DROP_LINK_LOSS
                },
            });
        }
    }

    /// Emits the `gossip_full` event for a full view merged at `to`
    /// (sent by `from`), `detail` carrying the entry count.
    fn trace_merge<T: TraceSink>(tracer: &mut T, now: f64, to: u32, from: u32, entries: usize) {
        if tracer.enabled() {
            tracer.emit(&TraceEvent {
                kind: TraceKind::GossipFull,
                at_ms: now,
                node: to,
                peer: from,
                round: 0,
                tag: 0,
                detail: entries as f64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_faults::FaultPlan;

    #[test]
    fn disseminates_in_bounded_virtual_time() {
        let loads: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut net = EventGossip::new(&loads, 7);
        let stats = net.run(&EventGossipConfig::default(), |_, _| 10.0);
        assert!(stats.complete, "did not disseminate: {stats:?}");
        assert!(net.fully_disseminated());
        assert!(stats.virtual_ms > 0.0);
        assert_eq!(stats.dropped, 0);
        // Push-pull completes in O(log m) periods w.h.p.
        assert!(
            stats.virtual_ms < 40.0 * 100.0,
            "took {} ms",
            stats.virtual_ms
        );
        for node in 0..50 {
            assert_eq!(net.view(node), loads);
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let loads: Vec<f64> = (0..32).map(|i| (i * i) as f64).collect();
        let run = |seed| {
            let mut net = EventGossip::new(&loads, seed);
            let stats = net.run(&EventGossipConfig::default(), |i, j| {
                1.0 + ((i * 31 + j * 17) % 13) as f64
            });
            (stats, net.view(5))
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).0, run(4).0, "seed must matter");
    }

    #[test]
    fn slower_links_mean_later_completion() {
        let loads: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let config = EventGossipConfig::default();
        let mut fast = EventGossip::new(&loads, 9);
        let fast_stats = fast.run(&config, |_, _| 1.0);
        let mut slow = EventGossip::new(&loads, 9);
        let slow_stats = slow.run(&config, |_, _| 400.0);
        assert!(fast_stats.complete && slow_stats.complete);
        assert!(
            slow_stats.virtual_ms > fast_stats.virtual_ms,
            "slow {} vs fast {}",
            slow_stats.virtual_ms,
            fast_stats.virtual_ms
        );
    }

    #[test]
    fn completion_via_push_counts_at_request_time() {
        // Two nodes, symmetric delay d: both tick at t=0, both request
        // views land at t=d, and the two push merges alone disseminate
        // everything. Completion must be reported at d — not at the
        // first reply's 2d.
        let mut net = EventGossip::new(&[1.0, 2.0], 1);
        let stats = net.run(
            &EventGossipConfig {
                period_ms: 1000.0,
                max_ms: 10_000.0,
            },
            |_, _| 7.0,
        );
        assert!(stats.complete);
        assert_eq!(stats.virtual_ms, 7.0, "one-way push completes at d");
        assert_eq!(
            stats.exchanges, 1,
            "the completing push is a real exchange and must be counted"
        );
        assert!(net.fully_disseminated());
    }

    #[test]
    fn updates_propagate_with_versions() {
        let mut net = EventGossip::new(&[5.0, 6.0, 7.0, 8.0], 3);
        net.run(&EventGossipConfig::default(), |_, _| 2.0);
        net.publish(2, 70.0);
        assert!(!net.fully_disseminated());
        let stats = net.run(&EventGossipConfig::default(), |_, _| 2.0);
        assert!(stats.complete);
        for node in 0..4 {
            assert_eq!(net.view(node)[2], 70.0, "node {node} has stale entry");
        }
    }

    #[test]
    fn max_ms_bounds_a_partitioned_network() {
        // Infinite-delay links: requests never arrive, so the run must
        // stop at max_ms... but infinity would poison the heap order;
        // use a delay beyond the horizon instead.
        let loads = vec![1.0, 2.0, 3.0];
        let mut net = EventGossip::new(&loads, 1);
        let stats = net.run(
            &EventGossipConfig {
                period_ms: 50.0,
                max_ms: 500.0,
            },
            |_, _| 1e9,
        );
        assert!(!stats.complete);
        assert_eq!(stats.virtual_ms, 500.0);
    }

    #[test]
    fn trivial_networks_complete_instantly() {
        let mut single = EventGossip::new(&[9.0], 1);
        let stats = single.run(&EventGossipConfig::default(), |_, _| 1.0);
        assert!(stats.complete);
        assert_eq!(stats.virtual_ms, 0.0);
        assert_eq!(stats.exchanges, 0);
        assert_eq!(stats.bytes, 0);
        assert!(!single.is_empty());
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn every_sent_frame_is_billed() {
        let loads: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut net = EventGossip::new(&loads, 7);
        let stats = net.run(&EventGossipConfig::default(), |_, _| 10.0);
        assert!(stats.complete);
        let frame = crate::wire::view_bytes(40) as u64;
        assert!(stats.bytes >= frame * stats.exchanges as u64);
        assert_eq!(stats.bytes % frame, 0, "bytes must be whole frames");
    }

    #[test]
    fn dropped_replies_are_surfaced_separately() {
        let loads: Vec<f64> = (0..30).map(|i| (i * 3) as f64).collect();
        let script = FaultPlan::new().loss(0.5).compile(11, 30);
        let mut net = EventGossip::new(&loads, 11);
        let stats = net.run_faulted(&EventGossipConfig::default(), |_, _| 10.0, &script);
        assert!(stats.complete);
        assert!(
            stats.dropped_replies > 0,
            "50% loss must swallow some replies: {stats:?}"
        );
        assert!(
            stats.dropped_replies < stats.dropped,
            "requests are dropped too: {stats:?}"
        );
    }

    #[test]
    fn incremental_completion_matches_reality_through_publishes() {
        let mut net = EventGossip::new(&[1.0, 2.0, 3.0, 4.0, 5.0], 2);
        assert!(!net.fully_disseminated());
        net.run(&EventGossipConfig::default(), |_, _| 3.0);
        assert!(net.fully_disseminated());
        net.publish(0, 10.0);
        net.publish(0, 11.0); // double publish: still one stale origin
        assert!(!net.fully_disseminated());
        net.run(&EventGossipConfig::default(), |_, _| 3.0);
        assert!(net.fully_disseminated());
        for node in 0..5 {
            assert_eq!(net.view(node)[0], 11.0);
        }
    }

    #[test]
    fn empty_script_reproduces_the_unfaulted_run() {
        let loads: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let delays = |i: usize, j: usize| 1.0 + ((i * 7 + j * 3) % 5) as f64;
        let mut plain = EventGossip::new(&loads, 5);
        let a = plain.run(&EventGossipConfig::default(), delays);
        let mut scripted = EventGossip::new(&loads, 5);
        let b = scripted.run_faulted(
            &EventGossipConfig::default(),
            delays,
            &FaultScript::empty(20),
        );
        assert_eq!(a, b);
        for node in 0..20 {
            assert_eq!(plain.view(node), scripted.view(node));
        }
    }

    #[test]
    fn loss_costs_time_not_correctness() {
        let loads: Vec<f64> = (0..30).map(|i| (i * 3) as f64).collect();
        let delays = |_: usize, _: usize| 10.0;
        let mut clean = EventGossip::new(&loads, 11);
        let clean_stats = clean.run(&EventGossipConfig::default(), delays);
        let script = FaultPlan::new().loss(0.5).compile(11, 30);
        let mut lossy = EventGossip::new(&loads, 11);
        let lossy_stats = lossy.run_faulted(&EventGossipConfig::default(), delays, &script);
        assert!(lossy_stats.complete);
        assert!(lossy.fully_disseminated());
        assert!(lossy_stats.dropped > 0, "loss must bite: {lossy_stats:?}");
        assert!(
            lossy_stats.virtual_ms > clean_stats.virtual_ms,
            "lossy {} vs clean {}",
            lossy_stats.virtual_ms,
            clean_stats.virtual_ms
        );
    }

    #[test]
    fn dissemination_waits_for_crashed_nodes() {
        let loads: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let script = FaultPlan::new().churn(0.25, 0.0, 2_000.0).compile(3, 12);
        let mut net = EventGossip::new(&loads, 3);
        let stats = net.run_faulted(&EventGossipConfig::default(), |_, _| 5.0, &script);
        assert!(stats.complete);
        // Nodes that were down until t=2000 cannot have been caught up
        // before then.
        assert!(
            stats.virtual_ms > 2_000.0,
            "completion at {} must wait for recovery",
            stats.virtual_ms
        );
        for node in 0..12 {
            assert_eq!(net.view(node), loads);
        }
    }

    #[test]
    fn partition_defers_completion_until_heal() {
        let loads: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let script = FaultPlan::new().partition(0.0, 1_500.0).compile(9, 16);
        let mut net = EventGossip::new(&loads, 9);
        let stats = net.run_faulted(&EventGossipConfig::default(), |_, _| 5.0, &script);
        assert!(stats.complete);
        assert!(stats.dropped > 0, "crossing frames dropped");
        assert!(
            stats.virtual_ms > 1_500.0,
            "cross-cut entries spread only after the heal: {}",
            stats.virtual_ms
        );
    }

    #[test]
    fn traced_runs_observe_merges_and_drops_without_perturbing_the_protocol() {
        use dlb_obs::MemorySink;
        let loads: Vec<f64> = (0..30).map(|i| (i * 3) as f64).collect();
        let delays = |_: usize, _: usize| 10.0;
        let script = FaultPlan::new()
            .loss(0.4)
            .churn(0.2, 0.0, 1_000.0)
            .compile(11, 30);

        let mut traced = EventGossip::new(&loads, 11);
        let mut sink = MemorySink::default();
        let stats_traced =
            traced.run_faulted_observed(&EventGossipConfig::default(), delays, &script, &mut sink);

        let mut plain = EventGossip::new(&loads, 11);
        let stats_plain = plain.run_faulted(&EventGossipConfig::default(), delays, &script);

        // Observation is passive: identical stats and views either way.
        assert_eq!(stats_traced, stats_plain);
        for node in 0..30 {
            assert_eq!(traced.view(node), plain.view(node));
        }

        // Every swallowed frame is on the record with a reason, and
        // every merge too.
        let drops: Vec<_> = sink
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::FrameDropped)
            .collect();
        assert_eq!(drops.len(), stats_traced.dropped);
        assert!(
            drops.iter().any(|e| e.detail == DROP_LINK_LOSS),
            "40% loss must drop some frames on the link"
        );
        assert!(
            drops.iter().any(|e| e.detail == DROP_DEST_DOWN),
            "frames to crashed nodes must name the receiver as the reason"
        );
        // Frames still in flight when dissemination completes are never
        // merged, so only a lower bound relates merges to exchanges: a
        // completed exchange merged its reply (or was the decisive
        // push's request merge).
        let merges: Vec<_> = sink
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::GossipFull)
            .collect();
        assert!(merges.len() >= stats_traced.exchanges);
        assert!(
            merges.iter().all(|e| e.detail == 30.0),
            "full m-entry views"
        );
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let loads: Vec<f64> = (0..24).map(|i| (i % 7) as f64).collect();
        let script = FaultPlan::new()
            .loss(0.3)
            .churn(0.2, 50.0, 800.0)
            .compile(13, 24);
        let run = || {
            let mut net = EventGossip::new(&loads, 13);
            let stats = net.run_faulted(&EventGossipConfig::default(), |_, _| 4.0, &script);
            (stats, net.view(7))
        };
        assert_eq!(run(), run());
    }
}
