//! # dlb-gossip — gossip dissemination substrate
//!
//! The distributed algorithm assumes every server knows the current
//! loads of all other servers and notes that "the loads can be
//! disseminated by a gossiping algorithm" with logarithmic convergence
//! (§IV). This crate simulates that layer:
//!
//! * [`push_pull`] — epidemic push-pull dissemination of versioned load
//!   vectors: each round every node exchanges its view with one random
//!   peer, keeping the freshest entry per server. Full dissemination
//!   takes `O(log m)` rounds, which the tests verify empirically.
//! * [`events`] — the same push-pull exchanges as *scheduled events*
//!   on a virtual-time heap with per-link delivery delays, so
//!   dissemination is measured in simulated milliseconds rather than
//!   synchronous rounds (the `dlb-runtime` event-executor pattern).
//! * [`delta`] — the bandwidth-frugal variant: views are sharded
//!   ([`shard`]) and frames carry only recently-changed entries plus
//!   one rotating full shard as anti-entropy fallback, cutting
//!   steady-state traffic from O(m) to O(changed) per frame. This is
//!   the layer the engine's `GossipFeed` drives its stale scoring from.
//! * [`push_sum`] — the push-sum averaging protocol (Kempe et al.) used
//!   to estimate the average system load `l_av` (the quantity the
//!   Theorem 1 bounds need).
//! * [`wire`] — compact message encoding on `bytes`: full-view frames
//!   (~100 kB at m = 5000 — the bandwidth bill the delta layer exists
//!   to cut) and sharded delta frames, both property-tested, with
//!   consume-from-buffer decoders for concatenated frame streams.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delta;
pub mod events;
#[cfg(all(test, feature = "proptests"))]
mod proptests;
pub mod push_pull;
pub mod push_sum;
pub mod shard;
pub mod wire;

pub use delta::{DeltaGossip, DeltaGossipConfig, GossipTraffic};
pub use events::{EventGossip, EventGossipConfig, EventGossipStats};
pub use push_pull::{GossipNetwork, GossipStats};
pub use push_sum::PushSumNetwork;
pub use shard::ShardMap;
