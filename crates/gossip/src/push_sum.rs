//! Push-sum averaging (Kempe, Dobra & Gehrke, FOCS 2003).
//!
//! Every node holds a pair `(s, w)` initialized to `(x_i, 1)`. Each
//! round a node keeps half of its pair and sends the other half to a
//! random peer; the estimate `s/w` converges exponentially fast to the
//! global average — here, the average load `l_av` used by the price-of-
//! anarchy bounds.

use dlb_core::rngutil::rng_for;
use rand::rngs::StdRng;
use rand::Rng;

/// A simulated push-sum network.
#[derive(Debug, Clone)]
pub struct PushSumNetwork {
    sums: Vec<f64>,
    weights: Vec<f64>,
    rng: StdRng,
}

impl PushSumNetwork {
    /// Initializes with one value per node.
    pub fn new(values: &[f64], seed: u64) -> Self {
        Self {
            sums: values.to_vec(),
            weights: vec![1.0; values.len()],
            rng: rng_for(seed, 0x5053),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Returns `true` for the empty network.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Node `i`'s current estimate of the average.
    pub fn estimate(&self, i: usize) -> f64 {
        self.sums[i] / self.weights[i]
    }

    /// Runs one synchronous round: every node ships half its mass to a
    /// random peer.
    pub fn run_round(&mut self) {
        let m = self.sums.len();
        if m < 2 {
            return;
        }
        let mut inbox_s = vec![0.0; m];
        let mut inbox_w = vec![0.0; m];
        for i in 0..m {
            let mut peer = self.rng.gen_range(0..m - 1);
            if peer >= i {
                peer += 1;
            }
            let hs = self.sums[i] / 2.0;
            let hw = self.weights[i] / 2.0;
            self.sums[i] = hs;
            self.weights[i] = hw;
            inbox_s[peer] += hs;
            inbox_w[peer] += hw;
        }
        for i in 0..m {
            self.sums[i] += inbox_s[i];
            self.weights[i] += inbox_w[i];
        }
    }

    /// Largest relative deviation of any node's estimate from the true
    /// average.
    pub fn max_relative_error(&self, true_avg: f64) -> f64 {
        let scale = true_avg.abs().max(1e-12);
        (0..self.len())
            .map(|i| (self.estimate(i) - true_avg).abs() / scale)
            .fold(0.0, f64::max)
    }

    /// Runs until all estimates are within `tol` of the average.
    pub fn run_until(&mut self, true_avg: f64, tol: f64, max_rounds: usize) -> usize {
        for r in 0..max_rounds {
            if self.max_relative_error(true_avg) <= tol {
                return r;
            }
            self.run_round();
        }
        max_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_conservation() {
        let values = vec![3.0, 5.0, 7.0, 9.0];
        let mut net = PushSumNetwork::new(&values, 2);
        for _ in 0..10 {
            net.run_round();
        }
        let total_s: f64 = net.sums.iter().sum();
        let total_w: f64 = net.weights.iter().sum();
        assert!((total_s - 24.0).abs() < 1e-9);
        assert!((total_w - 4.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_converge_to_average() {
        let values: Vec<f64> = (0..100).map(|i| (i % 10) as f64 * 10.0).collect();
        let avg = values.iter().sum::<f64>() / 100.0;
        let mut net = PushSumNetwork::new(&values, 5);
        let rounds = net.run_until(avg, 1e-6, 10_000);
        assert!(rounds < 200, "took {rounds} rounds");
        for i in 0..100 {
            assert!((net.estimate(i) - avg).abs() < 1e-4 * avg.max(1.0));
        }
    }

    #[test]
    fn convergence_roughly_logarithmic() {
        let mut previous = 0usize;
        for &m in &[64usize, 512] {
            let values: Vec<f64> = (0..m).map(|i| i as f64).collect();
            let avg = values.iter().sum::<f64>() / m as f64;
            let mut net = PushSumNetwork::new(&values, 9);
            let rounds = net.run_until(avg, 1e-4, 10_000);
            assert!(
                (rounds as f64) < 20.0 * (m as f64).log2(),
                "m={m}: {rounds} rounds"
            );
            // Must not blow up disproportionately with m.
            if previous > 0 {
                assert!(
                    rounds < previous * 6,
                    "super-log growth: {previous} -> {rounds}"
                );
            }
            previous = rounds;
        }
    }

    #[test]
    fn uniform_values_are_instant() {
        let mut net = PushSumNetwork::new(&[4.0; 10], 1);
        assert_eq!(net.run_until(4.0, 1e-12, 100), 0);
    }
}
