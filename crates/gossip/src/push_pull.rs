//! Push-pull epidemic dissemination of versioned load vectors.

use dlb_core::rngutil::rng_for;
use rand::rngs::StdRng;
use rand::Rng;

/// One node's entry about one server: the reported load and the version
/// (monotone per-origin counter) it carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Reported load value.
    pub load: f64,
    /// Origin version; higher wins during merges.
    pub version: u64,
}

/// A simulated gossip network: `m` nodes, each holding a (partial) view
/// of every server's current load.
#[derive(Debug, Clone)]
pub struct GossipNetwork {
    m: usize,
    /// `views[node][origin]` — what `node` believes about `origin`.
    views: Vec<Vec<Entry>>,
    rng: StdRng,
    round: u64,
}

/// Dissemination statistics from [`GossipNetwork::run_until_complete`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipStats {
    /// Rounds needed until every node held the latest version of every
    /// entry.
    pub rounds: usize,
    /// Total node-to-node exchanges performed.
    pub exchanges: usize,
    /// Encoded bytes the exchanges put on the wire (each exchange ships
    /// two full m-entry views in [`crate::wire::encode`]'s layout).
    pub bytes: u64,
    /// Whether full dissemination was actually reached — a run that
    /// completes exactly on round `max_rounds` is *complete*, not a
    /// timeout, and only this flag can tell the two apart.
    pub complete: bool,
}

impl GossipNetwork {
    /// Creates a network where each node initially knows only its own
    /// load.
    pub fn new(loads: &[f64], seed: u64) -> Self {
        let m = loads.len();
        let views = (0..m)
            .map(|node| {
                (0..m)
                    .map(|origin| Entry {
                        load: if node == origin { loads[origin] } else { 0.0 },
                        version: if node == origin { 1 } else { 0 },
                    })
                    .collect()
            })
            .collect();
        Self {
            m,
            views,
            rng: rng_for(seed, 0x6055),
            round: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Returns `true` for the empty network.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// A node publishes a new local load (bumps its version).
    pub fn publish(&mut self, node: usize, load: f64) {
        let v = self.views[node][node].version + 1;
        self.views[node][node] = Entry { load, version: v };
    }

    /// The load vector as node `node` currently believes it.
    pub fn view(&self, node: usize) -> Vec<f64> {
        self.views[node].iter().map(|e| e.load).collect()
    }

    /// Runs one synchronous push-pull round: every node exchanges views
    /// with one uniformly random peer; both keep the freshest entry per
    /// origin. Returns the number of exchanges (= m).
    pub fn run_round(&mut self) -> usize {
        let m = self.m;
        if m < 2 {
            return 0;
        }
        self.round += 1;
        for node in 0..m {
            let mut peer = self.rng.gen_range(0..m - 1);
            if peer >= node {
                peer += 1;
            }
            let (a, b) = if node < peer {
                let (lo, hi) = self.views.split_at_mut(peer);
                (&mut lo[node], &mut hi[0])
            } else {
                let (lo, hi) = self.views.split_at_mut(node);
                (&mut hi[0], &mut lo[peer])
            };
            for origin in 0..m {
                if a[origin].version > b[origin].version {
                    b[origin] = a[origin];
                } else if b[origin].version > a[origin].version {
                    a[origin] = b[origin];
                }
            }
        }
        m
    }

    /// Returns `true` when every node holds the globally freshest
    /// version of every origin's entry.
    pub fn fully_disseminated(&self) -> bool {
        for origin in 0..self.m {
            let newest = self
                .views
                .iter()
                .map(|v| v[origin].version)
                .max()
                .unwrap_or(0);
            if self.views.iter().any(|v| v[origin].version != newest) {
                return false;
            }
        }
        true
    }

    /// Runs rounds until full dissemination (or `max_rounds`). The
    /// completion check runs once more *after* the final round, so a
    /// run that finishes exactly on round `max_rounds` reports
    /// `complete: true` rather than masquerading as a timeout.
    pub fn run_until_complete(&mut self, max_rounds: usize) -> GossipStats {
        let per_exchange = 2 * crate::wire::view_bytes(self.m) as u64;
        let mut exchanges = 0;
        for r in 0..max_rounds {
            if self.fully_disseminated() {
                return GossipStats {
                    rounds: r,
                    exchanges,
                    bytes: exchanges as u64 * per_exchange,
                    complete: true,
                };
            }
            exchanges += self.run_round();
        }
        GossipStats {
            rounds: max_rounds,
            exchanges,
            bytes: exchanges as u64 * per_exchange,
            complete: self.fully_disseminated(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_knowing_only_self() {
        let net = GossipNetwork::new(&[1.0, 2.0, 3.0], 1);
        assert_eq!(net.view(0), vec![1.0, 0.0, 0.0]);
        assert_eq!(net.view(2), vec![0.0, 0.0, 3.0]);
        assert!(!net.fully_disseminated());
    }

    #[test]
    fn disseminates_fully() {
        let loads: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut net = GossipNetwork::new(&loads, 7);
        let stats = net.run_until_complete(1000);
        assert!(net.fully_disseminated());
        assert!(stats.complete);
        assert!(stats.rounds < 1000);
        assert_eq!(
            stats.bytes,
            stats.exchanges as u64 * 2 * crate::wire::view_bytes(50) as u64
        );
        for node in 0..50 {
            assert_eq!(net.view(node), loads);
        }
    }

    #[test]
    fn completion_on_the_final_round_is_not_a_timeout() {
        // Find the exact round count, then rerun with that as the
        // budget: dissemination lands exactly on round max_rounds and
        // must still report complete — while one round fewer must not.
        let loads: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let needed = GossipNetwork::new(&loads, 7)
            .run_until_complete(1000)
            .rounds;
        assert!(needed > 1);
        let exact = GossipNetwork::new(&loads, 7).run_until_complete(needed);
        assert!(exact.complete, "completion on the last round: {exact:?}");
        assert_eq!(exact.rounds, needed);
        let short = GossipNetwork::new(&loads, 7).run_until_complete(needed - 1);
        assert!(!short.complete, "a too-short run must time out: {short:?}");
    }

    #[test]
    fn convergence_is_logarithmic() {
        // Push-pull completes in O(log m) rounds w.h.p.; allow a
        // generous constant.
        for &m in &[32usize, 128, 512] {
            let loads: Vec<f64> = (0..m).map(|i| i as f64).collect();
            let mut net = GossipNetwork::new(&loads, 11);
            let stats = net.run_until_complete(10_000);
            let budget = 6.0 * (m as f64).log2() + 10.0;
            assert!(
                (stats.rounds as f64) < budget,
                "m={m}: {} rounds > budget {budget}",
                stats.rounds
            );
        }
    }

    #[test]
    fn updates_propagate_with_versions() {
        let mut net = GossipNetwork::new(&[5.0, 6.0, 7.0, 8.0], 3);
        net.run_until_complete(100);
        net.publish(2, 70.0);
        assert!(!net.fully_disseminated());
        net.run_until_complete(100);
        for node in 0..4 {
            assert_eq!(net.view(node)[2], 70.0, "node {node} has stale entry");
        }
    }

    #[test]
    fn single_node_network_is_trivially_complete() {
        let mut net = GossipNetwork::new(&[9.0], 1);
        assert!(net.fully_disseminated());
        let stats = net.run_until_complete(10);
        assert_eq!(stats.rounds, 0);
        assert!(stats.complete);
        assert_eq!(stats.bytes, 0);
    }
}
