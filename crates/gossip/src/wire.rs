//! Compact wire encoding for gossip messages.
//!
//! Two frame kinds share one little-endian vocabulary (no serde
//! overhead on the hot path):
//!
//! - **Full-view frames** ([`encode`]/[`decode`]/[`decode_from`]): a
//!   `u32` count followed by `(origin: u32, version: u64, load: f64)`
//!   triples — [`ENTRY_SIZE`] = 20 bytes per entry, so a full view of a
//!   5000-server system is ~100 kB. This is what the classic push-pull
//!   layers ([`crate::GossipNetwork`], [`crate::EventGossip`]) ship on
//!   every exchange.
//! - **Delta frames** ([`encode_delta`]/[`decode_delta`]/
//!   [`decode_delta_from`]): the sharded anti-entropy format used by
//!   [`crate::DeltaGossip`]. A frame names a fallback `shard` id,
//!   carries the sender's per-shard version summary (`since`, one `u64`
//!   per shard — the watermark the receiver answers against), a
//!   `changed` entry list (the sender's recently-heard hot set) and a
//!   `full` entry list (the complete contents of the named fallback
//!   shard). Steady-state traffic is O(changed entries) plus one
//!   rotating shard instead of O(m).
//!
//! Decoders come in two flavours: the `*_from` variants consume exactly
//! one frame from the front of a buffer and leave the remainder (so
//! concatenated / streamed frames parse frame-by-frame), while the
//! plain variants are strict whole-buffer wrappers that additionally
//! reject trailing garbage. Both return `None` — never panic — on
//! truncated or malformed input, and leave the buffer untouched when
//! they fail.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One gossip view entry on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireEntry {
    /// Which server this entry describes.
    pub origin: u32,
    /// Freshness version.
    pub version: u64,
    /// Reported load.
    pub load: f64,
}

/// Bytes per encoded entry.
pub const ENTRY_SIZE: usize = 4 + 8 + 8;

/// Encoded size of a full-view frame carrying `n` entries.
pub const fn view_bytes(n: usize) -> usize {
    4 + n * ENTRY_SIZE
}

/// Encodes entries into a length-prefixed buffer.
pub fn encode(entries: &[WireEntry]) -> Bytes {
    let mut buf = BytesMut::with_capacity(view_bytes(entries.len()));
    put_entries(&mut buf, entries);
    buf.freeze()
}

/// Decodes exactly one full-view frame from the front of `buf`,
/// consuming it and leaving any trailing bytes (further frames) in
/// place. Returns `None` — with `buf` untouched — on truncated or
/// malformed input.
pub fn decode_from(buf: &mut Bytes) -> Option<Vec<WireEntry>> {
    let mut pos = 0usize;
    let entries = read_entries(buf.as_slice(), &mut pos)?;
    buf.advance(pos);
    Some(entries)
}

/// Strict whole-buffer wrapper around [`decode_from`]: the buffer must
/// hold exactly one frame — trailing bytes are rejected as malformed.
pub fn decode(mut buf: Bytes) -> Option<Vec<WireEntry>> {
    let entries = decode_from(&mut buf)?;
    if !buf.is_empty() {
        return None;
    }
    Some(entries)
}

/// One sharded delta frame: the sender's hot set plus a full-view
/// fallback for one rotating shard, stamped with the sender's per-shard
/// version summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaFrame {
    /// Which shard the `full` list covers.
    pub shard: u32,
    /// Sender's per-shard version summary (sum of versions per shard);
    /// the receiver uses it to pick the neediest shard for its reply.
    pub since: Vec<u64>,
    /// Recently-changed entries (the sender's rumor hot set).
    pub changed: Vec<WireEntry>,
    /// Every known entry of shard `shard` — the anti-entropy fallback
    /// that guarantees convergence even when the hot set misses.
    pub full: Vec<WireEntry>,
}

impl DeltaFrame {
    /// Encoded size of this frame.
    pub fn encoded_len(&self) -> usize {
        4 + 4 + self.since.len() * 8 + view_bytes(self.changed.len()) + view_bytes(self.full.len())
    }
}

/// Encodes a delta frame: `u32` shard id, `u32` summary length, the
/// summary `u64`s, then the `changed` and `full` entry lists (each in
/// the [`encode`] layout).
pub fn encode_delta(frame: &DeltaFrame) -> Bytes {
    let mut buf = BytesMut::with_capacity(frame.encoded_len());
    buf.put_u32_le(frame.shard);
    buf.put_u32_le(frame.since.len() as u32);
    for &v in &frame.since {
        buf.put_u64_le(v);
    }
    put_entries(&mut buf, &frame.changed);
    put_entries(&mut buf, &frame.full);
    buf.freeze()
}

/// Decodes exactly one delta frame from the front of `buf`, consuming
/// it and leaving any trailing bytes in place. Returns `None` — with
/// `buf` untouched — on truncated or malformed input.
pub fn decode_delta_from(buf: &mut Bytes) -> Option<DeltaFrame> {
    let s = buf.as_slice();
    let mut pos = 0usize;
    let shard = read_u32(s, &mut pos)?;
    let since_len = read_u32(s, &mut pos)? as usize;
    if s.len().checked_sub(pos)? < since_len.checked_mul(8)? {
        return None;
    }
    let mut since = Vec::with_capacity(since_len);
    for _ in 0..since_len {
        since.push(read_u64(s, &mut pos)?);
    }
    let changed = read_entries(s, &mut pos)?;
    let full = read_entries(s, &mut pos)?;
    buf.advance(pos);
    Some(DeltaFrame {
        shard,
        since,
        changed,
        full,
    })
}

/// Strict whole-buffer wrapper around [`decode_delta_from`]: trailing
/// bytes are rejected as malformed.
pub fn decode_delta(mut buf: Bytes) -> Option<DeltaFrame> {
    let frame = decode_delta_from(&mut buf)?;
    if !buf.is_empty() {
        return None;
    }
    Some(frame)
}

fn put_entries(buf: &mut BytesMut, entries: &[WireEntry]) {
    buf.put_u32_le(entries.len() as u32);
    for e in entries {
        buf.put_u32_le(e.origin);
        buf.put_u64_le(e.version);
        buf.put_f64_le(e.load);
    }
}

/// Reads one length-prefixed entry list at `*pos`, advancing it on
/// success. Bounds are checked before any allocation so hostile length
/// prefixes cannot trigger huge reserves.
fn read_entries(s: &[u8], pos: &mut usize) -> Option<Vec<WireEntry>> {
    let mut p = *pos;
    let count = read_u32(s, &mut p)? as usize;
    if s.len().checked_sub(p)? < count.checked_mul(ENTRY_SIZE)? {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(WireEntry {
            origin: read_u32(s, &mut p)?,
            version: read_u64(s, &mut p)?,
            load: f64::from_bits(read_u64(s, &mut p)?),
        });
    }
    *pos = p;
    Some(entries)
}

fn read_u32(s: &[u8], pos: &mut usize) -> Option<u32> {
    let raw = s.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(raw.try_into().unwrap()))
}

fn read_u64(s: &[u8], pos: &mut usize) -> Option<u64> {
    let raw = s.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(raw.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> DeltaFrame {
        DeltaFrame {
            shard: 3,
            since: vec![7, 0, 42, u64::MAX],
            changed: vec![
                WireEntry {
                    origin: 12,
                    version: 9,
                    load: 1.5,
                },
                WireEntry {
                    origin: 990,
                    version: 2,
                    load: 0.0,
                },
            ],
            full: vec![WireEntry {
                origin: 768,
                version: 1,
                load: 64.25,
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let entries = vec![
            WireEntry {
                origin: 0,
                version: 3,
                load: 12.5,
            },
            WireEntry {
                origin: 4999,
                version: u64::MAX,
                load: f64::MAX,
            },
        ];
        let bytes = encode(&entries);
        assert_eq!(bytes.len(), view_bytes(2));
        let back = decode(bytes).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_message() {
        let bytes = encode(&[]);
        assert_eq!(decode(bytes).unwrap(), vec![]);
    }

    #[test]
    fn rejects_truncated() {
        let entries = vec![WireEntry {
            origin: 1,
            version: 1,
            load: 1.0,
        }];
        let bytes = encode(&entries);
        let truncated = bytes.slice(0..bytes.len() - 1);
        assert!(decode(truncated).is_none());
        assert!(decode(Bytes::from_static(&[1, 2])).is_none());
    }

    #[test]
    fn rejects_length_mismatch() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(5); // claims 5 entries, provides none
        assert!(decode(raw.freeze()).is_none());
    }

    #[test]
    fn strict_decode_rejects_trailing_bytes_but_decode_from_returns_them() {
        let entries = vec![WireEntry {
            origin: 7,
            version: 4,
            load: 2.0,
        }];
        let mut raw = BytesMut::new();
        raw.extend_from_slice(encode(&entries).as_slice());
        raw.extend_from_slice(&[0xEE, 0xFF]);
        let concatenated = raw.freeze();

        assert!(decode(concatenated.clone()).is_none());

        let mut buf = concatenated;
        assert_eq!(decode_from(&mut buf).unwrap(), entries);
        assert_eq!(buf.as_slice(), &[0xEE, 0xFF]);
    }

    #[test]
    fn decode_from_walks_concatenated_frames() {
        let first = vec![WireEntry {
            origin: 1,
            version: 10,
            load: 3.5,
        }];
        let second: Vec<WireEntry> = vec![];
        let third = vec![
            WireEntry {
                origin: 2,
                version: 1,
                load: 0.25,
            },
            WireEntry {
                origin: 3,
                version: 2,
                load: 0.75,
            },
        ];
        let mut stream = BytesMut::new();
        for frame in [&first, &second, &third] {
            stream.extend_from_slice(encode(frame).as_slice());
        }
        let mut buf = stream.freeze();
        assert_eq!(decode_from(&mut buf).unwrap(), first);
        assert_eq!(decode_from(&mut buf).unwrap(), second);
        assert_eq!(decode_from(&mut buf).unwrap(), third);
        assert!(buf.is_empty());
        assert!(decode_from(&mut buf).is_none());
    }

    #[test]
    fn failed_decode_from_leaves_the_buffer_untouched() {
        let entries = vec![WireEntry {
            origin: 5,
            version: 6,
            load: 7.0,
        }];
        let whole = encode(&entries);
        let truncated = whole.slice(0..whole.len() - 3);
        let mut buf = truncated.clone();
        assert!(decode_from(&mut buf).is_none());
        assert_eq!(buf, truncated);
    }

    #[test]
    fn delta_roundtrip() {
        let frame = sample_frame();
        let bytes = encode_delta(&frame);
        assert_eq!(bytes.len(), frame.encoded_len());
        assert_eq!(decode_delta(bytes).unwrap(), frame);
    }

    #[test]
    fn delta_empty_frame_roundtrips() {
        let frame = DeltaFrame {
            shard: 0,
            since: vec![],
            changed: vec![],
            full: vec![],
        };
        let bytes = encode_delta(&frame);
        assert_eq!(bytes.len(), 4 + 4 + 4 + 4);
        assert_eq!(decode_delta(bytes).unwrap(), frame);
    }

    #[test]
    fn delta_rejects_every_truncation() {
        let bytes = encode_delta(&sample_frame());
        for cut in 0..bytes.len() {
            assert!(
                decode_delta(bytes.slice(0..cut)).is_none(),
                "decoded a {cut}-byte prefix of a {}-byte frame",
                bytes.len()
            );
        }
    }

    #[test]
    fn delta_decode_from_consumes_one_frame_and_rejects_hostile_lengths() {
        let frame = sample_frame();
        let mut stream = BytesMut::new();
        stream.extend_from_slice(encode_delta(&frame).as_slice());
        stream.extend_from_slice(encode_delta(&frame).as_slice());
        let mut buf = stream.freeze();
        assert_eq!(decode_delta_from(&mut buf).unwrap(), frame);
        assert_eq!(decode_delta_from(&mut buf).unwrap(), frame);
        assert!(buf.is_empty());

        // A frame claiming u32::MAX summary slots must fail the bounds
        // check before allocating anything.
        let mut hostile = BytesMut::new();
        hostile.put_u32_le(0);
        hostile.put_u32_le(u32::MAX);
        let mut buf = hostile.freeze();
        let before = buf.clone();
        assert!(decode_delta_from(&mut buf).is_none());
        assert_eq!(buf, before);
    }

    #[test]
    fn full_view_of_large_system_is_bounded() {
        let entries: Vec<WireEntry> = (0..5000)
            .map(|i| WireEntry {
                origin: i,
                version: 1,
                load: i as f64,
            })
            .collect();
        let bytes = encode(&entries);
        assert!(
            bytes.len() < 128 * 1024,
            "view too large: {} bytes",
            bytes.len()
        );
    }
}
