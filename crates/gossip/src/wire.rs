//! Compact wire encoding for gossip messages.
//!
//! A view message carries `(origin: u32, version: u64, load: f64)`
//! triples — 20 bytes per entry, so a full view of a 5000-server system
//! is ~100 kB and a typical delta far smaller. Encoding is explicit
//! little-endian via `bytes` (no serde overhead on the hot path).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One gossip view entry on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireEntry {
    /// Which server this entry describes.
    pub origin: u32,
    /// Freshness version.
    pub version: u64,
    /// Reported load.
    pub load: f64,
}

/// Bytes per encoded entry.
pub const ENTRY_SIZE: usize = 4 + 8 + 8;

/// Encodes entries into a length-prefixed buffer.
pub fn encode(entries: &[WireEntry]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + entries.len() * ENTRY_SIZE);
    buf.put_u32_le(entries.len() as u32);
    for e in entries {
        buf.put_u32_le(e.origin);
        buf.put_u64_le(e.version);
        buf.put_f64_le(e.load);
    }
    buf.freeze()
}

/// Decodes a buffer produced by [`encode`]. Returns `None` on
/// truncated or malformed input.
pub fn decode(mut buf: Bytes) -> Option<Vec<WireEntry>> {
    if buf.remaining() < 4 {
        return None;
    }
    let count = buf.get_u32_le() as usize;
    if buf.remaining() != count * ENTRY_SIZE {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(WireEntry {
            origin: buf.get_u32_le(),
            version: buf.get_u64_le(),
            load: buf.get_f64_le(),
        });
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let entries = vec![
            WireEntry {
                origin: 0,
                version: 3,
                load: 12.5,
            },
            WireEntry {
                origin: 4999,
                version: u64::MAX,
                load: f64::MAX,
            },
        ];
        let bytes = encode(&entries);
        assert_eq!(bytes.len(), 4 + 2 * ENTRY_SIZE);
        let back = decode(bytes).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_message() {
        let bytes = encode(&[]);
        assert_eq!(decode(bytes).unwrap(), vec![]);
    }

    #[test]
    fn rejects_truncated() {
        let entries = vec![WireEntry {
            origin: 1,
            version: 1,
            load: 1.0,
        }];
        let bytes = encode(&entries);
        let truncated = bytes.slice(0..bytes.len() - 1);
        assert!(decode(truncated).is_none());
        assert!(decode(Bytes::from_static(&[1, 2])).is_none());
    }

    #[test]
    fn rejects_length_mismatch() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(5); // claims 5 entries, provides none
        assert!(decode(raw.freeze()).is_none());
    }

    #[test]
    fn full_view_of_large_system_is_bounded() {
        let entries: Vec<WireEntry> = (0..5000)
            .map(|i| WireEntry {
                origin: i,
                version: 1,
                load: i as f64,
            })
            .collect();
        let bytes = encode(&entries);
        assert!(
            bytes.len() < 128 * 1024,
            "view too large: {} bytes",
            bytes.len()
        );
    }
}
