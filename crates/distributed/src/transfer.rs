//! Algorithm 1: the optimal pairwise exchange (`calcBestTransfer`).
//!
//! Given two servers `i` and `j`, the algorithm pools every request
//! currently assigned to either, then re-splits the pool: owners are
//! visited in ascending `c_kj − c_ki` (how much server `j` is
//! network-preferable for owner `k`), and each owner `k` moves
//!
//! ```text
//! Δr = clamp( (s_j l_i − s_i l_j − s_i s_j (c_kj − c_ki)) / (s_i + s_j),
//!             0, r_ki )
//! ```
//!
//! requests from `i` to `j` (Lemma 1). After the pass no exchange
//! between `i` and `j` can improve `ΣC` (Lemma 2) — a property-tested
//! invariant.

use dlb_core::sparse::SparseVec;
use dlb_core::{Assignment, Instance};

/// Result of running Algorithm 1 on a pair of servers.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferOutcome {
    /// New ledger of the first server.
    pub ledger_i: SparseVec,
    /// New ledger of the second server.
    pub ledger_j: SparseVec,
    /// Reduction in `ΣC` achieved by the exchange (≥ 0 up to rounding).
    pub improvement: f64,
    /// Total volume of requests that changed servers.
    pub moved: f64,
}

/// Cost contributed by a pair of servers: their congestion terms plus
/// the communication cost of every request they host. Exchanges between
/// `i` and `j` change only this quantity, so improvements can be
/// computed without touching the rest of the system.
pub fn pair_cost(
    instance: &Instance,
    ledger_i: &SparseVec,
    ledger_j: &SparseVec,
    i: usize,
    j: usize,
) -> f64 {
    let li = ledger_i.sum();
    let lj = ledger_j.sum();
    let mut cost = li * li / (2.0 * instance.speed(i)) + lj * lj / (2.0 * instance.speed(j));
    for (k, r) in ledger_i.iter() {
        let c = instance.c(k as usize, i);
        if c > 0.0 {
            cost += c * r;
        }
    }
    for (k, r) in ledger_j.iter() {
        let c = instance.c(k as usize, j);
        if c > 0.0 {
            cost += c * r;
        }
    }
    cost
}

/// Runs Algorithm 1 on the ledgers of servers `i` and `j` (without
/// touching the enclosing [`Assignment`]).
pub fn calc_best_transfer(
    instance: &Instance,
    ledger_i: &SparseVec,
    ledger_j: &SparseVec,
    i: usize,
    j: usize,
) -> TransferOutcome {
    calc_best_transfer_g(instance, ledger_i, ledger_j, i, j, 0.0)
}

/// [`calc_best_transfer`] with a transfer quantum: every per-owner
/// transfer is a multiple of `granularity` (the better of the two
/// neighbouring multiples of Lemma 1's continuous optimum, by the
/// exact pair cost). `granularity = 0` gives the continuous algorithm.
///
/// The paper's load consists of *unit requests* — the fractional model
/// is its relaxation (§II, §VII) — so the evaluation protocol uses
/// `granularity = 1.0`: the algorithm stops when no whole request is
/// worth moving, exactly as a discrete simulation would.
pub fn calc_best_transfer_g(
    instance: &Instance,
    ledger_i: &SparseVec,
    ledger_j: &SparseVec,
    i: usize,
    j: usize,
    granularity: f64,
) -> TransferOutcome {
    debug_assert_ne!(i, j, "pairwise exchange needs two distinct servers");
    debug_assert!(granularity >= 0.0, "granularity must be non-negative");
    let before = pair_cost(instance, ledger_i, ledger_j, i, j);
    let si = instance.speed(i);
    let sj = instance.speed(j);

    // First loop of Algorithm 1: pool everything on i.
    let mut pool = ledger_i.clone();
    let mut other = ledger_j.clone();
    pool.merge_from(&mut other);
    let mut li = pool.sum();
    let mut lj = 0.0;

    // Sort owners by ascending c_kj − c_ki; owners that cannot run on j
    // (infinite c_kj) are excluded entirely.
    let mut owners: Vec<(u32, f64)> = pool
        .iter()
        .map(|(k, _)| {
            let ckj = instance.c(k as usize, j);
            let cki = instance.c(k as usize, i);
            let diff = if !ckj.is_finite() {
                f64::INFINITY // never move to j
            } else if !cki.is_finite() {
                f64::NEG_INFINITY // must escape i
            } else {
                ckj - cki
            };
            (k, diff)
        })
        .collect();
    owners.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("latency diffs comparable"));

    let mut new_j = SparseVec::with_capacity(owners.len());
    for (k, diff) in owners {
        if diff == f64::INFINITY {
            break; // everything after is also forbidden on j
        }
        let rki = pool.get(k);
        if rki <= 0.0 {
            continue;
        }
        let delta = if diff == f64::NEG_INFINITY {
            rki
        } else {
            let raw = ((sj * li - si * lj) - si * sj * diff) / (si + sj);
            let continuous = raw.min(rki).max(0.0);
            if granularity > 0.0 {
                // Best multiple of the quantum around the continuous
                // optimum, by the exact pair-cost restriction
                // f(Δ) = (l_i−Δ)²/2s_i + (l_j+Δ)²/2s_j + Δ·diff
                // (convex, so only the two neighbours can win; moving
                // the whole r_ki stays allowed so full owner returns
                // survive quantization).
                let f = |d: f64| {
                    let a = li - d;
                    let b = lj + d;
                    a * a / (2.0 * si) + b * b / (2.0 * sj) + d * diff
                };
                let lo = (continuous / granularity).floor() * granularity;
                let hi = (lo + granularity).min(rki);
                if f(hi) < f(lo) {
                    hi
                } else {
                    lo
                }
            } else {
                continuous
            }
        };
        if delta > 0.0 {
            pool.add(k, -delta);
            new_j.add(k, delta);
            li -= delta;
            lj += delta;
        }
    }

    let after = pair_cost(instance, &pool, &new_j, i, j);
    // Moved volume relative to the *original* placement.
    let mut moved = 0.0;
    for (k, r_new) in new_j.iter() {
        let r_old = ledger_j.get(k);
        moved += (r_new - r_old).abs();
    }
    for (k, r_old) in ledger_j.iter() {
        if new_j.get(k) == 0.0 {
            moved += r_old;
        }
    }

    TransferOutcome {
        ledger_i: pool,
        ledger_j: new_j,
        improvement: before - after,
        moved,
    }
}

/// Convenience wrapper: runs Algorithm 1 inside an [`Assignment`] and
/// applies the result. Returns the outcome's improvement and moved
/// volume.
///
/// ```
/// use dlb_core::{Assignment, Instance, LatencyMatrix};
/// use dlb_distributed::transfer::apply_best_transfer;
///
/// // 10 requests on server 0, an idle equal-speed server 1, 4 ms away:
/// // Lemma 1 moves Δ = (l₀ − l₁ − c·s)/2 = 3 requests.
/// let instance = Instance::new(
///     vec![1.0, 1.0],
///     vec![10.0, 0.0],
///     LatencyMatrix::homogeneous(2, 4.0),
/// );
/// let mut a = Assignment::local(&instance);
/// let (improvement, moved) = apply_best_transfer(&instance, &mut a, 0, 1);
/// assert!((moved - 3.0).abs() < 1e-9);
/// assert!(improvement > 0.0);
/// assert!((a.load(0) - 7.0).abs() < 1e-9);
/// ```
pub fn apply_best_transfer(
    instance: &Instance,
    assignment: &mut Assignment,
    i: usize,
    j: usize,
) -> (f64, f64) {
    let outcome = calc_best_transfer(instance, assignment.ledger(i), assignment.ledger(j), i, j);
    let improvement = outcome.improvement;
    let moved = outcome.moved;
    assignment.replace_ledger(i, outcome.ledger_i);
    assignment.replace_ledger(j, outcome.ledger_j);
    (improvement, moved)
}

/// Lemma 1's optimal single-owner transfer (exposed for tests and the
/// homogeneous-theory checks): amount of owner `k`'s requests to move
/// from `i` to `j` given current loads.
pub fn lemma1_delta(
    instance: &Instance,
    li: f64,
    lj: f64,
    rki: f64,
    k: usize,
    i: usize,
    j: usize,
) -> f64 {
    let si = instance.speed(i);
    let sj = instance.speed(j);
    let raw = ((sj * li - si * lj) - si * sj * (instance.c(k, j) - instance.c(k, i))) / (si + sj);
    raw.clamp(0.0, rki)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::cost::total_cost;
    use dlb_core::rngutil::rng_for;
    use dlb_core::LatencyMatrix;
    use proptest::prelude::*;
    use rand::Rng;

    fn two_server_instance(c: f64, s0: f64, s1: f64, n0: f64, n1: f64) -> Instance {
        Instance::new(vec![s0, s1], vec![n0, n1], LatencyMatrix::homogeneous(2, c))
    }

    #[test]
    fn balances_two_equal_servers() {
        let instance = two_server_instance(0.0, 1.0, 1.0, 10.0, 0.0);
        let mut a = Assignment::local(&instance);
        let (improvement, moved) = apply_best_transfer(&instance, &mut a, 0, 1);
        assert!((a.load(0) - 5.0).abs() < 1e-9);
        assert!((a.load(1) - 5.0).abs() < 1e-9);
        // cost drops from 50 to 25 + 25/... l²/2: 100/2=50 → 2·(25/2)=25.
        assert!((improvement - 25.0).abs() < 1e-9);
        assert!((moved - 5.0).abs() < 1e-9);
        a.check_invariants(&instance).unwrap();
    }

    #[test]
    fn latency_reduces_transfer_lemma1() {
        // Lemma 1 with s=1: Δ = (l_i − l_j − c)/2.
        let c = 4.0;
        let instance = two_server_instance(c, 1.0, 1.0, 10.0, 0.0);
        let mut a = Assignment::local(&instance);
        apply_best_transfer(&instance, &mut a, 0, 1);
        assert!((a.requests(0, 1) - 3.0).abs() < 1e-9, "expected Δ = 3");
    }

    #[test]
    fn no_transfer_when_latency_dominates() {
        let instance = two_server_instance(100.0, 1.0, 1.0, 10.0, 0.0);
        let mut a = Assignment::local(&instance);
        let (improvement, moved) = apply_best_transfer(&instance, &mut a, 0, 1);
        assert_eq!(moved, 0.0);
        assert!(improvement.abs() < 1e-9);
        assert_eq!(a.requests(0, 0), 10.0);
    }

    #[test]
    fn speed_weighted_balance() {
        // s = (1, 3), c = 0: optimum puts 1/4 on server 0.
        let instance = two_server_instance(0.0, 1.0, 3.0, 12.0, 0.0);
        let mut a = Assignment::local(&instance);
        apply_best_transfer(&instance, &mut a, 0, 1);
        assert!((a.load(0) - 3.0).abs() < 1e-9);
        assert!((a.load(1) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn requests_return_to_owner_when_profitable() {
        // Org 0's requests parked on server 1; zero latency; server 0
        // idle and fast: Algorithm 1 must pull work back.
        let instance = two_server_instance(0.0, 2.0, 1.0, 9.0, 0.0);
        let mut a = Assignment::local(&instance);
        a.move_requests(0, 0, 1, 9.0);
        assert_eq!(a.load(0), 0.0);
        let (improvement, _) = apply_best_transfer(&instance, &mut a, 0, 1);
        assert!(improvement > 0.0);
        assert!((a.load(0) - 6.0).abs() < 1e-9, "load0 = {}", a.load(0));
        assert!((a.load(1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn owner_sort_prefers_network_close_requests() {
        // Three orgs; server 2's requests are cheap to move to server 1,
        // org 0's are expensive. After balancing 0↔1, the moved mass
        // should preferentially be org 2's.
        let mut lat = LatencyMatrix::zero(3);
        lat.set(0, 1, 10.0);
        lat.set(1, 0, 10.0);
        lat.set(2, 0, 5.0);
        lat.set(0, 2, 5.0);
        lat.set(2, 1, 0.5);
        lat.set(1, 2, 0.5);
        let instance = Instance::new(vec![1.0; 3], vec![8.0, 0.0, 4.0], lat);
        let mut a = Assignment::local(&instance);
        // Park org 2's requests on server 0 first (e.g. earlier round).
        a.move_requests(2, 2, 0, 4.0);
        let before = total_cost(&instance, &a);
        apply_best_transfer(&instance, &mut a, 0, 1);
        let after = total_cost(&instance, &a);
        assert!(after < before);
        // org 2's requests should move to server 1 before org 0's do.
        assert!(a.requests(2, 1) > 0.0);
        assert!(a.requests(2, 1) >= a.requests(0, 1) - 1e-9);
        a.check_invariants(&instance).unwrap();
    }

    #[test]
    fn forbidden_destination_is_respected() {
        let mut lat = LatencyMatrix::homogeneous(2, 1.0);
        lat.set(0, 1, f64::INFINITY); // org 0 may not run on server 1
        let instance = Instance::new(vec![1.0, 1.0], vec![10.0, 0.0], lat);
        let mut a = Assignment::local(&instance);
        let (_, moved) = apply_best_transfer(&instance, &mut a, 0, 1);
        assert_eq!(moved, 0.0, "all mass belongs to org 0 and must stay");
        assert_eq!(a.requests(0, 0), 10.0);
    }

    #[test]
    fn improvement_matches_global_cost_change() {
        let mut rng = rng_for(77, 0);
        for _ in 0..20 {
            let m = 4;
            let mut lat = LatencyMatrix::zero(m);
            for i in 0..m {
                for j in 0..m {
                    if i != j {
                        lat.set(i, j, rng.gen_range(0.0..8.0));
                    }
                }
            }
            let instance = Instance::new(
                (0..m).map(|_| rng.gen_range(1.0..4.0)).collect(),
                (0..m).map(|_| rng.gen_range(0.0..30.0)).collect(),
                lat,
            );
            let mut a = Assignment::local(&instance);
            // Random pre-shuffling moves.
            for _ in 0..6 {
                let k = rng.gen_range(0..m);
                let from = rng.gen_range(0..m);
                let to = rng.gen_range(0..m);
                let amt = a.requests(k, from) * rng.gen::<f64>();
                if from != to && amt > 0.0 {
                    a.move_requests(k, from, to, amt);
                }
            }
            let before = total_cost(&instance, &a);
            let (improvement, _) = apply_best_transfer(&instance, &mut a, 0, 1);
            let after = total_cost(&instance, &a);
            assert!(
                ((before - after) - improvement).abs() < 1e-6 * before.max(1.0),
                "improvement {improvement} vs actual {}",
                before - after
            );
            assert!(improvement >= -1e-9, "Algorithm 1 must never hurt");
            a.check_invariants(&instance).unwrap();
        }
    }

    #[test]
    fn quantized_transfer_moves_whole_requests() {
        // Δ* = (10 − 0 − 3)/2 = 3.5 continuous; quantized must pick 3
        // or 4, whichever prices better. f(3) = 49/2+9/2+9 = 38,
        // f(4) = 36/2+16/2+12 = 38 — tie; either is fine, but it must
        // be integral.
        let instance = two_server_instance(3.0, 1.0, 1.0, 10.0, 0.0);
        let out = calc_best_transfer_g(
            &instance,
            &{
                let mut v = SparseVec::new();
                v.set(0, 10.0);
                v
            },
            &SparseVec::new(),
            0,
            1,
            1.0,
        );
        let moved = out.ledger_j.get(0);
        assert!(
            (moved - 3.0).abs() < 1e-12 || (moved - 4.0).abs() < 1e-12,
            "moved {moved} is not a neighbouring integer of 3.5"
        );
        assert!(out.improvement > 0.0);
    }

    #[test]
    fn quantized_never_worse_than_no_move() {
        // When the continuous optimum is below half a request, the
        // quantized exchange must stay put rather than overshoot.
        let instance = two_server_instance(9.4, 1.0, 1.0, 10.0, 0.0);
        // Δ* = (10 − 9.4)/2 = 0.3 → f(0) vs f(1): f(0) = 50,
        // f(1) = 81/2 + 1/2 + 9.4 = 50.4 → stay.
        let mut a = Assignment::local(&instance);
        let before = total_cost(&instance, &a);
        let out = calc_best_transfer_g(&instance, a.ledger(0), a.ledger(1), 0, 1, 1.0);
        a.replace_ledger(0, out.ledger_i);
        a.replace_ledger(1, out.ledger_j);
        let after = total_cost(&instance, &a);
        assert!(after <= before + 1e-9);
        assert_eq!(a.requests(0, 1), 0.0, "must not move a whole request");
    }

    proptest! {
        /// With unit granularity and integer inputs, ledgers stay
        /// integral and the exchange never increases the cost.
        #[test]
        fn prop_quantized_integrality(
            n0 in 0u32..60, n1 in 0u32..60,
            s0 in 1u32..4, s1 in 1u32..4,
            c in 0u32..12,
        ) {
            let instance = two_server_instance(
                c as f64, s0 as f64, s1 as f64, n0 as f64, n1 as f64,
            );
            let mut a = Assignment::local(&instance);
            let before = total_cost(&instance, &a);
            let out = calc_best_transfer_g(&instance, a.ledger(0), a.ledger(1), 0, 1, 1.0);
            a.replace_ledger(0, out.ledger_i);
            a.replace_ledger(1, out.ledger_j);
            let after = total_cost(&instance, &a);
            prop_assert!(after <= before + 1e-9 * before.max(1.0));
            for srv in 0..2 {
                for (_, r) in a.ledger(srv).iter() {
                    prop_assert!(
                        (r - r.round()).abs() < 1e-9,
                        "non-integral ledger entry {r}"
                    );
                }
            }
            prop_assert!(a.check_invariants(&instance).is_ok());
        }
    }

    proptest! {
        /// Lemma 2: after Algorithm 1 no single-owner move between the
        /// pair improves the cost.
        #[test]
        fn prop_pairwise_optimality(
            n in prop::collection::vec(0.0f64..30.0, 3),
            s in prop::collection::vec(0.5f64..4.0, 3),
            c01 in 0.0f64..6.0, c02 in 0.0f64..6.0, c12 in 0.0f64..6.0,
            park in 0.0f64..1.0,
        ) {
            let mut lat = LatencyMatrix::zero(3);
            lat.set(0, 1, c01); lat.set(1, 0, c01);
            lat.set(0, 2, c02); lat.set(2, 0, c02);
            lat.set(1, 2, c12); lat.set(2, 1, c12);
            let instance = Instance::new(s, n.clone(), lat);
            let mut a = Assignment::local(&instance);
            // Park some of org 2's requests on server 0.
            let amt = n[2] * park;
            if amt > 0.0 {
                a.move_requests(2, 2, 0, amt);
            }
            apply_best_transfer(&instance, &mut a, 0, 1);
            let base = total_cost(&instance, &a);
            // Try moving epsilons of every owner in both directions.
            for k in 0..3 {
                for (from, to) in [(0usize, 1usize), (1, 0)] {
                    let have = a.requests(k, from);
                    for eps_frac in [1e-3, 0.05, 0.5, 1.0] {
                        let delta = have * eps_frac;
                        if delta <= 0.0 { continue; }
                        let mut trial = a.clone();
                        trial.move_requests(k, from, to, delta);
                        let cost = total_cost(&instance, &trial);
                        prop_assert!(
                            cost >= base - 1e-7 * base.max(1.0),
                            "moving {delta} of org {k} {from}->{to} improves: {base} -> {cost}"
                        );
                    }
                }
            }
        }

        /// The exchange never loses mass and never increases ΣC.
        #[test]
        fn prop_transfer_sound(
            n0 in 0.0f64..40.0, n1 in 0.0f64..40.0,
            s0 in 0.5f64..4.0, s1 in 0.5f64..4.0,
            c in 0.0f64..10.0,
        ) {
            let instance = two_server_instance(c, s0, s1, n0, n1);
            let mut a = Assignment::local(&instance);
            let before = total_cost(&instance, &a);
            let (improvement, _) = apply_best_transfer(&instance, &mut a, 0, 1);
            let after = total_cost(&instance, &a);
            prop_assert!(improvement >= -1e-9);
            prop_assert!(after <= before + 1e-9 * before.max(1.0));
            prop_assert!(a.check_invariants(&instance).is_ok());
        }
    }
}
