//! The error graph of Proposition 1.
//!
//! Given the current solution `ρ'` and a target solution `ρ`, the error
//! graph has an edge `i → j` for every transfer of requests from server
//! `i` to server `j` needed to turn `ρ'` into `ρ`. A *negative cycle* is
//! a cyclic sequence of such transfers whose net communication cost is
//! negative — i.e. servers essentially relaying requests to one another
//! for nothing. Proposition 1's distance bound applies only when the
//! error graph has no negative cycle, which is what
//! [`crate::cycles::remove_negative_cycles`] establishes.

use dlb_core::{Assignment, Instance};
use dlb_flow::bellman_ford::{bellman_ford, WeightedEdge};

/// One transfer in the decomposition of `ρ − ρ'`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Move {
    /// Organization whose requests move.
    pub owner: usize,
    /// Server the requests leave.
    pub from: usize,
    /// Server the requests join.
    pub to: usize,
    /// Request volume.
    pub amount: f64,
    /// Communication-cost change per unit (`c_{owner,to} − c_{owner,from}`).
    pub weight: f64,
}

/// The error graph between two assignments.
#[derive(Debug, Clone)]
pub struct ErrorGraph {
    /// Number of servers.
    pub m: usize,
    /// The underlying transfer decomposition.
    pub moves: Vec<Move>,
}

impl ErrorGraph {
    /// Builds the error graph by decomposing, per organization, the
    /// difference between `current` and `target` into surplus→deficit
    /// transfers (a greedy transportation plan).
    pub fn build(instance: &Instance, current: &Assignment, target: &Assignment) -> Self {
        let m = instance.len();
        assert_eq!(current.len(), m);
        assert_eq!(target.len(), m);
        let mut moves = Vec::new();
        for k in 0..m {
            // Per-server surplus (current − target) of org k's requests.
            let mut surplus: Vec<(usize, f64)> = Vec::new();
            let mut deficit: Vec<(usize, f64)> = Vec::new();
            for j in 0..m {
                let d = current.requests(k, j) - target.requests(k, j);
                if d > 1e-12 {
                    surplus.push((j, d));
                } else if d < -1e-12 {
                    deficit.push((j, -d));
                }
            }
            let mut si = 0;
            let mut di = 0;
            while si < surplus.len() && di < deficit.len() {
                let amount = surplus[si].1.min(deficit[di].1);
                let from = surplus[si].0;
                let to = deficit[di].0;
                moves.push(Move {
                    owner: k,
                    from,
                    to,
                    amount,
                    weight: instance.c(k, to) - instance.c(k, from),
                });
                surplus[si].1 -= amount;
                deficit[di].1 -= amount;
                if surplus[si].1 <= 1e-12 {
                    si += 1;
                }
                if deficit[di].1 <= 1e-12 {
                    di += 1;
                }
            }
        }
        Self { m, moves }
    }

    /// Total transferred volume, `‖ρ − ρ'‖₁ / 2` per owner pair
    /// (each unit counted once as a move).
    pub fn total_volume(&self) -> f64 {
        self.moves.iter().map(|mv| mv.amount).sum()
    }

    /// Edges for cycle analysis: one weighted edge per move
    /// (`from → to`, weight = per-unit communication change).
    pub fn edges(&self) -> Vec<WeightedEdge> {
        self.moves
            .iter()
            .map(|mv| WeightedEdge {
                from: mv.from,
                to: mv.to,
                weight: mv.weight,
            })
            .collect()
    }

    /// Returns `true` when the error graph contains a cycle of
    /// transfers with negative total communication cost.
    pub fn has_negative_cycle(&self) -> bool {
        let edges = self.edges();
        let sources: Vec<usize> = (0..self.m).collect();
        bellman_ford(self.m, &edges, &sources)
            .negative_cycle
            .is_some()
    }
}

/// Manhattan distance `Σ_{kj} |r_kj − r'_kj|` between two assignments
/// (in requests, matching Proposition 1's `‖ρ − ρ'‖₁`).
pub fn manhattan_distance(a: &Assignment, b: &Assignment) -> f64 {
    assert_eq!(a.len(), b.len());
    let m = a.len();
    let mut dist = 0.0;
    for j in 0..m {
        // Union of owners on both ledgers.
        for (k, r) in a.ledger(j).iter() {
            dist += (r - b.ledger(j).get(k)).abs();
        }
        for (k, r) in b.ledger(j).iter() {
            if a.ledger(j).get(k) == 0.0 {
                dist += r.abs();
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::remove_negative_cycles;
    use dlb_core::LatencyMatrix;

    fn instance3(c: f64) -> Instance {
        Instance::new(
            vec![1.0; 3],
            vec![10.0; 3],
            LatencyMatrix::homogeneous(3, c),
        )
    }

    #[test]
    fn empty_graph_between_identical_states() {
        let instance = instance3(5.0);
        let a = Assignment::local(&instance);
        let g = ErrorGraph::build(&instance, &a, &a);
        assert!(g.moves.is_empty());
        assert_eq!(g.total_volume(), 0.0);
        assert!(!g.has_negative_cycle());
        assert_eq!(manhattan_distance(&a, &a), 0.0);
    }

    #[test]
    fn relay_cycle_shows_up_as_negative_cycle() {
        let instance = instance3(5.0);
        let mut current = Assignment::local(&instance);
        current.move_requests(0, 0, 1, 4.0);
        current.move_requests(1, 1, 2, 4.0);
        current.move_requests(2, 2, 0, 4.0);
        let target = Assignment::local(&instance);
        let g = ErrorGraph::build(&instance, &current, &target);
        // Undoing the cycle: each move returns requests home (weight −c),
        // forming a cycle of total weight −3c < 0.
        assert!(g.has_negative_cycle());
        assert!((g.total_volume() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_removal_clears_negative_cycles() {
        let instance = instance3(5.0);
        let mut current = Assignment::local(&instance);
        current.move_requests(0, 0, 1, 4.0);
        current.move_requests(1, 1, 2, 4.0);
        current.move_requests(2, 2, 0, 4.0);
        remove_negative_cycles(&instance, &mut current);
        let target = Assignment::local(&instance);
        let g = ErrorGraph::build(&instance, &current, &target);
        assert!(
            !g.has_negative_cycle(),
            "after removal the error graph must be cycle-free: {:?}",
            g.moves
        );
    }

    #[test]
    fn simple_imbalance_has_no_negative_cycle() {
        let instance = instance3(2.0);
        let mut current = Assignment::local(&instance);
        // target: balanced transfer 0 → 1
        let mut target = Assignment::local(&instance);
        target.move_requests(0, 0, 1, 3.0);
        let g = ErrorGraph::build(&instance, &current, &target);
        assert_eq!(g.moves.len(), 1);
        assert!(!g.has_negative_cycle());
        assert!((manhattan_distance(&current, &target) - 6.0).abs() < 1e-9);
        // moving in the current state should match the move list
        current.move_requests(0, 0, 1, 3.0);
        assert_eq!(manhattan_distance(&current, &target), 0.0);
    }

    #[test]
    fn weights_reflect_owner_latency() {
        let mut lat = LatencyMatrix::zero(3);
        lat.set(0, 1, 7.0);
        lat.set(1, 0, 3.0);
        lat.set(0, 2, 2.0);
        lat.set(2, 0, 2.0);
        lat.set(1, 2, 1.0);
        lat.set(2, 1, 1.0);
        let instance = Instance::new(vec![1.0; 3], vec![10.0; 3], lat);
        let current = Assignment::local(&instance);
        let mut target = Assignment::local(&instance);
        target.move_requests(0, 0, 1, 5.0);
        let g = ErrorGraph::build(&instance, &current, &target);
        assert_eq!(g.moves.len(), 1);
        let mv = g.moves[0];
        assert_eq!(mv.owner, 0);
        assert_eq!((mv.from, mv.to), (0, 1));
        assert_eq!(mv.weight, 7.0); // c(0,1) − c(0,0)
    }
}
