//! The gossip feed: real dissemination behind the engine's scoring.
//!
//! The paper (§IV) assumes loads "can be disseminated by a gossiping
//! algorithm" running roughly O(log m) times faster than the balancer,
//! so every server scores partners on *almost* fresh views. The
//! engine's `load_staleness` option emulates that with one shared
//! snapshot refreshed every T iterations — useful for ablations, but a
//! fake: no protocol runs, no bytes move, and every server sees the
//! same staleness.
//!
//! [`GossipFeed`] closes the loop. It wraps a
//! [`dlb_gossip::DeltaGossip`] network — the sharded, delta-encoded
//! control plane — on the engine's instance topology: one gossip node
//! per server, link delays of half the pairwise latency (`c_ij / 2`,
//! the one-way trip of the cost model's round trip). Each engine
//! iteration, [`GossipFeed::step`] publishes every server's changed
//! load into the protocol and advances the virtual gossip clock by
//! `⌈log2 m⌉` periods — the paper's speed ratio — then snapshots each
//! node's believed load vector for the pruned pre-scoring
//! ([`ScoreView::PerServer`](crate::round::ScoreView)). Views are
//! therefore genuinely per-server, genuinely stale (a load published
//! this iteration reaches most nodes a fraction of an iteration later),
//! and every byte that moved is metered in [`GossipTraffic`].
//!
//! The network starts [warm](dlb_gossip::DeltaGossip::warm): the paper
//! model assumes an initial dissemination round ran before balancing
//! starts, so iteration 0 scores on exact loads and staleness only
//! appears once loads start moving.

use dlb_core::LatencyMatrix;
use dlb_gossip::{DeltaGossip, DeltaGossipConfig, GossipTraffic};

/// Drives a [`DeltaGossip`] network in lockstep with the engine's
/// iterations and serves per-server load views (see the module docs).
#[derive(Debug, Clone)]
pub struct GossipFeed {
    net: DeltaGossip,
    period_ms: f64,
    /// Gossip periods advanced per engine iteration: `⌈log2 m⌉`, the
    /// paper's gossip-vs-balancer speed ratio.
    periods_per_iter: u32,
    /// Last load each server published, so unchanged loads don't churn
    /// versions (and bandwidth) for nothing.
    published: Vec<f64>,
    /// Per-server believed load vectors, refreshed after each step.
    views: Vec<Vec<f64>>,
}

impl GossipFeed {
    /// A feed over `loads.len()` servers, gossiping every `period_ms`
    /// virtual ms. Deterministic per `seed`.
    pub fn new(loads: &[f64], period_ms: f64, seed: u64) -> Self {
        assert!(
            period_ms.is_finite() && period_ms > 0.0,
            "gossip period must be positive, got {period_ms}"
        );
        let m = loads.len();
        let net = DeltaGossip::warm(
            loads,
            seed,
            DeltaGossipConfig {
                period_ms,
                ..DeltaGossipConfig::default()
            },
        );
        let periods_per_iter = (usize::BITS - m.max(2).saturating_sub(1).leading_zeros()).max(1);
        let views = (0..m).map(|i| net.view(i)).collect();
        Self {
            net,
            period_ms,
            periods_per_iter,
            published: loads.to_vec(),
            views,
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Returns `true` for an empty system.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// One engine iteration's worth of gossip: publish every changed
    /// load, advance `⌈log2 m⌉` periods with one-way link delays of
    /// `latency(i, j) / 2`, and refresh the per-server views.
    pub fn step(&mut self, latency: &LatencyMatrix, loads: &[f64]) {
        assert_eq!(loads.len(), self.len(), "feed built for a different size");
        for (i, (&load, published)) in loads.iter().zip(self.published.iter_mut()).enumerate() {
            if load != *published {
                self.net.publish(i, load);
                *published = load;
            }
        }
        let until = self.net.now_ms() + self.period_ms * f64::from(self.periods_per_iter);
        self.net.advance(until, |i, j| latency.get(i, j) / 2.0);
        for (i, view) in self.views.iter_mut().enumerate() {
            self.net.view_into(i, view);
        }
    }

    /// The load vector as server `id`'s gossip node currently believes
    /// it (as of the last [`step`](Self::step)).
    pub fn view(&self, id: usize) -> &[f64] {
        &self.views[id]
    }

    /// All per-server views, indexed by server.
    pub fn views(&self) -> &[Vec<f64>] {
        &self.views
    }

    /// Wire traffic the feed's protocol has generated so far.
    pub fn traffic(&self) -> GossipTraffic {
        self.net.traffic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_latency(m: usize, ms: f64) -> LatencyMatrix {
        let mut lat = LatencyMatrix::zero(m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    lat.set(i, j, ms);
                }
            }
        }
        lat
    }

    #[test]
    fn starts_exact_and_tracks_changes_with_lag() {
        let m = 40;
        let loads: Vec<f64> = (0..m).map(|i| i as f64).collect();
        let mut feed = GossipFeed::new(&loads, 100.0, 7);
        for i in 0..m {
            assert_eq!(feed.view(i), &loads[..], "warm start must be exact");
        }
        // One server's load changes; after a step most nodes know, and
        // after a few steps everyone does.
        let mut new_loads = loads.clone();
        new_loads[3] = 999.0;
        feed.step(&uniform_latency(m, 20.0), &new_loads);
        let aware = (0..m).filter(|&i| feed.view(i)[3] == 999.0).count();
        assert!(aware > 0, "gossip must have started spreading");
        for _ in 0..6 {
            feed.step(&uniform_latency(m, 20.0), &new_loads);
        }
        for i in 0..m {
            assert_eq!(feed.view(i)[3], 999.0, "node {i} never caught up");
        }
        assert!(feed.traffic().bytes > 0);
    }

    #[test]
    fn unchanged_loads_publish_nothing() {
        let loads: Vec<f64> = (0..24).map(|i| (i % 5) as f64).collect();
        let mut feed = GossipFeed::new(&loads, 100.0, 1);
        feed.step(&uniform_latency(24, 10.0), &loads);
        let t = feed.traffic();
        assert_eq!(t.delta_entries, 0, "no publish ⇒ nothing hot: {t:?}");
        assert!(!feed.is_empty());
        assert_eq!(feed.len(), 24);
    }

    #[test]
    fn steps_are_deterministic_per_seed() {
        let loads: Vec<f64> = (0..30).map(|i| i as f64 * 1.5).collect();
        let lat = uniform_latency(30, 15.0);
        let run = |seed| {
            let mut feed = GossipFeed::new(&loads, 50.0, seed);
            let mut loads = loads.clone();
            for step in 0..10 {
                loads[step * 2] += 7.0;
                feed.step(&lat, &loads);
            }
            (feed.traffic(), feed.views().to_vec())
        };
        let (traffic, views) = run(3);
        assert_eq!((traffic, views), run(3), "same seed must replay exactly");
        assert!(!traffic.is_quiet());
    }
}
