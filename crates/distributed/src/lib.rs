//! # dlb-distributed — the paper's distributed load-balancing algorithm
//!
//! This crate implements the primary contribution of Skowron & Rzadca
//! (IPDPS 2013):
//!
//! * [`transfer`] — **Algorithm 1** (`calcBestTransfer`): the optimal
//!   pairwise exchange between two servers, derived from Lemma 1's
//!   closed-form transfer `Δr = (s_j l_i − s_i l_j − s_i s_j (c_kj −
//!   c_ki)) / (s_i + s_j)` applied per owning organization in ascending
//!   `c_kj − c_ki` order,
//! * [`mine`] — **Algorithm 2** (Min-Error): each server picks the
//!   partner with the largest exact improvement and exchanges requests
//!   with it,
//! * [`engine`] — the iteration engine used in all experiments: in each
//!   iteration every server (in random order) executes Algorithm 2;
//!   includes the pruned partner-selection mode that keeps Figure 2's
//!   5000-server runs tractable, plus incremental `ΣC` tracking,
//! * [`round`] — the batched propose/match/apply round
//!   ([`RoundMode::Batched`]): one outer-parallel partner-choice pass
//!   over all servers, a deterministic conflict-free matching, and
//!   concurrent execution of the matched (ledger-disjoint) exchanges,
//! * [`feed`] — the [`GossipFeed`] adapter that serves each server's
//!   pruned pre-scoring from a *real* delta-gossip control plane
//!   (`dlb-gossip`) instead of the emulated `load_staleness` snapshot,
//! * [`error_bound`] — **Proposition 1**: the `(4m+1)·ΔR·Σs_i` bound on
//!   the Manhattan distance to the optimum,
//! * [`error_graph`] — the error-graph construction used by the bound's
//!   no-negative-cycle precondition,
//! * [`cycles`] — the Appendix reduction of negative-cycle removal to
//!   minimum-cost maximum flow (via `dlb-flow`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cycles;
pub mod engine;
pub mod error_bound;
pub mod error_graph;
pub mod feed;
pub mod mine;
pub mod round;
pub mod transfer;

pub use engine::{ConvergenceReport, Engine, EngineOptions, IterationStats};
pub use feed::GossipFeed;
pub use round::{RoundMode, RoundOutcome, ScoreView};
pub use transfer::{calc_best_transfer, TransferOutcome};
