//! Algorithm 2: the Min-Error (MinE) step.
//!
//! Server `id` evaluates `impr(id, j)` — the exact `ΣC` reduction of
//! running Algorithm 1 with partner `j` — and exchanges with the best
//! partner. Evaluating all `m−1` partners exactly costs
//! `O(m · nnz log nnz)` per server, which is what the paper's Algorithm 2
//! prescribes; for very large networks (Figure 2 runs up to 5000
//! servers) this module also provides a *pruned* mode that pre-scores
//! partners with a closed-form bound and evaluates only the top `K`
//! candidates exactly. At table scale (`m ≤ 300`) the two modes pick
//! identical partners in virtually every step (property-tested).

use dlb_core::{Assignment, Instance};

use crate::transfer::{calc_best_transfer_g, TransferOutcome};

/// Exact improvement `impr(i, j)`: the `ΣC` reduction Algorithm 1 would
/// achieve on the pair, computed on scratch copies.
pub fn improvement(instance: &Instance, a: &Assignment, i: usize, j: usize) -> f64 {
    improvement_g(instance, a, i, j, 0.0)
}

/// [`improvement`] under a transfer quantum (see
/// [`crate::transfer::calc_best_transfer_g`]).
pub fn improvement_g(
    instance: &Instance,
    a: &Assignment,
    i: usize,
    j: usize,
    granularity: f64,
) -> f64 {
    if i == j {
        return 0.0;
    }
    calc_best_transfer_g(instance, a.ledger(i), a.ledger(j), i, j, granularity).improvement
}

/// Closed-form partner score: the gain of moving one optimal
/// *homogeneous blob* between the servers, using the pair latency
/// `c_ij` as the representative transfer cost:
///
/// ```text
/// Δ* = (s_j l_i − s_i l_j − s_i s_j c) / (s_i + s_j)   (per direction)
/// gain = Δ*² (s_i + s_j) / (2 s_i s_j)
/// ```
///
/// This is exact when all requests on the loaded server belong to its
/// own organization (true for the peak workload) and an upper-envelope
/// heuristic otherwise. Used only to *rank* candidates in pruned mode.
pub fn partner_score(instance: &Instance, loads: &[f64], i: usize, j: usize) -> f64 {
    if i == j {
        return 0.0;
    }
    let si = instance.speed(i);
    let sj = instance.speed(j);
    let li = loads[i];
    let lj = loads[j];
    let gain = |from: usize, to: usize, lf: f64, lt: f64, sf: f64, st: f64| -> f64 {
        let c = instance.c(from, to);
        if !c.is_finite() {
            return 0.0;
        }
        let delta = ((st * lf - sf * lt) - sf * st * c) / (sf + st);
        if delta <= 0.0 {
            return 0.0;
        }
        let delta = delta.min(lf);
        // Exact quadratic gain of moving `delta` at latency `c`:
        // f(0)−f(Δ) = Δ(l_f/s_f − Δ(1/2s_f+1/2s_t) − l_t/s_t − c) + ...
        let inv = 1.0 / (2.0 * sf) + 1.0 / (2.0 * st);
        delta * (lf / sf - lt / st - c) - delta * delta * inv
    };
    gain(i, j, li, lj, si, sj).max(gain(j, i, lj, li, sj, si))
}

/// Partner-selection policy for the MinE step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartnerSelection {
    /// Evaluate `impr` exactly against every other server (Algorithm 2
    /// as written).
    Exact,
    /// Pre-rank partners with [`partner_score`] and evaluate `impr`
    /// exactly only for the `top_k` best-ranked candidates.
    Pruned {
        /// Number of candidates to evaluate exactly.
        top_k: usize,
    },
}

/// Reusable per-caller buffers for [`choose_partner_scratch_g`].
///
/// One MinE step allocates a candidate list, a score table, and an
/// improvement table; at Figure-2 scale the engine runs millions of
/// steps, so the engine (and each propose-phase worker thread) keeps
/// one `PartnerScratch` alive and reuses the buffers instead of
/// allocating three fresh `Vec`s per server per iteration.
#[derive(Debug, Clone, Default)]
pub struct PartnerScratch {
    candidates: Vec<usize>,
    scored: Vec<(usize, f64)>,
    improvements: Vec<f64>,
}

/// Outcome of one MinE step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MineOutcome {
    /// Chosen partner (`None` when no partner improves `ΣC`).
    pub partner: Option<usize>,
    /// Improvement achieved.
    pub improvement: f64,
    /// Request volume moved.
    pub moved: f64,
}

/// Executes Algorithm 2 for server `id`: picks
/// `argmax_j impr(id, j)` under the given selection policy and applies
/// the exchange when it strictly improves `ΣC`.
///
/// `min_improvement` is the absolute improvement threshold below which
/// an exchange is considered noise and skipped.
pub fn mine_step(
    instance: &Instance,
    a: &mut Assignment,
    id: usize,
    selection: PartnerSelection,
    min_improvement: f64,
    parallel: bool,
) -> MineOutcome {
    mine_step_masked(instance, a, id, selection, min_improvement, parallel, None)
}

/// Computes the MinE partner choice without applying it:
/// `argmax_j impr(id, j)` over the reachable candidates, exactly as
/// Algorithm 2 prescribes. Returns `None` when no partner strictly
/// improves `ΣC`.
pub fn choose_partner(
    instance: &Instance,
    a: &Assignment,
    id: usize,
    selection: PartnerSelection,
    min_improvement: f64,
    parallel: bool,
    active: Option<&[bool]>,
) -> Option<(usize, f64)> {
    choose_partner_g(
        instance,
        a,
        id,
        selection,
        min_improvement,
        parallel,
        active,
        0.0,
    )
}

/// [`choose_partner`] under a transfer quantum: improvements are
/// evaluated with the same quantized Algorithm 1 that the exchange
/// will apply, so a positive choice always corresponds to a real move.
#[allow(clippy::too_many_arguments)]
pub fn choose_partner_g(
    instance: &Instance,
    a: &Assignment,
    id: usize,
    selection: PartnerSelection,
    min_improvement: f64,
    parallel: bool,
    active: Option<&[bool]>,
    granularity: f64,
) -> Option<(usize, f64)> {
    let mut scratch = PartnerScratch::default();
    choose_partner_scratch_g(
        instance,
        a,
        id,
        selection,
        min_improvement,
        parallel,
        active,
        granularity,
        None,
        &mut scratch,
    )
}

/// [`choose_partner_g`] with caller-provided scratch buffers — the
/// allocation-free form the engine's hot loops use.
///
/// `score_loads` optionally overrides the load vector used by the
/// pruned mode's closed-form *pre-scoring* (the engine passes its
/// gossip-stale snapshot here when `load_staleness > 0`). The exact
/// Algorithm-1 evaluation of the surviving candidates always runs on
/// the live ledgers, so a positive choice still corresponds to a real
/// improving exchange — staleness can only misrank candidates, exactly
/// like a real dissemination layer.
#[allow(clippy::too_many_arguments)]
pub fn choose_partner_scratch_g(
    instance: &Instance,
    a: &Assignment,
    id: usize,
    selection: PartnerSelection,
    min_improvement: f64,
    parallel: bool,
    active: Option<&[bool]>,
    granularity: f64,
    score_loads: Option<&[f64]>,
    scratch: &mut PartnerScratch,
) -> Option<(usize, f64)> {
    choose_partner_outcome_scratch_g(
        instance,
        a,
        id,
        selection,
        min_improvement,
        parallel,
        active,
        granularity,
        score_loads,
        scratch,
    )
    .map(|(j, outcome)| (j, outcome.improvement))
}

/// [`choose_partner_scratch_g`] returning the winning exchange's full
/// [`TransferOutcome`] instead of just its improvement.
///
/// Algorithm 2's evaluation already runs Algorithm 1 against every
/// candidate, so the chosen partner's post-exchange ledgers exist the
/// moment the argmax is known; returning them lets callers (the
/// engine's sequential sweep and the batched round's apply phase)
/// install the exchange without recomputing it.
#[allow(clippy::too_many_arguments)]
pub fn choose_partner_outcome_scratch_g(
    instance: &Instance,
    a: &Assignment,
    id: usize,
    selection: PartnerSelection,
    min_improvement: f64,
    parallel: bool,
    active: Option<&[bool]>,
    granularity: f64,
    score_loads: Option<&[f64]>,
    scratch: &mut PartnerScratch,
) -> Option<(usize, TransferOutcome)> {
    let m = instance.len();
    if m < 2 {
        return None;
    }
    // Inside a fan-out worker (the batched propose phase) the inner
    // maps would degrade to sequential anyway, but through
    // `par_map_indexed`, which returns a fresh Vec per call. Take the
    // scratch-filling sequential arms directly instead, so the propose
    // hot path stays allocation-free as intended.
    let parallel = parallel && !dlb_par::in_parallel_region();
    let PartnerScratch {
        candidates,
        scored,
        improvements,
    } = scratch;
    let reachable = |j: usize| j != id && active.is_none_or(|mask| mask[j]);
    candidates.clear();
    match selection {
        PartnerSelection::Exact => candidates.extend((0..m).filter(|&j| reachable(j))),
        PartnerSelection::Pruned { top_k } => {
            // Pre-scoring is the hot loop of the pruned large-network
            // mode: every server scores all m−1 partners, so one engine
            // iteration at Figure 2's m = 5000 performs ~25M closed-form
            // evaluations. Fan it out over the index range; the map
            // preserves index order (and degrades to the very same
            // sequential loop under `DLB_THREADS=1`, below the small-n
            // cutoff, or nested inside the batched round's outer
            // fan-out), so the ranking — and therefore the fixpoint —
            // is identical however many workers run.
            let loads = score_loads.unwrap_or_else(|| a.loads());
            let score = |j: usize| {
                if reachable(j) {
                    partner_score(instance, loads, id, j)
                } else {
                    f64::NEG_INFINITY
                }
            };
            scored.clear();
            if parallel {
                scored.extend(
                    dlb_par::par_map_indexed(m, score)
                        .into_iter()
                        .enumerate()
                        .filter(|&(j, _)| reachable(j)),
                );
            } else {
                scored.extend((0..m).filter(|&j| reachable(j)).map(|j| (j, score(j))));
            }
            // Stable descending sort: ties keep index order, matching
            // the sequential pass bit for bit. `total_cmp` orders every
            // float, so a pathological NaN score can never panic the
            // run the way `partial_cmp(..).expect(..)` did — a positive
            // NaN merely wastes one top-k slot and is then rejected by
            // the exact improvement pass below.
            scored.sort_by(|x, y| y.1.total_cmp(&x.1));
            candidates.extend(scored.iter().take(top_k.max(1)).map(|&(j, _)| j));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    // Exact Algorithm-1 evaluation of the surviving candidates — the
    // dominant cost in Exact mode (m−1 ledger merges per server).
    // Index-ordered parallel map keeps results identical to sequential.
    // NaN improvements are rejected up front — a NaN reaching the
    // argmax `match` would overwrite a finite best (NaN fails every
    // comparison) and silently skip a genuinely improving exchange.
    // For finite values the early threshold filter is equivalent to
    // filtering the argmax at the end.
    if parallel {
        let evaluate = |j: usize| improvement_g(instance, a, id, j, granularity);
        improvements.clear();
        improvements.extend(dlb_par::par_map_indexed(candidates.len(), |idx| {
            evaluate(candidates[idx])
        }));
        let mut best: Option<(usize, f64)> = None;
        for (j, &impr) in candidates.iter().zip(improvements.iter()) {
            if impr.is_nan() || impr <= min_improvement {
                continue;
            }
            match best {
                Some((_, b)) if impr <= b => {}
                _ => best = Some((*j, impr)),
            }
        }
        // The fan-out keeps only the scalar improvements; one extra
        // Algorithm-1 run materializes the winner's ledgers.
        let (j, impr) = best?;
        let outcome = calc_best_transfer_g(instance, a.ledger(id), a.ledger(j), id, j, granularity);
        debug_assert!(
            (outcome.improvement - impr).abs() <= 1e-9 * impr.abs().max(1.0),
            "winner re-evaluation drifted: {impr} vs {}",
            outcome.improvement
        );
        Some((j, outcome))
    } else {
        // The sequential scan keeps the best outcome as it goes, so the
        // winning exchange's ledgers are never computed twice.
        let mut best: Option<(usize, TransferOutcome)> = None;
        for &j in candidates.iter() {
            let out = calc_best_transfer_g(instance, a.ledger(id), a.ledger(j), id, j, granularity);
            if out.improvement.is_nan() || out.improvement <= min_improvement {
                continue;
            }
            match &best {
                Some((_, b)) if out.improvement <= b.improvement => {}
                _ => best = Some((j, out)),
            }
        }
        best
    }
}

/// Applies the Algorithm 1 exchange between `id` and `j`, updating both
/// ledgers in the assignment. Returns the request volume moved.
pub fn apply_exchange(instance: &Instance, a: &mut Assignment, id: usize, j: usize) -> f64 {
    apply_exchange_g(instance, a, id, j, 0.0)
}

/// [`apply_exchange`] under a transfer quantum.
pub fn apply_exchange_g(
    instance: &Instance,
    a: &mut Assignment,
    id: usize,
    j: usize,
    granularity: f64,
) -> f64 {
    let outcome = calc_best_transfer_g(instance, a.ledger(id), a.ledger(j), id, j, granularity);
    let moved = outcome.moved;
    a.replace_ledger(id, outcome.ledger_i);
    a.replace_ledger(j, outcome.ledger_j);
    moved
}

/// [`mine_step`] restricted to reachable partners: `active[j] == false`
/// marks server `j` as failed/partitioned this round. Because every
/// exchange involves exactly two servers, the algorithm keeps making
/// progress with whatever subset is reachable — the robustness property
/// the paper argues for in §IV.
pub fn mine_step_masked(
    instance: &Instance,
    a: &mut Assignment,
    id: usize,
    selection: PartnerSelection,
    min_improvement: f64,
    parallel: bool,
    active: Option<&[bool]>,
) -> MineOutcome {
    mine_step_masked_g(
        instance,
        a,
        id,
        selection,
        min_improvement,
        parallel,
        active,
        0.0,
    )
}

/// [`mine_step_masked`] under a transfer quantum.
#[allow(clippy::too_many_arguments)]
pub fn mine_step_masked_g(
    instance: &Instance,
    a: &mut Assignment,
    id: usize,
    selection: PartnerSelection,
    min_improvement: f64,
    parallel: bool,
    active: Option<&[bool]>,
    granularity: f64,
) -> MineOutcome {
    let mut scratch = PartnerScratch::default();
    match choose_partner_outcome_scratch_g(
        instance,
        a,
        id,
        selection,
        min_improvement,
        parallel,
        active,
        granularity,
        None,
        &mut scratch,
    ) {
        Some((j, outcome)) => {
            let moved = outcome.moved;
            let improvement = outcome.improvement;
            a.replace_ledger(id, outcome.ledger_i);
            a.replace_ledger(j, outcome.ledger_j);
            MineOutcome {
                partner: Some(j),
                improvement,
                moved,
            }
        }
        None => MineOutcome {
            partner: None,
            improvement: 0.0,
            moved: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::cost::total_cost;
    use dlb_core::rngutil::rng_for;
    use dlb_core::LatencyMatrix;
    use rand::Rng;

    fn random_instance(m: usize, seed: u64) -> Instance {
        let mut rng = rng_for(seed, 13);
        let mut lat = LatencyMatrix::zero(m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    lat.set(i, j, rng.gen_range(0.5..12.0));
                }
            }
        }
        Instance::new(
            (0..m).map(|_| rng.gen_range(1.0..5.0)).collect(),
            (0..m).map(|_| rng.gen_range(0.0..50.0)).collect(),
            lat,
        )
    }

    #[test]
    fn picks_the_globally_best_partner() {
        let instance = random_instance(8, 1);
        let a = Assignment::local(&instance);
        // exhaustively find argmax impr(0, j)
        let mut best_j = 1;
        let mut best = f64::NEG_INFINITY;
        for j in 1..8 {
            let v = improvement(&instance, &a, 0, j);
            if v > best {
                best = v;
                best_j = j;
            }
        }
        let mut a2 = a.clone();
        let out = mine_step(&instance, &mut a2, 0, PartnerSelection::Exact, 1e-9, false);
        if best > 1e-9 {
            assert_eq!(out.partner, Some(best_j));
            assert!((out.improvement - best).abs() < 1e-9);
        } else {
            assert_eq!(out.partner, None);
        }
    }

    #[test]
    fn step_reduces_total_cost() {
        let instance = random_instance(10, 2);
        let mut a = Assignment::local(&instance);
        let before = total_cost(&instance, &a);
        let out = mine_step(&instance, &mut a, 0, PartnerSelection::Exact, 1e-9, false);
        let after = total_cost(&instance, &a);
        assert!(
            (before - after - out.improvement).abs() < 1e-6 * before.max(1.0),
            "claimed {} actual {}",
            out.improvement,
            before - after
        );
        a.check_invariants(&instance).unwrap();
    }

    #[test]
    fn no_step_at_optimum() {
        // Perfectly balanced homogeneous system: nothing to do.
        let instance = Instance::homogeneous(4, 1.0, 10.0, 20.0);
        let mut a = Assignment::local(&instance);
        let out = mine_step(&instance, &mut a, 0, PartnerSelection::Exact, 1e-9, false);
        assert_eq!(out.partner, None);
        assert_eq!(out.moved, 0.0);
    }

    #[test]
    fn pruned_matches_exact_on_peak_workload() {
        // One hot server: the pruned score is exact there, so pruned and
        // exact must pick the same partner.
        for seed in 0..5 {
            let mut instance = random_instance(20, seed);
            let mut loads = vec![0.0; 20];
            loads[3] = 1000.0;
            instance.set_own_loads(loads);
            let a = Assignment::local(&instance);
            let mut a_exact = a.clone();
            let mut a_pruned = a.clone();
            let exact = mine_step(
                &instance,
                &mut a_exact,
                3,
                PartnerSelection::Exact,
                1e-9,
                false,
            );
            let pruned = mine_step(
                &instance,
                &mut a_pruned,
                3,
                PartnerSelection::Pruned { top_k: 4 },
                1e-9,
                false,
            );
            assert_eq!(exact.partner, pruned.partner, "seed {seed}");
        }
    }

    #[test]
    fn pruned_improvement_close_to_exact_generally() {
        let instance = random_instance(24, 9);
        let a = Assignment::local(&instance);
        let mut a_exact = a.clone();
        let mut a_pruned = a.clone();
        let exact = mine_step(
            &instance,
            &mut a_exact,
            0,
            PartnerSelection::Exact,
            1e-9,
            false,
        );
        let pruned = mine_step(
            &instance,
            &mut a_pruned,
            0,
            PartnerSelection::Pruned { top_k: 8 },
            1e-9,
            false,
        );
        // The pruned step must achieve at least half the exact gain
        // (in practice it is nearly always identical).
        assert!(pruned.improvement >= 0.5 * exact.improvement - 1e-9);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let instance = random_instance(80, 4);
        let a = Assignment::local(&instance);
        let mut a_seq = a.clone();
        let mut a_par = a.clone();
        let seq = mine_step(
            &instance,
            &mut a_seq,
            5,
            PartnerSelection::Exact,
            1e-9,
            false,
        );
        let par = mine_step(
            &instance,
            &mut a_par,
            5,
            PartnerSelection::Exact,
            1e-9,
            true,
        );
        assert_eq!(seq.partner, par.partner);
        assert!((seq.improvement - par.improvement).abs() < 1e-12);
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        let instance = random_instance(40, 6);
        let a = Assignment::local(&instance);
        let mut scratch = PartnerScratch::default();
        for id in 0..10 {
            for selection in [
                PartnerSelection::Exact,
                PartnerSelection::Pruned { top_k: 5 },
            ] {
                let fresh = choose_partner_g(&instance, &a, id, selection, 1e-9, false, None, 0.0);
                let reused = choose_partner_scratch_g(
                    &instance,
                    &a,
                    id,
                    selection,
                    1e-9,
                    false,
                    None,
                    0.0,
                    None,
                    &mut scratch,
                );
                assert_eq!(fresh, reused, "id {id} {selection:?}");
            }
        }
    }

    #[test]
    fn stale_score_loads_change_pruned_ranking_only() {
        // Live loads say server 1 is idle; the stale snapshot says
        // server 2 is. With top_k = 1 the snapshot decides which single
        // candidate gets an exact evaluation, so the chosen partner
        // must follow it — the gossip-staleness emulation the engine
        // relies on.
        let mut instance = Instance::homogeneous(3, 1.0, 0.0, 5.0);
        instance.set_own_loads(vec![100.0, 0.0, 50.0]);
        let a = Assignment::local(&instance);
        let stale = vec![100.0, 50.0, 0.0];
        let selection = PartnerSelection::Pruned { top_k: 1 };
        let mut scratch = PartnerScratch::default();
        let live_choice = choose_partner_scratch_g(
            &instance,
            &a,
            0,
            selection,
            1e-9,
            false,
            None,
            0.0,
            None,
            &mut scratch,
        );
        let stale_choice = choose_partner_scratch_g(
            &instance,
            &a,
            0,
            selection,
            1e-9,
            false,
            None,
            0.0,
            Some(&stale),
            &mut scratch,
        );
        assert_eq!(live_choice.map(|(j, _)| j), Some(1));
        assert_eq!(stale_choice.map(|(j, _)| j), Some(2));
    }

    #[test]
    fn partner_score_is_zero_for_balanced_pairs() {
        let instance = Instance::homogeneous(3, 1.0, 5.0, 10.0);
        let loads = vec![10.0, 10.0, 10.0];
        assert_eq!(partner_score(&instance, &loads, 0, 1), 0.0);
    }

    #[test]
    fn partner_score_positive_for_imbalanced_pairs() {
        let instance = Instance::homogeneous(3, 1.0, 1.0, 10.0);
        let loads = vec![30.0, 0.0, 10.0];
        assert!(partner_score(&instance, &loads, 0, 1) > 0.0);
        // symmetric: evaluating from the idle side sees the same gain
        assert!(
            (partner_score(&instance, &loads, 0, 1) - partner_score(&instance, &loads, 1, 0)).abs()
                < 1e-12
        );
    }
}
