//! Batched propose/match/apply rounds.
//!
//! The paper's §VI-B iteration visits servers one at a time; the only
//! parallelism is *inside* one server's Algorithm-2 partner scan. This
//! module turns the whole iteration into three data-parallel phases,
//! the model used by the distributed selfish load-balancing literature
//! (concurrent pairwise rebalancing rounds, cf. Berenbrink et al.) and
//! by gradient-descent-style balancers that update every server against
//! a shared load snapshot (Balseiro et al.):
//!
//! 1. **Propose** — every active server computes its Algorithm-2
//!    partner choice against the *round-start* assignment, in one
//!    outer-parallel pass over servers ([`dlb_par::par_map_slice`]).
//!    The inner candidate-scoring maps detect the enclosing region and
//!    degrade to sequential, so the machine is never oversubscribed.
//! 2. **Match** — proposals are resolved into a conflict-free set of
//!    pairwise exchanges by greedy matching in the round's shuffled
//!    priority order: the first proposer (in order) whose partner is
//!    still free wins the pair; both endpoints then leave the round —
//!    exactly the `pair_once` semantics of the sequential engine, and
//!    the graph-coloring step the ROADMAP called for (a greedy maximal
//!    matching *is* a 1-round colouring of the proposal graph).
//! 3. **Apply** — the matched exchanges are installed directly from
//!    the propose phase's [`TransferOutcome`]s. No recomputation is
//!    needed: proposals were evaluated against the round-start ledgers,
//!    and matched pairs own disjoint ledgers, so the outcome computed
//!    at propose time is exactly the outcome the apply phase would
//!    recompute (debug builds assert this). A pairwise exchange only
//!    reads and writes the two ledgers of its own pair (see
//!    [`dlb_core::cost::server_cost`]), which is what makes both the
//!    concurrent propose evaluation and the reuse sound.
//!
//! Every phase is deterministic given the round order, so batched
//! fixpoints are thread-count invariant — covered by
//! `tests/parallel_determinism.rs`.

use std::cell::RefCell;

use dlb_core::{Assignment, Instance};

use crate::mine::{choose_partner_outcome_scratch_g, PartnerScratch, PartnerSelection};
use crate::transfer::TransferOutcome;

/// How the engine executes one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundMode {
    /// §VI-B as written: servers act one at a time in the round order,
    /// each seeing the loads left behind by its predecessors.
    #[default]
    Sequential,
    /// Propose/match/apply: every server proposes against the
    /// round-start snapshot, proposals are matched conflict-free, and
    /// the matched exchanges execute concurrently. Implies the
    /// `pair_once` semantics (the matching is one-exchange-per-server
    /// by construction).
    Batched,
}

/// The exchanges and bookkeeping of one batched round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Total request volume moved.
    pub moved: f64,
    /// Number of pairwise exchanges executed.
    pub exchanges: usize,
    /// Exact change of `ΣC` (≤ 0 up to rounding): the negated sum of
    /// the applied exchanges' improvements, feeding the engine's
    /// incremental cost tracker.
    pub cost_delta: f64,
}

thread_local! {
    /// Per-worker scratch for the propose phase: the fan-out workers
    /// are plain `Fn(usize)` closures, so per-item `&mut` state is not
    /// expressible — a thread-local gives every worker its own buffers,
    /// created once per thread and reused across its whole chunk of
    /// servers.
    static PROPOSE_SCRATCH: RefCell<PartnerScratch> = RefCell::new(PartnerScratch::default());
}

/// Where the pruned pre-scoring gets its load vector from. Exact
/// Algorithm-1 evaluation always runs on the live ledgers; this only
/// governs candidate *ranking* (see `mine::partner_score`).
#[derive(Debug, Clone, Copy)]
pub enum ScoreView<'a> {
    /// Live round-start loads (perfect information).
    Live,
    /// One shared stale snapshot — the emulated-gossip
    /// (`load_staleness`) mode: every server sees the same old vector.
    Shared(&'a [f64]),
    /// One view per server — real gossip: each server ranks on whatever
    /// its own gossip view currently believes.
    PerServer(&'a [Vec<f64>]),
}

impl ScoreView<'_> {
    /// The score-load override server `id` should rank with (`None` =
    /// live loads).
    pub fn for_server(&self, id: usize) -> Option<&[f64]> {
        match self {
            ScoreView::Live => None,
            ScoreView::Shared(loads) => Some(loads),
            ScoreView::PerServer(views) => Some(views[id].as_slice()),
        }
    }
}

/// One server's resolved Algorithm-2 choice: the partner it wants to
/// exchange with and the full [`TransferOutcome`] of that exchange,
/// computed against the round-start ledgers. Carrying the outcome lets
/// the apply phase install matched exchanges without re-running
/// Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Proposal {
    /// The chosen partner.
    pub partner: usize,
    /// The exchange Algorithm 1 would perform on the pair.
    pub outcome: TransferOutcome,
}

/// Phase 1: every server in `order` computes its Algorithm-2 partner
/// choice against the current (round-start) assignment. Returns one
/// `Option<Proposal>` per `order` entry, in order. `score` is where
/// each server's pruned pre-scoring reads loads from: one shared stale
/// snapshot (emulated gossip), a per-server gossip view, or the live
/// round-start loads.
#[allow(clippy::too_many_arguments)]
pub fn propose(
    instance: &Instance,
    a: &Assignment,
    order: &[usize],
    selection: PartnerSelection,
    min_improvement: f64,
    parallel: bool,
    active: Option<&[bool]>,
    granularity: f64,
    score: ScoreView<'_>,
) -> Vec<Option<Proposal>> {
    let choose = |id: usize| {
        PROPOSE_SCRATCH.with(|scratch| {
            choose_partner_outcome_scratch_g(
                instance,
                a,
                id,
                selection,
                min_improvement,
                parallel,
                active,
                granularity,
                score.for_server(id),
                &mut scratch.borrow_mut(),
            )
            .map(|(partner, outcome)| Proposal { partner, outcome })
        })
    };
    if parallel {
        dlb_par::par_map_slice(order, |&id| choose(id))
    } else {
        order.iter().map(|&id| choose(id)).collect()
    }
}

/// Phase 2: greedy conflict-free matching in priority order.
///
/// `order[p]` proposed `proposals[p]`; walking proposals in priority
/// order, a proposal is accepted when both endpoints are still free.
/// This mirrors the sequential `pair_once` rule — a server whose chosen
/// partner is already taken *waits for the next round* rather than
/// settling for a worse free partner. Returns the accepted proposals'
/// positions in `order`.
pub fn match_proposals(
    m: usize,
    order: &[usize],
    proposals: &[Option<Proposal>],
    active: Option<&[bool]>,
) -> Vec<usize> {
    debug_assert_eq!(order.len(), proposals.len());
    let mut free: Vec<bool> = match active {
        Some(mask) => mask.to_vec(),
        None => vec![true; m],
    };
    let mut accepted = Vec::new();
    for (p, (&id, proposal)) in order.iter().zip(proposals.iter()).enumerate() {
        if let Some(Proposal { partner: j, .. }) = *proposal {
            if free[id] && free[j] {
                free[id] = false;
                free[j] = false;
                accepted.push(p);
            }
        }
    }
    accepted
}

/// Phase 3: install the accepted exchanges.
///
/// Each accepted proposal already carries the [`TransferOutcome`] its
/// propose-phase evaluation computed from the round-start ledgers;
/// matched pairs are disjoint, so that is exactly the state the
/// exchange applies to and the outcome is *reused* instead of being
/// recomputed (debug builds re-run Algorithm 1 and assert the reused
/// outcome matches). Each exchange's `improvement` is the exact `ΣC`
/// reduction of its pair, so their negated sum is the round's exact
/// cost delta.
pub fn apply_matches(
    instance: &Instance,
    a: &mut Assignment,
    order: &[usize],
    proposals: Vec<Option<Proposal>>,
    accepted: &[usize],
    granularity: f64,
) -> RoundOutcome {
    // The recompute-free apply phase has no per-pair computation left
    // to fan out; `instance` and `granularity` feed the debug check.
    let _ = (instance, granularity);
    let mut proposals = proposals;
    let mut moved = 0.0;
    let mut cost_delta = 0.0;
    for &p in accepted {
        let Proposal {
            partner: j,
            outcome,
        } = proposals[p]
            .take()
            .expect("accepted positions index real proposals");
        let i = order[p];
        #[cfg(debug_assertions)]
        {
            let fresh = crate::transfer::calc_best_transfer_g(
                instance,
                a.ledger(i),
                a.ledger(j),
                i,
                j,
                granularity,
            );
            assert_eq!(
                fresh, outcome,
                "propose-phase outcome for pair ({i}, {j}) does not match a fresh \
                 round-start recomputation"
            );
        }
        moved += outcome.moved;
        cost_delta -= outcome.improvement;
        a.replace_ledger(i, outcome.ledger_i);
        a.replace_ledger(j, outcome.ledger_j);
    }
    RoundOutcome {
        moved,
        exchanges: accepted.len(),
        cost_delta,
    }
}

/// One full batched round: propose, match, apply.
#[allow(clippy::too_many_arguments)]
pub fn run_batched_round(
    instance: &Instance,
    a: &mut Assignment,
    order: &[usize],
    selection: PartnerSelection,
    min_improvement: f64,
    parallel: bool,
    active: Option<&[bool]>,
    granularity: f64,
    score: ScoreView<'_>,
) -> RoundOutcome {
    let proposals = propose(
        instance,
        a,
        order,
        selection,
        min_improvement,
        parallel,
        active,
        granularity,
        score,
    );
    let accepted = match_proposals(instance.len(), order, &proposals, active);
    apply_matches(instance, a, order, proposals, &accepted, granularity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::cost::total_cost;
    use dlb_core::rngutil::rng_for;
    use dlb_core::LatencyMatrix;
    use rand::Rng;

    fn random_instance(m: usize, seed: u64) -> Instance {
        let mut rng = rng_for(seed, 0x20BD);
        let mut lat = LatencyMatrix::zero(m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    lat.set(i, j, rng.gen_range(0.5..15.0));
                }
            }
        }
        lat.metric_close();
        Instance::new(
            (0..m).map(|_| rng.gen_range(1.0..4.0)).collect(),
            (0..m).map(|_| rng.gen_range(0.0..80.0)).collect(),
            lat,
        )
    }

    /// A placeholder proposal for matching-only tests (the match phase
    /// never reads the outcome).
    fn prop(partner: usize) -> Option<Proposal> {
        Some(Proposal {
            partner,
            outcome: TransferOutcome {
                ledger_i: dlb_core::SparseVec::new(),
                ledger_j: dlb_core::SparseVec::new(),
                improvement: 1.0,
                moved: 0.0,
            },
        })
    }

    #[test]
    fn matching_is_conflict_free_and_priority_ordered() {
        // Server 0 and 2 both propose to 1; only the first in priority
        // order may win, and 3's self-contained proposal survives.
        let order = vec![0, 2, 3];
        let proposals = vec![prop(1), prop(1), prop(4)];
        let accepted = match_proposals(5, &order, &proposals, None);
        assert_eq!(accepted, vec![0, 2], "positions of (0→1) and (3→4)");
    }

    #[test]
    fn matching_respects_reachability_mask() {
        let order = vec![0, 2];
        let proposals = vec![prop(1), prop(3)];
        let mut active = vec![true; 4];
        active[3] = false;
        let accepted = match_proposals(4, &order, &proposals, Some(&active));
        assert_eq!(accepted, vec![0], "partner 3 is unreachable");
    }

    #[test]
    fn batched_round_reduces_cost_by_its_reported_delta() {
        let instance = random_instance(24, 3);
        let mut a = Assignment::local(&instance);
        let order: Vec<usize> = (0..24).collect();
        let before = total_cost(&instance, &a);
        let outcome = run_batched_round(
            &instance,
            &mut a,
            &order,
            PartnerSelection::Exact,
            1e-9,
            false,
            None,
            0.0,
            ScoreView::Live,
        );
        let after = total_cost(&instance, &a);
        assert!(outcome.exchanges > 0, "imbalanced instance must exchange");
        assert!(outcome.cost_delta < 0.0);
        assert!(
            (after - before - outcome.cost_delta).abs() < 1e-6 * before.max(1.0),
            "reported delta {} vs actual {}",
            outcome.cost_delta,
            after - before
        );
        a.check_invariants(&instance).unwrap();
    }

    #[test]
    fn batched_round_parallel_matches_sequential_bitwise() {
        let instance = random_instance(64, 4);
        let order: Vec<usize> = (0..64).rev().collect();
        let mut a_seq = Assignment::local(&instance);
        let mut a_par = Assignment::local(&instance);
        let seq = run_batched_round(
            &instance,
            &mut a_seq,
            &order,
            PartnerSelection::Pruned { top_k: 6 },
            1e-9,
            false,
            None,
            0.0,
            ScoreView::Live,
        );
        let par = run_batched_round(
            &instance,
            &mut a_par,
            &order,
            PartnerSelection::Pruned { top_k: 6 },
            1e-9,
            true,
            None,
            0.0,
            ScoreView::Live,
        );
        assert_eq!(seq, par);
        assert_eq!(a_seq, a_par, "batched round must be execution-invariant");
    }

    #[test]
    fn per_server_score_views_route_to_each_proposer() {
        // With every server handed the same vector, PerServer must be
        // bit-identical to Shared — the plumbing may not mix views up.
        let instance = random_instance(40, 9);
        let a = Assignment::local(&instance);
        let order: Vec<usize> = (0..40).collect();
        let stale: Vec<f64> = a.loads().iter().map(|l| l * 1.5 + 2.0).collect();
        let views: Vec<Vec<f64>> = (0..40).map(|_| stale.clone()).collect();
        let run = |score: ScoreView<'_>| {
            propose(
                &instance,
                &a,
                &order,
                PartnerSelection::Pruned { top_k: 4 },
                1e-9,
                false,
                None,
                0.0,
                score,
            )
        };
        assert_eq!(
            run(ScoreView::Shared(&stale)),
            run(ScoreView::PerServer(&views))
        );
        assert_eq!(ScoreView::Live.for_server(7), None);
        assert_eq!(
            ScoreView::PerServer(&views).for_server(7),
            Some(stale.as_slice())
        );
    }

    #[test]
    fn each_server_exchanges_at_most_once() {
        let instance = random_instance(30, 7);
        let mut a = Assignment::local(&instance);
        let order: Vec<usize> = (0..30).collect();
        let proposals = propose(
            &instance,
            &a,
            &order,
            PartnerSelection::Exact,
            1e-9,
            false,
            None,
            0.0,
            ScoreView::Live,
        );
        let accepted = match_proposals(30, &order, &proposals, None);
        let mut seen = [false; 30];
        for &p in &accepted {
            let i = order[p];
            let j = proposals[p].as_ref().unwrap().partner;
            assert!(!seen[i] && !seen[j], "server matched twice");
            seen[i] = true;
            seen[j] = true;
        }
        let n_accepted = accepted.len();
        let outcome = apply_matches(&instance, &mut a, &order, proposals, &accepted, 0.0);
        assert_eq!(outcome.exchanges, n_accepted);
        assert!(outcome.exchanges <= 15, "⌊m/2⌋ pairings at most");
    }
}
