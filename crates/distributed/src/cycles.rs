//! Negative-cycle removal via min-cost max-flow (paper Appendix).
//!
//! The reduction: for every server `i` create a *front* node `i_f`
//! (supply `out(ρ,i)` — the requests organization `i` relays away) and a
//! *back* node `i_b` (demand `in(ρ,i)` — the foreign requests server `i`
//! hosts). Edges `i_f → j_b` (`i ≠ j`) carry cost `c_ij` and infinite
//! capacity. A minimum-cost maximum flow re-decides *which* organization's
//! requests each server hosts, preserving every server's load and every
//! organization's outflow while minimizing total communication cost —
//! exactly what dismantling all negative relay cycles achieves.

use dlb_core::sparse::SparseVec;
use dlb_core::{Assignment, Instance};
use dlb_flow::ssp::min_cost_max_flow;
use dlb_flow::FlowNetwork;

/// Statistics of a negative-cycle-removal pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleRemovalStats {
    /// Total relayed volume that was re-routed (admissible upper bound:
    /// all relayed requests are re-decided).
    pub relayed_volume: f64,
    /// Communication cost before the pass.
    pub comm_before: f64,
    /// Communication cost after the pass.
    pub comm_after: f64,
}

/// Rewrites the assignment's *foreign* placements so that total
/// communication cost is minimal given the current server loads and
/// per-organization outflows. Self-executed requests (`r_ii`) are
/// untouched. Returns the achieved reduction.
pub fn remove_negative_cycles(
    instance: &Instance,
    assignment: &mut Assignment,
) -> CycleRemovalStats {
    let m = instance.len();
    let comm_before = dlb_core::cost::communication_cost(instance, assignment);

    // Supplies and demands.
    let out: Vec<f64> = (0..m).map(|i| assignment.relayed_out(i)).collect();
    let inn: Vec<f64> = (0..m).map(|i| assignment.hosted_foreign(i)).collect();
    let relayed_volume: f64 = out.iter().sum();
    if relayed_volume <= 1e-12 {
        return CycleRemovalStats {
            relayed_volume: 0.0,
            comm_before,
            comm_after: comm_before,
        };
    }

    // Node layout: 0..m fronts, m..2m backs, 2m source, 2m+1 sink.
    let source = 2 * m;
    let sink = 2 * m + 1;
    let mut g = FlowNetwork::new(2 * m + 2);
    for i in 0..m {
        if out[i] > 0.0 {
            g.add_edge(source, i, out[i], 0.0);
        }
        if inn[i] > 0.0 {
            g.add_edge(m + i, sink, inn[i], 0.0);
        }
    }
    let mut transport = Vec::new();
    for i in 0..m {
        if out[i] <= 0.0 {
            continue;
        }
        for j in 0..m {
            if inn[j] <= 0.0 {
                continue;
            }
            // The paper's reduction uses only i ≠ j edges; we also add
            // the zero-cost self-edge i_f → i_b, which lets previously
            // relayed requests return to their owner. This is still
            // load-preserving (server i hosts the returning volume in
            // place of the foreign volume it gives up) and can only
            // reduce communication further — it is what dismantling a
            // *pure* relay cycle requires.
            let c = instance.c(i, j);
            if c.is_finite() {
                transport.push((i, j, g.add_edge(i, m + j, f64::INFINITY, c)));
            }
        }
    }
    let result = min_cost_max_flow(&mut g, source, sink, f64::INFINITY);
    debug_assert!(
        (result.flow - relayed_volume).abs() < 1e-6 * relayed_volume.max(1.0),
        "flow {} must saturate relayed volume {relayed_volume}",
        result.flow
    );

    // Rebuild the foreign part of every ledger from the flow.
    let mut new_ledgers: Vec<SparseVec> = (0..m)
        .map(|j| {
            let own = assignment.requests(j, j);
            let mut ledger = SparseVec::new();
            if own > 0.0 {
                ledger.set(j as u32, own);
            }
            ledger
        })
        .collect();
    for (i, j, edge) in transport {
        let f = g.flow(edge);
        if f > 0.0 {
            new_ledgers[j].add(i as u32, f);
        }
    }
    for (j, ledger) in new_ledgers.into_iter().enumerate() {
        assignment.replace_ledger(j, ledger);
    }
    let comm_after = dlb_core::cost::communication_cost(instance, assignment);
    CycleRemovalStats {
        relayed_volume,
        comm_before,
        comm_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::cost::total_cost;
    use dlb_core::LatencyMatrix;

    /// Builds a 3-server instance with a deliberate relay cycle:
    /// org 0 runs on server 1, org 1 on server 2, org 2 on server 0.
    fn cyclic_state() -> (Instance, Assignment) {
        let instance = Instance::new(
            vec![1.0; 3],
            vec![10.0; 3],
            LatencyMatrix::homogeneous(3, 5.0),
        );
        let mut a = Assignment::local(&instance);
        a.move_requests(0, 0, 1, 4.0);
        a.move_requests(1, 1, 2, 4.0);
        a.move_requests(2, 2, 0, 4.0);
        (instance, a)
    }

    #[test]
    fn dismantles_pure_cycle() {
        let (instance, mut a) = cyclic_state();
        let loads_before: Vec<f64> = a.loads().to_vec();
        let stats = remove_negative_cycles(&instance, &mut a);
        // The homogeneous cycle is pure waste: everything returns home.
        assert_eq!(stats.comm_after, 0.0, "stats: {stats:?}");
        assert!(stats.comm_before > 0.0);
        for j in 0..3 {
            assert!((a.load(j) - loads_before[j]).abs() < 1e-9, "load changed");
            assert!((a.requests(j, j) - 10.0).abs() < 1e-9);
        }
        a.check_invariants(&instance).unwrap();
    }

    #[test]
    fn preserves_owner_totals() {
        let (instance, mut a) = cyclic_state();
        remove_negative_cycles(&instance, &mut a);
        for k in 0..3 {
            assert!((a.owner_total(k) - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn never_increases_communication_cost() {
        let instance = Instance::new(
            vec![1.0, 2.0, 1.5, 1.0],
            vec![20.0, 5.0, 0.0, 8.0],
            LatencyMatrix::homogeneous(4, 3.0),
        );
        let mut a = Assignment::local(&instance);
        a.move_requests(0, 0, 2, 10.0);
        a.move_requests(3, 3, 1, 4.0);
        a.move_requests(1, 1, 0, 2.0);
        let before = dlb_core::cost::communication_cost(&instance, &a);
        let stats = remove_negative_cycles(&instance, &mut a);
        assert!(stats.comm_after <= before + 1e-9);
        a.check_invariants(&instance).unwrap();
    }

    #[test]
    fn swap_to_cheaper_hosting() {
        // Heterogeneous latencies: org 0 hosted far away while org 1 is
        // hosted at 0's cheap neighbor — swapping reduces cost.
        let mut lat = LatencyMatrix::zero(4);
        // c(0,1) cheap, c(0,2) expensive; c(3,2) cheap, c(3,1) expensive.
        let pairs = [
            (0, 1, 1.0),
            (0, 2, 50.0),
            (0, 3, 30.0),
            (1, 2, 20.0),
            (1, 3, 50.0),
            (2, 3, 1.0),
        ];
        for &(i, j, c) in &pairs {
            lat.set(i, j, c);
            lat.set(j, i, c);
        }
        let instance = Instance::new(vec![1.0; 4], vec![10.0, 0.0, 0.0, 10.0], lat);
        let mut a = Assignment::local(&instance);
        // Mis-routed: org 0 → server 2 (cost 50), org 3 → server 1 (50).
        a.move_requests(0, 0, 2, 5.0);
        a.move_requests(3, 3, 1, 5.0);
        assert_eq!(dlb_core::cost::communication_cost(&instance, &a), 500.0);
        let stats = remove_negative_cycles(&instance, &mut a);
        // Optimal: org 0 → server 1 (1), org 3 → server 2 (1): cost 10.
        assert!((stats.comm_after - 10.0).abs() < 1e-6, "{stats:?}");
        assert!((a.requests(0, 1) - 5.0).abs() < 1e-9);
        assert!((a.requests(3, 2) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn total_cost_never_increases() {
        let (instance, mut a) = cyclic_state();
        let before = total_cost(&instance, &a);
        remove_negative_cycles(&instance, &mut a);
        let after = total_cost(&instance, &a);
        assert!(after <= before + 1e-9);
    }

    #[test]
    fn noop_on_local_assignment() {
        let instance = Instance::homogeneous(5, 1.0, 10.0, 20.0);
        let mut a = Assignment::local(&instance);
        let stats = remove_negative_cycles(&instance, &mut a);
        assert_eq!(stats.relayed_volume, 0.0);
        assert_eq!(stats.comm_before, stats.comm_after);
    }
}
