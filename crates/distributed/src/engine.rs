//! The distributed-algorithm iteration engine.
//!
//! One *iteration* follows §VI-B: every server, in a fresh random order,
//! executes Algorithm 2 (the MinE step). The engine records the full
//! `ΣC` history, which the experiment harnesses use to reproduce
//! Tables I/II and Figure 2, and supports:
//!
//! * exact or pruned partner selection (see [`crate::mine`]),
//! * two round execution models ([`RoundMode`]):
//!   [`RoundMode::Sequential`] visits servers one at a time exactly as
//!   §VI-B prescribes, while [`RoundMode::Batched`] executes the same
//!   iteration as three data-parallel phases — *propose* (every server
//!   picks its Algorithm-2 partner against the round-start snapshot,
//!   outer-parallel over servers), *match* (greedy conflict-free
//!   pairing in the shuffled priority order), *apply* (the matched,
//!   ledger-disjoint exchanges execute concurrently) — see
//!   [`crate::round`],
//! * periodic negative-cycle removal (paper Appendix; the ablation
//!   bench reproduces the paper's finding that it does not change the
//!   iteration counts),
//! * stale load views, emulating a gossip dissemination layer that
//!   refreshes every `staleness` iterations — or, via
//!   [`Engine::attach_gossip_feed`], *real* per-server views served by
//!   the delta-gossip control plane ([`crate::feed::GossipFeed`]),
//!   with bytes-on-the-wire metered per run.
//!
//! `ΣC` is maintained *incrementally*: every applied exchange reports
//! its exact pair-cost reduction, and the engine accumulates those
//! deltas instead of re-walking all `m` ledgers each iteration
//! (an `O(m·nnz)` scan that dominated small-iteration runs). A
//! [`CostTracker`] resyncs against a fresh [`total_cost`] every
//! [`COST_RESYNC_EVERY`] iterations — and after structural rewrites
//! like cycle removal — while debug builds verify every single
//! iteration against a full recompute to 1e-6 relative.

use dlb_core::cost::{total_cost, CostTracker};
use dlb_core::rngutil::rng_for;
use dlb_core::{Assignment, Instance};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::cycles::remove_negative_cycles;
use crate::feed::GossipFeed;
use crate::mine::{choose_partner_outcome_scratch_g, PartnerScratch, PartnerSelection};
use crate::round::{run_batched_round, RoundMode, ScoreView};
use dlb_gossip::GossipTraffic;

/// Iterations between full `ΣC` recomputes that squash accumulated
/// floating-point drift in the incremental cost tracker. Exchanges are
/// individually exact to ~1e-15 relative, so even hour-long runs stay
/// far inside [`CostTracker::DRIFT_TOL`] between resyncs.
pub const COST_RESYNC_EVERY: usize = 64;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// Partner-selection policy. The default switches to pruned mode
    /// above [`EngineOptions::exact_threshold`] servers.
    pub selection: Option<PartnerSelection>,
    /// Network size above which the default policy uses pruning.
    pub exact_threshold: usize,
    /// Candidates evaluated exactly in pruned mode.
    pub pruned_top_k: usize,
    /// Absolute improvement below which an exchange is skipped,
    /// relative to the initial cost (scaled internally).
    pub min_improvement_rel: f64,
    /// Randomize the server order each iteration (the paper's setting).
    pub shuffle: bool,
    /// RNG seed for the iteration order.
    pub seed: u64,
    /// Evaluate partner improvements in parallel.
    pub parallel: bool,
    /// Remove negative relay cycles every `n` iterations (Appendix);
    /// `None` disables removal (the paper's default — experiments showed
    /// the cycles are rare and harmless).
    pub cycle_removal_every: Option<usize>,
    /// Emulated gossip staleness: partner *scoring* uses a load vector
    /// refreshed only every `staleness` iterations (0 = always fresh).
    pub load_staleness: usize,
    /// Transfer quantum: per-owner exchanges move multiples of this
    /// amount (`0.0` = continuous). The paper's load is made of unit
    /// requests, so the Table I/II measurement protocol uses `1.0`;
    /// the fractional relaxation (`0.0`) is what the solvers optimize.
    pub granularity: f64,
    /// Restrict every server to at most one exchange per iteration (as
    /// initiator *or* partner). This is the paper's iteration
    /// semantics: a pairwise exchange occupies both endpoints for the
    /// round, so a peak load spreads by doubling — `≈log₂ m` iterations
    /// in Tables I/II. Setting it to `false` lets later servers in the
    /// same round pair with already-busy servers (an eager variant that
    /// converges in fewer, more expensive rounds; kept for the
    /// ablation bench).
    pub pair_once: bool,
    /// Round execution model: the sequential §VI-B sweep, or the
    /// batched propose/match/apply round (see [`crate::round`]).
    /// Batched mode implies `pair_once` semantics — the match phase is
    /// one-exchange-per-server by construction.
    pub round_mode: RoundMode,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            selection: None,
            exact_threshold: 400,
            pruned_top_k: 8,
            min_improvement_rel: 1e-12,
            shuffle: true,
            seed: 0,
            parallel: true,
            cycle_removal_every: None,
            load_staleness: 0,
            granularity: 0.0,
            pair_once: true,
            round_mode: RoundMode::Sequential,
        }
    }
}

/// Statistics of one engine iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Iteration index (1-based).
    pub iteration: usize,
    /// `ΣC` after the iteration.
    pub cost: f64,
    /// Total request volume moved during the iteration.
    pub moved: f64,
    /// Number of servers that performed an exchange.
    pub exchanges: usize,
}

/// Report of [`Engine::run_to_convergence`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Final `ΣC`.
    pub final_cost: f64,
    /// Whether the stall criterion was met within the budget.
    pub converged: bool,
}

/// The distributed load-balancing engine.
#[derive(Debug, Clone)]
pub struct Engine {
    instance: Instance,
    assignment: Assignment,
    options: EngineOptions,
    rng: StdRng,
    history: Vec<f64>,
    iteration: usize,
    cost_scale: f64,
    stale_loads: Vec<f64>,
    /// When attached, per-server score views come from this real
    /// delta-gossip network instead of the `stale_loads` emulation.
    feed: Option<GossipFeed>,
    cost: CostTracker,
    scratch: PartnerScratch,
}

impl Engine {
    /// Creates an engine starting from the all-local assignment.
    pub fn new(instance: Instance, options: EngineOptions) -> Self {
        let assignment = Assignment::local(&instance);
        Self::from_assignment(instance, assignment, options)
    }

    /// Creates an engine from an existing assignment (used by
    /// dynamic-load scenarios that rebalance incrementally).
    pub fn from_assignment(
        instance: Instance,
        assignment: Assignment,
        options: EngineOptions,
    ) -> Self {
        let initial_cost = total_cost(&instance, &assignment);
        let stale_loads = assignment.loads().to_vec();
        let rng = rng_for(options.seed, 0xD157);
        Self {
            instance,
            assignment,
            options,
            rng,
            history: vec![initial_cost],
            iteration: 0,
            cost_scale: initial_cost.abs().max(1.0),
            stale_loads,
            feed: None,
            cost: CostTracker::new(initial_cost, COST_RESYNC_EVERY),
            scratch: PartnerScratch::default(),
        }
    }

    /// Attaches a real gossip control plane: from the next iteration
    /// on, each server's pruned pre-scoring ranks candidates on the
    /// load vector *its own* delta-gossip node currently believes
    /// ([`GossipFeed`]), instead of the shared `load_staleness`
    /// snapshot. The feed is seeded from the engine's seed and the
    /// current loads; `period_ms` is the gossip exchange period on the
    /// instance's latency topology.
    ///
    /// Only candidate ranking is affected — like `load_staleness`, the
    /// exact Algorithm-1 evaluation always runs on live ledgers, so
    /// [`PartnerSelection::Exact`] ignores the feed entirely. Pair it
    /// with a pruned selection to make staleness observable.
    pub fn attach_gossip_feed(&mut self, period_ms: f64) {
        self.feed = Some(GossipFeed::new(
            self.assignment.loads(),
            period_ms,
            self.options.seed,
        ));
    }

    /// Wire traffic generated by the attached gossip feed, if any.
    pub fn gossip_traffic(&self) -> Option<GossipTraffic> {
        self.feed.as_ref().map(|f| f.traffic())
    }

    /// The problem instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The current assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// `ΣC` after each iteration; `history()[0]` is the initial cost.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Current `ΣC`.
    pub fn current_cost(&self) -> f64 {
        *self.history.last().expect("history is never empty")
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.iteration
    }

    fn selection(&self) -> PartnerSelection {
        match self.options.selection {
            Some(s) => s,
            None => {
                if self.instance.len() <= self.options.exact_threshold {
                    PartnerSelection::Exact
                } else {
                    PartnerSelection::Pruned {
                        top_k: self.options.pruned_top_k,
                    }
                }
            }
        }
    }

    /// Runs one iteration: every server executes Algorithm 2 in a
    /// (fresh) random order.
    pub fn run_iteration(&mut self) -> IterationStats {
        self.run_iteration_masked(None)
    }

    /// Runs one iteration with a reachability mask: servers with
    /// `active[j] == false` neither initiate nor receive exchanges this
    /// round (transient failures / network partitions). Pairwise
    /// exchanges keep the reachable subsystem making progress — the
    /// paper's §IV robustness argument, exercised by the failure tests.
    pub fn run_iteration_masked(&mut self, active: Option<&[bool]>) -> IterationStats {
        let m = self.instance.len();
        if let Some(mask) = active {
            assert_eq!(mask.len(), m, "mask must cover every server");
        }
        let mut order: Vec<usize> = match active {
            Some(mask) => (0..m).filter(|&i| mask[i]).collect(),
            None => (0..m).collect(),
        };
        if self.options.shuffle {
            order.shuffle(&mut self.rng);
        }
        if self.options.load_staleness == 0
            || self
                .iteration
                .is_multiple_of(self.options.load_staleness.max(1))
        {
            self.stale_loads.clear();
            self.stale_loads.extend_from_slice(self.assignment.loads());
        }
        if let Some(feed) = self.feed.as_mut() {
            // Real gossip: publish current loads and let the protocol
            // run its ⌈log2 m⌉ periods before this iteration scores.
            feed.step(self.instance.latency(), self.assignment.loads());
        }
        let selection = self.selection();
        let min_improvement = self.options.min_improvement_rel * self.cost_scale;
        let (moved, exchanges, cost_delta) = match self.options.round_mode {
            RoundMode::Sequential => {
                self.sequential_round(&order, active, selection, min_improvement)
            }
            RoundMode::Batched => {
                let score = if let Some(feed) = self.feed.as_ref() {
                    ScoreView::PerServer(feed.views())
                } else if self.options.load_staleness > 0 {
                    ScoreView::Shared(self.stale_loads.as_slice())
                } else {
                    ScoreView::Live
                };
                let outcome = run_batched_round(
                    &self.instance,
                    &mut self.assignment,
                    &order,
                    selection,
                    min_improvement,
                    self.options.parallel,
                    active,
                    self.options.granularity,
                    score,
                );
                (outcome.moved, outcome.exchanges, outcome.cost_delta)
            }
        };
        self.iteration += 1;
        // Cycle removal rewrites ledgers wholesale; its cost change is
        // not delta-tracked, so force a resync whenever it runs.
        let mut structural_resync = false;
        if let Some(every) = self.options.cycle_removal_every {
            if every > 0 && self.iteration.is_multiple_of(every) {
                let _ = remove_negative_cycles(&self.instance, &mut self.assignment);
                structural_resync = true;
            }
        }
        self.assignment.refresh_loads();
        self.cost.apply_delta(cost_delta);
        if structural_resync || self.cost.should_resync() {
            self.cost
                .resync(total_cost(&self.instance, &self.assignment));
        } else {
            // Debug builds prove the accumulated deltas against a fresh
            // recompute every iteration; release builds skip the walk.
            self.cost
                .debug_assert_in_sync(&self.instance, &self.assignment);
        }
        let cost = self.cost.value();
        self.history.push(cost);
        IterationStats {
            iteration: self.iteration,
            cost,
            moved,
            exchanges,
        }
    }

    /// The §VI-B sweep: servers act one at a time in `order`, each
    /// seeing the loads its predecessors left behind. Returns
    /// `(moved, exchanges, cost_delta)`.
    fn sequential_round(
        &mut self,
        order: &[usize],
        active: Option<&[bool]>,
        selection: PartnerSelection,
        min_improvement: f64,
    ) -> (f64, usize, f64) {
        let m = self.instance.len();
        let mut moved = 0.0;
        let mut exchanges = 0usize;
        let mut cost_delta = 0.0;
        // A pairwise exchange occupies both endpoints for the round
        // (`pair_once`), so every completed exchange removes both of
        // its members from the round. Crucially, the *choice* of
        // partner is still Algorithm 2's argmax over all reachable
        // servers: when the chosen partner is already occupied this
        // round, the exchange simply waits for the next round instead
        // of settling for a worse free partner (which would churn
        // requests back and forth near the fixpoint).
        let mut free: Vec<bool> = match active {
            Some(mask) => mask.to_vec(),
            None => vec![true; m],
        };
        for &id in order {
            if self.options.pair_once && !free[id] {
                continue;
            }
            // Pruned pre-scoring ranks candidates by this server's
            // gossip view (real feed, or the shared stale-snapshot
            // emulation); exact evaluation stays live.
            let score_loads = if let Some(feed) = self.feed.as_ref() {
                Some(feed.view(id))
            } else if self.options.load_staleness > 0 {
                Some(self.stale_loads.as_slice())
            } else {
                None
            };
            let choice = choose_partner_outcome_scratch_g(
                &self.instance,
                &self.assignment,
                id,
                selection,
                min_improvement,
                self.options.parallel,
                active,
                self.options.granularity,
                score_loads,
                &mut self.scratch,
            );
            if let Some((j, outcome)) = choice {
                if self.options.pair_once && !free[j] {
                    continue;
                }
                // The partner evaluation already ran Algorithm 1 on the
                // very ledgers the exchange applies to; install its
                // outcome instead of recomputing the transfer.
                moved += outcome.moved;
                cost_delta -= outcome.improvement;
                self.assignment.replace_ledger(id, outcome.ledger_i);
                self.assignment.replace_ledger(j, outcome.ledger_j);
                exchanges += 1;
                if self.options.pair_once {
                    free[id] = false;
                    free[j] = false;
                }
            }
        }
        (moved, exchanges, cost_delta)
    }

    /// Runs until the relative per-iteration improvement stays below
    /// `stall_tol` for `patience` consecutive iterations (or the budget
    /// runs out). This is how the experiments approximate the optimum.
    pub fn run_to_convergence(
        &mut self,
        stall_tol: f64,
        patience: usize,
        max_iters: usize,
    ) -> ConvergenceReport {
        let mut calm = 0usize;
        let mut iters = 0usize;
        while iters < max_iters {
            let before = self.current_cost();
            let stats = self.run_iteration();
            iters += 1;
            let rel_drop = if before > 0.0 {
                (before - stats.cost) / before
            } else {
                0.0
            };
            if rel_drop <= stall_tol {
                calm += 1;
                if calm >= patience {
                    return ConvergenceReport {
                        iterations: iters,
                        final_cost: stats.cost,
                        converged: true,
                    };
                }
            } else {
                calm = 0;
            }
        }
        ConvergenceReport {
            iterations: iters,
            final_cost: self.current_cost(),
            converged: false,
        }
    }

    /// First iteration index whose cost is within `rel_err` of
    /// `optimum` (`None` when never reached). Index 0 means the initial
    /// assignment already qualifies.
    pub fn iterations_to_reach(&self, optimum: f64, rel_err: f64) -> Option<usize> {
        let target = optimum * (1.0 + rel_err);
        self.history.iter().position(|&c| c <= target + 1e-12)
    }

    /// Replaces the instance's loads and resets the engine for a new
    /// balancing epoch while keeping the current assignment as the
    /// starting point — the "dynamically changing loads" scenario from
    /// the paper's introduction. New load is injected locally at each
    /// owner (`n_i^{new} − n_i^{old}` added to / removed from server
    /// `i`'s own ledger; removals are clamped at what the owner still
    /// runs locally, with the remainder pulled back from remote
    /// servers).
    pub fn update_loads(&mut self, new_loads: Vec<f64>) {
        let m = self.instance.len();
        assert_eq!(new_loads.len(), m);
        for k in 0..m {
            let old = self.instance.own_load(k);
            let new = new_loads[k];
            let mut delta = new - old;
            if delta > 0.0 {
                // New requests appear at their owner.
                let cur = self.assignment.ledger(k).get(k as u32);
                let mut ledger = self.assignment.take_ledger(k);
                ledger.set(k as u32, cur + delta);
                self.assignment.replace_ledger(k, ledger);
            } else if delta < 0.0 {
                // Requests complete: drain locally first, then remotely.
                let local = self.assignment.requests(k, k);
                let take_local = local.min(-delta);
                if take_local > 0.0 {
                    let mut ledger = self.assignment.take_ledger(k);
                    ledger.add(k as u32, -take_local);
                    self.assignment.replace_ledger(k, ledger);
                    delta += take_local;
                }
                if delta < -1e-12 {
                    for j in 0..m {
                        if j == k {
                            continue;
                        }
                        let there = self.assignment.requests(k, j);
                        let take = there.min(-delta);
                        if take > 0.0 {
                            let mut ledger = self.assignment.take_ledger(j);
                            ledger.add(k as u32, -take);
                            self.assignment.replace_ledger(j, ledger);
                            delta += take;
                            if delta >= -1e-12 {
                                break;
                            }
                        }
                    }
                }
            }
        }
        self.instance.set_own_loads(new_loads);
        self.assignment.refresh_loads();
        let cost = total_cost(&self.instance, &self.assignment);
        self.cost.resync(cost);
        self.history.push(cost);
        self.cost_scale = cost.abs().max(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::rngutil::rng_for;
    use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
    use dlb_core::LatencyMatrix;
    use dlb_solver::{solve_pgd, PgdOptions};
    use rand::Rng;

    fn spec(avg: f64, loads: LoadDistribution) -> WorkloadSpec {
        WorkloadSpec {
            loads,
            avg_load: avg,
            speeds: SpeedDistribution::paper_uniform(),
        }
    }

    fn seq_opts(seed: u64) -> EngineOptions {
        EngineOptions {
            seed,
            parallel: false,
            ..Default::default()
        }
    }

    #[test]
    fn cost_decreases_monotonically() {
        let mut rng = rng_for(5, 0);
        let instance = spec(50.0, LoadDistribution::Exponential)
            .sample(LatencyMatrix::homogeneous(20, 20.0), &mut rng);
        let mut engine = Engine::new(instance, seq_opts(1));
        for _ in 0..6 {
            engine.run_iteration();
        }
        let h = engine.history();
        for w in h.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-6 * w[0].max(1.0),
                "history not monotone: {h:?}"
            );
        }
        engine
            .assignment()
            .check_invariants(engine.instance())
            .unwrap();
    }

    #[test]
    fn converges_to_solver_optimum() {
        for seed in 0..3 {
            let mut rng = rng_for(seed, 1);
            let instance = spec(30.0, LoadDistribution::Uniform)
                .sample(LatencyMatrix::homogeneous(10, 20.0), &mut rng);
            let mut engine = Engine::new(instance.clone(), seq_opts(seed));
            let report = engine.run_to_convergence(1e-10, 2, 100);
            assert!(report.converged, "seed {seed} did not converge");
            let (_, pgd) = solve_pgd(&instance, &PgdOptions::default());
            assert!(
                report.final_cost <= pgd.objective * (1.0 + 5e-3),
                "seed {seed}: engine {} vs solver {}",
                report.final_cost,
                pgd.objective
            );
        }
    }

    #[test]
    fn peak_load_spreads_out() {
        let mut instance = Instance::homogeneous(12, 1.0, 2.0, 0.0);
        let mut loads = vec![0.0; 12];
        loads[0] = 1200.0;
        instance.set_own_loads(loads);
        let mut engine = Engine::new(instance, seq_opts(3));
        engine.run_to_convergence(1e-10, 2, 60);
        // Every server should end up with a meaningful share.
        for j in 0..12 {
            assert!(
                engine.assignment().load(j) > 50.0,
                "server {j} got {}",
                engine.assignment().load(j)
            );
        }
    }

    #[test]
    fn convergence_within_a_dozen_iterations_table_scale() {
        // Matches the paper's headline: ≤ ~11 iterations to 0.1 %.
        let mut rng = rng_for(11, 2);
        let instance = spec(50.0, LoadDistribution::Exponential)
            .sample(LatencyMatrix::homogeneous(50, 20.0), &mut rng);
        let mut engine = Engine::new(instance, seq_opts(7));
        let report = engine.run_to_convergence(1e-12, 2, 100);
        let opt = report.final_cost;
        let iters = engine
            .iterations_to_reach(opt, 0.001)
            .expect("must reach 0.1% of its own fixpoint");
        assert!(iters <= 15, "took {iters} iterations");
    }

    #[test]
    fn pruned_mode_converges_too() {
        let mut rng = rng_for(21, 3);
        let instance = spec(100.0, LoadDistribution::Peak)
            .sample(LatencyMatrix::homogeneous(40, 20.0), &mut rng);
        let exact = {
            let mut e = Engine::new(instance.clone(), seq_opts(1));
            e.run_to_convergence(1e-10, 2, 80).final_cost
        };
        let pruned = {
            let mut opts = seq_opts(1);
            opts.selection = Some(PartnerSelection::Pruned { top_k: 6 });
            let mut e = Engine::new(instance, opts);
            e.run_to_convergence(1e-10, 2, 80).final_cost
        };
        assert!(
            pruned <= exact * 1.02,
            "pruned {pruned} much worse than exact {exact}"
        );
    }

    #[test]
    fn cycle_removal_does_not_change_fixpoint_quality() {
        let mut rng = rng_for(31, 4);
        let instance = spec(40.0, LoadDistribution::Exponential)
            .sample(LatencyMatrix::homogeneous(15, 20.0), &mut rng);
        let plain = {
            let mut e = Engine::new(instance.clone(), seq_opts(2));
            e.run_to_convergence(1e-10, 2, 60).final_cost
        };
        let with_removal = {
            let mut opts = seq_opts(2);
            opts.cycle_removal_every = Some(2);
            let mut e = Engine::new(instance, opts);
            e.run_to_convergence(1e-10, 2, 60).final_cost
        };
        assert!(
            (plain - with_removal).abs() <= 1e-3 * plain.max(1.0),
            "plain {plain} vs removal {with_removal}"
        );
    }

    #[test]
    fn stale_loads_still_converge() {
        let mut rng = rng_for(41, 5);
        let instance = spec(60.0, LoadDistribution::Uniform)
            .sample(LatencyMatrix::homogeneous(30, 20.0), &mut rng);
        let mut opts = seq_opts(3);
        opts.load_staleness = 3;
        opts.selection = Some(PartnerSelection::Pruned { top_k: 6 });
        let mut engine = Engine::new(instance.clone(), opts);
        let report = engine.run_to_convergence(1e-10, 2, 120);
        let (_, pgd) = solve_pgd(&instance, &PgdOptions::default());
        assert!(
            report.final_cost <= pgd.objective * 1.05,
            "stale {} vs opt {}",
            report.final_cost,
            pgd.objective
        );
    }

    #[test]
    fn gossip_fed_scoring_still_converges() {
        // Same bar as `stale_loads_still_converge`, but the stale views
        // come from the real delta-gossip control plane: each server
        // ranks candidates on what its own gossip node believes.
        let mut rng = rng_for(41, 5);
        let instance = spec(60.0, LoadDistribution::Uniform)
            .sample(LatencyMatrix::homogeneous(30, 20.0), &mut rng);
        let mut opts = seq_opts(3);
        opts.selection = Some(PartnerSelection::Pruned { top_k: 6 });
        let mut engine = Engine::new(instance.clone(), opts);
        engine.attach_gossip_feed(100.0);
        let report = engine.run_to_convergence(1e-10, 2, 120);
        let (_, pgd) = solve_pgd(&instance, &PgdOptions::default());
        assert!(
            report.final_cost <= pgd.objective * 1.05,
            "gossip-fed {} vs opt {}",
            report.final_cost,
            pgd.objective
        );
        let traffic = engine.gossip_traffic().expect("feed attached");
        assert!(traffic.frames > 0 && traffic.bytes > 0, "{traffic:?}");
    }

    #[test]
    fn gossip_fed_runs_are_deterministic_and_cloneable() {
        let mut rng = rng_for(43, 5);
        let instance = spec(50.0, LoadDistribution::Exponential)
            .sample(LatencyMatrix::homogeneous(24, 16.0), &mut rng);
        let mut opts = seq_opts(8);
        opts.selection = Some(PartnerSelection::Pruned { top_k: 5 });
        let run = |instance: Instance| {
            let mut e = Engine::new(instance, opts);
            e.attach_gossip_feed(50.0);
            e.run_iteration();
            // Engine: Clone must capture the feed mid-flight.
            let mut forked = e.clone();
            let a = e.run_to_convergence(1e-10, 2, 60);
            let b = forked.run_to_convergence(1e-10, 2, 60);
            assert_eq!(a, b, "clone diverged from original");
            (a, e.gossip_traffic())
        };
        assert_eq!(run(instance.clone()), run(instance));
    }

    #[test]
    fn update_loads_preserves_invariants_and_rebalances() {
        let mut rng = rng_for(51, 6);
        let instance = spec(50.0, LoadDistribution::Uniform)
            .sample(LatencyMatrix::homogeneous(12, 20.0), &mut rng);
        let mut engine = Engine::new(instance, seq_opts(4));
        engine.run_to_convergence(1e-10, 2, 50);
        // Shift demand: double some orgs, empty others.
        let mut new_loads: Vec<f64> = Vec::new();
        for k in 0..12 {
            let old = engine.instance().own_load(k);
            new_loads.push(if k % 2 == 0 { old * 2.0 } else { 0.0 });
        }
        engine.update_loads(new_loads.clone());
        engine
            .assignment()
            .check_invariants(engine.instance())
            .unwrap();
        let cost_after_shift = engine.current_cost();
        let report = engine.run_to_convergence(1e-10, 2, 50);
        assert!(report.final_cost <= cost_after_shift + 1e-9);
    }

    #[test]
    fn pair_once_peak_spreads_by_doubling() {
        // Peak workload on a homogeneous network: with the paper's
        // one-exchange-per-server rounds, the number of loaded servers
        // can at most double per iteration, so reaching a balanced
        // state takes ≈log₂(m) iterations (Tables I/II, "peak" rows).
        let m = 64;
        let mut instance = Instance::homogeneous(m, 1.0, 0.0, 20.0);
        let mut loads = vec![0.0; m];
        loads[0] = 100_000.0;
        instance.set_own_loads(loads);
        let mut engine = Engine::new(instance, seq_opts(9));
        let report = engine.run_to_convergence(1e-12, 2, 60);
        let opt = report.final_cost;
        let iters = engine.iterations_to_reach(opt, 0.001).unwrap();
        // log2(64) = 6; allow the stall tail but demand the doubling
        // shape: strictly more than 3, no more than ~2·log2(m).
        assert!(
            (4..=13).contains(&iters),
            "peak spread took {iters} iterations, expected ≈log2(64)=6"
        );
    }

    #[test]
    fn eager_mode_converges_faster_than_pair_once() {
        let m = 32;
        let mut instance = Instance::homogeneous(m, 1.0, 0.0, 20.0);
        let mut loads = vec![0.0; m];
        loads[0] = 50_000.0;
        instance.set_own_loads(loads.clone());
        let paired = {
            let mut e = Engine::new(instance.clone(), seq_opts(2));
            let r = e.run_to_convergence(1e-12, 2, 60);
            e.iterations_to_reach(r.final_cost, 0.001).unwrap()
        };
        let eager = {
            let mut opts = seq_opts(2);
            opts.pair_once = false;
            let mut e = Engine::new(instance, opts);
            let r = e.run_to_convergence(1e-12, 2, 60);
            e.iterations_to_reach(r.final_cost, 0.001).unwrap()
        };
        assert!(
            eager <= paired,
            "eager {eager} should need no more iterations than paired {paired}"
        );
        assert!(
            eager <= 3,
            "eager mode should flatten a peak almost at once"
        );
    }

    #[test]
    fn pair_once_exchanges_bounded_by_half_m() {
        let mut rng = rng_for(77, 9);
        let instance = spec(50.0, LoadDistribution::Exponential)
            .sample(LatencyMatrix::homogeneous(21, 20.0), &mut rng);
        let mut engine = Engine::new(instance, seq_opts(5));
        let stats = engine.run_iteration();
        assert!(
            stats.exchanges <= 21 / 2,
            "{} exchanges exceed ⌊m/2⌋ pairings",
            stats.exchanges
        );
    }

    #[test]
    fn unit_granularity_stalls_at_discrete_fixpoint() {
        // With whole-request transfers the engine must terminate
        // quickly once no single request is worth moving, and its
        // fixpoint must price within a hair of the continuous one
        // (the discrete gap per pair is O(1) requests).
        let mut rng = rng_for(91, 10);
        let m = 30;
        let mut lat = LatencyMatrix::zero(m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    lat.set(i, j, rng.gen_range(5.0..80.0));
                }
            }
        }
        lat.metric_close();
        let mut instance = spec(200.0, LoadDistribution::Exponential).sample(lat, &mut rng);
        // Integer initial loads: the discrete model's precondition.
        let rounded: Vec<f64> = instance.own_loads().iter().map(|l| l.round()).collect();
        instance.set_own_loads(rounded);
        let continuous = {
            let mut e = Engine::new(instance.clone(), seq_opts(4));
            e.run_to_convergence(1e-12, 3, 200).final_cost
        };
        let mut opts = seq_opts(4);
        opts.granularity = 1.0;
        let mut e = Engine::new(instance.clone(), opts);
        // 1e-6 relative stall: the discrete engine keeps finding
        // single-request improvements worth ~1e-8 of ΣC for a long
        // while; they are irrelevant at any precision the evaluation
        // measures.
        // The evaluation protocol's oracle: stall at 1e-6 relative
        // within a 60-iteration budget (§VI-A approximates the optimum
        // with the algorithm itself). The measured metric is the first
        // iteration within 0.1 % of that oracle; the residual tail of
        // one-request shuffles collectively worth < 0.1 % can grind on
        // far longer and is irrelevant to every reported number.
        let report = e.run_to_convergence(1e-6, 3, 60);
        let to_01pct = e
            .iterations_to_reach(report.final_cost, 0.001)
            .expect("fixpoint is in its own history");
        // Heavily loaded (l_av = 200) dense random metric: the slowest
        // regime we measure (see EXPERIMENTS.md on the high-load WAN
        // tail); still a bounded multiple of the paper's counts.
        assert!(
            to_01pct <= 30,
            "discrete engine took {to_01pct} iterations to 0.1%"
        );
        assert!(
            report.final_cost <= continuous * 1.005,
            "discrete {} vs continuous {}",
            report.final_cost,
            continuous
        );
        // Integrality: integer initial loads stay integer.
        for j in 0..30 {
            for (_, r) in e.assignment().ledger(j).iter() {
                assert!((r - r.round()).abs() < 1e-9, "fractional ledger {r}");
            }
        }
    }

    #[test]
    fn iterations_to_reach_semantics() {
        let mut rng = rng_for(61, 7);
        let instance = spec(20.0, LoadDistribution::Exponential)
            .sample(LatencyMatrix::homogeneous(15, 20.0), &mut rng);
        let mut engine = Engine::new(instance, seq_opts(5));
        let report = engine.run_to_convergence(1e-12, 2, 80);
        let hits_exact = engine.iterations_to_reach(report.final_cost, 0.0);
        assert!(hits_exact.is_some());
        let hits_loose = engine.iterations_to_reach(report.final_cost, 0.02).unwrap();
        assert!(hits_loose <= hits_exact.unwrap());
    }

    #[test]
    fn heterogeneous_latency_network() {
        let mut rng = rng_for(71, 8);
        let m = 16;
        let mut lat = LatencyMatrix::zero(m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    lat.set(i, j, rng.gen_range(1.0..60.0));
                }
            }
        }
        lat.metric_close();
        let instance = spec(50.0, LoadDistribution::Exponential).sample(lat, &mut rng);
        let mut engine = Engine::new(instance.clone(), seq_opts(6));
        let report = engine.run_to_convergence(1e-10, 2, 100);
        let (_, pgd) = solve_pgd(&instance, &PgdOptions::default());
        assert!(
            report.final_cost <= pgd.objective * (1.0 + 1e-2),
            "engine {} vs solver {}",
            report.final_cost,
            pgd.objective
        );
    }
}
