//! Proposition 1: bounding the distance to the optimum from observable
//! quantities.
//!
//! While running, the distributed algorithm can estimate how far the
//! current solution is from optimal *without knowing the optimum*: if
//! the error graph has no negative cycle and `Δr_jk` denotes what
//! Algorithm 1 would currently transfer between servers `j` and `k`,
//! then
//!
//! ```text
//! ‖ρ − ρ'‖₁ ≤ (4m + 1) · ΔR · Σ_i s_i,
//! ΔR = Σ_j max_k (1/s_j + 1/s_k) · Δr_jk .
//! ```
//!
//! The estimate tells operators whether continuing to iterate is still
//! profitable (paper §IV-B).

use dlb_core::{Assignment, Instance};

use crate::transfer::calc_best_transfer;

/// The Proposition 1 estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBound {
    /// `ΔR` — the speed-weighted maximal pending transfer mass.
    pub delta_r: f64,
    /// `(4m+1) · ΔR · Σ s_i` — upper bound on `‖ρ − ρ'‖₁` (requests).
    pub bound_l1: f64,
}

/// Volume Algorithm 1 would move *onto* server `j` from server `i`
/// (the `Δr_ij` of Proposition 1), measured as the net load change of
/// `j`.
///
/// Net load (rather than per-owner churn) is the right reading: in
/// homogeneous networks Algorithm 1 may re-shuffle *which* owner's
/// requests sit on each server at exactly zero improvement, and the
/// Proposition's proof uses `Δr` only through weighted load
/// differences.
pub fn pending_transfer(instance: &Instance, a: &Assignment, i: usize, j: usize) -> f64 {
    if i == j {
        return 0.0;
    }
    let outcome = calc_best_transfer(instance, a.ledger(i), a.ledger(j), i, j);
    (outcome.ledger_j.sum() - a.load(j)).max(0.0)
}

/// Computes the Proposition 1 bound for the current state. `O(m²)`
/// pairwise Algorithm 1 evaluations — intended for monitoring at table
/// scale, not for the inner loop.
pub fn proposition1_bound(instance: &Instance, a: &Assignment) -> ErrorBound {
    let m = instance.len();
    let mut delta_r = 0.0;
    for j in 0..m {
        let mut worst = 0.0f64;
        for k in 0..m {
            if k == j {
                continue;
            }
            let moved = pending_transfer(instance, a, j, k);
            let weighted = (1.0 / instance.speed(j) + 1.0 / instance.speed(k)) * moved;
            worst = worst.max(weighted);
        }
        delta_r += worst;
    }
    let total_speed: f64 = instance.total_speed();
    ErrorBound {
        delta_r,
        bound_l1: (4.0 * m as f64 + 1.0) * delta_r * total_speed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineOptions};
    use crate::error_graph::manhattan_distance;
    use dlb_core::rngutil::rng_for;
    use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
    use dlb_core::LatencyMatrix;

    fn engine_opts(seed: u64) -> EngineOptions {
        EngineOptions {
            seed,
            parallel: false,
            ..Default::default()
        }
    }

    fn sample(m: usize, seed: u64) -> dlb_core::Instance {
        let mut rng = rng_for(seed, 71);
        WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 40.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(m, 20.0), &mut rng)
    }

    #[test]
    fn bound_is_zero_at_fixpoint() {
        let instance = sample(10, 1);
        let mut engine = Engine::new(instance.clone(), engine_opts(1));
        engine.run_to_convergence(1e-12, 3, 200);
        let bound = proposition1_bound(&instance, engine.assignment());
        // At the fixpoint no pair wants to exchange anything of
        // substance. The engine skips exchanges improving less than
        // ~1e-12·ΣC, and improvement is quadratic in the transfer, so
        // residual pending transfers are O(√ε) ≈ 1e-4 requests.
        assert!(
            bound.delta_r < 1e-2,
            "delta_r = {} at fixpoint",
            bound.delta_r
        );
        assert!(
            bound.bound_l1 < 1e-2 * instance.total_load(),
            "bound {} not small next to total load {}",
            bound.bound_l1,
            instance.total_load()
        );
    }

    #[test]
    fn bound_dominates_actual_distance() {
        // Run the engine a couple of iterations, compare the bound
        // against the actual distance to the (engine-approximated)
        // optimum.
        let instance = sample(8, 2);
        let mut optimum = Engine::new(instance.clone(), engine_opts(3));
        optimum.run_to_convergence(1e-12, 3, 300);
        let opt_assignment = optimum.assignment().clone();

        let mut partial = Engine::new(instance.clone(), engine_opts(3));
        partial.run_iteration();
        let bound = proposition1_bound(&instance, partial.assignment());
        let actual = manhattan_distance(partial.assignment(), &opt_assignment);
        assert!(
            bound.bound_l1 >= actual * 0.999,
            "bound {} must dominate distance {actual}",
            bound.bound_l1
        );
    }

    #[test]
    fn bound_shrinks_as_engine_converges() {
        let instance = sample(10, 4);
        let mut engine = Engine::new(instance.clone(), engine_opts(5));
        let b0 = proposition1_bound(&instance, engine.assignment()).bound_l1;
        for _ in 0..4 {
            engine.run_iteration();
        }
        let b4 = proposition1_bound(&instance, engine.assignment()).bound_l1;
        assert!(
            b4 <= b0 * 0.8 + 1e-9,
            "bound should shrink markedly: {b0} -> {b4}"
        );
    }

    #[test]
    fn pending_transfer_matches_imbalance() {
        // Two idle/loaded equal-speed servers, zero latency: Algorithm 1
        // moves half the load.
        let instance =
            dlb_core::Instance::new(vec![1.0, 1.0], vec![10.0, 0.0], LatencyMatrix::zero(2));
        let a = dlb_core::Assignment::local(&instance);
        assert!((pending_transfer(&instance, &a, 0, 1) - 5.0).abs() < 1e-9);
        assert_eq!(pending_transfer(&instance, &a, 1, 0), 0.0);
    }
}
