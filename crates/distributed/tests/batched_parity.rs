//! Fixpoint parity between the two round execution models.
//!
//! The batched propose/match/apply round replays §VI-B's iteration
//! against a round-start snapshot instead of a serial sweep. The
//! literature's expectation (Balseiro et al.: simultaneous updates
//! against a shared load snapshot reach the same equilibria) is that
//! the fixpoints agree — these tests pin that down to 1% of `ΣC`
//! across seeds, workload shapes, and network substrates.
//!
//! Deliberately *not* touching `DLB_THREADS`: CI runs this suite under
//! several ambient thread counts, which must all pass identically.

use dlb_core::rngutil::rng_for;
use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
use dlb_core::{Instance, LatencyMatrix};
use dlb_distributed::{Engine, EngineOptions, RoundMode};
use rand::Rng;

fn planetlab_like(m: usize, seed: u64) -> LatencyMatrix {
    let mut rng = rng_for(seed, 0xBA7C);
    let mut lat = LatencyMatrix::zero(m);
    for i in 0..m {
        for j in 0..m {
            if i != j {
                lat.set(i, j, rng.gen_range(2.0..80.0));
            }
        }
    }
    lat.metric_close();
    lat
}

fn workload(dist: LoadDistribution, avg: f64, lat: LatencyMatrix, seed: u64) -> Instance {
    let mut rng = rng_for(seed, 0xF12);
    WorkloadSpec {
        loads: dist,
        avg_load: avg,
        speeds: SpeedDistribution::paper_uniform(),
    }
    .sample(lat, &mut rng)
}

fn fixpoint_cost(instance: &Instance, mode: RoundMode, seed: u64) -> f64 {
    let mut engine = Engine::new(
        instance.clone(),
        EngineOptions {
            seed,
            round_mode: mode,
            ..Default::default()
        },
    );
    let report = engine.run_to_convergence(1e-10, 3, 150);
    engine
        .assignment()
        .check_invariants(engine.instance())
        .unwrap();
    report.final_cost
}

fn assert_parity(instance: &Instance, seed: u64, label: &str) {
    let sequential = fixpoint_cost(instance, RoundMode::Sequential, seed);
    let batched = fixpoint_cost(instance, RoundMode::Batched, seed);
    assert!(
        batched <= sequential * 1.01 && sequential <= batched * 1.01,
        "{label} seed {seed}: batched {batched} vs sequential {sequential}"
    );
}

#[test]
fn parity_uniform_homogeneous() {
    for seed in 1..=3u64 {
        let instance = workload(
            LoadDistribution::Uniform,
            50.0,
            LatencyMatrix::homogeneous(40, 20.0),
            seed,
        );
        assert_parity(&instance, seed, "uniform/homogeneous");
    }
}

#[test]
fn parity_exponential_heterogeneous() {
    for seed in 1..=3u64 {
        let instance = workload(
            LoadDistribution::Exponential,
            60.0,
            planetlab_like(48, seed),
            seed,
        );
        assert_parity(&instance, seed, "exponential/heterogeneous");
    }
}

#[test]
fn parity_peak_workload() {
    // The paper's hardest shape: all load on one server, spread by
    // doubling. Batched rounds must reproduce both the fixpoint and
    // the doubling-shaped trajectory.
    for seed in 1..=2u64 {
        let m = 32;
        let mut instance = Instance::homogeneous(m, 1.0, 0.0, 20.0);
        let mut loads = vec![0.0; m];
        loads[0] = 50_000.0;
        instance.set_own_loads(loads);
        assert_parity(&instance, seed, "peak/homogeneous");
    }
}

#[test]
fn parity_pruned_selection_large() {
    // Above the exact threshold the default policy prunes; this is the
    // Figure-2 configuration the batched mode exists for.
    let m = 500;
    let instance = workload(
        LoadDistribution::Peak,
        100_000.0 / m as f64,
        planetlab_like(m, 11),
        11,
    );
    assert_parity(&instance, 7, "peak/pruned/large");
}

#[test]
fn parity_unit_granularity() {
    for seed in 1..=2u64 {
        let mut instance = workload(
            LoadDistribution::Exponential,
            80.0,
            planetlab_like(30, seed),
            seed,
        );
        let rounded: Vec<f64> = instance.own_loads().iter().map(|l| l.round()).collect();
        instance.set_own_loads(rounded);
        let opts = |mode: RoundMode| EngineOptions {
            seed,
            granularity: 1.0,
            round_mode: mode,
            ..Default::default()
        };
        let sequential = {
            let mut e = Engine::new(instance.clone(), opts(RoundMode::Sequential));
            e.run_to_convergence(1e-6, 3, 80).final_cost
        };
        let batched = {
            let mut e = Engine::new(instance.clone(), opts(RoundMode::Batched));
            let report = e.run_to_convergence(1e-6, 3, 80);
            // Integrality survives concurrent application.
            for j in 0..30 {
                for (_, r) in e.assignment().ledger(j).iter() {
                    assert!((r - r.round()).abs() < 1e-9, "fractional ledger {r}");
                }
            }
            report.final_cost
        };
        assert!(
            batched <= sequential * 1.01 && sequential <= batched * 1.01,
            "granularity seed {seed}: batched {batched} vs sequential {sequential}"
        );
    }
}

#[test]
fn batched_respects_reachability_mask() {
    let instance = workload(
        LoadDistribution::Exponential,
        50.0,
        planetlab_like(24, 5),
        5,
    );
    let mut engine = Engine::new(
        instance,
        EngineOptions {
            seed: 3,
            round_mode: RoundMode::Batched,
            ..Default::default()
        },
    );
    let mut active = vec![true; 24];
    for dead in [3usize, 7, 18] {
        active[dead] = false;
    }
    let before: Vec<f64> = engine.assignment().loads().to_vec();
    for _ in 0..5 {
        engine.run_iteration_masked(Some(&active));
    }
    for dead in [3usize, 7, 18] {
        assert_eq!(
            engine.assignment().load(dead),
            before[dead],
            "failed server {dead} must not participate in batched rounds"
        );
    }
    engine
        .assignment()
        .check_invariants(engine.instance())
        .unwrap();
}

#[test]
fn batched_history_is_monotone_and_exchanges_bounded() {
    let instance = workload(
        LoadDistribution::Exponential,
        70.0,
        planetlab_like(41, 9),
        9,
    );
    let mut engine = Engine::new(
        instance,
        EngineOptions {
            seed: 5,
            round_mode: RoundMode::Batched,
            ..Default::default()
        },
    );
    for _ in 0..10 {
        let stats = engine.run_iteration();
        assert!(
            stats.exchanges <= 41 / 2,
            "{} exchanges exceed ⌊m/2⌋ conflict-free pairings",
            stats.exchanges
        );
    }
    let h = engine.history();
    for w in h.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-6 * w[0].max(1.0),
            "batched history not monotone: {h:?}"
        );
    }
}
