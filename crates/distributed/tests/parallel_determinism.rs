//! The parallel refactors must not change any result:
//! `dlb_par::par_map_indexed`/`par_map_slice` preserve index order, so
//! the engine's fixpoint has to be bit-identical whether the scoring
//! loop — and, in batched mode, the propose/match/apply round — runs
//! on one worker (`DLB_THREADS=1`), on every core (the default), or on
//! the plain sequential path (`parallel: false`).
//!
//! This file is its own test binary so the `DLB_THREADS` mutations
//! cannot race with unrelated tests.

use dlb_core::rngutil::rng_for;
use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
use dlb_core::{Instance, LatencyMatrix};
use dlb_distributed::mine::PartnerSelection;
use dlb_distributed::{Engine, EngineOptions, RoundMode};
use rand::Rng;
use std::sync::Mutex;

/// Both tests mutate the process-wide `DLB_THREADS` variable; they must
/// not interleave within this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A heterogeneous instance big enough to clear `dlb-par`'s sequential
/// cutoff in both the pre-scoring (`m` items) and, in exact mode, the
/// candidate-evaluation (`m − 1` items) maps.
fn instance(m: usize) -> Instance {
    let mut rng = rng_for(2024, 0xDE7);
    let mut lat = LatencyMatrix::zero(m);
    for i in 0..m {
        for j in 0..m {
            if i != j {
                lat.set(i, j, rng.gen_range(1.0..40.0));
            }
        }
    }
    lat.metric_close();
    WorkloadSpec {
        loads: LoadDistribution::Exponential,
        avg_load: 70.0,
        speeds: SpeedDistribution::paper_uniform(),
    }
    .sample(lat, &mut rng)
}

/// Runs the engine to convergence and returns its exact final state:
/// the cost and every server load, both compared bit-for-bit.
fn fixpoint_in(
    instance: &Instance,
    parallel: bool,
    selection: PartnerSelection,
    round_mode: RoundMode,
) -> (f64, Vec<f64>) {
    let mut engine = Engine::new(
        instance.clone(),
        EngineOptions {
            parallel,
            selection: Some(selection),
            seed: 7,
            round_mode,
            ..Default::default()
        },
    );
    let report = engine.run_to_convergence(1e-12, 2, 80);
    (report.final_cost, engine.assignment().loads().to_vec())
}

fn fixpoint(instance: &Instance, parallel: bool, selection: PartnerSelection) -> (f64, Vec<f64>) {
    fixpoint_in(instance, parallel, selection, RoundMode::Sequential)
}

#[test]
fn engine_fixpoint_is_thread_count_invariant() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let inst = instance(96);
    for selection in [
        PartnerSelection::Exact,
        PartnerSelection::Pruned { top_k: 8 },
    ] {
        let sequential = fixpoint(&inst, false, selection);

        std::env::set_var("DLB_THREADS", "1");
        let one_thread = fixpoint(&inst, true, selection);

        std::env::set_var("DLB_THREADS", "3");
        let three_threads = fixpoint(&inst, true, selection);

        std::env::remove_var("DLB_THREADS");
        let default_threads = fixpoint(&inst, true, selection);

        assert_eq!(
            one_thread, default_threads,
            "{selection:?}: DLB_THREADS=1 vs default diverged"
        );
        assert_eq!(
            three_threads, default_threads,
            "{selection:?}: DLB_THREADS=3 vs default diverged"
        );
        assert_eq!(
            sequential, default_threads,
            "{selection:?}: parallel path diverged from sequential reference"
        );
    }
}

#[test]
fn batched_round_fixpoint_is_thread_count_invariant() {
    // The propose/match/apply path adds a second layer of fan-out (the
    // outer per-server propose map and the concurrent apply of matched
    // exchanges); its fixpoint must be bit-identical across worker
    // counts and against the fully sequential execution, for both
    // selection policies.
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let inst = instance(96);
    for selection in [
        PartnerSelection::Exact,
        PartnerSelection::Pruned { top_k: 8 },
    ] {
        let sequential = fixpoint_in(&inst, false, selection, RoundMode::Batched);

        std::env::set_var("DLB_THREADS", "1");
        let one_thread = fixpoint_in(&inst, true, selection, RoundMode::Batched);

        std::env::set_var("DLB_THREADS", "3");
        let three_threads = fixpoint_in(&inst, true, selection, RoundMode::Batched);

        std::env::remove_var("DLB_THREADS");
        let default_threads = fixpoint_in(&inst, true, selection, RoundMode::Batched);

        assert_eq!(
            one_thread, default_threads,
            "batched {selection:?}: DLB_THREADS=1 vs default diverged"
        );
        assert_eq!(
            three_threads, default_threads,
            "batched {selection:?}: DLB_THREADS=3 vs default diverged"
        );
        assert_eq!(
            sequential, default_threads,
            "batched {selection:?}: parallel path diverged from sequential reference"
        );
    }
}
