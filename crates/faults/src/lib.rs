//! # dlb-faults — deterministic fault & churn injection
//!
//! The paper's protocol (§IV) and the related neighborhood
//! load-balancing results (arXiv cs/0506098, arXiv 1109.6925) analyze
//! convergence under *idealized* communication. This crate makes the
//! other regime measurable: it injects node crashes and recoveries,
//! per-link frame loss, delay-spike windows, network partitions, and
//! slow-but-alive stragglers into the workspace's virtual-time
//! simulations — the protocol
//! executor in `dlb-runtime` and the scheduled gossip in `dlb-gossip`
//! — so "how far does §IV degrade when the network misbehaves?" is a
//! scenario, not a thought experiment.
//!
//! Two layers:
//!
//! * [`FaultPlan`] — the *declarative* schedule, with an exact text
//!   round-trip matching the Scenario API's token style
//!   (`crash:0.1@500ms,loss:0.05` parses and [`Display`](std::fmt::Display)s
//!   back). A plan is pure data: fractions, probabilities, windows.
//! * [`FaultScript`] — the plan *compiled for one run*
//!   ([`FaultPlan::compile`] takes the seed and the cluster size):
//!   which concrete nodes crash, which partition side each node is on,
//!   and pure-function per-frame decisions. Every method is a pure
//!   function of `(seed, inputs)` — no interior state, no RNG stream —
//!   so a fault trajectory is bit-reproducible across repeats and
//!   worker-pool sizes, exactly like the executor it gates.
//!
//! ## Drop vs. delay: who gets which loss semantics
//!
//! Frame loss has two faces, and the script exposes both so each
//! simulation keeps its invariants:
//!
//! * **Idempotent traffic drops** ([`FaultScript::loss_drops`],
//!   [`FaultScript::crossing_blocked`]): gossip exchanges are periodic
//!   and idempotent, so a lost push-pull frame is simply gone — the
//!   next tick retries. `dlb_gossip` uses these raw decisions.
//! * **Reliable-transport delays** ([`FaultScript::reliable_link`]):
//!   the §IV exchange moves request ownership — dropping a `Commit`
//!   would tear an exchange in half and violate conservation, which is
//!   why a real deployment runs it over TCP. There, loss manifests as
//!   retransmission latency: each lost attempt adds one retransmission
//!   timeout, and a partition holds crossing frames until it heals.
//!   `dlb_runtime::executor` uses this composition; only frames to
//!   *crashed* destinations are truly dropped.
//!
//! ```
//! use dlb_faults::FaultPlan;
//!
//! let plan: FaultPlan = "crash:0.25@500ms..2000ms,loss:0.1".parse().unwrap();
//! assert_eq!(plan.to_string(), "crash:0.25@500ms..2000ms,loss:0.1");
//! let script = plan.compile(7, 20);
//! assert_eq!(script.down_at(1000.0).len(), 5); // 25% of 20 nodes
//! assert!(script.down_at(0.0).is_empty());     // ...but not before 500ms
//! assert!(script.down_at(3000.0).is_empty());  // ...and they recover
//! // Same seed, same script: decisions are pure functions.
//! assert_eq!(script.down_at(1000.0), plan.compile(7, 20).down_at(1000.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod plan;
#[cfg(all(test, feature = "proptests"))]
mod proptests;
pub mod script;

pub use plan::{
    CrashFault, FaultError, FaultPlan, LossFault, PartitionFault, SlowFault, SpikeFault,
};
pub use script::{FaultScript, FaultSummary, LinkOutcome, MAX_RETRANSMITS, RETRANSMIT_MS};
