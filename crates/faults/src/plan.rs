//! The declarative fault schedule and its text form.
//!
//! A [`FaultPlan`] is a comma-separated list of fault primitives, at
//! most one of each kind, written without spaces so the whole plan fits
//! in one `faults=` scenario token:
//!
//! ```text
//! crash:0.1@500ms             a tenth of the nodes crash at t=500ms
//! crash:0.1@500ms..2000ms     ...and recover at t=2000ms
//! loss:0.05                   5% per-frame loss for the whole run
//! loss:0.2@100ms..900ms       ...or only inside a window
//! spike:4x@200ms..800ms       link delays ×4 inside the window
//! part:500ms..1500ms          bipartition drops crossing frames
//! slow:0.05@4x                5% of the nodes send at 4× delay
//! slow:0.05@4x@100ms..900ms   ...or only inside a window
//! ```
//!
//! [`FaultPlan::parse`] and the [`Display`](std::fmt::Display) impl
//! round-trip exactly (primitives render in the fixed order crash,
//! loss, spike, part, slow), so plans travel through scenario text,
//! shell flags, and committed JSON records unchanged.

use std::fmt;
use std::str::FromStr;

use crate::script::FaultScript;

/// A fault-plan parse/validation error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError(pub String);

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for FaultError {}

/// A fraction of the nodes crashes at a virtual instant, optionally
/// recovering at a later one (`crash:FRAC@Tms` / `crash:FRAC@Tms..Tms`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashFault {
    /// Fraction of the cluster that crashes, in `(0, 1]`. Compilation
    /// always leaves at least one survivor.
    pub frac: f64,
    /// Virtual instant (ms) at which the chosen nodes go down.
    pub at_ms: f64,
    /// Virtual instant (ms) at which they come back, if ever.
    pub recover_ms: Option<f64>,
}

/// Independent per-frame loss with probability `prob`, optionally
/// confined to a window (`loss:P` / `loss:P@Tms..Tms`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossFault {
    /// Per-frame (per-attempt) loss probability, in `[0, 1)`.
    pub prob: f64,
    /// Active window `[from, to)` in ms; `None` = the whole run.
    pub window: Option<(f64, f64)>,
}

/// Every link delay is multiplied by `factor` inside the window
/// (`spike:Fx@Tms..Tms`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeFault {
    /// Delay multiplier, ≥ 1.
    pub factor: f64,
    /// Window start (ms).
    pub from_ms: f64,
    /// Window end (ms).
    pub to_ms: f64,
}

/// A seed-deterministic bipartition of the nodes; frames crossing the
/// cut are blocked while the window is active (`part:Tms..Tms`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionFault {
    /// Window start (ms).
    pub from_ms: f64,
    /// Window end (ms) — the instant the partition heals.
    pub to_ms: f64,
}

/// A fraction of the nodes straggles: slow-but-alive nodes whose
/// outbound frames take `factor`× the base link delay, optionally
/// confined to a window (`slow:FRAC@Fx` / `slow:FRAC@Fx@Tms..Tms`).
/// Stragglers keep participating in the protocol — they exist to
/// exercise the failure detector's false-positive path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowFault {
    /// Fraction of the cluster that straggles, in `(0, 1]`.
    pub frac: f64,
    /// Outbound delay multiplier, ≥ 1.
    pub factor: f64,
    /// Active window `[from, to)` in ms; `None` = the whole run.
    pub window: Option<(f64, f64)>,
}

/// A declarative, seed-independent fault schedule: at most one
/// primitive of each kind (see the [module docs](self) for the text
/// grammar). [`FaultPlan::compile`] turns it into the per-run
/// [`FaultScript`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Node crash/recover schedule.
    pub crash: Option<CrashFault>,
    /// Per-link frame loss.
    pub loss: Option<LossFault>,
    /// Delay-spike window.
    pub spike: Option<SpikeFault>,
    /// Network bipartition window.
    pub partition: Option<PartitionFault>,
    /// Straggler (slow-but-alive) schedule.
    pub slow: Option<SlowFault>,
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Adds a crash of `frac` of the nodes at `at_ms` (no recovery).
    pub fn crash(mut self, frac: f64, at_ms: f64) -> Self {
        self.crash = Some(CrashFault {
            frac,
            at_ms,
            recover_ms: None,
        });
        self
    }

    /// Adds a crash of `frac` of the nodes over `[at_ms, recover_ms)`.
    pub fn churn(mut self, frac: f64, at_ms: f64, recover_ms: f64) -> Self {
        self.crash = Some(CrashFault {
            frac,
            at_ms,
            recover_ms: Some(recover_ms),
        });
        self
    }

    /// Adds whole-run per-frame loss with probability `prob`.
    pub fn loss(mut self, prob: f64) -> Self {
        self.loss = Some(LossFault { prob, window: None });
        self
    }

    /// Adds per-frame loss with probability `prob` inside a window.
    pub fn loss_window(mut self, prob: f64, from_ms: f64, to_ms: f64) -> Self {
        self.loss = Some(LossFault {
            prob,
            window: Some((from_ms, to_ms)),
        });
        self
    }

    /// Adds a delay spike: link delays × `factor` inside the window.
    pub fn spike(mut self, factor: f64, from_ms: f64, to_ms: f64) -> Self {
        self.spike = Some(SpikeFault {
            factor,
            from_ms,
            to_ms,
        });
        self
    }

    /// Adds a bipartition over `[from_ms, to_ms)`.
    pub fn partition(mut self, from_ms: f64, to_ms: f64) -> Self {
        self.partition = Some(PartitionFault { from_ms, to_ms });
        self
    }

    /// Adds whole-run stragglers: `frac` of the nodes send every frame
    /// at `factor`× the base link delay.
    pub fn slow(mut self, frac: f64, factor: f64) -> Self {
        self.slow = Some(SlowFault {
            frac,
            factor,
            window: None,
        });
        self
    }

    /// Adds stragglers active only inside a window.
    pub fn slow_window(mut self, frac: f64, factor: f64, from_ms: f64, to_ms: f64) -> Self {
        self.slow = Some(SlowFault {
            frac,
            factor,
            window: Some((from_ms, to_ms)),
        });
        self
    }

    /// Parses the text form (see the [module docs](self)). The empty
    /// string yields the empty plan.
    pub fn parse(text: &str) -> Result<Self, FaultError> {
        let mut plan = Self::default();
        if text.is_empty() {
            return Ok(plan);
        }
        for part in text.split(',') {
            let (kind, value) = part.split_once(':').ok_or_else(|| {
                FaultError(format!(
                    "fault '{part}' is not KIND:VALUE (try 'crash:0.1@500ms' or 'loss:0.05')"
                ))
            })?;
            match kind {
                "crash" => {
                    if plan.crash.is_some() {
                        return Err(FaultError("crash given twice".into()));
                    }
                    let (frac, when) = value.split_once('@').ok_or_else(|| {
                        FaultError(format!(
                            "crash '{value}' needs '@TIME' (try 'crash:0.1@500ms')"
                        ))
                    })?;
                    let frac = parse_unit("crash fraction", frac)?;
                    if frac <= 0.0 || frac > 1.0 {
                        return Err(FaultError(format!(
                            "crash fraction {frac} must be in (0, 1]"
                        )));
                    }
                    let (at_ms, recover_ms) = match when.split_once("..") {
                        Some((a, b)) => {
                            let a = parse_ms("crash time", a)?;
                            let b = parse_ms("crash recovery time", b)?;
                            if b <= a {
                                return Err(FaultError(format!(
                                    "crash recovery {b}ms must come after the crash at {a}ms"
                                )));
                            }
                            (a, Some(b))
                        }
                        None => (parse_ms("crash time", when)?, None),
                    };
                    plan.crash = Some(CrashFault {
                        frac,
                        at_ms,
                        recover_ms,
                    });
                }
                "loss" => {
                    if plan.loss.is_some() {
                        return Err(FaultError("loss given twice".into()));
                    }
                    let (prob, window) = match value.split_once('@') {
                        Some((p, w)) => (p, Some(parse_window("loss window", w)?)),
                        None => (value, None),
                    };
                    let prob = parse_unit("loss probability", prob)?;
                    if !(0.0..1.0).contains(&prob) {
                        return Err(FaultError(format!(
                            "loss probability {prob} must be in [0, 1)"
                        )));
                    }
                    plan.loss = Some(LossFault { prob, window });
                }
                "spike" => {
                    if plan.spike.is_some() {
                        return Err(FaultError("spike given twice".into()));
                    }
                    let (factor, window) = value.split_once('@').ok_or_else(|| {
                        FaultError(format!(
                            "spike '{value}' needs '@FROM..TO' (try 'spike:4x@200ms..800ms')"
                        ))
                    })?;
                    let factor = factor.strip_suffix('x').ok_or_else(|| {
                        FaultError(format!("spike factor '{factor}' needs an 'x' suffix"))
                    })?;
                    let factor = parse_unit("spike factor", factor)?;
                    if factor < 1.0 {
                        return Err(FaultError(format!(
                            "spike factor {factor} must be at least 1"
                        )));
                    }
                    let (from_ms, to_ms) = parse_window("spike window", window)?;
                    plan.spike = Some(SpikeFault {
                        factor,
                        from_ms,
                        to_ms,
                    });
                }
                "part" => {
                    if plan.partition.is_some() {
                        return Err(FaultError("part given twice".into()));
                    }
                    let (from_ms, to_ms) = parse_window("part window", value)?;
                    plan.partition = Some(PartitionFault { from_ms, to_ms });
                }
                "slow" => {
                    if plan.slow.is_some() {
                        return Err(FaultError("slow given twice".into()));
                    }
                    let (frac, rest) = value.split_once('@').ok_or_else(|| {
                        FaultError(format!(
                            "slow '{value}' needs '@FACTORx' (try 'slow:0.05@4x')"
                        ))
                    })?;
                    let frac = parse_unit("slow fraction", frac)?;
                    if frac <= 0.0 || frac > 1.0 {
                        return Err(FaultError(format!(
                            "slow fraction {frac} must be in (0, 1]"
                        )));
                    }
                    let (factor, window) = match rest.split_once('@') {
                        Some((fx, w)) => (fx, Some(parse_window("slow window", w)?)),
                        None => (rest, None),
                    };
                    let factor = factor.strip_suffix('x').ok_or_else(|| {
                        FaultError(format!("slow factor '{factor}' needs an 'x' suffix"))
                    })?;
                    let factor = parse_unit("slow factor", factor)?;
                    if factor < 1.0 {
                        return Err(FaultError(format!(
                            "slow factor {factor} must be at least 1"
                        )));
                    }
                    plan.slow = Some(SlowFault {
                        frac,
                        factor,
                        window,
                    });
                }
                _ => {
                    return Err(FaultError(format!(
                        "unknown fault kind '{kind}' (valid: crash loss spike part slow)"
                    )))
                }
            }
        }
        Ok(plan)
    }

    /// Compiles the plan for one run: `seed` fixes every sampled
    /// decision (crash victims, partition sides, per-frame loss), `m`
    /// is the cluster size. See [`FaultScript`].
    pub fn compile(&self, seed: u64, m: usize) -> FaultScript {
        FaultScript::compile(self, seed, m)
    }
}

/// Parses a dimensionless value (fraction, probability, factor).
fn parse_unit(what: &str, value: &str) -> Result<f64, FaultError> {
    let x: f64 = value
        .parse()
        .map_err(|_| FaultError(format!("{what}: '{value}' is not a number")))?;
    if !x.is_finite() {
        return Err(FaultError(format!("{what}: '{value}' must be finite")));
    }
    Ok(x)
}

/// Parses a time in ms; the `ms` suffix is optional on input and
/// canonical on output.
fn parse_ms(what: &str, value: &str) -> Result<f64, FaultError> {
    let digits = value.strip_suffix("ms").unwrap_or(value);
    let x: f64 = digits
        .parse()
        .map_err(|_| FaultError(format!("{what}: '{value}' is not a time in ms")))?;
    if !x.is_finite() || x < 0.0 {
        return Err(FaultError(format!(
            "{what}: '{value}' must be finite and non-negative"
        )));
    }
    Ok(x)
}

fn parse_window(what: &str, value: &str) -> Result<(f64, f64), FaultError> {
    let (a, b) = value
        .split_once("..")
        .ok_or_else(|| FaultError(format!("{what}: '{value}' is not 'FROMms..TOms'")))?;
    let a = parse_ms(what, a)?;
    let b = parse_ms(what, b)?;
    if b <= a {
        return Err(FaultError(format!(
            "{what}: end {b}ms must come after start {a}ms"
        )));
    }
    Ok((a, b))
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(c) = &self.crash {
            write!(f, "crash:{}@{}ms", c.frac, c.at_ms)?;
            if let Some(r) = c.recover_ms {
                write!(f, "..{r}ms")?;
            }
            sep = ",";
        }
        if let Some(l) = &self.loss {
            write!(f, "{sep}loss:{}", l.prob)?;
            if let Some((a, b)) = l.window {
                write!(f, "@{a}ms..{b}ms")?;
            }
            sep = ",";
        }
        if let Some(s) = &self.spike {
            write!(f, "{sep}spike:{}x@{}ms..{}ms", s.factor, s.from_ms, s.to_ms)?;
            sep = ",";
        }
        if let Some(p) = &self.partition {
            write!(f, "{sep}part:{}ms..{}ms", p.from_ms, p.to_ms)?;
            sep = ",";
        }
        if let Some(s) = &self.slow {
            write!(f, "{sep}slow:{}@{}x", s.frac, s.factor)?;
            if let Some((a, b)) = s.window {
                write!(f, "@{a}ms..{b}ms")?;
            }
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = FaultError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trips() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.to_string(), "");
        assert_eq!(FaultPlan::new(), FaultPlan::default());
    }

    #[test]
    fn parses_the_issue_example() {
        let plan: FaultPlan = "crash:0.1@500ms,loss:0.05".parse().unwrap();
        assert_eq!(
            plan.crash,
            Some(CrashFault {
                frac: 0.1,
                at_ms: 500.0,
                recover_ms: None,
            })
        );
        assert_eq!(
            plan.loss,
            Some(LossFault {
                prob: 0.05,
                window: None,
            })
        );
        assert_eq!(plan.to_string(), "crash:0.1@500ms,loss:0.05");
    }

    #[test]
    fn all_primitives_round_trip() {
        for text in [
            "crash:0.1@500ms",
            "crash:0.25@500ms..2000ms",
            "loss:0.05",
            "loss:0.2@100ms..900ms",
            "spike:4x@200ms..800ms",
            "part:500ms..1500ms",
            "slow:0.05@4x",
            "slow:0.2@2.5x@100ms..900ms",
            "crash:0.1@500ms,loss:0.05,spike:2.5x@0ms..300ms,part:50ms..60ms,slow:0.1@3x",
        ] {
            let plan: FaultPlan = text.parse().unwrap();
            assert_eq!(plan.to_string(), text);
            assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
        }
    }

    #[test]
    fn ms_suffix_is_optional_on_input() {
        let a: FaultPlan = "crash:0.1@500".parse().unwrap();
        let b: FaultPlan = "crash:0.1@500ms".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "crash:0.1@500ms");
    }

    #[test]
    fn builder_matches_parse() {
        assert_eq!(
            FaultPlan::new().crash(0.1, 500.0).loss(0.05),
            "crash:0.1@500ms,loss:0.05".parse().unwrap()
        );
        assert_eq!(
            FaultPlan::new()
                .churn(0.2, 100.0, 300.0)
                .loss_window(0.5, 0.0, 50.0)
                .spike(2.0, 10.0, 20.0)
                .partition(5.0, 6.0)
                .slow(0.05, 4.0),
            "crash:0.2@100ms..300ms,loss:0.5@0ms..50ms,spike:2x@10ms..20ms,part:5ms..6ms,slow:0.05@4x"
                .parse()
                .unwrap()
        );
        assert_eq!(
            FaultPlan::new().slow_window(0.1, 2.0, 50.0, 80.0),
            "slow:0.1@2x@50ms..80ms".parse().unwrap()
        );
    }

    #[test]
    fn rejects_bad_plans() {
        for (text, needle) in [
            ("bogus:1", "unknown fault kind"),
            ("crash", "not KIND:VALUE"),
            ("crash:0.1", "needs '@TIME'"),
            ("crash:0.1@abc", "not a time"),
            ("crash:0@500ms", "must be in (0, 1]"),
            ("crash:1.5@500ms", "must be in (0, 1]"),
            ("crash:0.1@500ms..400ms", "must come after"),
            ("crash:0.1@1ms,crash:0.1@2ms", "crash given twice"),
            ("loss:1", "must be in [0, 1)"),
            ("loss:-0.1", "must be in [0, 1)"),
            ("loss:0.1@9ms", "not 'FROMms..TOms'"),
            ("loss:0.1,loss:0.2", "loss given twice"),
            ("spike:4@1ms..2ms", "'x' suffix"),
            ("spike:0.5x@1ms..2ms", "at least 1"),
            ("spike:4x", "needs '@FROM..TO'"),
            ("spike:2x@1ms..2ms,spike:2x@3ms..4ms", "spike given twice"),
            ("part:5ms..5ms", "must come after"),
            ("part:1ms..2ms,part:3ms..4ms", "part given twice"),
            ("crash:0.1@NaNms", "finite and non-negative"),
            ("slow:0.1", "needs '@FACTORx'"),
            ("slow:0@4x", "must be in (0, 1]"),
            ("slow:1.5@4x", "must be in (0, 1]"),
            ("slow:0.1@4", "'x' suffix"),
            ("slow:0.1@0.5x", "at least 1"),
            ("slow:0.1@4x@9ms..3ms", "must come after"),
            ("slow:0.1@2x,slow:0.1@3x", "slow given twice"),
        ] {
            let err = FaultPlan::parse(text).unwrap_err();
            assert!(err.0.contains(needle), "'{text}' -> {err}");
        }
    }
}
