//! The compiled, per-run fault script.
//!
//! [`FaultScript`] is what a simulation actually consults: the
//! [`FaultPlan`]'s fractions and windows resolved against one `(seed,
//! m)` pair into concrete victims, partition sides, and per-frame
//! decisions. Every method is a *pure function* — the script holds no
//! RNG stream and no counters, so consulting it from any number of
//! worker threads, in any order, yields the same answers. All sampled
//! decisions go through SplitMix64 over `(seed, salt, inputs)`, the
//! same stateless-hash technique `dlb_netsim::LinkDelayModel` uses for
//! its per-link jitter.

use dlb_core::rngutil::derive_seed;

use crate::plan::FaultPlan;

/// Retransmission timeout of the reliable-transport loss model, in
/// virtual ms: each lost attempt of a reliable frame adds this much
/// delay (a TCP-flavored RTO; see [`FaultScript::reliable_link`]).
pub const RETRANSMIT_MS: f64 = 200.0;

/// Retransmission attempts are capped here so a pathological loss
/// probability cannot push a frame past every horizon.
pub const MAX_RETRANSMITS: u32 = 12;

/// Stream salts: distinct SplitMix64 domains per decision family.
const SALT_CRASH: u64 = 0xC4A5_11D0;
const SALT_SIDE: u64 = 0x51DE_0B1F;
const SALT_LOSS: u64 = 0x10D5_50FF;
const SALT_SLOW: u64 = 0x5107_AC3E;

/// What the fault layer did to one reliable data-plane frame (the
/// executor's summary accounting).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkOutcome {
    /// Extra one-way delay injected on top of the base link delay, ms.
    pub extra_ms: f64,
    /// Lost attempts recovered by retransmission.
    pub retransmits: u32,
    /// Whether a partition held the frame until it healed.
    pub held_by_partition: bool,
}

/// Counters a simulation accumulates while consulting a script — the
/// fault-event summary a `RunRecord` carries. All counting happens in
/// the single-threaded scheduling path of the executor, so the summary
/// is as deterministic as the event order itself.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSummary {
    /// Nodes that crashed during the run.
    pub crashes: u32,
    /// Nodes that recovered during the run.
    pub recoveries: u32,
    /// Frames dropped outright (dead destination, or lossy/partitioned
    /// idempotent traffic).
    pub dropped_frames: u64,
    /// Frames that arrived late because of loss retransmissions, delay
    /// spikes, or partition holds.
    pub delayed_frames: u64,
    /// Total extra virtual delay injected across all delayed frames,
    /// ms.
    pub extra_delay_ms: f64,
}

impl FaultSummary {
    /// Whether nothing was injected (the no-faults summary).
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

/// SplitMix64: stateless, well-mixed 64-bit hash — the canonical
/// finalizer lives in `dlb_core::rngutil`; stream 0 is the plain mix.
fn splitmix(x: u64) -> u64 {
    derive_seed(x, 0)
}

/// Uniform in `[0, 1)` from a hash word.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`FaultPlan`] compiled for one run (see the [module docs](self)
/// and [`FaultPlan::compile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScript {
    seed: u64,
    plan: FaultPlan,
    /// Per node: the instant it goes down (`f64::INFINITY` = never).
    crash_at: Vec<f64>,
    /// Per node: the instant it comes back (`f64::INFINITY` = never).
    recover_at: Vec<f64>,
    /// Per node: partition side (only meaningful with a partition
    /// primitive).
    side: Vec<bool>,
    /// Per node: whether it is a straggler (only meaningful with a
    /// slow primitive).
    straggler: Vec<bool>,
}

impl FaultScript {
    /// Compiles `plan` for a run over `m` nodes under `seed` (see
    /// [`FaultPlan::compile`]).
    pub fn compile(plan: &FaultPlan, seed: u64, m: usize) -> Self {
        let mut crash_at = vec![f64::INFINITY; m];
        let mut recover_at = vec![f64::INFINITY; m];
        if let Some(c) = &plan.crash {
            // Round to the nearest victim count, but always leave at
            // least one survivor: a fully-dead cluster has no
            // convergence to measure.
            let k = ((c.frac * m as f64).round() as usize).min(m.saturating_sub(1));
            // Partial Fisher-Yates over 0..m, driven by the stateless
            // hash stream: the first k slots are the victims.
            let mut order: Vec<usize> = (0..m).collect();
            for i in 0..k {
                let r = splitmix(seed ^ SALT_CRASH ^ (i as u64).wrapping_mul(0x9E37)) as usize;
                let j = i + r % (m - i);
                order.swap(i, j);
            }
            for &victim in &order[..k] {
                crash_at[victim] = c.at_ms;
                recover_at[victim] = c.recover_ms.unwrap_or(f64::INFINITY);
            }
        }
        let side = (0..m)
            .map(|i| splitmix(seed ^ SALT_SIDE ^ i as u64) & 1 == 1)
            .collect();
        let mut straggler = vec![false; m];
        if let Some(s) = &plan.slow {
            // Same partial Fisher-Yates as the crash victims, on its
            // own salt stream: slow and crashed sets are independent.
            let k = ((s.frac * m as f64).round() as usize).min(m);
            let mut order: Vec<usize> = (0..m).collect();
            for i in 0..k {
                let r = splitmix(seed ^ SALT_SLOW ^ (i as u64).wrapping_mul(0x9E37)) as usize;
                let j = i + r % (m - i);
                order.swap(i, j);
            }
            for &victim in &order[..k] {
                straggler[victim] = true;
            }
        }
        Self {
            seed,
            plan: *plan,
            crash_at,
            recover_at,
            side,
            straggler,
        }
    }

    /// The empty script for `m` nodes: every query answers "no fault".
    /// [`FaultScript::is_empty`] distinguishes it so hosts can skip
    /// fault bookkeeping entirely and stay byte-identical with their
    /// pre-fault behavior.
    pub fn empty(m: usize) -> Self {
        Self::compile(&FaultPlan::default(), 0, m)
    }

    /// Whether the script injects nothing.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Number of nodes the script was compiled for.
    pub fn len(&self) -> usize {
        self.crash_at.len()
    }

    /// Whether the script covers zero nodes.
    pub fn is_empty_cluster(&self) -> bool {
        self.crash_at.is_empty()
    }

    /// Whether `node` is down (crashed, not yet recovered) at virtual
    /// time `t`.
    pub fn node_down(&self, node: usize, t: f64) -> bool {
        self.crash_at[node] <= t && t < self.recover_at[node]
    }

    /// The sorted list of nodes down at virtual time `t`.
    pub fn down_at(&self, t: f64) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&j| self.node_down(j as usize, t))
            .collect()
    }

    /// The instant `node` crashes (`f64::INFINITY` = never). This is a
    /// *measurement* hook — detection-latency accounting diffs a
    /// detector's suspicion instant against it — never a protocol
    /// input: an oracle-free run must not consult it to decide
    /// anything.
    pub fn crash_time(&self, node: usize) -> f64 {
        self.crash_at[node]
    }

    /// Outbound delay multiplier for frames sent by `src` at time `t`:
    /// the slow primitive's factor while `src` straggles, `1.0`
    /// otherwise.
    pub fn slow_factor(&self, src: usize, t: f64) -> f64 {
        match &self.plan.slow {
            Some(s) if self.straggler[src] && s.window.is_none_or(|(a, b)| (a..b).contains(&t)) => {
                s.factor
            }
            _ => 1.0,
        }
    }

    /// Nodes the slow primitive turned into stragglers.
    pub fn straggler_count(&self) -> u32 {
        self.straggler.iter().filter(|&&b| b).count() as u32
    }

    /// Nodes that crash at some point during the script (regardless of
    /// recovery) — the summary's `crashes` count.
    pub fn crash_count(&self) -> u32 {
        self.crash_at.iter().filter(|t| t.is_finite()).count() as u32
    }

    /// Nodes that crash and later recover — the summary's `recoveries`
    /// count.
    pub fn recovery_count(&self) -> u32 {
        self.recover_at.iter().filter(|t| t.is_finite()).count() as u32
    }

    /// Which liveness phase `t` falls in: `0` before the crash
    /// instant, `1` while the victims are down, `2` after recovery
    /// (`0` when the plan has no crash primitive). [`Self::down_at`]
    /// is constant within a phase, so a driver that polls it per
    /// delivery batch can cache the set and refresh only on a phase
    /// change — O(1) instead of O(m) per batch.
    pub fn down_phase(&self, t: f64) -> u8 {
        match &self.plan.crash {
            None => 0,
            Some(c) if t < c.at_ms => 0,
            Some(c) if c.recover_ms.is_none_or(|r| t < r) => 1,
            Some(_) => 2,
        }
    }

    /// Raw loss decision for the frame with heap sequence number `seq`
    /// sent at time `t`: `true` means the frame is lost. For
    /// idempotent traffic (gossip) a lost frame is simply dropped; the
    /// reliable transport turns the same decisions into retransmission
    /// delay.
    pub fn loss_drops(&self, t: f64, seq: u64) -> bool {
        self.loss_attempt_fails(t, seq, 0)
    }

    /// Whether retransmission attempt `attempt` of frame `seq` at time
    /// `t` is lost.
    fn loss_attempt_fails(&self, t: f64, seq: u64, attempt: u32) -> bool {
        let Some(l) = &self.plan.loss else {
            return false;
        };
        if let Some((from, to)) = l.window {
            if !(from..to).contains(&t) {
                return false;
            }
        }
        unit(splitmix(
            self.seed ^ SALT_LOSS ^ seq.rotate_left(17) ^ u64::from(attempt) << 48,
        )) < l.prob
    }

    /// Extra delay a spike window adds to a frame sent at `t` with
    /// base one-way delay `base_ms`.
    pub fn spike_extra(&self, t: f64, base_ms: f64) -> f64 {
        match &self.plan.spike {
            Some(s) if (s.from_ms..s.to_ms).contains(&t) => base_ms * (s.factor - 1.0),
            _ => 0.0,
        }
    }

    /// Whether `src → dst` crosses the partition cut while the
    /// partition window is active at time `t` (idempotent traffic
    /// drops such frames; the reliable transport holds them until the
    /// window heals).
    pub fn crossing_blocked(&self, t: f64, src: usize, dst: usize) -> bool {
        match &self.plan.partition {
            Some(p) => (p.from_ms..p.to_ms).contains(&t) && self.side[src] != self.side[dst],
            None => false,
        }
    }

    /// The instant the partition heals (`0.0` when there is none) —
    /// where held frames resume.
    fn partition_heal_ms(&self) -> f64 {
        self.plan.partition.map_or(0.0, |p| p.to_ms)
    }

    /// The reliable-transport composition for one data-plane frame of
    /// the protocol executor: frame `seq` is sent from `src` to `dst`
    /// at time `now` with base one-way delay `base_ms`, and **always
    /// arrives** (crashed destinations are the executor's concern) —
    /// faults only make it late:
    ///
    /// 1. a partition holds the send until the window heals,
    /// 2. a spike window multiplies the link delay of the (possibly
    ///    deferred) send,
    /// 3. each lost attempt adds one [`RETRANSMIT_MS`] timeout
    ///    (independent per-attempt decisions, capped), with every
    ///    retry judged against the loss window at the instant it
    ///    actually happens — a windowed loss stops killing attempts
    ///    once the retries land past the window's end.
    ///
    /// The returned [`LinkOutcome::extra_ms`] is everything beyond
    /// `base_ms`; deliver at `now + base_ms + extra_ms`.
    pub fn reliable_link(
        &self,
        now: f64,
        src: usize,
        dst: usize,
        seq: u64,
        base_ms: f64,
    ) -> LinkOutcome {
        let mut outcome = LinkOutcome::default();
        let mut send = now;
        if self.crossing_blocked(now, src, dst) {
            outcome.held_by_partition = true;
            send = self.partition_heal_ms();
        }
        let mut extra = (send - now) + self.spike_extra(send, base_ms);
        // Attempt k happens k timeouts after the (possibly deferred)
        // send; the loss window applies at that instant.
        while outcome.retransmits < MAX_RETRANSMITS
            && self.loss_attempt_fails(
                send + f64::from(outcome.retransmits) * RETRANSMIT_MS,
                seq,
                outcome.retransmits,
            )
        {
            outcome.retransmits += 1;
            extra += RETRANSMIT_MS;
        }
        outcome.extra_ms = extra;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_script_answers_no_fault() {
        let s = FaultScript::empty(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty_cluster());
        assert!(s.down_at(1e9).is_empty());
        assert!(!s.loss_drops(5.0, 3));
        assert_eq!(s.spike_extra(5.0, 10.0), 0.0);
        assert!(!s.crossing_blocked(5.0, 0, 1));
        assert_eq!(s.reliable_link(5.0, 0, 1, 3, 10.0), LinkOutcome::default());
        assert_eq!(s.crash_count(), 0);
        assert!(FaultSummary::default().is_quiet());
    }

    #[test]
    fn crash_windows_honour_instants_and_fractions() {
        let plan = FaultPlan::new().churn(0.3, 100.0, 400.0);
        let s = plan.compile(9, 20);
        assert!(s.down_at(0.0).is_empty());
        assert_eq!(s.down_at(100.0).len(), 6);
        assert_eq!(s.down_at(399.9).len(), 6);
        assert!(s.down_at(400.0).is_empty(), "recovery is exclusive");
        assert_eq!(s.crash_count(), 6);
        assert_eq!(s.recovery_count(), 6);
        // Victims are a pure function of the seed.
        assert_eq!(s.down_at(200.0), plan.compile(9, 20).down_at(200.0));
        assert_ne!(s.down_at(200.0), plan.compile(10, 20).down_at(200.0));
        // down_at is sorted.
        let down = s.down_at(200.0);
        let mut sorted = down.clone();
        sorted.sort_unstable();
        assert_eq!(down, sorted);
    }

    #[test]
    fn at_least_one_node_survives() {
        let s = FaultPlan::new().crash(1.0, 0.0).compile(3, 8);
        assert_eq!(s.down_at(0.0).len(), 7);
        let single = FaultPlan::new().crash(1.0, 0.0).compile(3, 1);
        assert!(single.down_at(0.0).is_empty());
    }

    #[test]
    fn loss_rate_tracks_probability_and_window() {
        let s = FaultPlan::new().loss(0.3).compile(4, 10);
        let hits = (0..20_000).filter(|&q| s.loss_drops(1.0, q)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "empirical loss rate {rate}");
        let windowed = FaultPlan::new()
            .loss_window(0.9, 100.0, 200.0)
            .compile(4, 10);
        assert!(!windowed.loss_drops(99.0, 7));
        assert!(!windowed.loss_drops(200.0, 7));
        let in_window = (0..1_000)
            .filter(|&q| windowed.loss_drops(150.0, q))
            .count();
        assert!(in_window > 800, "windowed loss active inside the window");
    }

    #[test]
    fn spikes_multiply_delay_inside_the_window() {
        let s = FaultPlan::new().spike(4.0, 100.0, 200.0).compile(1, 4);
        assert_eq!(s.spike_extra(150.0, 10.0), 30.0);
        assert_eq!(s.spike_extra(99.9, 10.0), 0.0);
        assert_eq!(s.spike_extra(200.0, 10.0), 0.0);
    }

    #[test]
    fn partition_blocks_crossing_pairs_only() {
        let s = FaultPlan::new().partition(100.0, 200.0).compile(11, 32);
        let sides: Vec<bool> = (0..32).map(|i| s.crossing_blocked(150.0, 0, i)).collect();
        // A bipartition splits the cluster into two non-trivial halves
        // (astronomically unlikely to be one-sided at m=32).
        assert!(sides.iter().any(|&b| b));
        assert!(sides.iter().any(|&b| !b));
        assert!(!s.crossing_blocked(150.0, 0, 0), "self links never cross");
        // Outside the window nothing is blocked.
        assert!((0..32).all(|i| !s.crossing_blocked(99.0, 0, i)));
    }

    #[test]
    fn reliable_link_composes_hold_spike_and_retransmits() {
        let plan = FaultPlan::new()
            .loss(0.5)
            .spike(3.0, 0.0, 1_000.0)
            .partition(0.0, 500.0);
        let s = plan.compile(21, 16);
        // Find a crossing pair.
        let dst = (1..16)
            .find(|&j| s.crossing_blocked(100.0, 0, j))
            .expect("some pair crosses");
        let o = s.reliable_link(100.0, 0, dst, 42, 10.0);
        assert!(o.held_by_partition);
        // Held to 500ms (+400), spiked ×3 at the deferred send (+20),
        // plus any retransmits.
        let floor = 400.0 + 20.0;
        assert!(
            (o.extra_ms - floor - f64::from(o.retransmits) * RETRANSMIT_MS).abs() < 1e-9,
            "extra {} retransmits {}",
            o.extra_ms,
            o.retransmits
        );
        // Same inputs, same outcome — across clones too.
        assert_eq!(o, s.clone().reliable_link(100.0, 0, dst, 42, 10.0));
        // A non-crossing frame outside every window is untouched.
        let calm = s.reliable_link(2_000.0, 0, dst, 7, 10.0);
        assert_eq!(calm, LinkOutcome::default());
    }

    #[test]
    fn windowed_loss_spares_retries_past_the_window() {
        // Near-certain loss confined to [0, 100): a frame sent at t=50
        // loses its first attempt inside the window, but the retry at
        // t=250 is already past it — so the extra delay is bounded by
        // one timeout, never the full retransmission cap.
        let s = FaultPlan::new().loss_window(0.99, 0.0, 100.0).compile(2, 4);
        for seq in 0..200 {
            let o = s.reliable_link(50.0, 0, 1, seq, 10.0);
            assert!(
                o.retransmits <= 1,
                "seq {seq}: retries past the window must survive ({o:?})"
            );
        }
        // And a frame sent after the window is never touched.
        assert_eq!(
            s.reliable_link(100.0, 0, 1, 7, 10.0),
            LinkOutcome::default()
        );
    }

    #[test]
    fn stragglers_multiply_outbound_delay() {
        let plan = FaultPlan::new().slow(0.25, 4.0);
        let s = plan.compile(13, 20);
        assert_eq!(s.straggler_count(), 5);
        let factors: Vec<f64> = (0..20).map(|i| s.slow_factor(i, 100.0)).collect();
        assert_eq!(factors.iter().filter(|&&f| f == 4.0).count(), 5);
        assert_eq!(factors.iter().filter(|&&f| f == 1.0).count(), 15);
        // Victims are a pure function of the seed; stragglers stay up.
        let again: Vec<f64> = (0..20)
            .map(|i| plan.compile(13, 20).slow_factor(i, 100.0))
            .collect();
        assert_eq!(factors, again);
        assert!(s.down_at(1e9).is_empty());
        // A windowed slow stops at the window's end.
        let windowed = FaultPlan::new()
            .slow_window(1.0, 3.0, 100.0, 200.0)
            .compile(13, 4);
        assert_eq!(windowed.straggler_count(), 4);
        assert_eq!(windowed.slow_factor(0, 99.9), 1.0);
        assert_eq!(windowed.slow_factor(0, 100.0), 3.0);
        assert_eq!(windowed.slow_factor(0, 200.0), 1.0);
        // crash_time is a pure accessor.
        let churn = FaultPlan::new().crash(0.5, 300.0).compile(5, 8);
        for j in 0..8 {
            let t = churn.crash_time(j);
            assert!(t == 300.0 || t == f64::INFINITY);
            assert_eq!(t.is_finite(), churn.node_down(j, 300.0));
        }
    }

    #[test]
    fn retransmit_count_is_capped() {
        let s = FaultPlan::new().loss(0.999).compile(2, 4);
        // Parse forbids prob >= 1, but even near-certain loss must
        // terminate.
        let o = s.reliable_link(0.0, 0, 1, 9, 10.0);
        assert!(o.retransmits <= 12);
        assert!(o.extra_ms.is_finite());
    }
}
