//! Property-based tests for the fault-plan text grammar: arbitrary
//! plans survive plan → text → parse bit-exactly, matching the
//! coverage the `dlb-gossip` and `dlb-runtime` wire codecs have.

#![cfg(test)]

use proptest::prelude::*;

use crate::plan::{CrashFault, FaultPlan, LossFault, PartitionFault, SlowFault, SpikeFault};

/// Virtual instants that keep `start + gap > start` exactly
/// representable, so windows built from them stay strictly ordered.
fn arb_ms() -> impl Strategy<Value = f64> {
    0.0f64..1e5
}

fn arb_gap() -> impl Strategy<Value = f64> {
    0.5f64..1e5
}

fn arb_window() -> impl Strategy<Value = (f64, f64)> {
    (arb_ms(), arb_gap()).prop_map(|(a, d)| (a, a + d))
}

/// Fractions in `(0, 1]`.
fn arb_frac() -> impl Strategy<Value = f64> {
    (0.0f64..1.0).prop_map(|x| 1.0 - x)
}

fn arb_crash() -> impl Strategy<Value = CrashFault> {
    (arb_frac(), arb_ms(), proptest::option::of(arb_gap())).prop_map(|(frac, at_ms, gap)| {
        CrashFault {
            frac,
            at_ms,
            recover_ms: gap.map(|d| at_ms + d),
        }
    })
}

fn arb_loss() -> impl Strategy<Value = LossFault> {
    (0.0f64..1.0, proptest::option::of(arb_window()))
        .prop_map(|(prob, window)| LossFault { prob, window })
}

fn arb_spike() -> impl Strategy<Value = SpikeFault> {
    (1.0f64..100.0, arb_window()).prop_map(|(factor, (from_ms, to_ms))| SpikeFault {
        factor,
        from_ms,
        to_ms,
    })
}

fn arb_partition() -> impl Strategy<Value = PartitionFault> {
    arb_window().prop_map(|(from_ms, to_ms)| PartitionFault { from_ms, to_ms })
}

fn arb_slow() -> impl Strategy<Value = SlowFault> {
    (
        arb_frac(),
        1.0f64..100.0,
        proptest::option::of(arb_window()),
    )
        .prop_map(|(frac, factor, window)| SlowFault {
            frac,
            factor,
            window,
        })
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::option::of(arb_crash()),
        proptest::option::of(arb_loss()),
        proptest::option::of(arb_spike()),
        proptest::option::of(arb_partition()),
        proptest::option::of(arb_slow()),
    )
        .prop_map(|(crash, loss, spike, partition, slow)| FaultPlan {
            crash,
            loss,
            spike,
            partition,
            slow,
        })
}

proptest! {
    /// Every plan survives Display → parse bit-exactly: `{}` renders
    /// the shortest decimal that re-parses to the same f64, so the
    /// text form is lossless.
    #[test]
    fn plan_text_roundtrip(plan in arb_plan()) {
        let text = plan.to_string();
        let back = FaultPlan::parse(&text)
            .unwrap_or_else(|e| panic!("'{text}' failed to re-parse: {e}"));
        prop_assert_eq!(back, plan);
    }

    /// The text form is a fixpoint: rendering the re-parsed plan
    /// yields the same string.
    #[test]
    fn display_is_canonical(plan in arb_plan()) {
        let text = plan.to_string();
        let back: FaultPlan = text.parse().unwrap();
        prop_assert_eq!(back.to_string(), text);
    }

    /// Compilation is deterministic in `(seed, m)` regardless of how
    /// the plan reached it.
    #[test]
    fn compile_is_pure(plan in arb_plan(), seed in any::<u64>(), m in 1usize..64) {
        let a = plan.compile(seed, m);
        let b: FaultPlan = plan.to_string().parse().unwrap();
        prop_assert_eq!(a, b.compile(seed, m));
    }
}
