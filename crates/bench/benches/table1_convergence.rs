//! Table I: iterations of the distributed algorithm to reach ≤ 2 %
//! relative error in `ΣC`, across network sizes and load distributions.
//!
//! Paper values (average / max / st.dev):
//! `m ≤ 50`: uniform 1.65/3, exp 2.35/3, peak 4.87/6 ·
//! `m = 100`: 2.0/2, 2.62/3, 6.88/7 · `m = 200`: 2.1/3, 3.1/4, 7.84/8 ·
//! `m = 300`: 2.0/2, 3.25/4, 8.0/8.
//!
//! Run: `cargo bench -p dlb-bench --bench table1_convergence`
//! (set `DLB_BENCH_SCALE=full` for the paper-sized grid).

fn main() {
    dlb_bench::convergence_table(
        0.02,
        "Table I — iterations to <=2% relative error",
        "table1",
    );
    println!("\npaper: uniform <= 2.1 avg, exp <= 3.25 avg, peak <= 8 avg; all maxima <= 8");
}
