//! Ablation: what does giving up the liveness oracle cost?
//!
//! PR 7 replaced the script-fed oracle with an in-protocol failure
//! detector (`detect=timeout:MS` / `detect=adaptive`). This harness
//! quantifies the trade every deployed detector faces — detection
//! latency versus false positives — on one fixed fault trajectory:
//! a crash wave plus slow-but-alive stragglers, the adversarial mix
//! where aggressive timeouts wrongly suspect stragglers and lax ones
//! leave crashed nodes undetected for whole rounds. Every `detect=`
//! setting runs the identical scenario (same seed ⇒ same workload,
//! link delays, victims, stragglers), recording suspicions, false
//! positives, mean detection latency, rejoin time, aborted exchanges,
//! and final `ΣC` to `BENCH_detector.json` at the workspace root
//! (`dlb report BENCH_detector.json` renders it).
//!
//! Reading the rows: the oracle row is the unreachable ideal (zero
//! latency, zero false positives). Fixed timeouts trace the classic
//! curve — tighter deadline, faster detection, more stragglers
//! wrongly suspected. The adaptive (phi-accrual-style) detector
//! learns per-node report cadence, so it keeps detection latency in
//! the tight-timeout regime at a fraction of the false positives.
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_failure_detection`.

use dlb_bench::results::{JsonlSink, Record};
use dlb_scenario::{AlgoSpec, RuntimeSpec, ScenarioSpec};

/// The fixed fault trajectory every detector setting faces: 15% of
/// the cluster crashes at 200 ms (silence the detector must notice),
/// 20% straggles at 4× for the whole run (alive nodes an impatient
/// detector wrongly suspects).
const FAULTS: &str = "crash:0.15@200ms,slow:0.2@4x";

fn base_spec() -> ScenarioSpec {
    let text = format!(
        "algo=protocol runtime=events net=homog m=120 avg=60 seed=7 \
         eps=1e-9 patience=5 budget=2000 faults={FAULTS}"
    );
    text.parse().expect("base spec parses")
}

fn main() {
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_detector.json");
    let mut sink = JsonlSink::create_at(out_path).expect("BENCH_detector.json must be writable");

    // The detector grid: the oracle baseline, fixed report deadlines
    // from aggressive to lax, and the adaptive estimator. Labels are
    // exact `detect=` axis values, so every row is reproducible as
    // `dlb run <scenario>`.
    let grid: &[&str] = &[
        "oracle",
        "timeout:50ms",
        "timeout:200ms",
        "timeout:1000ms",
        "adaptive",
    ];

    println!("== failure detection — {} ==", base_spec());
    println!(
        "{:<14} {:>10} {:>8} {:>11} {:>11} {:>11} {:>10} {:>8}",
        "detect",
        "final ΣC",
        "rounds",
        "suspicions",
        "false pos",
        "latency ms",
        "rejoin ms",
        "aborts"
    );
    let mut rows: Vec<(&str, dlb_runtime::DetectorSummary)> = Vec::new();
    for &detect in grid {
        let text = format!("{} detect={detect}", base_spec());
        let spec: ScenarioSpec = text.parse().expect("grid specs parse");
        assert_eq!(spec.algo, AlgoSpec::Protocol);
        assert_eq!(spec.runtime, RuntimeSpec::Events);
        let run = spec.run();
        assert!(
            run.converged,
            "detect row '{detect}' must converge within the budget"
        );
        let d = run.detector;
        println!(
            "{:<14} {:>10.0} {:>8} {:>11} {:>11} {:>11.1} {:>10.1} {:>8}",
            detect,
            run.final_cost(),
            run.iterations,
            d.suspicions,
            d.false_positives,
            d.detection_latency_ms,
            d.rejoin_ms,
            d.aborted_exchanges,
        );
        sink.record(&Record::from_run("failure_detection", &run).str("detect", detect));
        rows.push((detect, d));
    }

    // The curve's headline: the adaptive estimator must beat at least
    // one fixed timeout on false positives while both detect the same
    // crash wave — otherwise the per-node history buys nothing.
    let adaptive = rows.iter().find(|(d, _)| *d == "adaptive").unwrap().1;
    assert!(
        rows.iter()
            .any(|(d, s)| d.starts_with("timeout") && adaptive.false_positives < s.false_positives),
        "adaptive ({} fps) must beat some fixed timeout on false positives: {rows:?}",
        adaptive.false_positives
    );
    println!("\ndetector sweep written to BENCH_detector.json");
}
