//! Ablation (Theorem 1): measured homogeneous price of anarchy vs. the
//! closed-form band `1 + 2cs/l_av ± O((cs/l_av)²)`.
//!
//! Two checks: (a) equilibria found by best-response dynamics never
//! exceed the upper bound; (b) the tightness construction from the
//! proof actually sits inside the band, i.e. the band is not vacuous.
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_poa_theory`.

use dlb_bench::results::{JsonlSink, Record};
use dlb_core::cost::total_cost;
use dlb_core::{Assignment, Instance};
use dlb_game::poa::{cost_ratio, load_spread};
use dlb_game::{
    run_best_response_dynamics, theorem1_bounds, theorem1_tight_equilibrium, DynamicsOptions,
};

fn main() {
    let mut sink = JsonlSink::create("ablation_poa_theory");
    let m = 40;
    let s = 1.0;
    let c = 20.0;
    println!("\n== Theorem 1 — homogeneous price of anarchy vs closed-form band ==");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "l_av", "lower", "upper", "tight-eq", "measured", "spread"
    );
    for &l_av in &[50.0, 100.0, 200.0, 500.0, 1000.0] {
        let instance = Instance::homogeneous(m, s, c, l_av);
        let (lo, hi) = theorem1_bounds(c, s, l_av);
        // Optimal: equal initial loads need no relaying.
        let opt = Assignment::local(&instance);

        // The tightness construction (requires l_av >= 2cs).
        let tight_ratio = if l_av >= 2.0 * c * s {
            let eq = theorem1_tight_equilibrium(&instance);
            cost_ratio(&instance, &eq, &opt)
        } else {
            f64::NAN
        };

        // Measured equilibrium from best-response dynamics.
        let mut nash = Assignment::local(&instance);
        run_best_response_dynamics(
            &instance,
            &mut nash,
            &DynamicsOptions {
                change_threshold: 1e-8,
                ..Default::default()
            },
        );
        let measured = total_cost(&instance, &nash) / total_cost(&instance, &opt);
        sink.record(
            &Record::new("table_row")
                .str("table", "ablation_poa_theory")
                .num("l_av", l_av)
                .num("lower", lo)
                .num("upper", hi)
                .num("tight_eq", tight_ratio)
                .num("measured", measured)
                .num("spread", load_spread(&nash)),
        );
        println!(
            "{l_av:>8.0} {lo:>10.4} {hi:>10.4} {tight_ratio:>12.4} {measured:>12.4} {:>10.2}",
            load_spread(&nash)
        );
        assert!(
            measured <= hi + 1e-6,
            "measured PoA {measured} violates Theorem 1 upper bound {hi}"
        );
    }
    println!(
        "\npaper: PoA = 1 + 2cs/l_av + O((cs/l_av)^2); spread obeys Lemma 3 (<= c*s = {})",
        c * s
    );
}
