//! Ablation: the paper's pair-once iteration semantics vs an eager
//! variant in which a server may take part in several exchanges per
//! iteration.
//!
//! The paper's Table I/II peak-load iteration counts grow like
//! `log₂ m` (4.87 at m ≤ 50 up to 8.0 at m = 300): a peak spreads by
//! doubling, which implies a pairwise exchange occupies both endpoints
//! for the round. The eager variant lets every server drain the hot
//! server in the same round and converges in ~2 rounds — cheaper in
//! rounds but incompatible with the reported numbers, and each round
//! costs more messages.
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_pairing_semantics`

use dlb_bench::results::{JsonlSink, Record};
use dlb_bench::{format_row, print_header, sample_instance, stats, NetworkKind};
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_distributed::{Engine, EngineOptions};

fn iterations(instance: &dlb_core::Instance, pair_once: bool, seed: u64) -> usize {
    let mut engine = Engine::new(
        instance.clone(),
        EngineOptions {
            seed,
            pair_once,
            ..Default::default()
        },
    );
    engine.run_to_convergence(1e-9, 3, 80);
    let optimum = engine.current_cost();
    engine
        .iterations_to_reach(optimum, 0.02)
        .unwrap_or(engine.iterations())
}

fn main() {
    let mut sink = JsonlSink::create("ablation_pairing_semantics");
    print_header(
        "Ablation — pair-once vs eager rounds (peak load, iterations to <=2%)",
        "m / semantics",
    );
    for &m in &[50usize, 100] {
        let mut paired = Vec::new();
        let mut eager = Vec::new();
        for seed in 1..=3u64 {
            let instance = sample_instance(
                m,
                NetworkKind::Homogeneous,
                LoadDistribution::Peak,
                100_000.0 / m as f64,
                SpeedDistribution::paper_uniform(),
                seed,
            );
            paired.push(iterations(&instance, true, seed) as f64);
            eager.push(iterations(&instance, false, seed) as f64);
        }
        for (semantics, samples) in [("pair-once", &paired), ("eager", &eager)] {
            let s = stats(samples);
            sink.record(
                &Record::new("table_row")
                    .str("table", "ablation_pairing_semantics")
                    .int("m", m as i64)
                    .str("semantics", semantics)
                    .num("avg", s.mean)
                    .num("max", s.max)
                    .num("std", s.std)
                    .int("n", s.n as i64),
            );
        }
        println!(
            "{}",
            format_row(&format!("m={m} pair-once"), &stats(&paired))
        );
        println!("{}", format_row(&format!("m={m} eager"), &stats(&eager)));
    }
    println!("\npaper peak rows (avg): m<=50: 4.87, m=100: 6.88 — matches pair-once; eager collapses to ~2");
    println!("expectation: pair-once ≈ log2(m) + small refinement tail; eager ≤ 3");
}
