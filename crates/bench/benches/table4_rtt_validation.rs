//! Table IV: validation of the constant-latency assumption — relative
//! RTT deviation vs. background throughput on the simulated wide-area
//! network (the paper ran this on PlanetLab).
//!
//! Paper values (μ / σ): 10 KB/s 0.0/0.0 · 20 KB/s −0.05/0.21 ·
//! 50 KB/s −0.05/0.27 · 0.1 MB/s −0.08/0.33 · 0.2 MB/s 0.0/0.37 ·
//! 0.5 MB/s 0.28/0.8 · 2 MB/s 0.45/1.31 · 5 MB/s 0.18/0.8.
//! The headline: RTT is flat until the access links saturate
//! (≈ 8 Mb/s incoming), then mean and variance grow.
//!
//! Run: `cargo bench -p dlb-bench --bench table4_rtt_validation`.

use dlb_bench::full_scale;
use dlb_netsim::{run_table4, Table4Config};

fn main() {
    let cfg = Table4Config {
        samples: if full_scale() { 300 } else { 150 },
        ..Default::default()
    };
    println!("\n== Table IV — relative RTT deviation vs background throughput ==");
    println!(
        "({} servers, {} neighbors each, {} samples/pair, {:.0}% trim, {} Mb/s links)",
        cfg.servers,
        cfg.neighbors,
        cfg.samples,
        cfg.trim * 100.0,
        cfg.capacity_mbps
    );
    println!(
        "{:>10} {:>10} {:>10} {:>12}",
        "tb", "mu", "sigma", "utilization"
    );
    for row in run_table4(&cfg) {
        let label = if row.throughput_kbps < 1000.0 {
            format!("{:.0} KB/s", row.throughput_kbps)
        } else {
            format!("{:.1} MB/s", row.throughput_kbps / 1000.0)
        };
        println!(
            "{label:>10} {:>10.3} {:>10.3} {:>12.2}",
            row.mu, row.sigma, row.mean_utilization
        );
    }
    println!("\npaper: mu within ±0.08 up to 0.2 MB/s; 0.28–0.45 beyond; sigma grows with load");
}
