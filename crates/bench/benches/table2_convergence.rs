//! Table II: iterations of the distributed algorithm to reach ≤ 0.1 %
//! relative error in `ΣC` (same grid as Table I, tighter target).
//!
//! Paper values (average / max): `m ≤ 50`: uniform 5.1/7, exp 5.5/7,
//! peak 6.4/7 · `m = 100`: 5.8/9, 6.3/9, 8.0/9 · `m = 200`: 6.1/9,
//! 7.1/10, 9.9/10 · `m = 300`: 6.2/10, 7.7/11, 10.0/10.
//!
//! Run: `cargo bench -p dlb-bench --bench table2_convergence`.

fn main() {
    dlb_bench::convergence_table(
        0.001,
        "Table II — iterations to <=0.1% relative error",
        "table2",
    );
    println!("\npaper: all averages <= 10, all maxima <= 11");
}
