//! Table III: the cost of selfishness — ratio of total processing
//! times between the (approximated) Nash equilibrium and the
//! cooperative optimum.
//!
//! Paper values (avg / max): const `s_i`: `l_av ≤ 30`: c=20 1.041/1.098,
//! PL 1.014/1.049 · `l_av = 50`: 1.114/1.150, 1.011/1.033 ·
//! `l_av ≥ 200`: 1.024/1.055, 1.003/1.022. Uniform `s_i`: everything
//! ≤ 1.062 and mostly ≈ 1.000.
//!
//! Every grid point is two scenarios over one sampled instance —
//! `algo=nash` (best-response dynamics with the paper's 1 % rule) and
//! `algo=bcd` (the cooperative optimum) — run through the shared
//! scenario API; every run and every table row is recorded through the
//! JSON-lines sink (`<DLB_RESULTS_DIR>/table3.jsonl`).
//!
//! Run: `cargo bench -p dlb-bench --bench table3_selfishness`.

use dlb_bench::results::{JsonlSink, Record};
use dlb_bench::{format_row, full_scale, print_header, scenario_for, stats, NetworkKind};
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_scenario::AlgoSpec;

fn main() {
    let full = full_scale();
    let ms: Vec<usize> = if full { vec![20, 30, 50] } else { vec![20, 30] };
    let seeds: Vec<u64> = if full {
        vec![1, 2, 3, 4, 5]
    } else {
        vec![1, 2, 3]
    };
    let load_buckets: Vec<(&str, Vec<f64>)> = vec![
        ("lav <= 30", vec![10.0, 20.0]),
        ("lav = 50", vec![50.0]),
        ("lav >= 200", vec![200.0, 1000.0]),
    ];
    let speed_kinds = [
        ("const s", SpeedDistribution::Constant(1.0)),
        ("uniform s", SpeedDistribution::paper_uniform()),
    ];
    let networks = [NetworkKind::Homogeneous, NetworkKind::PlanetLab];
    let mut sink = JsonlSink::create("table3");

    print_header(
        "Table III — selfish/cooperative total processing-time ratio",
        "speeds / bucket / network",
    );
    for (speed_label, speeds) in speed_kinds {
        for (bucket, avgs) in &load_buckets {
            for &net in &networks {
                let mut ratios = Vec::new();
                for &m in &ms {
                    for &avg in avgs {
                        for &seed in &seeds {
                            let base =
                                scenario_for(m, net, LoadDistribution::Uniform, avg, speeds, seed);
                            // Nash equilibrium via best-response dynamics
                            // with the paper's 1% termination rule.
                            let nash = base.algo(AlgoSpec::Nash).termination(0.01, 2, 10_000).run();
                            // Cooperative optimum.
                            let opt = base.algo(AlgoSpec::Bcd).termination(1e-10, 3, 3_000).run();
                            sink.record(&Record::from_run("run", &nash));
                            sink.record(&Record::from_run("run", &opt));
                            if opt.final_cost() > 0.0 {
                                let ratio = (nash.final_cost() / opt.final_cost()).max(1.0);
                                sink.record(
                                    &Record::new("selfishness")
                                        .str("scenario", &nash.scenario)
                                        .num("nash_cost", nash.final_cost())
                                        .num("opt_cost", opt.final_cost())
                                        .num("ratio", ratio),
                                );
                                ratios.push(ratio);
                            }
                        }
                    }
                }
                let s = stats(&ratios);
                sink.record(
                    &Record::new("table_row")
                        .str("table", "table3")
                        .str("speeds", speed_label)
                        .str("bucket", bucket)
                        .str("network", net.label())
                        .num("avg", s.mean)
                        .num("max", s.max)
                        .num("std", s.std)
                        .int("n", s.n as i64),
                );
                println!(
                    "{}",
                    format_row(&format!("{speed_label} {bucket} {}", net.label()), &s)
                );
            }
        }
    }
    println!("\npaper: all averages <= 1.114, all maxima <= 1.150");
}
