//! Table III: the cost of selfishness — ratio of total processing
//! times between the (approximated) Nash equilibrium and the
//! cooperative optimum.
//!
//! Paper values (avg / max): const `s_i`: `l_av ≤ 30`: c=20 1.041/1.098,
//! PL 1.014/1.049 · `l_av = 50`: 1.114/1.150, 1.011/1.033 ·
//! `l_av ≥ 200`: 1.024/1.055, 1.003/1.022. Uniform `s_i`: everything
//! ≤ 1.062 and mostly ≈ 1.000.
//!
//! Run: `cargo bench -p dlb-bench --bench table3_selfishness`.

use dlb_bench::{format_row, full_scale, print_header, sample_instance, stats, NetworkKind};
use dlb_core::cost::total_cost;
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_core::Assignment;
use dlb_game::{run_best_response_dynamics, DynamicsOptions};
use dlb_solver::solve_bcd;

fn main() {
    let full = full_scale();
    let ms: Vec<usize> = if full { vec![20, 30, 50] } else { vec![20, 30] };
    let seeds: Vec<u64> = if full {
        vec![1, 2, 3, 4, 5]
    } else {
        vec![1, 2, 3]
    };
    let load_buckets: Vec<(&str, Vec<f64>)> = vec![
        ("lav <= 30", vec![10.0, 20.0]),
        ("lav = 50", vec![50.0]),
        ("lav >= 200", vec![200.0, 1000.0]),
    ];
    let speed_kinds = [
        ("const s", SpeedDistribution::Constant(1.0)),
        ("uniform s", SpeedDistribution::paper_uniform()),
    ];
    let networks = [NetworkKind::Homogeneous, NetworkKind::PlanetLab];

    print_header(
        "Table III — selfish/cooperative total processing-time ratio",
        "speeds / bucket / network",
    );
    for (speed_label, speeds) in speed_kinds {
        for (bucket, avgs) in &load_buckets {
            for &net in &networks {
                let mut ratios = Vec::new();
                for &m in &ms {
                    for &avg in avgs {
                        for &seed in &seeds {
                            let instance = sample_instance(
                                m,
                                net,
                                LoadDistribution::Uniform,
                                avg,
                                speeds,
                                seed,
                            );
                            // Nash equilibrium via best-response dynamics
                            // with the paper's 1% termination rule.
                            let mut nash = Assignment::local(&instance);
                            run_best_response_dynamics(
                                &instance,
                                &mut nash,
                                &DynamicsOptions {
                                    seed,
                                    ..Default::default()
                                },
                            );
                            // Cooperative optimum.
                            let (opt, _) = solve_bcd(&instance, 3_000, 1e-10);
                            let opt_cost = dlb_solver::objective(&instance, &opt);
                            if opt_cost > 0.0 {
                                ratios.push((total_cost(&instance, &nash) / opt_cost).max(1.0));
                            }
                        }
                    }
                }
                let s = stats(&ratios);
                println!(
                    "{}",
                    format_row(&format!("{speed_label} {bucket} {}", net.label()), &s)
                );
            }
        }
    }
    println!("\npaper: all averages <= 1.114, all maxima <= 1.150");
}
