//! Figure 2: convergence of the distributed algorithm on large
//! networks under the peak load distribution (100 000 requests owned by
//! one server), heterogeneous latencies.
//!
//! The paper plots `ΣC_i` (log scale) against the iteration number for
//! m ∈ {500, 1000, 2000, 3000, 5000} and observes an exponential
//! decrease. We print the same series — run with the batched
//! propose/match/apply round, which executes one iteration as three
//! data-parallel phases instead of a serial sweep over servers — and
//! then record a scaling comparison (network size × round mode ×
//! thread count → wall-clock per iteration) to `BENCH_figure2.json`
//! at the workspace root, one JSON record per measurement, so the
//! perf trajectory of the Figure-2 hot path is tracked across PRs.
//!
//! Run: `cargo bench -p dlb-bench --bench figure2_large_networks`
//! (`DLB_BENCH_SCALE=full` adds m = 3000 and m = 5000).

use dlb_bench::results::{JsonlSink, Record};
use dlb_bench::{full_scale, sample_instance, NetworkKind};
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_core::Instance;
use dlb_distributed::{Engine, EngineOptions, RoundMode};

fn peak_instance(m: usize) -> Instance {
    sample_instance(
        m,
        NetworkKind::PlanetLab,
        LoadDistribution::Peak,
        100_000.0 / m as f64,
        SpeedDistribution::paper_uniform(),
        7,
    )
}

fn mode_label(mode: RoundMode) -> &'static str {
    match mode {
        RoundMode::Sequential => "sequential",
        RoundMode::Batched => "batched",
    }
}

/// Runs `iters` engine iterations and returns (wall-clock seconds per
/// iteration, final ΣC).
fn time_iterations(instance: &Instance, mode: RoundMode, iters: usize) -> (f64, f64) {
    let mut engine = Engine::new(
        instance.clone(),
        EngineOptions {
            seed: 7,
            round_mode: mode,
            ..Default::default()
        },
    );
    let start = std::time::Instant::now();
    for _ in 0..iters {
        engine.run_iteration();
    }
    let secs = start.elapsed().as_secs_f64() / iters as f64;
    (secs, engine.current_cost())
}

fn main() {
    let full = full_scale();
    // Every record carries the grid scale and the host's core count so
    // snapshots from different runs (fast vs full, laptop vs CI) stay
    // distinguishable in the committed artifact instead of silently
    // mixing incomparable rows.
    let scale = if full { "full" } else { "fast" };
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get()) as i64;
    let tag = |r: Record| r.str("scale", scale).int("host_cores", cores);
    let sizes: Vec<usize> = if full {
        vec![500, 1000, 2000, 3000, 5000]
    } else {
        vec![500, 1000, 2000]
    };
    let iterations = 20;
    // Benches run with the package dir as CWD; anchor the committed
    // artifact at the workspace root regardless.
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_figure2.json");
    let mut sink = JsonlSink::create_at(out_path).expect("BENCH_figure2.json must be writable");

    println!("\n== Figure 2 — ΣC vs iteration, peak load, heterogeneous network ==");
    println!("(total peak load 100 000 requests; batched propose/match/apply rounds)\n");
    for &m in &sizes {
        let instance = peak_instance(m);
        let start = std::time::Instant::now();
        let mut engine = Engine::new(
            instance,
            EngineOptions {
                seed: 7,
                round_mode: RoundMode::Batched,
                ..Default::default()
            },
        );
        print!("#servers = {m:<5} ΣC:");
        print!(" {:.3e}", engine.current_cost());
        for _ in 0..iterations {
            let stats = engine.run_iteration();
            print!(" {:.3e}", stats.cost);
        }
        println!();
        let initial = engine.history()[0];
        let final_cost = engine.current_cost();
        let wall = start.elapsed().as_secs_f64();
        println!(
            "               reduction {:.1}x in {} iterations ({:.1} s wall)",
            initial / final_cost,
            iterations,
            wall
        );
        sink.record(&tag(Record::new("figure2_series")
            .int("m", m as i64)
            .int("iterations", iterations as i64)
            .num("initial_cost", initial)
            .num("final_cost", final_cost)
            .num("wall_secs", wall)));
    }

    // Scaling record: wall-clock per iteration for every round mode ×
    // thread count on the pruned-mode sizes. The batched round turns
    // the iteration's serial sweep (one crossbeam scope per server)
    // into three fan-outs per round, which is where the Figure-2
    // wall-clock was going. Interpret thread columns against the host:
    // on a single-core box the threads=8 rows measure oversubscription
    // overhead (per-server scope spawns in sequential mode), not
    // parallel speedup.
    println!("\n== round-mode scaling (secs / iteration) ==");
    println!(
        "{:<8} {:<12} {:>8} {:>14} {:>14}",
        "m", "mode", "threads", "secs/iter", "final ΣC"
    );
    let scaling_sizes: Vec<usize> = if full {
        vec![1000, 2000, 5000]
    } else {
        vec![1000, 2000]
    };
    for &m in &scaling_sizes {
        let instance = peak_instance(m);
        for mode in [RoundMode::Sequential, RoundMode::Batched] {
            for threads in [1usize, 8] {
                std::env::set_var("DLB_THREADS", threads.to_string());
                let iters = 3;
                let (secs, cost) = time_iterations(&instance, mode, iters);
                std::env::remove_var("DLB_THREADS");
                println!(
                    "{:<8} {:<12} {:>8} {:>14.4} {:>14.4e}",
                    m,
                    mode_label(mode),
                    threads,
                    secs,
                    cost
                );
                sink.record(&tag(Record::new("scaling")
                    .int("m", m as i64)
                    .str("mode", mode_label(mode))
                    .int("threads", threads as i64)
                    .int("iters_timed", iters as i64)
                    .num("secs_per_iter", secs)
                    .num("cost_after", cost)));
            }
        }
    }

    println!("\npaper: total processing time decreases exponentially over ~20 iterations");
    println!("scaling record written to BENCH_figure2.json");
}
