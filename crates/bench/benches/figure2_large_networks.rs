//! Figure 2: convergence of the distributed algorithm on large
//! networks under the peak load distribution (100 000 requests owned by
//! one server), heterogeneous latencies.
//!
//! The paper plots `ΣC_i` (log scale) against the iteration number for
//! m ∈ {500, 1000, 2000, 3000, 5000} and observes an exponential
//! decrease. We print the same series; pruned partner selection plus
//! parallel candidate evaluation keeps the big sizes tractable (the
//! pruning heuristic is exact for peak workloads — see
//! `dlb_distributed::mine`).
//!
//! Run: `cargo bench -p dlb-bench --bench figure2_large_networks`
//! (`DLB_BENCH_SCALE=full` adds m = 3000 and m = 5000).

use dlb_bench::{full_scale, sample_instance, NetworkKind};
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_distributed::{Engine, EngineOptions};

fn main() {
    let sizes: Vec<usize> = if full_scale() {
        vec![500, 1000, 2000, 3000, 5000]
    } else {
        vec![500, 1000, 2000]
    };
    let iterations = 20;
    println!("\n== Figure 2 — ΣC vs iteration, peak load, heterogeneous network ==");
    println!("(total peak load 100 000 requests; series printed per network size)\n");
    for &m in &sizes {
        let instance = sample_instance(
            m,
            NetworkKind::PlanetLab,
            LoadDistribution::Peak,
            100_000.0 / m as f64,
            SpeedDistribution::paper_uniform(),
            7,
        );
        let start = std::time::Instant::now();
        let mut engine = Engine::new(
            instance,
            EngineOptions {
                seed: 7,
                ..Default::default()
            },
        );
        print!("#servers = {m:<5} ΣC:");
        print!(" {:.3e}", engine.current_cost());
        for _ in 0..iterations {
            let stats = engine.run_iteration();
            print!(" {:.3e}", stats.cost);
        }
        println!();
        let initial = engine.history()[0];
        let final_cost = engine.current_cost();
        println!(
            "               reduction {:.1}x in {} iterations ({:.1} s wall)",
            initial / final_cost,
            iterations,
            start.elapsed().as_secs_f64()
        );
    }
    println!("\npaper: total processing time decreases exponentially over ~20 iterations");
}
