//! Figure 2: convergence of the distributed algorithm on large
//! networks under the peak load distribution (100 000 requests owned by
//! one server), heterogeneous latencies.
//!
//! The paper plots `ΣC_i` (log scale) against the iteration number for
//! m ∈ {500, 1000, 2000, 3000, 5000} and observes an exponential
//! decrease. We run the same series through the shared scenario API —
//! `algo=batched net=pl load=peak`, the propose/match/apply round that
//! executes one iteration as three data-parallel phases — and record
//! each series' `RunRecord` plus a scaling comparison (network size ×
//! round mode × thread count → wall-clock per iteration) to
//! `BENCH_figure2.json` at the workspace root, one JSON record per
//! measurement, so the perf trajectory of the Figure-2 hot path is
//! tracked across PRs (`dlb report BENCH_figure2.json` renders it).
//!
//! Run: `cargo bench -p dlb-bench --bench figure2_large_networks`
//! (`DLB_BENCH_SCALE=full` adds m = 3000 and m = 5000).

use dlb_bench::full_scale;
use dlb_bench::results::{JsonlSink, Record};
use dlb_core::workload::LoadDistribution;
use dlb_distributed::{Engine, EngineOptions, RoundMode};
use dlb_scenario::{AlgoSpec, NetSpec, ScenarioSpec};

/// The Figure-2 scenario: total peak load of 100 000 requests on one
/// server of a PlanetLab-like network.
fn peak_spec(m: usize) -> ScenarioSpec {
    ScenarioSpec::new()
        .net(NetSpec::Pl)
        .servers(m)
        .load(LoadDistribution::Peak)
        .avg_load(100_000.0 / m as f64)
        .seed(7)
}

fn mode_label(mode: RoundMode) -> &'static str {
    match mode {
        RoundMode::Sequential => "sequential",
        RoundMode::Batched => "batched",
    }
}

/// Runs `iters` engine iterations and returns (wall-clock seconds per
/// iteration, final ΣC).
fn time_iterations(spec: &ScenarioSpec, mode: RoundMode, iters: usize) -> (f64, f64) {
    let mut engine = Engine::new(
        spec.build_instance(),
        EngineOptions {
            seed: spec.seed,
            round_mode: mode,
            ..Default::default()
        },
    );
    let start = std::time::Instant::now();
    for _ in 0..iters {
        engine.run_iteration();
    }
    let secs = start.elapsed().as_secs_f64() / iters as f64;
    (secs, engine.current_cost())
}

fn main() {
    let full = full_scale();
    // Every record carries the grid scale and the host's core count so
    // snapshots from different runs (fast vs full, laptop vs CI) stay
    // distinguishable in the committed artifact instead of silently
    // mixing incomparable rows.
    let scale = if full { "full" } else { "fast" };
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get()) as i64;
    let tag = |r: Record| r.str("scale", scale).int("host_cores", cores);
    let sizes: Vec<usize> = if full {
        vec![500, 1000, 2000, 3000, 5000]
    } else {
        vec![500, 1000, 2000]
    };
    let iterations = 20;
    // Benches run with the package dir as CWD; anchor the committed
    // artifact at the workspace root regardless.
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_figure2.json");
    let mut sink = JsonlSink::create_at(out_path).expect("BENCH_figure2.json must be writable");

    println!("\n== Figure 2 — ΣC vs iteration, peak load, heterogeneous network ==");
    println!("(total peak load 100 000 requests; batched propose/match/apply rounds)\n");
    for &m in &sizes {
        // `eps=0` with `patience > budget` runs exactly `budget`
        // iterations — the fixed-length series the figure plots.
        let spec =
            peak_spec(m)
                .algo(AlgoSpec::Batched)
                .termination(0.0, iterations + 1, iterations);
        let run = spec.run();
        print!("#servers = {m:<5} ΣC:");
        for cost in &run.history {
            print!(" {cost:.3e}");
        }
        println!();
        println!(
            "               reduction {:.1}x in {} iterations ({:.1} s wall)",
            run.initial_cost() / run.final_cost(),
            run.iterations,
            run.wall_secs
        );
        sink.record(&tag(Record::from_run("figure2_series", &run)));
    }

    // Scaling record: wall-clock per iteration for every round mode ×
    // thread count on the pruned-mode sizes. The batched round turns
    // the iteration's serial sweep (one crossbeam scope per server)
    // into three fan-outs per round, which is where the Figure-2
    // wall-clock was going. Interpret thread columns against the host:
    // on a single-core box the threads=8 rows measure oversubscription
    // overhead (per-server scope spawns in sequential mode), not
    // parallel speedup.
    println!("\n== round-mode scaling (secs / iteration) ==");
    println!(
        "{:<8} {:<12} {:>8} {:>14} {:>14}",
        "m", "mode", "threads", "secs/iter", "final ΣC"
    );
    let scaling_sizes: Vec<usize> = if full {
        vec![1000, 2000, 5000]
    } else {
        vec![1000, 2000]
    };
    for &m in &scaling_sizes {
        let spec = peak_spec(m);
        for mode in [RoundMode::Sequential, RoundMode::Batched] {
            for threads in [1usize, 8] {
                std::env::set_var("DLB_THREADS", threads.to_string());
                let iters = 3;
                let (secs, cost) = time_iterations(&spec, mode, iters);
                std::env::remove_var("DLB_THREADS");
                println!(
                    "{:<8} {:<12} {:>8} {:>14.4} {:>14.4e}",
                    m,
                    mode_label(mode),
                    threads,
                    secs,
                    cost
                );
                let timed_algo = match mode {
                    RoundMode::Sequential => AlgoSpec::Sequential,
                    RoundMode::Batched => AlgoSpec::Batched,
                };
                sink.record(&tag(Record::new("scaling")
                    .str("scenario", &spec.algo(timed_algo).to_string())
                    .int("m", m as i64)
                    .str("mode", mode_label(mode))
                    .int("threads", threads as i64)
                    .int("iters_timed", iters as i64)
                    .num("secs_per_iter", secs)
                    .num("cost_after", cost)));
            }
        }
    }

    println!("\npaper: total processing time decreases exponentially over ~20 iterations");
    println!("scaling record written to BENCH_figure2.json");
}
