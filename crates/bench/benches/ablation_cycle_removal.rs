//! Ablation (paper §VI-B): does negative-cycle removal change the
//! convergence of the distributed algorithm?
//!
//! The paper compared the plain algorithm against a variant running the
//! Appendix's min-cost-flow cycle removal every 2 iterations and found
//! *identical* iteration counts in all 6000 experiments (negative
//! cycles are rare and Algorithm 1 dismantles them by itself). This
//! bench reproduces that comparison.
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_cycle_removal`.

use dlb_bench::results::{JsonlSink, Record};
use dlb_bench::{full_scale, sample_instance, NetworkKind};
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_distributed::{Engine, EngineOptions};

fn main() {
    let mut sink = JsonlSink::create("ablation_cycle_removal");
    let ms: Vec<usize> = if full_scale() {
        vec![20, 50, 100, 200]
    } else {
        vec![20, 50, 100]
    };
    let seeds: Vec<u64> = if full_scale() {
        (1..=10).collect()
    } else {
        (1..=4).collect()
    };
    let dists = [
        LoadDistribution::Uniform,
        LoadDistribution::Exponential,
        LoadDistribution::Peak,
    ];
    let rel_err = 0.001;

    println!("\n== Ablation — negative-cycle removal every 2 iterations vs never ==");
    println!(
        "{:<30} {:>10} {:>10} {:>8}",
        "configuration", "plain", "removal", "same?"
    );
    let mut identical = 0usize;
    let mut total = 0usize;
    for &m in &ms {
        for dist in dists {
            for &net in &[NetworkKind::Homogeneous, NetworkKind::PlanetLab] {
                let mut plain_iters = Vec::new();
                let mut removal_iters = Vec::new();
                for &seed in &seeds {
                    let avg = if dist == LoadDistribution::Peak {
                        100_000.0 / m as f64
                    } else {
                        50.0
                    };
                    let instance = sample_instance(
                        m,
                        net,
                        dist,
                        avg,
                        SpeedDistribution::paper_uniform(),
                        seed,
                    );
                    let measure = |cycle_every: Option<usize>| {
                        let mut engine = Engine::new(
                            instance.clone(),
                            EngineOptions {
                                seed,
                                cycle_removal_every: cycle_every,
                                ..Default::default()
                            },
                        );
                        engine.run_to_convergence(1e-9, 3, 60);
                        let optimum = engine.current_cost();
                        engine
                            .iterations_to_reach(optimum, rel_err)
                            .unwrap_or(engine.iterations())
                    };
                    let p = measure(None);
                    let r = measure(Some(2));
                    plain_iters.push(p as f64);
                    removal_iters.push(r as f64);
                    total += 1;
                    if p == r {
                        identical += 1;
                    }
                }
                let pa: f64 = plain_iters.iter().sum::<f64>() / plain_iters.len() as f64;
                let ra: f64 = removal_iters.iter().sum::<f64>() / removal_iters.len() as f64;
                sink.record(
                    &Record::new("table_row")
                        .str("table", "ablation_cycle_removal")
                        .int("m", m as i64)
                        .str("dist", dist.label())
                        .str("net", net.label())
                        .num("plain_avg_iters", pa)
                        .num("removal_avg_iters", ra)
                        .bool("identical", (pa - ra).abs() < 1e-9),
                );
                println!(
                    "{:<30} {:>10.2} {:>10.2} {:>8}",
                    format!("m={m} {} {}", dist.label(), net.label()),
                    pa,
                    ra,
                    if (pa - ra).abs() < 1e-9 { "yes" } else { "~" }
                );
            }
        }
    }
    sink.record(
        &Record::new("summary")
            .str("table", "ablation_cycle_removal")
            .int("identical_runs", identical as i64)
            .int("total_runs", total as i64),
    );
    println!(
        "\nidentical iteration counts in {identical}/{total} runs \
         (paper: 6000/6000; cycles are rare and Algorithm 1 removes them)"
    );
}
