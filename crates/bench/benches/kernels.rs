//! Criterion micro-benchmarks of the hot kernels.
//!
//! Run: `cargo bench -p dlb-bench --bench kernels`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use dlb_bench::{sample_instance, NetworkKind};
use dlb_core::cost::total_cost;
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_core::Assignment;
use dlb_distributed::mine::{mine_step, PartnerSelection};
use dlb_distributed::transfer::calc_best_transfer;
use dlb_flow::ssp::min_cost_max_flow;
use dlb_flow::FlowNetwork;
use dlb_solver::projection::project_simplex;
use dlb_solver::waterfill::waterfill;

fn bench_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("calc_best_transfer");
    for &m in &[50usize, 200] {
        let instance = sample_instance(
            m,
            NetworkKind::PlanetLab,
            LoadDistribution::Exponential,
            50.0,
            SpeedDistribution::paper_uniform(),
            1,
        );
        let a = Assignment::local(&instance);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| calc_best_transfer(&instance, a.ledger(0), a.ledger(1), 0, 1))
        });
    }
    group.finish();
}

fn bench_mine_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("mine_step_exact");
    for &m in &[50usize, 200] {
        let instance = sample_instance(
            m,
            NetworkKind::PlanetLab,
            LoadDistribution::Exponential,
            50.0,
            SpeedDistribution::paper_uniform(),
            2,
        );
        let a = Assignment::local(&instance);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter_batched(
                || a.clone(),
                |mut a| mine_step(&instance, &mut a, 0, PartnerSelection::Exact, 1e-9, false),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("total_cost");
    for &m in &[200usize, 1000] {
        let instance = sample_instance(
            m,
            NetworkKind::Homogeneous,
            LoadDistribution::Uniform,
            50.0,
            SpeedDistribution::paper_uniform(),
            3,
        );
        let a = Assignment::local(&instance);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| total_cost(&instance, &a))
        });
    }
    group.finish();
}

fn bench_waterfill(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill");
    for &m in &[100usize, 1000] {
        let a: Vec<f64> = (0..m).map(|i| (i % 37) as f64).collect();
        let s: Vec<f64> = (0..m).map(|i| 1.0 + (i % 5) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| waterfill(&a, &s, 500.0))
        });
    }
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("project_simplex");
    for &m in &[100usize, 1000] {
        let v: Vec<f64> = (0..m)
            .map(|i| ((i * 31) % 100) as f64 / 10.0 - 5.0)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter_batched(
                || v.clone(),
                |mut v| project_simplex(&mut v, 1.0),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_metric_close(c: &mut Criterion) {
    let mut group = c.benchmark_group("floyd_warshall");
    group.sample_size(20);
    for &m in &[100usize, 300] {
        let lat = NetworkKind::PlanetLab.build(m, 4);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter_batched(
                || lat.clone(),
                |mut lat| {
                    lat.metric_close();
                    lat
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_min_cost_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_cost_max_flow");
    group.sample_size(20);
    for &n in &[50usize, 200] {
        // Bipartite transport instance: n supplies, n demands.
        let build = move || {
            let mut g = FlowNetwork::new(2 * n + 2);
            let (s, t) = (2 * n, 2 * n + 1);
            for i in 0..n {
                g.add_edge(s, i, 10.0, 0.0);
                g.add_edge(n + i, t, 10.0, 0.0);
                for j in 0..n {
                    let cost = ((i * 7 + j * 13) % 50) as f64;
                    g.add_edge(i, n + j, f64::INFINITY, cost);
                }
            }
            (g, s, t)
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                build,
                |(mut g, s, t)| min_cost_max_flow(&mut g, s, t, f64::INFINITY),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_transfer,
    bench_mine_step,
    bench_cost,
    bench_waterfill,
    bench_projection,
    bench_metric_close,
    bench_min_cost_flow
);
criterion_main!(kernels);
