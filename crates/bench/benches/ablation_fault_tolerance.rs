//! Ablation: how far does the §IV protocol degrade when the network
//! misbehaves?
//!
//! The paper (and the neighborhood load-balancing line it builds on —
//! arXiv cs/0506098, arXiv 1109.6925) analyzes convergence under
//! idealized communication. This harness measures the other regime:
//! the same event-driven protocol run under `dlb-faults` schedules of
//! increasing intensity — frame loss, delay spikes, a partition
//! window, node crashes, and their combination — recording final
//! `ΣC`, rounds-to-converge, and simulated protocol time per fault
//! intensity to `BENCH_faults.json` at the workspace root (`dlb
//! report BENCH_faults.json` renders it). Every row is deterministic
//! per seed: one seed fixes the workload, the link delays, and the
//! fault trajectory.
//!
//! Reading the rows: loss/spike/partition cannot change *where* the
//! protocol can go — only when frames arrive — so they mostly cost
//! simulated time and reshuffle the exchange order; crashes remove
//! servers, so their rows converge to a genuinely worse `ΣC` (the
//! survivors' optimum plus the victims' frozen ledgers).
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_fault_tolerance`.

use dlb_bench::results::{JsonlSink, Record};
use dlb_scenario::{AlgoSpec, RuntimeSpec, ScenarioSpec};

/// The workload every fault intensity runs against: exponential loads
/// on the paper's homogeneous `c = 20` network, big enough that a
/// crash-induced shift is visible, small enough to sweep quickly.
fn base_spec() -> ScenarioSpec {
    ScenarioSpec::new()
        .algo(AlgoSpec::Protocol)
        .runtime(RuntimeSpec::Events)
        .servers(300)
        .avg_load(60.0)
        .seed(7)
        .termination(1e-9, 5, 1_000)
}

fn main() {
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    let mut sink = JsonlSink::create_at(out_path).expect("BENCH_faults.json must be writable");

    // The fault-intensity grid, mildest to harshest. Labels are the
    // exact `faults=` axis values, so every row is reproducible as
    // `dlb run <scenario>`.
    let grid: &[&str] = &[
        "",
        "loss:0.05",
        "loss:0.2",
        "loss:0.4",
        "spike:4x@100ms..600ms",
        "part:100ms..400ms",
        "crash:0.1@200ms",
        "crash:0.3@200ms",
        "crash:0.1@200ms,loss:0.1",
    ];

    println!("== fault tolerance — {} ==", base_spec());
    println!(
        "{:<28} {:>10} {:>8} {:>12} {:>12} {:>9} {:>9}",
        "faults", "final ΣC", "rounds", "vs clean", "sim secs", "delayed", "dropped"
    );
    let mut clean = f64::NAN;
    for &faults in grid {
        let spec = if faults.is_empty() {
            base_spec()
        } else {
            let text = format!("{} faults={faults}", base_spec());
            text.parse().expect("grid plans parse")
        };
        let run = spec.run();
        assert!(
            run.converged,
            "fault row '{faults}' must converge within the budget"
        );
        if faults.is_empty() {
            clean = run.final_cost();
        }
        let vs_clean = run.final_cost() / clean - 1.0;
        println!(
            "{:<28} {:>10.0} {:>8} {:>+11.2}% {:>12.3} {:>9} {:>9}",
            if faults.is_empty() { "(none)" } else { faults },
            run.final_cost(),
            run.iterations,
            vs_clean * 100.0,
            run.wall_secs,
            run.faults.delayed_frames,
            run.faults.dropped_frames,
        );
        sink.record(
            &Record::from_run("fault_tolerance", &run)
                .str("faults", faults)
                .num("pct_vs_clean", vs_clean * 100.0),
        );
    }
    println!("\nfault sweep written to BENCH_faults.json");
}
