//! Ablation: what does the protocol's continuous rebalancing buy an
//! open system, and what does failure detection cost its tail?
//!
//! PR 8 opened the runtime: `arrivals=`/`duration=` stream live
//! requests through the event executor while the protocol keeps
//! rebalancing. This harness sweeps arrival intensity (light Poisson
//! through a heavy burst overlay) twice — once fault-free under the
//! oracle, once with a crash wave under the adaptive in-protocol
//! detector — on one fixed seed, so every pair of rows isolates one
//! variable. Each row records the SLO view: requests served and
//! dropped, p50/p99 sojourn in virtual ms, time spent imbalanced, and
//! final `ΣC`, to `BENCH_streaming.json` at the workspace root
//! (`dlb report BENCH_streaming.json` renders it).
//!
//! Reading the rows: the continuous rebalancer holds the p50 sojourn
//! flat across a 6× intensity range (the protocol drains backlogs as
//! fast as the stream deepens them — the open-system payoff), and the
//! crash column shows the price of losing 15% of the cluster
//! mid-stream: requests homed on victims drop, and the cluster spends
//! multiples longer imbalanced while the detector notices and the
//! survivors re-spread the load.
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_streaming`.

use dlb_bench::results::{JsonlSink, Record};
use dlb_scenario::{AlgoSpec, RuntimeSpec, ScenarioSpec};

/// The intensity sweep: exact `arrivals=` axis values, light to
/// heavy, so every row is reproducible as `dlb run <scenario>`.
const INTENSITIES: &[&str] = &[
    "poisson:100",
    "poisson:300",
    "poisson:300,burst:600@500ms..1500ms",
];

/// The crash wave the faulted half faces: 15% of the cluster dies at
/// 400 ms — early enough that victims still self-host most of their
/// load, so their in-flight requests have nowhere live to land.
const FAULTS: &str = "crash:0.15@400ms";

fn base_spec(arrivals: &str, faulted: bool) -> ScenarioSpec {
    let tail = if faulted {
        format!(" faults={FAULTS} detect=adaptive")
    } else {
        String::new()
    };
    let text = format!(
        "algo=protocol runtime=events net=homog m=120 avg=60 seed=7 \
         eps=1e-9 patience=5 budget=2000{tail} arrivals={arrivals} duration=2000"
    );
    text.parse().expect("grid specs parse")
}

fn main() {
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    let mut sink = JsonlSink::create_at(out_path).expect("BENCH_streaming.json must be writable");

    println!("== open-system streaming — m=120 seed=7 duration=2000ms ==");
    println!(
        "{:<38} {:<8} {:>7} {:>8} {:>9} {:>9} {:>12} {:>10}",
        "arrivals", "faults", "served", "dropped", "p50 ms", "p99 ms", "imbalance ms", "final ΣC"
    );
    let mut rows: Vec<(&str, bool, dlb_runtime::StreamSummary)> = Vec::new();
    for &arrivals in INTENSITIES {
        for faulted in [false, true] {
            let spec = base_spec(arrivals, faulted);
            assert_eq!(spec.algo, AlgoSpec::Protocol);
            assert_eq!(spec.runtime, RuntimeSpec::Events);
            let run = spec.run();
            let s = run.stream;
            println!(
                "{:<38} {:<8} {:>7} {:>8} {:>9.1} {:>9.1} {:>12.1} {:>10.0}",
                arrivals,
                if faulted { "crash" } else { "-" },
                s.served,
                s.dropped,
                s.p50_ms,
                s.p99_ms,
                s.imbalance_ms,
                run.final_cost(),
            );
            sink.record(
                &Record::from_run("streaming", &run)
                    .str("arrivals", arrivals)
                    .str("fault_mode", if faulted { "crash" } else { "none" }),
            );
            rows.push((arrivals, faulted, s));
        }
    }

    // The sweep's invariants: every setting serves most of its stream
    // with finite percentiles, fault-free runs drop nothing, and every
    // crash run drops the victims' unroutable requests.
    for (arrivals, faulted, s) in &rows {
        assert!(
            s.served > 0,
            "'{arrivals}' faulted={faulted} served nothing"
        );
        assert!(
            s.p50_ms.is_finite() && s.p50_ms > 0.0 && s.p99_ms >= s.p50_ms,
            "'{arrivals}' faulted={faulted} percentiles: {s:?}"
        );
        if *faulted {
            assert!(
                s.dropped > 0,
                "'{arrivals}' crash run must drop victim-homed requests: {s:?}"
            );
        } else {
            assert_eq!(s.dropped, 0, "'{arrivals}' fault-free run dropped: {s:?}");
        }
    }
    println!("\nstreaming sweep written to BENCH_streaming.json");
}
