//! Ablation: what does the observability plane cost?
//!
//! The `dlb-obs` tentpole claims **zero overhead when off**: every
//! trace hook is monomorphized over the sink type, so a `trace=off`
//! run compiles to the same machine code as a direct executor call
//! with [`NullSink`](dlb_obs::NullSink) baked in. This harness puts a
//! number on that claim — and on what turning tracing *on* costs — at
//! the paper's large-network scale (m = 5000):
//!
//! * `direct` — the executor invoked straight through
//!   `run_cluster_events`, with the same options the scenario runner
//!   compiles. This is the PR-9-equivalent untraced baseline.
//! * `off` — the same scenario through the full runner path with the
//!   `trace=` axis absent. Asserted to cost **< 1%** over `direct`
//!   (median of interleaved repetitions).
//! * `summary` — `trace=summary`: events stream into an in-memory
//!   recording and fold into the `obs_*` metric group.
//! * `frames` — `trace=frames:FILE`: the full event stream is
//!   recorded and encoded to a binary frame log on disk.
//!
//! Each variant runs the identical protocol work (same instance, same
//! seed, same budget); `direct` vs `off` is additionally pinned by a
//! bit-equality check on the final cost, so a drift between the
//! replicated options below and the runner's own would fail loudly
//! rather than skew the baseline. Rows land in `BENCH_obs.json` at the
//! workspace root (`dlb report BENCH_obs.json` renders them).
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_obs_overhead`.

use dlb_bench::results::{JsonlSink, Record};
use dlb_netsim::rtt::QueueModel;
use dlb_netsim::LinkDelayModel;
use dlb_runtime::{run_cluster_events, ClusterOptions, NodeConfig};
use dlb_scenario::{runner_for, RunRecord, ScenarioSpec};
use std::time::Instant;

/// The workload every variant runs: the paper's large-network scale on
/// the homogeneous substrate (so instance sampling does not drown the
/// protocol work being measured).
const SPEC: &str =
    "algo=protocol runtime=events net=homog m=5000 avg=60 seed=2 patience=3 budget=6";

/// Interleaved repetitions per variant; the median decorrelates
/// machine drift from the comparison.
const REPS: usize = 5;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

/// The executor options the scenario runner compiles for this spec
/// (fault-free homogeneous case of its RTO bound). The `direct`/`off`
/// bit-equality assert below keeps this replica honest.
fn direct_options(spec: &ScenarioSpec, instance: &dlb_core::Instance) -> ClusterOptions {
    let jitter_tail = 40.0 * QueueModel::default().base_jitter_ms;
    let d_max = instance.latency().max_latency() / 2.0 + jitter_tail;
    ClusterOptions {
        max_rounds: spec.budget,
        quiescent_rounds: spec.patience.max(1),
        quiescent_volume: spec.eps,
        node: NodeConfig::default(),
        exchange_rto_ms: 2.0 * d_max + 50.0,
        ..Default::default()
    }
}

fn main() {
    let spec: ScenarioSpec = SPEC.parse().expect("base spec parses");
    let instance = spec.build_instance();
    let runner = runner_for(spec.algo);
    let log_path = std::env::temp_dir().join("dlb_bench_obs_overhead.dlbf");
    let traced_spec = |axis: &str| -> ScenarioSpec {
        format!("{SPEC} trace={axis}")
            .parse()
            .expect("traced spec parses")
    };
    let summary_spec = traced_spec("summary");
    let frames_spec = traced_spec(&format!("frames:{}", log_path.display()));

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let mut sink = JsonlSink::create_at(out_path).expect("BENCH_obs.json must be writable");

    println!("== observability overhead — {SPEC} ==");
    let mut times: [Vec<f64>; 4] = Default::default();
    let mut runs: [Option<RunRecord>; 3] = Default::default();
    let mut direct_final = f64::NAN;
    for rep in 0..REPS {
        // Interleave the variants so slow machine phases hit them all.
        let t0 = Instant::now();
        let report = run_cluster_events(&instance, &direct_options(&spec, &instance), {
            let delays = LinkDelayModel::new(instance.latency(), spec.seed);
            move |i, j| delays.one_way_ms(i, j)
        });
        times[0].push(t0.elapsed().as_secs_f64());
        direct_final = *report.history.last().expect("history non-empty");

        for (slot, s) in [&spec, &summary_spec, &frames_spec].into_iter().enumerate() {
            let inst = instance.clone();
            let t0 = Instant::now();
            let run = runner.run_on(s, inst);
            times[slot + 1].push(t0.elapsed().as_secs_f64());
            runs[slot] = Some(run);
        }
        println!(
            "rep {}: direct {:.3}s  off {:.3}s  summary {:.3}s  frames {:.3}s",
            rep, times[0][rep], times[1][rep], times[2][rep], times[3][rep]
        );
    }

    let off_run = runs[0].take().expect("ran");
    assert_eq!(
        direct_final.to_bits(),
        off_run.final_cost().to_bits(),
        "direct baseline and trace=off must do identical protocol work"
    );
    let frames_run = runs[2].take().expect("ran");
    let log_bytes = std::fs::metadata(&log_path)
        .expect("frame log written")
        .len();

    let direct = median(times[0].clone());
    let labels = ["off", "summary", "frames"];
    println!(
        "\n{:<10} {:>12} {:>12}",
        "variant", "median secs", "vs direct"
    );
    println!("{:<10} {:>12.4} {:>11}%", "direct", direct, "-");
    for (i, label) in labels.iter().enumerate() {
        let m = median(times[i + 1].clone());
        let pct = (m / direct - 1.0) * 100.0;
        println!("{:<10} {:>12.4} {:>+11.2}%", label, m, pct);
        let run = match *label {
            "off" => &off_run,
            "summary" => runs[1].as_ref().expect("ran"),
            _ => &frames_run,
        };
        let mut row = Record::from_run("obs_overhead", run)
            .str("variant", label)
            .num("median_secs", m)
            .num("direct_secs", direct)
            .num("pct_vs_direct", pct);
        if *label == "frames" {
            row = row.int("frame_log_bytes", log_bytes as i64);
        }
        sink.record(&row);
    }

    // The tentpole's headline claim, enforced: tracing off is free.
    let off_pct = median(times[1].clone()) / direct - 1.0;
    assert!(
        off_pct < 0.01,
        "trace=off overhead {:.2}% exceeds the 1% budget",
        off_pct * 100.0
    );

    let _ = std::fs::remove_file(&log_path);
    println!(
        "\ntrace=off overhead {:+.2}% (< 1% budget); frame log at m=5000: {} bytes, {} events",
        off_pct * 100.0,
        log_bytes,
        frames_run.obs.events
    );
    println!("observability sweep written to BENCH_obs.json");
}
