//! Ablation: the gossip control plane — dissemination cost, steady-state
//! bandwidth, and the engine on gossip-fed load views.
//!
//! The paper argues (§IV) that running the gossip layer ~`O(log m)`
//! times more often than the balancing algorithm gives every server
//! accurate load information. Here we (a) measure how many gossip
//! rounds dissemination actually takes and what it costs on the wire,
//! (b) measure steady-state traffic at Figure-2 scale (m = 5000):
//! delta-encoded sharded frames vs the full-view push-pull baseline,
//! and (c) run the engine with partner scoring fed by the emulated
//! stale snapshot (`gossip=emulated:T`) and by the *real* delta-gossip
//! protocol (`gossip=event:100ms`), confirming convergence survives
//! staleness.
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_gossip_staleness`.
//! Writes the committed artifact `BENCH_gossip.json` at the repo root.

use dlb_bench::results::{JsonlSink, Record};
use dlb_gossip::wire::view_bytes;
use dlb_gossip::{DeltaGossip, DeltaGossipConfig, EventGossip, EventGossipConfig, GossipNetwork};
use dlb_scenario::{AlgoSpec, GossipSpec, NetSpec, ScenarioSpec};

fn main() {
    let mut sink = JsonlSink::create_at(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_gossip.json"
    ))
    .expect("open BENCH_gossip.json");

    println!("\n== Gossip dissemination cost ==");
    println!(
        "{:>8} {:>8} {:>10} {:>14} {:>14}",
        "m", "rounds", "log2(m)", "MB shipped", "virtual ms"
    );
    for &m in &[50usize, 200, 1000, 5000] {
        let loads: Vec<f64> = (0..m).map(|i| (i % 17) as f64).collect();
        let mut net = GossipNetwork::new(&loads, 3);
        let stats = net.run_until_complete(10_000);
        assert!(stats.complete, "m={m} must disseminate inside the budget");
        // The same dissemination as scheduled events over 10 ms links:
        // how long it takes in *time*, not rounds. The completion
        // check is incremental (an O(1) stale-pair counter), so the
        // event column now runs the full grid — the old O(m²) rescan
        // per delivery capped it at m = 1000.
        let virtual_ms = {
            let mut events = EventGossip::new(&loads, 3);
            events
                .run(&EventGossipConfig::default(), |_, _| 10.0)
                .virtual_ms
        };
        sink.record(
            &Record::new("table_row")
                .str("table", "gossip_dissemination")
                .int("m", m as i64)
                .int("rounds", stats.rounds as i64)
                .int("exchanges", stats.exchanges as i64)
                .bool("complete", stats.complete)
                .int("bytes", stats.bytes as i64)
                .num("event_virtual_ms", virtual_ms),
        );
        println!(
            "{m:>8} {:>8} {:>10.1} {:>14.2} {:>14.1}",
            stats.rounds,
            (m as f64).log2(),
            stats.bytes as f64 / 1e6,
            virtual_ms
        );
    }

    println!("\n== Steady-state traffic at m = 5000 ==");
    // Steady state: the network is fully disseminated and 0.1% of the
    // servers see a load change per gossip period. Full-view push-pull
    // ships two complete m-entry views per exchange no matter what
    // changed — m exchanges per round. The delta plane ships hot
    // entries plus one rotating shard as fallback.
    let m = 5000usize;
    let churn = m / 1000;
    let loads: Vec<f64> = (0..m).map(|i| (i % 17) as f64).collect();
    let config = DeltaGossipConfig::default();
    let period = config.period_ms;
    let mut net = DeltaGossip::warm(&loads, 3, config);
    // Warm up the hot sets so the measurement window is steady state,
    // not the quiet post-warm start.
    for r in 0..40u64 {
        for k in 0..churn {
            net.publish(((r as usize) * 97 + k * 101) % m, r as f64 + k as f64);
        }
        let until = net.now_ms() + period;
        net.advance(until, |_, _| 10.0);
    }
    let before = net.traffic();
    let rounds = 20u64;
    for r in 40..40 + rounds {
        for k in 0..churn {
            net.publish(((r as usize) * 97 + k * 101) % m, r as f64 + k as f64);
        }
        let until = net.now_ms() + period;
        net.advance(until, |_, _| 10.0);
    }
    let t = net.traffic().since(&before);
    let delta_per_round = t.bytes / rounds;
    let full_per_round = (m as u64) * 2 * view_bytes(m) as u64;
    let reduction = full_per_round as f64 / delta_per_round as f64;
    assert!(
        reduction >= 10.0,
        "delta frames must cut steady-state traffic ≥10×: full {full_per_round} B/round \
         vs delta {delta_per_round} B/round ({reduction:.1}×)"
    );
    sink.record(
        &Record::new("table_row")
            .str("table", "gossip_steady_state")
            .int("m", m as i64)
            .int("churn_per_round", churn as i64)
            .int("full_view_bytes_per_round", full_per_round as i64)
            .int("delta_bytes_per_round", delta_per_round as i64)
            .num("reduction", reduction),
    );
    println!(
        "full-view {:.1} MB/round   delta {:.2} MB/round   reduction {reduction:.1}x",
        full_per_round as f64 / 1e6,
        delta_per_round as f64 / 1e6
    );

    println!("\n== Engine convergence under stale load views ==");
    println!("{:>16} {:>14} {:>10}", "gossip", "final ΣC", "iters");
    let base = ScenarioSpec::new()
        .algo(AlgoSpec::Sequential)
        .net(NetSpec::Pl)
        .servers(100)
        .seed(5)
        .termination(1e-12, 3, 200);
    let instance = base.build_instance();
    // `emulated:1` refreshes the shared snapshot every iteration —
    // fresh scoring on the same forced-pruned selection every row
    // uses, so the column isolates staleness.
    let grid = [
        ("emulated:1", GossipSpec::Emulated { staleness: 1 }),
        ("emulated:2", GossipSpec::Emulated { staleness: 2 }),
        ("emulated:5", GossipSpec::Emulated { staleness: 5 }),
        ("emulated:10", GossipSpec::Emulated { staleness: 10 }),
        ("event:100ms", GossipSpec::Event { period_ms: 100.0 }),
    ];
    let mut reference = f64::INFINITY;
    for (label, gossip) in grid {
        let run = base.gossip(gossip).run_on(instance.clone());
        if reference.is_infinite() {
            reference = run.final_cost();
        }
        let pct = (run.final_cost() / reference - 1.0) * 100.0;
        if let GossipSpec::Event { .. } = gossip {
            // The acceptance bar: real event-gossip views land within
            // 1% of fresh scoring.
            assert!(
                pct.abs() < 1.0,
                "event-gossip scoring drifted {pct:+.3}% from fresh"
            );
            assert!(!run.gossip.is_quiet(), "event run must meter traffic");
            // The full run record too, so `dlb report` renders the
            // gossip_* columns straight from the committed artifact.
            sink.record(&Record::from_run("run", &run));
        }
        sink.record(
            &Record::new("table_row")
                .str("table", "engine_staleness")
                .str("gossip", label)
                .num("final_cost", run.final_cost())
                .int("iterations", run.iterations as i64)
                .int("gossip_bytes", run.gossip.bytes as i64)
                .num("pct_vs_fresh", pct),
        );
        println!(
            "{label:>16} {:>14.1} {:>10}   ({pct:+.3}% vs fresh)",
            run.final_cost(),
            run.iterations,
        );
    }
    println!("\nstale scoring degrades the result by well under a percent:");
    println!("the gossip layer only needs to keep up within a few iterations");
}
