//! Ablation: the engine on gossip-stale load views.
//!
//! The paper argues (§IV) that running the gossip layer ~`O(log m)`
//! times more often than the balancing algorithm gives every server
//! accurate load information. Here we (a) measure how many gossip
//! rounds dissemination actually takes, and (b) run the engine with
//! partner *scoring* based on load views refreshed only every T
//! iterations, confirming convergence survives staleness.
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_gossip_staleness`.

use dlb_bench::results::{JsonlSink, Record};
use dlb_bench::{sample_instance, NetworkKind};
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_distributed::mine::PartnerSelection;
use dlb_distributed::{Engine, EngineOptions};
use dlb_gossip::{EventGossip, EventGossipConfig, GossipNetwork};

fn main() {
    let mut sink = JsonlSink::create("ablation_gossip_staleness");
    println!("\n== Gossip dissemination cost ==");
    println!(
        "{:>8} {:>12} {:>14} {:>14}",
        "m", "rounds", "log2(m)", "virtual ms"
    );
    for &m in &[50usize, 200, 1000, 5000] {
        let loads: Vec<f64> = (0..m).map(|i| (i % 17) as f64).collect();
        let mut net = GossipNetwork::new(&loads, 3);
        let stats = net.run_until_complete(10_000);
        // The same dissemination as scheduled events over 10 ms links:
        // how long it takes in *time*, not rounds. The completion
        // check is incremental (an O(1) stale-pair counter), so the
        // event column now runs the full grid — the old O(m²) rescan
        // per delivery capped it at m = 1000.
        let virtual_ms = {
            let mut events = EventGossip::new(&loads, 3);
            events
                .run(&EventGossipConfig::default(), |_, _| 10.0)
                .virtual_ms
        };
        sink.record(
            &Record::new("table_row")
                .str("table", "gossip_dissemination")
                .int("m", m as i64)
                .int("rounds", stats.rounds as i64)
                .int("exchanges", stats.exchanges as i64)
                .num("event_virtual_ms", virtual_ms),
        );
        println!(
            "{m:>8} {:>12} {:>14.1} {:>14.1}",
            stats.rounds,
            (m as f64).log2(),
            virtual_ms
        );
    }

    println!("\n== Engine convergence under stale load views ==");
    println!("{:>12} {:>14} {:>10}", "staleness", "final ΣC", "iters");
    let instance = sample_instance(
        100,
        NetworkKind::PlanetLab,
        LoadDistribution::Exponential,
        50.0,
        SpeedDistribution::paper_uniform(),
        5,
    );
    let mut reference = f64::INFINITY;
    for &staleness in &[0usize, 2, 5, 10] {
        let mut engine = Engine::new(
            instance.clone(),
            EngineOptions {
                seed: 5,
                load_staleness: staleness,
                selection: Some(PartnerSelection::Pruned { top_k: 8 }),
                ..Default::default()
            },
        );
        let report = engine.run_to_convergence(1e-12, 3, 200);
        if staleness == 0 {
            reference = report.final_cost;
        }
        sink.record(
            &Record::new("table_row")
                .str("table", "engine_staleness")
                .int("staleness", staleness as i64)
                .num("final_cost", report.final_cost)
                .int("iterations", report.iterations as i64)
                .num(
                    "pct_vs_fresh",
                    (report.final_cost / reference - 1.0) * 100.0,
                ),
        );
        println!(
            "{staleness:>12} {:>14.1} {:>10}   ({:+.3}% vs fresh)",
            report.final_cost,
            report.iterations,
            (report.final_cost / reference - 1.0) * 100.0
        );
    }
    println!("\nstale scoring degrades the result by well under a percent:");
    println!("the gossip layer only needs to keep up within a few iterations");
}
