//! Ablation: balancing on *estimated* latencies (Vivaldi coordinates)
//! vs ground truth.
//!
//! The paper assumes the pairwise latencies `c_ij` are known, citing
//! network-coordinate systems as the standard monitoring solution.
//! This harness quantifies that assumption: the engine runs once with
//! the true matrix and once with the matrix estimated from a few
//! random probes per node per tick; both assignments are then priced
//! under the TRUE latencies. The gap is the real cost of imperfect
//! monitoring.
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_latency_estimation`

use dlb_bench::results::{JsonlSink, Record};
use dlb_bench::{print_header, NetworkKind};
use dlb_coords::{Estimator, EstimatorConfig};
use dlb_core::cost::total_cost;
use dlb_core::rngutil::rng_for;
use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
use dlb_core::Instance;
use dlb_distributed::{Engine, EngineOptions};

fn main() {
    let mut sink = JsonlSink::create("ablation_latency_estimation");
    print_header(
        "Ablation — engine on Vivaldi-estimated vs true latencies",
        "ticks (probes/node = 4)",
    );
    println!("{:<26} {:>12} {:>14}", "", "median err", "ΣC vs truth");
    let m = 40;
    let truth = NetworkKind::PlanetLab.build(m, 11);
    let mut rng = rng_for(11, 0xE57);
    let spec = WorkloadSpec {
        loads: LoadDistribution::Exponential,
        avg_load: 100.0,
        speeds: SpeedDistribution::paper_uniform(),
    };
    let instance = spec.sample(truth.clone(), &mut rng);

    // Reference: engine on the true matrix.
    let mut engine = Engine::new(
        instance.clone(),
        EngineOptions {
            seed: 11,
            ..Default::default()
        },
    );
    let true_cost = engine.run_to_convergence(1e-12, 3, 200).final_cost;

    for &ticks in &[5usize, 15, 40, 100] {
        let mut est = Estimator::new(
            m,
            EstimatorConfig {
                seed: 11,
                ..Default::default()
            },
        );
        est.run(&truth, ticks);
        let err = est.median_relative_error(&truth);
        // Balance under the estimated matrix…
        let est_instance = Instance::new(
            instance.speeds().to_vec(),
            instance.own_loads().to_vec(),
            est.estimated_matrix(),
        );
        let mut est_engine = Engine::new(
            est_instance,
            EngineOptions {
                seed: 11,
                ..Default::default()
            },
        );
        est_engine.run_to_convergence(1e-12, 3, 200);
        // …but price the resulting assignment under the TRUE latencies.
        let assignment = est_engine.assignment().clone();
        let real_cost = total_cost(&instance, &assignment);
        sink.record(
            &Record::new("table_row")
                .str("table", "ablation_latency_estimation")
                .int("ticks", ticks as i64)
                .num("median_rel_error", err)
                .num("cost_ratio_vs_truth", real_cost / true_cost),
        );
        println!(
            "{:<26} {:>12.3} {:>14.4}",
            format!("{ticks} ticks"),
            err,
            real_cost / true_cost
        );
    }
    println!("\nexpectation: ΣC penalty shrinks with estimation accuracy;");
    println!("a few dozen ticks of 4 probes suffice for a ≈1.0x ratio — the");
    println!("paper's 'latencies are known' assumption is cheap to satisfy.");
}
