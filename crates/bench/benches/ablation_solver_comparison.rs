//! Ablation (paper §I/§IX claim): "even on a single CPU [the
//! distributed algorithm] outperforms the standard solvers".
//!
//! Compares wall-clock time and solution quality of:
//! * the distributed engine (exact partner selection, single thread),
//! * the distributed engine (pruned partner selection),
//! * exact block-coordinate descent (the fastest centralized method),
//! * projected gradient (FISTA),
//! * Frank-Wolfe (iteration-capped; its sublinear tail is the point).
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_solver_comparison`.

use std::time::Instant;

use dlb_bench::results::{JsonlSink, Record};
use dlb_bench::{full_scale, sample_instance, NetworkKind};
use dlb_core::cost::total_cost;
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_distributed::mine::PartnerSelection;
use dlb_distributed::{Engine, EngineOptions};
use dlb_solver::frank_wolfe::{solve_frank_wolfe, FwOptions};
use dlb_solver::{solve_bcd, solve_pgd, PgdOptions};

fn main() {
    let mut sink = JsonlSink::create("ablation_solver_comparison");
    let ms: Vec<usize> = if full_scale() {
        vec![50, 100, 200, 300]
    } else {
        vec![50, 100, 200]
    };
    println!("\n== Ablation — distributed algorithm vs standard solvers ==");
    println!(
        "{:<10} {:<26} {:>14} {:>12} {:>10}",
        "m", "method", "objective", "time (ms)", "quality"
    );
    for &m in &ms {
        let instance = sample_instance(
            m,
            NetworkKind::PlanetLab,
            LoadDistribution::Exponential,
            50.0,
            SpeedDistribution::paper_uniform(),
            3,
        );
        let mut rows: Vec<(String, f64, f64)> = Vec::new();

        let t = Instant::now();
        let mut engine = Engine::new(
            instance.clone(),
            EngineOptions {
                seed: 1,
                parallel: false,
                selection: Some(PartnerSelection::Exact),
                ..Default::default()
            },
        );
        engine.run_to_convergence(1e-12, 2, 100);
        rows.push((
            "distributed (exact)".into(),
            total_cost(&instance, engine.assignment()),
            t.elapsed().as_secs_f64() * 1e3,
        ));

        let t = Instant::now();
        let mut engine = Engine::new(
            instance.clone(),
            EngineOptions {
                seed: 1,
                parallel: false,
                selection: Some(PartnerSelection::Pruned { top_k: 8 }),
                ..Default::default()
            },
        );
        engine.run_to_convergence(1e-12, 2, 100);
        rows.push((
            "distributed (pruned k=8)".into(),
            total_cost(&instance, engine.assignment()),
            t.elapsed().as_secs_f64() * 1e3,
        ));

        let t = Instant::now();
        let (_, bcd) = solve_bcd(&instance, 5_000, 1e-9);
        rows.push((
            "coordinate descent".into(),
            bcd.objective,
            t.elapsed().as_secs_f64() * 1e3,
        ));

        let t = Instant::now();
        let (_, pgd) = solve_pgd(
            &instance,
            &PgdOptions {
                max_iters: 20_000,
                tol: 1e-7,
                ..Default::default()
            },
        );
        rows.push((
            "projected gradient".into(),
            pgd.objective,
            t.elapsed().as_secs_f64() * 1e3,
        ));

        let t = Instant::now();
        let (_, fw) = solve_frank_wolfe(
            &instance,
            &FwOptions {
                max_iters: 5_000,
                tol: 1e-7,
            },
        );
        rows.push((
            "frank-wolfe (5k iters)".into(),
            fw.objective,
            t.elapsed().as_secs_f64() * 1e3,
        ));

        let best = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        for (name, obj, ms_t) in rows {
            sink.record(
                &Record::new("table_row")
                    .str("table", "ablation_solver_comparison")
                    .int("m", m as i64)
                    .str("method", &name)
                    .num("objective", obj)
                    .num("time_ms", ms_t)
                    .num("quality", obj / best),
            );
            println!(
                "{:<10} {:<26} {:>14.1} {:>12.1} {:>10.5}",
                m,
                name,
                obj,
                ms_t,
                obj / best
            );
        }
        println!();
    }
    println!("quality = objective / best objective (1.0 is best)");
    println!("paper: the distributed algorithm outperforms standard solvers even on one CPU");
}
