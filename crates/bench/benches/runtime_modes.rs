//! Runtime scaling: thread-per-node vs the event-driven executor.
//!
//! The thread runtime spawns `m` OS threads and an O(m²) channel mesh;
//! the event executor hosts the same protocol machines on a
//! virtual-time heap in one process. This harness runs both on the
//! same scenarios and records network size × runtime mode × partner
//! selection → **wall-clock seconds per protocol round** (plus, for
//! the executor, the *simulated* protocol milliseconds per round under
//! the sampled link delays — the quantity the paper's deployment would
//! observe) to `BENCH_runtime.json` at the workspace root, one JSON
//! record per measurement, so the perf trajectory of both runtimes is
//! tracked across PRs (`dlb report BENCH_runtime.json` renders it).
//!
//! The thread grid stops at a few hundred nodes — beyond that the
//! thread mode is the pathology this comparison documents, not a
//! usable baseline — while the executor grid climbs to the Figure-2
//! sizes (`DLB_BENCH_SCALE=full` adds m = 2000 and m = 5000). A third
//! grid measures `select=topk:32`: the delay-aware candidate index
//! drops the per-round partner scan from O(m²) to O(m·K), which is
//! what carries the executor from m = 5000 to m = 100 000. The
//! 100 000-node rows use `net=homog` because PlanetLab-like sampling
//! runs an O(m³) metric closure — the *protocol* cost being measured
//! is topology-blind.
//!
//! A final parity pair runs both selection policies to *quiescence*
//! (volume threshold 1 request — the realistic stop, not the 1e-9
//! microbenchmark cutoff) on one shared instance and records
//! `drift_vs_exact`: the relative final-ΣC gap, the quality cost of
//! the pruned scan (acceptance bar: ≤ 1 %). Truncated fixed-round
//! snapshots are *not* comparable across policies — topk trades a
//! slightly different improvement order early on — so drift is only
//! meaningful, and only recorded, at quiescence.
//!
//! Run: `cargo bench -p dlb-bench --bench runtime_modes`

use dlb_bench::full_scale;
use dlb_bench::results::{JsonlSink, Record};
use dlb_core::workload::LoadDistribution;
use dlb_scenario::{AlgoSpec, NetSpec, RuntimeSpec, ScenarioSpec, SelectSpec};

/// The Figure-2 workload shape: the peak distribution (total load
/// 100 000 on one server) bounded to a fixed round budget so
/// secs/round is comparable across sizes.
fn spec(m: usize, runtime: RuntimeSpec, net: NetSpec, select: SelectSpec) -> ScenarioSpec {
    const ROUNDS: usize = 12;
    ScenarioSpec::new()
        .algo(AlgoSpec::Protocol)
        .runtime(runtime)
        .net(net)
        .servers(m)
        .load(LoadDistribution::Peak)
        .avg_load(100_000.0 / m as f64)
        .seed(7)
        .select(select)
        .termination(1e-9, ROUNDS + 1, ROUNDS)
}

fn main() {
    let full = full_scale();
    let scale = if full { "full" } else { "fast" };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    let mut sink = JsonlSink::create_at(out_path).expect("BENCH_runtime.json must be writable");

    println!("== runtime scaling — threads vs event executor (secs / round) ==");
    println!(
        "{:<8} {:<10} {:<9} {:>8} {:>14} {:>16} {:>14}",
        "m", "runtime", "select", "rounds", "secs/round", "sim ms/round", "final ΣC"
    );
    // The thread grid is scale-independent: past a few hundred nodes
    // the m OS threads are the documented pathology, not a baseline.
    let thread_sizes: Vec<usize> = vec![100, 300];
    let event_sizes: Vec<usize> = if full {
        vec![100, 300, 1000, 2000, 5000]
    } else {
        vec![100, 300, 1000]
    };
    // Top-k takes over where the exact scan stops scaling: one row on
    // the largest exact grid point (for the drift column), then the
    // sizes only the candidate index reaches.
    let topk_sizes: Vec<(usize, NetSpec)> = if full {
        vec![
            (5000, NetSpec::Pl),
            (20000, NetSpec::Homog),
            (50000, NetSpec::Homog),
            (100000, NetSpec::Homog),
        ]
    } else {
        vec![(1000, NetSpec::Pl), (20000, NetSpec::Homog)]
    };
    let grid = thread_sizes
        .iter()
        .map(|&m| (m, RuntimeSpec::Threads, NetSpec::Pl, SelectSpec::Exact))
        .chain(
            event_sizes
                .iter()
                .map(|&m| (m, RuntimeSpec::Events, NetSpec::Pl, SelectSpec::Exact)),
        )
        .chain(
            topk_sizes
                .iter()
                .map(|&(m, net)| (m, RuntimeSpec::Events, net, SelectSpec::TopK(32))),
        );
    for (m, runtime, net, select) in grid {
        let spec = spec(m, runtime, net, select);
        // Sample outside the timer: net=pl instance construction runs
        // an O(m³) metric closure that would otherwise dominate (and
        // corrupt) the per-round figure at the large sizes.
        let instance = spec.build_instance();
        let start = std::time::Instant::now();
        let run = spec.run_on(instance);
        let wall = start.elapsed().as_secs_f64();
        let secs_per_round = wall / run.iterations.max(1) as f64;
        // For the executor, `wall_secs` carries simulated protocol
        // seconds (deterministic per seed); the thread runtime has no
        // virtual clock.
        let sim_ms_per_round = match runtime {
            RuntimeSpec::Events => run.wall_secs * 1000.0 / run.iterations.max(1) as f64,
            RuntimeSpec::Threads => f64::NAN,
        };
        println!(
            "{:<8} {:<10} {:<9} {:>8} {:>14.4} {:>16.2} {:>14.4e}",
            m,
            runtime.label(),
            select,
            run.iterations,
            secs_per_round,
            sim_ms_per_round,
            run.final_cost()
        );
        sink.record(
            &Record::new("runtime_scaling")
                .str("scenario", &run.scenario)
                .int("m", m as i64)
                .str("runtime", runtime.label())
                .str("select", &select.to_string())
                .int("rounds", run.iterations as i64)
                .num("secs_per_round", secs_per_round)
                .num("sim_ms_per_round", sim_ms_per_round)
                .num("final_cost", run.final_cost())
                .str("scale", scale)
                .int("host_cores", cores as i64),
        );
    }

    // Exact-vs-topk parity at quiescence: both policies balance the
    // same sampled instance until the moved volume stays under one
    // request for 5 rounds. This is the bench-scale counterpart of the
    // `select_policy.rs` integration suite (m = 80, three topologies).
    println!("\n== selection parity at quiescence (volume < 1 for 5 rounds) ==");
    let base =
        spec(1000, RuntimeSpec::Events, NetSpec::Pl, SelectSpec::Exact).termination(1.0, 5, 6000);
    let instance = base.build_instance();
    let exact = base.run_on(instance.clone());
    let topk = base.select(SelectSpec::TopK(32)).run_on(instance);
    let drift = (topk.final_cost() - exact.final_cost()).abs() / exact.final_cost();
    for (run, policy, drift_vs_exact) in [
        (&exact, SelectSpec::Exact, f64::NAN),
        (&topk, SelectSpec::TopK(32), drift),
    ] {
        println!(
            "{:<8} {:<10} {:<9} {:>8} {:>14.4e}   drift {:.5}  converged {}",
            run.m,
            "events",
            policy,
            run.iterations,
            run.final_cost(),
            drift_vs_exact,
            run.converged
        );
        sink.record(
            &Record::new("runtime_parity")
                .str("scenario", &run.scenario)
                .int("m", run.m as i64)
                .str("select", &policy.to_string())
                .int("rounds", run.iterations as i64)
                .num("final_cost", run.final_cost())
                .num("drift_vs_exact", drift_vs_exact)
                .str("scale", scale)
                .int("host_cores", cores as i64),
        );
    }
    assert!(
        drift <= 0.01,
        "topk quality bar: final-ΣC drift {drift} exceeds 1%"
    );
    println!("\nscaling record written to BENCH_runtime.json");
}
