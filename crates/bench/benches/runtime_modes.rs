//! Runtime scaling: thread-per-node vs the event-driven executor.
//!
//! The thread runtime spawns `m` OS threads and an O(m²) channel mesh;
//! the event executor hosts the same protocol machines on a
//! virtual-time heap in one process. This harness runs both on the
//! same scenarios and records network size × runtime mode →
//! **wall-clock seconds per protocol round** (plus, for the executor,
//! the *simulated* protocol milliseconds per round under the sampled
//! link delays — the quantity the paper's deployment would observe) to
//! `BENCH_runtime.json` at the workspace root, one JSON record per
//! measurement, so the perf trajectory of both runtimes is tracked
//! across PRs (`dlb report BENCH_runtime.json` renders it).
//!
//! The thread grid stops at a few hundred nodes — beyond that the
//! thread mode is the pathology this comparison documents, not a
//! usable baseline — while the executor grid climbs to the Figure-2
//! sizes (`DLB_BENCH_SCALE=full` adds m = 2000 and m = 5000).
//!
//! Run: `cargo bench -p dlb-bench --bench runtime_modes`

use dlb_bench::full_scale;
use dlb_bench::results::{JsonlSink, Record};
use dlb_core::workload::LoadDistribution;
use dlb_scenario::{AlgoSpec, NetSpec, RuntimeSpec, ScenarioSpec};

/// The Figure-2 workload shape: the peak distribution (total load
/// 100 000 on one server) over a PlanetLab-like network, bounded to a
/// fixed round budget so secs/round is comparable across sizes.
fn spec(m: usize, runtime: RuntimeSpec, rounds: usize) -> ScenarioSpec {
    ScenarioSpec::new()
        .algo(AlgoSpec::Protocol)
        .runtime(runtime)
        .net(NetSpec::Pl)
        .servers(m)
        .load(LoadDistribution::Peak)
        .avg_load(100_000.0 / m as f64)
        .seed(7)
        .termination(1e-9, rounds + 1, rounds)
}

fn main() {
    let full = full_scale();
    let scale = if full { "full" } else { "fast" };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    let mut sink = JsonlSink::create_at(out_path).expect("BENCH_runtime.json must be writable");

    println!("== runtime scaling — threads vs event executor (secs / round) ==");
    println!(
        "{:<8} {:<10} {:>8} {:>14} {:>16} {:>14}",
        "m", "runtime", "rounds", "secs/round", "sim ms/round", "final ΣC"
    );
    let rounds = 12usize;
    // The thread grid is scale-independent: past a few hundred nodes
    // the m OS threads are the documented pathology, not a baseline.
    let thread_sizes: Vec<usize> = vec![100, 300];
    let event_sizes: Vec<usize> = if full {
        vec![100, 300, 1000, 2000, 5000]
    } else {
        vec![100, 300, 1000]
    };
    let grid = thread_sizes
        .iter()
        .map(|&m| (m, RuntimeSpec::Threads))
        .chain(event_sizes.iter().map(|&m| (m, RuntimeSpec::Events)));
    for (m, runtime) in grid {
        let spec = spec(m, runtime, rounds);
        // Sample outside the timer: net=pl instance construction runs
        // an O(m³) metric closure that would otherwise dominate (and
        // corrupt) the per-round figure at the large sizes.
        let instance = spec.build_instance();
        let start = std::time::Instant::now();
        let run = spec.run_on(instance);
        let wall = start.elapsed().as_secs_f64();
        let secs_per_round = wall / run.iterations.max(1) as f64;
        // For the executor, `wall_secs` carries simulated protocol
        // seconds (deterministic per seed); the thread runtime has no
        // virtual clock.
        let sim_ms_per_round = match runtime {
            RuntimeSpec::Events => run.wall_secs * 1000.0 / run.iterations.max(1) as f64,
            RuntimeSpec::Threads => f64::NAN,
        };
        println!(
            "{:<8} {:<10} {:>8} {:>14.4} {:>16.2} {:>14.4e}",
            m,
            runtime.label(),
            run.iterations,
            secs_per_round,
            sim_ms_per_round,
            run.final_cost()
        );
        sink.record(
            &Record::new("runtime_scaling")
                .str("scenario", &run.scenario)
                .int("m", m as i64)
                .str("runtime", runtime.label())
                .int("rounds", run.iterations as i64)
                .num("secs_per_round", secs_per_round)
                .num("sim_ms_per_round", sim_ms_per_round)
                .num("final_cost", run.final_cost())
                .str("scale", scale)
                .int("host_cores", cores as i64),
        );
    }
    println!("\nscaling record written to BENCH_runtime.json");
}
