//! Ablation: the message-passing deployment (`dlb-runtime`) vs the
//! shared-memory analytic engine.
//!
//! The protocol differs from the engine in two load-bearing ways: the
//! partner *choice* uses only locally available knowledge (gossiped
//! loads + own latency column — a real organization cannot evaluate
//! `impr(i,j)` without the partner's ledger), and all coordination
//! happens through wire frames with collisions and busy-rejections.
//! This harness measures what those differences cost: final `ΣC`
//! ratio, rounds, exchanges and lost proposals.
//!
//! Run: `cargo bench -p dlb-bench --bench ablation_runtime_protocol`

use dlb_bench::results::{JsonlSink, Record};
use dlb_bench::{print_header, sample_instance, NetworkKind};
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_distributed::{Engine, EngineOptions};
use dlb_runtime::{run_cluster, ClusterOptions};

fn main() {
    let mut sink = JsonlSink::create("ablation_runtime_protocol");
    print_header(
        "Ablation — message-passing protocol vs analytic engine",
        "workload",
    );
    println!(
        "{:<26} {:>10} {:>8} {:>10} {:>8} {:>8}",
        "", "ΣC ratio", "rounds", "exchanges", "lost", "moved"
    );
    let cases = [
        (
            "uniform/50 c=20",
            LoadDistribution::Uniform,
            50.0,
            NetworkKind::Homogeneous,
        ),
        (
            "exp/50 c=20",
            LoadDistribution::Exponential,
            50.0,
            NetworkKind::Homogeneous,
        ),
        (
            "peak c=20",
            LoadDistribution::Peak,
            100_000.0 / 24.0,
            NetworkKind::Homogeneous,
        ),
        (
            "uniform/50 PL",
            LoadDistribution::Uniform,
            50.0,
            NetworkKind::PlanetLab,
        ),
        (
            "exp/200 PL",
            LoadDistribution::Exponential,
            200.0,
            NetworkKind::PlanetLab,
        ),
    ];
    let m = 24;
    for (label, dist, avg, net) in cases {
        let instance = sample_instance(m, net, dist, avg, SpeedDistribution::paper_uniform(), 7);
        let mut engine = Engine::new(
            instance.clone(),
            EngineOptions {
                seed: 7,
                ..Default::default()
            },
        );
        let engine_cost = engine.run_to_convergence(1e-12, 3, 300).final_cost;
        let report = run_cluster(&instance, &ClusterOptions::certified(m));
        sink.record(
            &Record::new("table_row")
                .str("table", "ablation_runtime_protocol")
                .str("workload", label)
                .num("cost_ratio", report.final_cost / engine_cost)
                .int("rounds", report.rounds as i64)
                .int("exchanges", report.exchanges as i64)
                .int("lost_proposals", report.lost_proposals as i64)
                .num("moved", report.moved),
        );
        println!(
            "{label:<26} {:>10.4} {:>8} {:>10} {:>8} {:>8.0}",
            report.final_cost / engine_cost,
            report.rounds,
            report.exchanges,
            report.lost_proposals,
            report.moved
        );
    }
    println!("\nexpectation: ΣC ratio ≈ 1.00 (≤ 1.01) — local knowledge suffices;");
    println!("rounds exceed engine iterations (audit rotation certifies the fixpoint).");
}
