//! Self-describing JSON-lines results output.
//!
//! Replaces the old ad-hoc CSV sink (`csv.rs`): every experiment
//! harness appends one JSON object per measurement, so a single
//! streaming format serves all 13 benches and downstream tooling can
//! render the paper tables from it without per-file schemas.
//! Hand-rolled: the approved dependency set has no JSON crate, and the
//! needs (flat records of numbers, strings, and booleans) are trivial.
//!
//! Two sinks are provided:
//! * [`JsonlSink::create`] — the environment-driven sink harnesses use:
//!   writes `<DLB_RESULTS_DIR>/<name>.jsonl`, and is a silent no-op
//!   when the variable is unset (so benches never fail on read-only
//!   filesystems),
//! * [`JsonlSink::create_at`] — an explicit-path sink for committed
//!   artifacts such as the repo-root `BENCH_figure2.json` scaling
//!   record.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One flat JSON record under construction. Field order is preserved.
#[derive(Debug, Clone, Default)]
pub struct Record {
    fields: Vec<(String, String)>,
}

impl Record {
    /// Starts a record tagged with a `kind` discriminator field.
    pub fn new(kind: &str) -> Self {
        let mut r = Self::default();
        r.push_raw("kind", json_string(kind));
        r
    }

    fn push_raw(&mut self, key: &str, rendered: String) {
        self.fields.push((key.to_string(), rendered));
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.push_raw(key, json_string(value));
        self
    }

    /// Adds a numeric field (non-finite values render as `null`).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.push_raw(key, json_number(value));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: i64) -> Self {
        self.push_raw(key, value.to_string());
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.push_raw(key, value.to_string());
        self
    }

    /// Adds a JSON array of numbers (non-finite entries render as
    /// `null`).
    pub fn nums(mut self, key: &str, values: &[f64]) -> Self {
        let body: Vec<String> = values.iter().map(|&v| json_number(v)).collect();
        self.push_raw(key, format!("[{}]", body.join(",")));
        self
    }

    /// Flattens a runner's [`RunRecord`](dlb_scenario::RunRecord) —
    /// scenario text, summary costs, and the full cost trajectory —
    /// under the given `kind` tag. This is the one shape every CLI
    /// command and ported harness emits, so `dlb report` renders them
    /// all the same way.
    ///
    /// Record shape, v3: the `fault_*` and `detector_*` field groups
    /// are always present (zeroed on quiet runs). v1 omitted `fault_*`
    /// on fault-free records, which made downstream schemas dependent
    /// on the scenario's content; a stable shape lets `dlb report` and
    /// external consumers project columns without sniffing rows.
    /// v3 appends the `stream_*` group — but only on streamed runs
    /// (`arrivals=` scenarios): the group is new, so emitting it
    /// unconditionally would silently reshape every existing
    /// no-stream record (and break the CI byte-identity check against
    /// pre-stream output). Streamed scenarios are themselves new, so
    /// conditioning on `stream.is_quiet()` changes no record that
    /// could exist before v3. The `gossip_*` group follows the same
    /// rule: emitted only when the run's `gossip=event:...` control
    /// plane actually moved bytes. v4 adds the `obs_*` group under the
    /// same quiet-group rule: emitted only when the run's `trace=`
    /// mode actually observed events, so untraced records keep the v3
    /// shape byte for byte.
    pub fn from_run(kind: &str, run: &dlb_scenario::RunRecord) -> Self {
        let mut r = Record::new(kind)
            .str("scenario", &run.scenario)
            .str("algo", run.algo)
            .int("m", run.m as i64)
            .num("initial_cost", run.initial_cost())
            .num("final_cost", run.final_cost())
            .int("iterations", run.iterations as i64)
            .bool("converged", run.converged)
            .num("wall_secs", run.wall_secs)
            .int("fault_crashes", run.faults.crashes as i64)
            .int("fault_recoveries", run.faults.recoveries as i64)
            .int("fault_dropped_frames", run.faults.dropped_frames as i64)
            .int("fault_delayed_frames", run.faults.delayed_frames as i64)
            .num("fault_extra_delay_ms", run.faults.extra_delay_ms)
            .int("detector_suspicions", run.detector.suspicions as i64)
            .int(
                "detector_false_positives",
                run.detector.false_positives as i64,
            )
            .num("detector_latency_ms", run.detector.detection_latency_ms)
            .num("detector_rejoin_ms", run.detector.rejoin_ms)
            .int(
                "detector_aborted_exchanges",
                run.detector.aborted_exchanges as i64,
            );
        if !run.stream.is_quiet() {
            r = r
                .int("stream_served", run.stream.served as i64)
                .int("stream_dropped", run.stream.dropped as i64)
                .num("stream_p50_ms", run.stream.p50_ms)
                .num("stream_p99_ms", run.stream.p99_ms)
                .num("stream_imbalance_ms", run.stream.imbalance_ms);
        }
        if !run.gossip.is_quiet() {
            r = r
                .int("gossip_frames", run.gossip.frames as i64)
                .int("gossip_bytes", run.gossip.bytes as i64)
                .int("gossip_exchanges", run.gossip.exchanges as i64);
        }
        if !run.obs.is_quiet() {
            r = r
                .int("obs_events", run.obs.events as i64)
                .int("obs_frames", run.obs.frames as i64)
                .int("obs_dropped", run.obs.dropped as i64)
                .int("obs_held", run.obs.held as i64)
                .num("obs_frame_p50_ms", run.obs.frame_p50_ms)
                .num("obs_frame_p99_ms", run.obs.frame_p99_ms);
        }
        r.nums("history", &run.history)
    }

    /// Renders the record as one JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_string(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        // `{v}` alone prints integers without a dot, which is still
        // valid JSON; keep it terse.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON-lines sink for one experiment.
#[derive(Debug)]
pub struct JsonlSink {
    file: Option<fs::File>,
}

impl JsonlSink {
    /// Opens (truncates) `<DLB_RESULTS_DIR>/<name>.jsonl`. When the
    /// variable is unset the sink is a no-op, mirroring the old CSV
    /// sink's best-effort contract.
    pub fn create(name: &str) -> Self {
        let file = std::env::var("DLB_RESULTS_DIR").ok().and_then(|dir| {
            let mut path = PathBuf::from(dir);
            if fs::create_dir_all(&path).is_err() {
                return None;
            }
            path.push(format!("{name}.jsonl"));
            fs::File::create(path).ok()
        });
        Self { file }
    }

    /// Opens (truncates) an explicit path; errors propagate so callers
    /// producing committed artifacts notice a broken destination.
    pub fn create_at(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            file: Some(fs::File::create(path)?),
        })
    }

    /// Appends one record as a JSON line (best-effort for env sinks).
    ///
    /// Every persisted record is stamped with the machine context —
    /// `host_cores` (the machine's available parallelism) and
    /// `dlb_threads` (the worker-pool width this process resolved from
    /// `DLB_THREADS`). Virtual-time results are bit-identical across
    /// thread counts, but wall-clock columns are not; the stamp lets
    /// two result files explain their timing differences instead of
    /// looking mysteriously divergent. Stamping happens here, at write
    /// time, so [`Record`] values under construction stay pure data.
    pub fn record(&mut self, record: &Record) {
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{}", Self::stamped(record).to_json());
        }
    }

    /// The record plus the machine-context fields every persisted line
    /// carries.
    fn stamped(record: &Record) -> Record {
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        record
            .clone()
            .int("host_cores", host_cores as i64)
            .int("dlb_threads", dlb_par::num_threads() as i64)
    }

    /// Whether records are actually being persisted.
    pub fn is_active(&self) -> bool {
        self.file.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_renders_flat_json() {
        let r = Record::new("scaling")
            .int("m", 2000)
            .str("mode", "batched")
            .num("secs_per_iter", 0.25)
            .num("bad", f64::NAN)
            .bool("parallel", true);
        assert_eq!(
            r.to_json(),
            r#"{"kind":"scaling","m":2000,"mode":"batched","secs_per_iter":0.25,"bad":null,"parallel":true}"#
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    /// One sequential test: the env-driven sink depends on a
    /// process-wide variable, so the no-op and active cases must not
    /// run as separate (parallel) tests.
    #[test]
    fn sink_honours_results_dir_env() {
        std::env::remove_var("DLB_RESULTS_DIR");
        let mut sink = JsonlSink::create("unit_noop");
        assert!(!sink.is_active());
        sink.record(&Record::new("x")); // must not panic

        let dir = std::env::temp_dir().join("dlb_jsonl_test");
        std::env::set_var("DLB_RESULTS_DIR", &dir);
        let mut sink = JsonlSink::create("unit_rows");
        assert!(sink.is_active());
        sink.record(&Record::new("row").int("i", 1));
        sink.record(&Record::new("row").int("i", 2).str("note", "a,b"));
        drop(sink);
        let stamp = format!(
            ",\"host_cores\":{},\"dlb_threads\":{}",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            dlb_par::num_threads()
        );
        let content = fs::read_to_string(dir.join("unit_rows.jsonl")).unwrap();
        assert_eq!(
            content,
            format!(
                "{{\"kind\":\"row\",\"i\":1{stamp}}}\n\
                 {{\"kind\":\"row\",\"i\":2,\"note\":\"a,b\"{stamp}}}\n"
            )
        );
        std::env::remove_var("DLB_RESULTS_DIR");
    }

    #[test]
    fn create_at_writes_explicit_path() {
        let path = std::env::temp_dir().join("dlb_jsonl_explicit.json");
        let mut sink = JsonlSink::create_at(&path).unwrap();
        sink.record(&Record::new("scaling").int("m", 500));
        drop(sink);
        let content = fs::read_to_string(&path).unwrap();
        assert!(
            content.starts_with("{\"kind\":\"scaling\",\"m\":500,\"host_cores\":"),
            "{content}"
        );
        assert!(content.contains("\"dlb_threads\":"), "{content}");
        let _ = fs::remove_file(path);
    }

    /// The machine-context stamp lands on every persisted line and
    /// nowhere else: `to_json` on a bare record stays stamp-free, so
    /// record *construction* is reproducible and only persistence adds
    /// the per-machine fields.
    #[test]
    fn to_json_is_unstamped() {
        let json = Record::new("row").int("i", 1).to_json();
        assert!(!json.contains("host_cores"), "{json}");
        assert!(!json.contains("dlb_threads"), "{json}");
    }
}
