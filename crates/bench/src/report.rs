//! Render paper-style tables from JSON-lines result files.
//!
//! Every harness and CLI command writes flat JSON records through
//! [`crate::results::JsonlSink`]; this module is the read side: a
//! dependency-free parser for those lines and a renderer that groups
//! records by their `kind` field and prints one aligned table per
//! group — the `dlb report` subcommand. The parser accepts any flat
//! JSON object (plus arrays of numbers for cost trajectories), so it
//! renders both freshly written run records and committed artifacts
//! like the repo-root `BENCH_figure2.json`.

use std::fmt;

/// One parsed JSON value. Arrays are kept as values so trajectories
/// survive parsing; nested objects are not part of the sink's format
/// and are rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array (the sink only writes arrays of numbers/nulls).
    Arr(Vec<Value>),
}

impl Value {
    fn is_textual(&self) -> bool {
        matches!(self, Value::Str(_))
    }
}

impl fmt::Display for Value {
    /// Table-cell rendering: numbers compact, arrays summarized.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Num(v) => write!(f, "{}", fmt_num(*v)),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "-"),
            Value::Arr(xs) => write!(f, "[{} pts]", xs.len()),
        }
    }
}

/// Formats a number for a table cell: integers plain, extreme
/// magnitudes in scientific notation, everything else to 4 decimals.
fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.4e}")
    } else {
        format!("{v:.4}")
    }
}

/// One record: key/value pairs in file order.
pub type Row = Vec<(String, Value)>;

/// Parses a JSON-lines document (one flat object per non-empty line).
pub fn parse_jsonl(text: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        rows.push(parse_object(line).map_err(|e| format!("line {}: {e}", n + 1))?);
    }
    Ok(rows)
}

fn parse_object(line: &str) -> Result<Row, String> {
    let mut sc = Scanner {
        s: line.as_bytes(),
        pos: 0,
    };
    sc.skip_ws();
    sc.expect(b'{')?;
    let mut row = Row::new();
    sc.skip_ws();
    if sc.peek() == Some(b'}') {
        sc.pos += 1;
    } else {
        loop {
            sc.skip_ws();
            let key = sc.parse_string()?;
            sc.skip_ws();
            sc.expect(b':')?;
            sc.skip_ws();
            let value = sc.parse_value()?;
            row.push((key, value));
            sc.skip_ws();
            match sc.peek() {
                Some(b',') => sc.pos += 1,
                Some(b'}') => {
                    sc.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", sc.pos)),
            }
        }
    }
    sc.skip_ws();
    if sc.pos != sc.s.len() {
        return Err(format!("trailing content at byte {}", sc.pos));
    }
    Ok(row)
}

struct Scanner<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Scanner<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.s[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("unexpected end of line")? {
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            b'{' => Err(format!("nested object at byte {}", self.pos)),
            _ => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.s[start..self.pos]).unwrap_or("");
                text.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| format!("bad number '{text}' at byte {start}"))
            }
        }
    }
}

/// Renders the report for one JSON-lines document: records are grouped
/// by their `kind` field (in first-seen order) and each group becomes
/// one aligned table whose columns are the union of the group's keys
/// in first-seen order. Textual columns are left-aligned, numeric ones
/// right-aligned.
pub fn render_report(text: &str) -> Result<String, String> {
    let rows = parse_jsonl(text)?;
    if rows.is_empty() {
        return Err("no records found".into());
    }
    let mut groups: Vec<(String, Vec<&Row>)> = Vec::new();
    for row in &rows {
        let kind = row
            .iter()
            .find(|(k, _)| k == "kind")
            .map(|(_, v)| v.to_string())
            .unwrap_or_else(|| "record".to_string());
        match groups.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, members)) => members.push(row),
            None => groups.push((kind, vec![row])),
        }
    }
    let mut out = String::new();
    for (kind, members) in &groups {
        // Column order is the order-respecting union of the group's
        // keys: walking a record, a key already known moves the
        // cursor to just past it; an unknown key is *inserted at the
        // cursor*, not appended. So when a later record carries a
        // mid-row field group the first record lacked (a traced run's
        // `obs_*` columns before its trailing `history`), those
        // columns land where the record put them — plain appending
        // parked every late-appearing group behind whichever trailing
        // column the first record happened to end with.
        let mut cols: Vec<&str> = Vec::new();
        for row in members {
            let mut cursor = 0;
            for (k, _) in row.iter() {
                if k == "kind" {
                    continue;
                }
                match cols.iter().position(|c| *c == k.as_str()) {
                    Some(p) => cursor = p + 1,
                    None => {
                        cols.insert(cursor, k);
                        cursor += 1;
                    }
                }
            }
        }
        let cell = |row: &Row, col: &str| -> String {
            row.iter()
                .find(|(k, _)| k.as_str() == col)
                .map(|(_, v)| v.to_string())
                .unwrap_or_else(|| "-".to_string())
        };
        let textual: Vec<bool> = cols
            .iter()
            .map(|col| {
                members.iter().any(|row| {
                    row.iter()
                        .any(|(k, v)| k.as_str() == *col && v.is_textual())
                })
            })
            .collect();
        let widths: Vec<usize> = cols
            .iter()
            .map(|col| {
                members
                    .iter()
                    .map(|row| cell(row, col).len())
                    .chain(std::iter::once(col.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let plural = if members.len() == 1 { "" } else { "s" };
        out.push_str(&format!(
            "== {kind} ({} record{plural}) ==\n",
            members.len()
        ));
        let mut header = String::new();
        for (c, col) in cols.iter().enumerate() {
            if c > 0 {
                header.push_str("  ");
            }
            if textual[c] {
                header.push_str(&format!("{col:<w$}", w = widths[c]));
            } else {
                header.push_str(&format!("{col:>w$}", w = widths[c]));
            }
        }
        out.push_str(header.trim_end());
        out.push('\n');
        for row in members {
            let mut line = String::new();
            for (c, col) in cols.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                let v = cell(row, col);
                if textual[c] {
                    line.push_str(&format!("{v:<w$}", w = widths[c]));
                } else {
                    line.push_str(&format!("{v:>w$}", w = widths[c]));
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out.push('\n');
    }
    out.pop();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::Record;

    #[test]
    fn parses_what_the_sink_writes() {
        let line = Record::new("run")
            .str("scenario", "algo=batched net=pl m=500")
            .num("final_cost", 12277790.44382619)
            .int("iterations", 20)
            .bool("converged", true)
            .num("bad", f64::NAN)
            .nums("history", &[3.0, 2.0, 1.5])
            .to_json();
        let rows = parse_jsonl(&line).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row[0], ("kind".into(), Value::Str("run".into())));
        assert_eq!(
            row[1],
            (
                "scenario".into(),
                Value::Str("algo=batched net=pl m=500".into())
            )
        );
        assert_eq!(row[2], ("final_cost".into(), Value::Num(12277790.44382619)));
        assert_eq!(row[3], ("iterations".into(), Value::Num(20.0)));
        assert_eq!(row[4], ("converged".into(), Value::Bool(true)));
        assert_eq!(row[5], ("bad".into(), Value::Null));
        assert_eq!(
            row[6],
            (
                "history".into(),
                Value::Arr(vec![Value::Num(3.0), Value::Num(2.0), Value::Num(1.5)])
            )
        );
    }

    #[test]
    fn parses_escapes_and_empty_objects() {
        let rows = parse_jsonl("{\"a\":\"x\\n\\\"y\\\"\",\"b\":\"\\u0041\"}\n\n{}").unwrap();
        assert_eq!(rows[0][0].1, Value::Str("x\n\"y\"".into()));
        assert_eq!(rows[0][1].1, Value::Str("A".into()));
        assert!(rows[1].is_empty());
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "not json",
            "{\"a\":}",
            "{\"a\":1",
            "{\"a\":1} trailing",
            "{\"a\":{\"nested\":1}}",
            "{\"a\":zz}",
        ] {
            assert!(parse_jsonl(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn renders_grouped_aligned_tables() {
        let text = "\
{\"kind\":\"scaling\",\"m\":1000,\"mode\":\"sequential\",\"secs_per_iter\":0.03305}\n\
{\"kind\":\"scaling\",\"m\":2000,\"mode\":\"batched\",\"secs_per_iter\":0.141}\n\
{\"kind\":\"series\",\"m\":500,\"history\":[1.0,0.5]}\n";
        let report = render_report(text).unwrap();
        assert!(report.contains("== scaling (2 records) =="), "{report}");
        assert!(report.contains("== series (1 record) =="), "{report}");
        assert!(report.contains("sequential"), "{report}");
        assert!(report.contains("[2 pts]"), "{report}");
        // Numeric columns are right-aligned to a shared width: the two
        // m cells end at the same column as the m header.
        let lines: Vec<&str> = report.lines().collect();
        let header = lines[1];
        let m_end = header.find('m').unwrap() + 1;
        assert_eq!(&lines[2][m_end - 4..m_end], "1000");
        assert_eq!(&lines[3][m_end - 4..m_end], "2000");
    }

    /// Run records (shape v3) always carry the fault and detector
    /// field groups, and the report renders them as columns — the
    /// operator-facing view of what the failure detector did.
    #[test]
    fn renders_fault_and_detector_columns_for_run_records() {
        let run = dlb_scenario::RunRecord {
            scenario: "algo=protocol runtime=events m=8 detect=adaptive".into(),
            algo: "protocol",
            m: 8,
            history: vec![10.0, 4.0],
            iterations: 7,
            converged: true,
            wall_secs: 1.25,
            faults: dlb_faults::FaultSummary {
                crashes: 2,
                dropped_frames: 5,
                ..Default::default()
            },
            detector: dlb_runtime::DetectorSummary {
                suspicions: 3,
                false_positives: 1,
                detection_latency_ms: 212.5,
                rejoin_ms: 90.0,
                aborted_exchanges: 2,
            },
            stream: Default::default(),
            gossip: Default::default(),
            obs: Default::default(),
        };
        let line = Record::from_run("run", &run).to_json();
        let report = render_report(&line).unwrap();
        for col in [
            "fault_crashes",
            "fault_dropped_frames",
            "detector_suspicions",
            "detector_false_positives",
            "detector_latency_ms",
            "detector_rejoin_ms",
            "detector_aborted_exchanges",
        ] {
            assert!(report.contains(col), "missing column {col}:\n{report}");
        }
        assert!(report.contains("212.5"), "{report}");
        // Quiet runs keep the same shape, zero-filled (v2 contract).
        let quiet = dlb_scenario::RunRecord {
            faults: Default::default(),
            detector: Default::default(),
            ..run
        };
        let json = Record::from_run("run", &quiet).to_json();
        assert!(json.contains("\"fault_crashes\":0"), "{json}");
        assert!(json.contains("\"detector_suspicions\":0"), "{json}");
    }

    /// Streamed run records (shape v3) append the `stream_*` group and
    /// the report renders its columns; unstreamed records omit the
    /// group entirely, keeping pre-v3 output byte-identical.
    #[test]
    fn renders_stream_columns_only_for_streamed_runs() {
        let run = dlb_scenario::RunRecord {
            scenario: "algo=protocol runtime=events m=8 arrivals=poisson:200 duration=1000".into(),
            algo: "protocol",
            m: 8,
            history: vec![10.0, 4.0],
            iterations: 9,
            converged: true,
            wall_secs: 1.1,
            faults: Default::default(),
            detector: Default::default(),
            stream: dlb_runtime::StreamSummary {
                served: 180,
                dropped: 20,
                p50_ms: 31.5,
                p99_ms: 140.25,
                imbalance_ms: 415.0,
            },
            gossip: Default::default(),
            obs: Default::default(),
        };
        let line = Record::from_run("run", &run).to_json();
        let report = render_report(&line).unwrap();
        for col in [
            "stream_served",
            "stream_dropped",
            "stream_p50_ms",
            "stream_p99_ms",
            "stream_imbalance_ms",
        ] {
            assert!(report.contains(col), "missing column {col}:\n{report}");
        }
        assert!(report.contains("140.25"), "{report}");
        // An unstreamed record has no stream_* keys at all.
        let quiet = dlb_scenario::RunRecord {
            stream: Default::default(),
            ..run
        };
        let json = Record::from_run("run", &quiet).to_json();
        assert!(!json.contains("stream_"), "{json}");
        // Mixed files still render: the report fills the missing
        // stream cells with '-'.
        let mixed = format!("{line}\n{json}\n");
        let report = render_report(&mixed).unwrap();
        assert!(report.contains("stream_served"), "{report}");
        assert!(report.contains('-'), "{report}");
    }

    /// Gossip-fed run records (shape v3) append the `gossip_*` group
    /// and the report renders its columns; runs on the emulated
    /// snapshot omit the group entirely, keeping earlier output
    /// byte-identical.
    #[test]
    fn renders_gossip_columns_only_for_gossip_fed_runs() {
        let run = dlb_scenario::RunRecord {
            scenario: "algo=batched net=homog m=30 gossip=event:100ms".into(),
            algo: "batched",
            m: 30,
            history: vec![10.0, 4.0],
            iterations: 12,
            converged: true,
            wall_secs: 0.8,
            faults: Default::default(),
            detector: Default::default(),
            stream: Default::default(),
            gossip: dlb_scenario::GossipTraffic {
                frames: 1500,
                bytes: 937_500,
                exchanges: 750,
                delta_entries: 64,
                full_entries: 4800,
            },
            obs: Default::default(),
        };
        let line = Record::from_run("run", &run).to_json();
        let report = render_report(&line).unwrap();
        for col in ["gossip_frames", "gossip_bytes", "gossip_exchanges"] {
            assert!(report.contains(col), "missing column {col}:\n{report}");
        }
        assert!(report.contains("937500"), "{report}");
        // A quiet (emulated/fresh) record has no gossip_* keys at all.
        let quiet = dlb_scenario::RunRecord {
            gossip: Default::default(),
            ..run
        };
        let json = Record::from_run("run", &quiet).to_json();
        assert!(!json.contains("gossip_"), "{json}");
        // Mixed files still render: the report fills the missing
        // gossip cells with '-'.
        let mixed = format!("{line}\n{json}\n");
        let report = render_report(&mixed).unwrap();
        assert!(report.contains("gossip_bytes"), "{report}");
        assert!(report.contains('-'), "{report}");
    }

    /// Traced run records append the `obs_*` group; untraced records
    /// omit it (quiet-group rule), and mixed files render with '-'
    /// fills.
    #[test]
    fn renders_obs_columns_only_for_traced_runs() {
        let run = dlb_scenario::RunRecord {
            scenario: "algo=protocol runtime=events m=8 trace=summary".into(),
            algo: "protocol",
            m: 8,
            history: vec![10.0, 4.0],
            iterations: 5,
            converged: true,
            wall_secs: 0.4,
            faults: Default::default(),
            detector: Default::default(),
            stream: Default::default(),
            gossip: Default::default(),
            obs: dlb_obs::ObsSummary {
                events: 420,
                frames: 310,
                dropped: 7,
                held: 12,
                frame_p50_ms: 18.5,
                frame_p99_ms: 96.25,
            },
        };
        let line = Record::from_run("run", &run).to_json();
        let report = render_report(&line).unwrap();
        for col in [
            "obs_events",
            "obs_frames",
            "obs_dropped",
            "obs_held",
            "obs_frame_p50_ms",
            "obs_frame_p99_ms",
        ] {
            assert!(report.contains(col), "missing column {col}:\n{report}");
        }
        let quiet = dlb_scenario::RunRecord {
            obs: Default::default(),
            ..run
        };
        let json = Record::from_run("run", &quiet).to_json();
        assert!(!json.contains("obs_"), "{json}");
    }

    /// The column union respects each record's own key order: when a
    /// later record introduces a field group *before* its trailing
    /// `history` column, the new columns are inserted there — not
    /// appended after `history` (the pre-v4 behavior, which parked
    /// every late-appearing group behind the first record's last
    /// column).
    #[test]
    fn column_union_respects_each_records_key_order() {
        let text = "\
{\"kind\":\"run\",\"m\":8,\"final\":4.0,\"history\":[1.0]}\n\
{\"kind\":\"run\",\"m\":16,\"final\":3.0,\"obs_events\":42,\"history\":[2.0]}\n";
        let report = render_report(text).unwrap();
        let header = report.lines().nth(1).unwrap();
        let obs = header.find("obs_events").expect("obs column present");
        let history = header.find("history").expect("history column present");
        assert!(
            obs < history,
            "obs_events must precede history in: {header}"
        );
    }

    #[test]
    fn number_formatting_is_compact() {
        assert_eq!(fmt_num(2000.0), "2000");
        assert_eq!(fmt_num(0.03305312366666666), "0.0331");
        assert_eq!(fmt_num(2334915899.196365), "2.3349e9");
        assert_eq!(fmt_num(0.000012), "1.2000e-5");
    }

    #[test]
    fn renders_the_committed_figure2_artifact() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_figure2.json"
        ))
        .expect("committed artifact present");
        let report = render_report(&text).unwrap();
        assert!(report.contains("== figure2_series"), "{report}");
        assert!(report.contains("== scaling"), "{report}");
        assert!(report.contains("secs_per_iter"), "{report}");
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(render_report("").is_err());
        assert!(render_report("\n\n").is_err());
    }
}
