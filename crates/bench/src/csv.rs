//! Minimal CSV writing for experiment outputs.
//!
//! The harnesses print paper-style tables to stdout and, when
//! `DLB_RESULTS_DIR` is set, additionally append machine-readable rows
//! here (hand-rolled: the approved dependency set has no CSV/format
//! crate, and the needs are trivial).

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A CSV sink for one experiment. Writing is best-effort: when
/// `DLB_RESULTS_DIR` is unset the sink is a no-op so harnesses never
/// fail on read-only filesystems.
#[derive(Debug)]
pub struct CsvSink {
    file: Option<fs::File>,
}

impl CsvSink {
    /// Opens (truncates) `<DLB_RESULTS_DIR>/<name>.csv` and writes the
    /// header row.
    pub fn create(name: &str, header: &[&str]) -> Self {
        let file = std::env::var("DLB_RESULTS_DIR").ok().and_then(|dir| {
            let mut path = PathBuf::from(dir);
            if fs::create_dir_all(&path).is_err() {
                return None;
            }
            path.push(format!("{name}.csv"));
            let mut f = fs::File::create(path).ok()?;
            writeln!(f, "{}", header.join(",")).ok()?;
            Some(f)
        });
        Self { file }
    }

    /// Appends one row; fields are escaped if they contain commas or
    /// quotes.
    pub fn row(&mut self, fields: &[String]) {
        if let Some(f) = &mut self.file {
            let escaped: Vec<String> = fields.iter().map(|v| escape(v)).collect();
            let _ = writeln!(f, "{}", escaped.join(","));
        }
    }

    /// Convenience: a row of display-formatted values.
    pub fn row_display(&mut self, fields: &[&dyn std::fmt::Display]) {
        let strings: Vec<String> = fields.iter().map(|v| v.to_string()).collect();
        self.row(&strings);
    }

    /// Whether rows are actually being persisted.
    pub fn is_active(&self) -> bool {
        self.file.is_some()
    }
}

fn escape(v: &str) -> String {
    if v.contains(',') || v.contains('"') || v.contains('\n') {
        format!("\"{}\"", v.replace('"', "\"\""))
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One sequential test: the sink behaviour depends on a process-wide
    /// environment variable, so the no-op and active cases must not run
    /// as separate (parallel) tests.
    #[test]
    fn sink_honours_results_dir_env() {
        std::env::remove_var("DLB_RESULTS_DIR");
        let mut sink = CsvSink::create("unit_noop", &["a", "b"]);
        assert!(!sink.is_active());
        sink.row(&["1".into(), "2".into()]); // must not panic

        let dir = std::env::temp_dir().join("dlb_csv_test");
        std::env::set_var("DLB_RESULTS_DIR", &dir);
        let mut sink = CsvSink::create("unit_rows", &["x", "label"]);
        assert!(sink.is_active());
        sink.row(&["3.5".into(), "plain".into()]);
        sink.row(&["1".into(), "with,comma".into()]);
        drop(sink);
        let content = fs::read_to_string(dir.join("unit_rows.csv")).unwrap();
        assert_eq!(content, "x,label\n3.5,plain\n1,\"with,comma\"\n");
        std::env::remove_var("DLB_RESULTS_DIR");
    }

    #[test]
    fn escape_rules() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("q\"q"), "\"q\"\"q\"");
    }
}
