//! # dlb-bench — experiment harnesses for every table and figure
//!
//! Each `harness = false` bench target regenerates one artifact of the
//! paper's evaluation (§VI and the Appendix) and prints it in the
//! paper's row format; `benches/kernels.rs` adds Criterion
//! micro-benchmarks of the hot kernels. This library crate holds the
//! shared machinery: experiment grids, the optimum oracle, descriptive
//! statistics, and table formatting.
//!
//! Scale control: set `DLB_BENCH_SCALE=full` for the paper-sized grids
//! (minutes of runtime); the default `fast` grids keep every qualitative
//! conclusion but finish in seconds, and are what `cargo bench` runs in
//! CI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod results;

use dlb_core::rngutil::rng_for;
use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
use dlb_core::{Instance, LatencyMatrix};
use dlb_distributed::{Engine, EngineOptions};
use dlb_topology::PlanetLabConfig;

/// Which latency substrate an experiment runs on (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// `c_ij = 20` for all pairs.
    Homogeneous,
    /// Synthetic PlanetLab-like matrix (see `dlb-topology`).
    PlanetLab,
}

impl NetworkKind {
    /// Paper-style row label.
    pub fn label(&self) -> &'static str {
        match self {
            NetworkKind::Homogeneous => "c=20",
            NetworkKind::PlanetLab => "PL",
        }
    }

    /// Builds the latency matrix.
    pub fn build(&self, m: usize, seed: u64) -> LatencyMatrix {
        match self {
            NetworkKind::Homogeneous => LatencyMatrix::homogeneous(m, 20.0),
            NetworkKind::PlanetLab => PlanetLabConfig::default().generate(m, seed),
        }
    }
}

/// Returns `true` when the full (paper-scale) grids were requested via
/// `DLB_BENCH_SCALE=full`.
pub fn full_scale() -> bool {
    std::env::var("DLB_BENCH_SCALE")
        .map(|v| v.eq_ignore_ascii_case("full"))
        .unwrap_or(false)
}

/// Descriptive statistics used in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Sample count.
    pub n: usize,
}

/// Computes [`Stats`] over a sample.
pub fn stats(xs: &[f64]) -> Stats {
    let n = xs.len();
    if n == 0 {
        return Stats {
            mean: 0.0,
            max: 0.0,
            std: 0.0,
            n,
        };
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    Stats {
        mean,
        max,
        std: var.sqrt(),
        n,
    }
}

/// Draws one §VI-A instance.
pub fn sample_instance(
    m: usize,
    network: NetworkKind,
    loads: LoadDistribution,
    avg_load: f64,
    speeds: SpeedDistribution,
    seed: u64,
) -> Instance {
    let latency = network.build(m, seed);
    let mut rng = rng_for(seed, 0xBE7C);
    WorkloadSpec {
        loads,
        avg_load,
        speeds,
    }
    .sample(latency, &mut rng)
}

/// Runs the distributed engine to its fixpoint and reports the number
/// of iterations needed to come within `rel_err` of that fixpoint —
/// the measurement behind Tables I and II (the paper approximates the
/// optimum with the distributed algorithm itself, §VI-A).
pub fn iterations_to_rel_error(instance: &Instance, seed: u64, rel_err: f64) -> usize {
    let mut engine = Engine::new(
        instance.clone(),
        EngineOptions {
            seed,
            // The paper's load is discrete unit requests (§II); its
            // simulation therefore stops when no whole request is
            // worth moving. Measuring the continuous relaxation
            // instead stretches the 0.1% tail by chasing sub-request
            // refinements no discrete system would perform.
            granularity: 1.0,
            ..Default::default()
        },
    );
    // Oracle stall tolerance: 1e-6 relative per iteration, two
    // orders tighter than the finest measured threshold (0.1 %), so
    // the oracle is converged for measurement purposes without
    // chasing sub-request-scale improvements forever.
    engine.run_to_convergence(1e-6, 3, 60);
    let optimum = engine.current_cost();
    engine
        .iterations_to_reach(optimum, rel_err)
        .unwrap_or(engine.iterations())
}

/// Shared runner for Tables I and II: sweeps the §VI-A grid and prints
/// iterations-to-`rel_err` statistics per (size bucket, distribution).
pub fn convergence_table(rel_err: f64, title: &str) {
    let full = full_scale();
    let size_buckets: Vec<(&str, Vec<usize>)> = if full {
        vec![
            ("m <= 50", vec![20, 30, 50]),
            ("m = 100", vec![100]),
            ("m = 200", vec![200]),
            ("m = 300", vec![300]),
        ]
    } else {
        vec![
            ("m <= 50", vec![20, 30, 50]),
            ("m = 100", vec![100]),
            ("m = 200", vec![200]),
        ]
    };
    let avg_loads: Vec<f64> = if full {
        vec![10.0, 20.0, 50.0, 200.0, 1000.0]
    } else {
        vec![10.0, 50.0]
    };
    let seeds: Vec<u64> = if full { vec![1, 2, 3, 4] } else { vec![1] };
    let networks = [NetworkKind::Homogeneous, NetworkKind::PlanetLab];
    let dists = [
        LoadDistribution::Uniform,
        LoadDistribution::Exponential,
        LoadDistribution::Peak,
    ];

    print_header(title, "bucket / distribution");
    for (bucket, ms) in &size_buckets {
        for dist in dists {
            let mut samples = Vec::new();
            for &m in ms {
                // The peak workload fixes the total at 100 000 requests
                // on one server (paper §VI-A) and ignores the avg grid.
                let loads_grid: Vec<f64> = if dist == LoadDistribution::Peak {
                    vec![100_000.0 / m as f64]
                } else {
                    avg_loads.clone()
                };
                for &avg in &loads_grid {
                    for &net in &networks {
                        for &seed in &seeds {
                            let instance = sample_instance(
                                m,
                                net,
                                dist,
                                avg,
                                SpeedDistribution::paper_uniform(),
                                seed,
                            );
                            let iters = iterations_to_rel_error(&instance, seed, rel_err);
                            samples.push(iters as f64);
                        }
                    }
                }
            }
            let s = stats(&samples);
            println!("{}", format_row(&format!("{bucket} {}", dist.label()), &s));
        }
    }
}

/// Formats a `(label, Stats)` table row in the paper's
/// `average / max / st.dev` layout.
pub fn format_row(label: &str, s: &Stats) -> String {
    format!(
        "{label:<28} {:>8.2} {:>8.2} {:>8.2}   (n={})",
        s.mean, s.max, s.std, s.n
    )
}

/// Prints a standard table header.
pub fn print_header(title: &str, col: &str) {
    println!("\n== {title} ==");
    println!("{:<28} {:>8} {:>8} {:>8}", col, "avg", "max", "st.dev");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 3.0);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn stats_empty() {
        let s = stats(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn network_kinds_build() {
        assert_eq!(NetworkKind::Homogeneous.build(5, 1).get(0, 1), 20.0);
        assert!(NetworkKind::PlanetLab.build(20, 1).is_complete());
    }

    #[test]
    fn iterations_measurement_is_small_on_easy_instances() {
        let instance = sample_instance(
            20,
            NetworkKind::Homogeneous,
            LoadDistribution::Uniform,
            50.0,
            SpeedDistribution::paper_uniform(),
            3,
        );
        let iters = iterations_to_rel_error(&instance, 3, 0.02);
        assert!(iters <= 10, "{iters} iterations for an easy instance");
    }

    #[test]
    fn format_row_shape() {
        let row = format_row("m=100 uniform", &stats(&[2.0, 3.0]));
        assert!(row.contains("m=100 uniform"));
        assert!(row.contains("(n=2)"));
    }
}
