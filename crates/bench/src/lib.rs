//! # dlb-bench — experiment harnesses for every table and figure
//!
//! Each `harness = false` bench target regenerates one artifact of the
//! paper's evaluation (§VI and the Appendix) and prints it in the
//! paper's row format; `benches/kernels.rs` adds Criterion
//! micro-benchmarks of the hot kernels. This library crate holds the
//! shared machinery: experiment grids, the optimum oracle, descriptive
//! statistics, and table formatting.
//!
//! Scale control: set `DLB_BENCH_SCALE=full` for the paper-sized grids
//! (minutes of runtime); the default `fast` grids keep every qualitative
//! conclusion but finish in seconds, and are what `cargo bench` runs in
//! CI.
//!
//! Reading the committed artifacts: every record carries `host_cores`.
//! On a 1-core host the `dlb-par` worker pool degrades to its
//! sequential inline path, so wall-clock rows recorded there (the
//! committed `BENCH_runtime.json` snapshots included) *understate* the
//! executor's multi-core fan-out — the delivery batches and the
//! per-round scoring shard across `DLB_THREADS` workers on real
//! hardware. Compare rows only within one `host_cores` value.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;
pub mod results;

use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_core::{Instance, LatencyMatrix};
use dlb_scenario::{NetSpec, ScenarioSpec, SpeedKind};

use crate::results::{JsonlSink, Record};

/// Which latency substrate an experiment runs on (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// `c_ij = 20` for all pairs.
    Homogeneous,
    /// Synthetic PlanetLab-like matrix (see `dlb-topology`).
    PlanetLab,
}

impl NetworkKind {
    /// Paper-style row label.
    pub fn label(&self) -> &'static str {
        match self {
            NetworkKind::Homogeneous => "c=20",
            NetworkKind::PlanetLab => "PL",
        }
    }

    /// The scenario substrate this grid axis names.
    pub fn net_spec(&self) -> NetSpec {
        match self {
            NetworkKind::Homogeneous => NetSpec::Homog,
            NetworkKind::PlanetLab => NetSpec::Pl,
        }
    }

    /// Builds the latency matrix (via the shared scenario path).
    pub fn build(&self, m: usize, seed: u64) -> LatencyMatrix {
        ScenarioSpec::new()
            .net(self.net_spec())
            .servers(m)
            .seed(seed)
            .build_latency()
    }
}

/// Returns `true` when the full (paper-scale) grids were requested via
/// `DLB_BENCH_SCALE=full`.
pub fn full_scale() -> bool {
    std::env::var("DLB_BENCH_SCALE")
        .map(|v| v.eq_ignore_ascii_case("full"))
        .unwrap_or(false)
}

/// Descriptive statistics used in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Sample count.
    pub n: usize,
}

/// Computes [`Stats`] over a sample.
pub fn stats(xs: &[f64]) -> Stats {
    let n = xs.len();
    if n == 0 {
        return Stats {
            mean: 0.0,
            max: 0.0,
            std: 0.0,
            n,
        };
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    Stats {
        mean,
        max,
        std: var.sqrt(),
        n,
    }
}

/// Maps one §VI-A grid point onto the shared declarative spec — the
/// single sampling path ([`ScenarioSpec::build_instance`]) every
/// harness, the CLI, and the examples draw instances from.
pub fn scenario_for(
    m: usize,
    network: NetworkKind,
    loads: LoadDistribution,
    avg_load: f64,
    speeds: SpeedDistribution,
    seed: u64,
) -> ScenarioSpec {
    let speeds = match speeds {
        SpeedDistribution::Constant(1.0) => SpeedKind::Const,
        SpeedDistribution::UniformRange { lo: 1.0, hi: 5.0 } => SpeedKind::Uniform,
        other => panic!("grid speed distribution {other:?} has no spec form"),
    };
    ScenarioSpec::new()
        .net(network.net_spec())
        .servers(m)
        .load(loads)
        .avg_load(avg_load)
        .speeds(speeds)
        .seed(seed)
}

/// Draws one §VI-A instance (via the shared scenario path).
pub fn sample_instance(
    m: usize,
    network: NetworkKind,
    loads: LoadDistribution,
    avg_load: f64,
    speeds: SpeedDistribution,
    seed: u64,
) -> Instance {
    scenario_for(m, network, loads, avg_load, speeds, seed).build_instance()
}

/// The Tables I/II measurement protocol for one scenario: run the
/// engine with unit granularity to its oracle fixpoint and report how
/// many iterations its trajectory needed to come within `rel_err` of
/// it (the paper approximates the optimum with the distributed
/// algorithm itself, §VI-A). Returns the run record alongside so
/// callers can sink it.
pub fn iterations_to_rel_error(
    spec: &ScenarioSpec,
    rel_err: f64,
) -> (usize, dlb_scenario::RunRecord) {
    // The paper's load is discrete unit requests (§II); its simulation
    // therefore stops when no whole request is worth moving. The
    // oracle stall tolerance, 1e-6 relative per iteration, is two
    // orders tighter than the finest measured threshold (0.1 %), so
    // the oracle is converged for measurement purposes without chasing
    // sub-request-scale improvements forever.
    let run = spec.granularity(1.0).termination(1e-6, 3, 60).run();
    let iters = run
        .iterations_to_reach(run.final_cost(), rel_err)
        .unwrap_or(run.iterations);
    (iters, run)
}

/// Shared runner for Tables I and II: sweeps the §VI-A grid and prints
/// iterations-to-`rel_err` statistics per (size bucket, distribution).
/// Every sample's [`dlb_scenario::RunRecord`] and every printed row
/// are also emitted as JSON lines through the environment-driven sink
/// (`<DLB_RESULTS_DIR>/<sink_name>.jsonl`).
pub fn convergence_table(rel_err: f64, title: &str, sink_name: &str) {
    let full = full_scale();
    let size_buckets: Vec<(&str, Vec<usize>)> = if full {
        vec![
            ("m <= 50", vec![20, 30, 50]),
            ("m = 100", vec![100]),
            ("m = 200", vec![200]),
            ("m = 300", vec![300]),
        ]
    } else {
        vec![
            ("m <= 50", vec![20, 30, 50]),
            ("m = 100", vec![100]),
            ("m = 200", vec![200]),
        ]
    };
    let avg_loads: Vec<f64> = if full {
        vec![10.0, 20.0, 50.0, 200.0, 1000.0]
    } else {
        vec![10.0, 50.0]
    };
    let seeds: Vec<u64> = if full { vec![1, 2, 3, 4] } else { vec![1] };
    let networks = [NetworkKind::Homogeneous, NetworkKind::PlanetLab];
    let dists = [
        LoadDistribution::Uniform,
        LoadDistribution::Exponential,
        LoadDistribution::Peak,
    ];

    let mut sink = JsonlSink::create(sink_name);
    print_header(title, "bucket / distribution");
    for (bucket, ms) in &size_buckets {
        for dist in dists {
            let mut samples = Vec::new();
            for &m in ms {
                // The peak workload fixes the total at 100 000 requests
                // on one server (paper §VI-A) and ignores the avg grid.
                let loads_grid: Vec<f64> = if dist == LoadDistribution::Peak {
                    vec![100_000.0 / m as f64]
                } else {
                    avg_loads.clone()
                };
                for &avg in &loads_grid {
                    for &net in &networks {
                        for &seed in &seeds {
                            let spec = scenario_for(
                                m,
                                net,
                                dist,
                                avg,
                                SpeedDistribution::paper_uniform(),
                                seed,
                            );
                            let (iters, run) = iterations_to_rel_error(&spec, rel_err);
                            sink.record(
                                &Record::from_run("run", &run)
                                    .num("rel_err", rel_err)
                                    .int("iters_to_target", iters as i64),
                            );
                            samples.push(iters as f64);
                        }
                    }
                }
            }
            let s = stats(&samples);
            sink.record(
                &Record::new("table_row")
                    .str("table", sink_name)
                    .str("bucket", bucket)
                    .str("dist", dist.label())
                    .num("rel_err", rel_err)
                    .num("avg", s.mean)
                    .num("max", s.max)
                    .num("std", s.std)
                    .int("n", s.n as i64),
            );
            println!("{}", format_row(&format!("{bucket} {}", dist.label()), &s));
        }
    }
}

/// Formats a `(label, Stats)` table row in the paper's
/// `average / max / st.dev` layout.
pub fn format_row(label: &str, s: &Stats) -> String {
    format!(
        "{label:<28} {:>8.2} {:>8.2} {:>8.2}   (n={})",
        s.mean, s.max, s.std, s.n
    )
}

/// Prints a standard table header.
pub fn print_header(title: &str, col: &str) {
    println!("\n== {title} ==");
    println!("{:<28} {:>8} {:>8} {:>8}", col, "avg", "max", "st.dev");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 3.0);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn stats_empty() {
        let s = stats(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn network_kinds_build() {
        assert_eq!(NetworkKind::Homogeneous.build(5, 1).get(0, 1), 20.0);
        assert!(NetworkKind::PlanetLab.build(20, 1).is_complete());
    }

    #[test]
    fn iterations_measurement_is_small_on_easy_instances() {
        let spec = scenario_for(
            20,
            NetworkKind::Homogeneous,
            LoadDistribution::Uniform,
            50.0,
            SpeedDistribution::paper_uniform(),
            3,
        );
        let (iters, run) = iterations_to_rel_error(&spec, 0.02);
        assert!(iters <= 10, "{iters} iterations for an easy instance");
        assert_eq!(run.m, 20);
        assert!(run.final_cost() <= run.initial_cost());
    }

    #[test]
    fn scenario_for_and_sample_instance_share_one_path() {
        let spec = scenario_for(
            12,
            NetworkKind::PlanetLab,
            LoadDistribution::Exponential,
            40.0,
            SpeedDistribution::Constant(1.0),
            9,
        );
        let inst = sample_instance(
            12,
            NetworkKind::PlanetLab,
            LoadDistribution::Exponential,
            40.0,
            SpeedDistribution::Constant(1.0),
            9,
        );
        assert_eq!(spec.build_instance(), inst);
        assert_eq!(spec.speeds, SpeedKind::Const);
    }

    #[test]
    fn format_row_shape() {
        let row = format_row("m=100 uniform", &stats(&[2.0, 3.0]));
        assert!(row.contains("m=100 uniform"));
        assert!(row.contains("(n=2)"));
    }
}
