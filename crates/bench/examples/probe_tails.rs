//! Diagnostic probe: per-configuration iteration counts for Table II,
//! to find which instances drive the max statistics.
//!
//! Run: `cargo run --release -p dlb-bench --example probe_tails`

use dlb_bench::{sample_instance, NetworkKind};
use dlb_core::workload::{LoadDistribution, SpeedDistribution};
use dlb_distributed::{Engine, EngineOptions};

fn main() {
    let rel_err = 0.001;
    for &m in &[20, 50, 100, 200] {
        for dist in [
            LoadDistribution::Uniform,
            LoadDistribution::Exponential,
            LoadDistribution::Peak,
        ] {
            let avgs: Vec<f64> = if dist == LoadDistribution::Peak {
                vec![100_000.0 / m as f64]
            } else {
                vec![10.0, 50.0, 200.0]
            };
            for &avg in &avgs {
                for net in [NetworkKind::Homogeneous, NetworkKind::PlanetLab] {
                    for seed in [1u64, 2] {
                        let instance = sample_instance(
                            m,
                            net,
                            dist,
                            avg,
                            SpeedDistribution::paper_uniform(),
                            seed,
                        );
                        let mut engine = Engine::new(
                            instance,
                            EngineOptions {
                                seed,
                                granularity: 1.0,
                                ..Default::default()
                            },
                        );
                        engine.run_to_convergence(1e-6, 3, 60);
                        let optimum = engine.current_cost();
                        let iters = engine
                            .iterations_to_reach(optimum, rel_err)
                            .unwrap_or(engine.iterations());
                        let total = engine.iterations();
                        if iters > 9 {
                            println!(
                                "m={m:<4} {:<8} avg={avg:<8} {:<5} seed={seed}: {iters} iters (ran {total})",
                                dist.label(),
                                net.label()
                            );
                        }
                    }
                }
            }
        }
    }
}
