//! A small sorted sparse vector used for per-server request ledgers.
//!
//! The distributed algorithm keeps, for every server `j`, the amount of
//! requests each organization `k` has relayed to `j`. In realistic runs
//! (and especially under the paper's *peak* load distribution) most
//! organizations relay to only a handful of servers, so a sorted
//! `(key, value)` vector is both compact and cache-friendly.

/// A sparse vector of non-negative `f64` values indexed by `u32` keys,
/// stored sorted by key. Zero (and sub-epsilon) entries are removed
/// eagerly so that iteration only visits meaningful entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u32, f64)>,
}

/// Values with absolute magnitude below this are treated as zero and
/// dropped from the ledger. This is far below one request and well above
/// `f64` rounding noise for the magnitudes the model uses.
pub const SPARSE_EPS: f64 = 1e-12;

impl SparseVec {
    /// Creates an empty sparse vector.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sparse vector with room for `cap` entries.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of explicitly stored (non-zero) entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no non-zero entry is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the value at `key` (zero when absent).
    #[inline]
    pub fn get(&self, key: u32) -> f64 {
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Sets the value at `key`, removing the entry when `value` is
    /// (numerically) zero.
    pub fn set(&mut self, key: u32, value: f64) {
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(pos) => {
                if value.abs() <= SPARSE_EPS {
                    self.entries.remove(pos);
                } else {
                    self.entries[pos].1 = value;
                }
            }
            Err(pos) => {
                if value.abs() > SPARSE_EPS {
                    self.entries.insert(pos, (key, value));
                }
            }
        }
    }

    /// Adds `delta` to the value at `key` and returns the new value.
    pub fn add(&mut self, key: u32, delta: f64) -> f64 {
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(pos) => {
                let v = self.entries[pos].1 + delta;
                if v.abs() <= SPARSE_EPS {
                    self.entries.remove(pos);
                    0.0
                } else {
                    self.entries[pos].1 = v;
                    v
                }
            }
            Err(pos) => {
                if delta.abs() > SPARSE_EPS {
                    self.entries.insert(pos, (key, delta));
                    delta
                } else {
                    0.0
                }
            }
        }
    }

    /// Sum of all stored values.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|e| e.1).sum()
    }

    /// Iterates over `(key, value)` pairs in increasing key order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Removes all entries and returns them (sorted by key).
    #[inline]
    pub fn drain(&mut self) -> Vec<(u32, f64)> {
        std::mem::take(&mut self.entries)
    }

    /// Merges every entry of `other` into `self` (adding values),
    /// consuming `other`'s entries.
    pub fn merge_from(&mut self, other: &mut SparseVec) {
        if self.entries.is_empty() {
            std::mem::swap(&mut self.entries, &mut other.entries);
            return;
        }
        for (k, v) in other.drain() {
            self.add(k, v);
        }
    }

    /// Removes entries whose value is not strictly positive after
    /// numerical noise (defensive cleanup used by the engines).
    pub fn cleanup(&mut self) {
        self.entries.retain(|e| e.1 > SPARSE_EPS);
    }
}

impl FromIterator<(u32, f64)> for SparseVec {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        let mut v = SparseVec::new();
        for (k, val) in iter {
            v.add(k, val);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = SparseVec::new();
        v.set(3, 1.5);
        v.set(1, 2.5);
        v.set(7, 0.5);
        assert_eq!(v.get(3), 1.5);
        assert_eq!(v.get(1), 2.5);
        assert_eq!(v.get(7), 0.5);
        assert_eq!(v.get(2), 0.0);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn set_zero_removes() {
        let mut v = SparseVec::new();
        v.set(4, 2.0);
        assert_eq!(v.len(), 1);
        v.set(4, 0.0);
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn add_accumulates_and_cancels() {
        let mut v = SparseVec::new();
        v.add(9, 3.0);
        v.add(9, 2.0);
        assert_eq!(v.get(9), 5.0);
        v.add(9, -5.0);
        assert_eq!(v.get(9), 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut v = SparseVec::new();
        for k in [5u32, 1, 9, 3] {
            v.set(k, k as f64);
        }
        let keys: Vec<u32> = v.iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    fn merge_from_adds_values() {
        let mut a: SparseVec = [(1, 1.0), (2, 2.0)].into_iter().collect();
        let mut b: SparseVec = [(2, 3.0), (4, 4.0)].into_iter().collect();
        a.merge_from(&mut b);
        assert!(b.is_empty());
        assert_eq!(a.get(1), 1.0);
        assert_eq!(a.get(2), 5.0);
        assert_eq!(a.get(4), 4.0);
    }

    #[test]
    fn merge_into_empty_is_swap() {
        let mut a = SparseVec::new();
        let mut b: SparseVec = [(2, 3.0)].into_iter().collect();
        a.merge_from(&mut b);
        assert_eq!(a.get(2), 3.0);
        assert!(b.is_empty());
    }

    #[test]
    fn sum_counts_everything() {
        let v: SparseVec = [(0, 1.0), (10, 2.0), (20, 3.5)].into_iter().collect();
        assert_eq!(v.sum(), 6.5);
    }

    #[test]
    fn sub_epsilon_set_is_never_stored() {
        let mut v = SparseVec::new();
        v.set(5, SPARSE_EPS / 2.0);
        assert!(v.is_empty(), "sub-epsilon set must not create an entry");
        v.set(5, -SPARSE_EPS);
        assert!(v.is_empty(), "entries at ±SPARSE_EPS are treated as zero");
        // Just above the threshold is stored.
        v.set(5, SPARSE_EPS * 2.0);
        assert_eq!(v.len(), 1);
        // And overwriting with a sub-epsilon value evicts it again.
        v.set(5, SPARSE_EPS / 10.0);
        assert!(v.is_empty());
        assert_eq!(v.get(5), 0.0);
    }

    #[test]
    fn sub_epsilon_add_cancellation_evicts() {
        let mut v = SparseVec::new();
        v.add(3, 1.0);
        // Drive the value into the epsilon band without hitting zero
        // exactly: the entry must still be evicted.
        let new = v.add(3, -1.0 + SPARSE_EPS / 3.0);
        assert_eq!(new, 0.0, "add reports the post-eviction value");
        assert!(v.is_empty());
        // A sub-epsilon delta on an absent key creates nothing.
        assert_eq!(v.add(8, SPARSE_EPS / 2.0), 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn cleanup_drops_nonpositive_entries() {
        let mut v = SparseVec::new();
        v.set(1, 2.0);
        v.set(2, -1.0); // set keeps it: only |v| ≤ eps is snapped
        assert_eq!(v.len(), 2);
        v.cleanup();
        assert_eq!(v.len(), 1, "cleanup removes negative entries");
        assert_eq!(v.get(1), 2.0);
    }

    #[test]
    fn merge_of_disjoint_keys_is_union() {
        let mut a: SparseVec = [(1, 1.0), (5, 5.0)].into_iter().collect();
        let mut b: SparseVec = [(0, 0.5), (3, 3.0), (9, 9.0)].into_iter().collect();
        a.merge_from(&mut b);
        assert!(b.is_empty(), "merge consumes the source");
        assert_eq!(a.len(), 5);
        let entries: Vec<(u32, f64)> = a.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0.5), (1, 1.0), (3, 3.0), (5, 5.0), (9, 9.0)],
            "union stays key-sorted"
        );
        assert_eq!(a.sum(), 18.5);
    }

    #[test]
    fn merge_cancelling_values_evicts_keys() {
        let mut a: SparseVec = [(2, 2.0), (4, 4.0)].into_iter().collect();
        let mut b: SparseVec = [(2, -2.0), (4, 1.0)].into_iter().collect();
        a.merge_from(&mut b);
        assert_eq!(a.get(2), 0.0, "exact cancellation evicts the key");
        assert_eq!(a.get(4), 5.0);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn with_capacity_invariants() {
        let v = SparseVec::with_capacity(16);
        // Capacity is an allocation hint only: the vector is born empty
        // and behaves exactly like `new()`.
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.sum(), 0.0);
        assert_eq!(v.get(0), 0.0);
        assert_eq!(v, SparseVec::new(), "capacity does not affect equality");
        // Zero capacity is valid and usable.
        let mut z = SparseVec::with_capacity(0);
        z.set(7, 1.0);
        assert_eq!(z.get(7), 1.0);
        // Growing past the reserved capacity keeps all invariants.
        let mut w = SparseVec::with_capacity(2);
        for k in 0..50u32 {
            w.set(k, f64::from(k) + 1.0);
        }
        assert_eq!(w.len(), 50);
        let keys: Vec<u32> = w.iter().map(|e| e.0).collect();
        assert!(keys.windows(2).all(|p| p[0] < p[1]), "keys stay sorted");
    }

    #[test]
    fn drain_empties_and_returns_sorted() {
        let mut v: SparseVec = [(9, 9.0), (1, 1.0), (4, 4.0)].into_iter().collect();
        let drained = v.drain();
        assert!(v.is_empty());
        assert_eq!(drained, vec![(1, 1.0), (4, 4.0), (9, 9.0)]);
    }

    proptest! {
        #[test]
        fn prop_matches_dense_model(ops in prop::collection::vec((0u32..32, -10.0f64..10.0), 0..200)) {
            let mut sparse = SparseVec::new();
            let mut dense = [0.0f64; 32];
            for (k, d) in ops {
                sparse.add(k, d);
                dense[k as usize] += d;
                // the sparse structure snaps tiny values to zero;
                // mirror that in the dense model
                if dense[k as usize].abs() <= SPARSE_EPS {
                    dense[k as usize] = 0.0;
                    // re-read to keep both in sync (sparse removed it)
                    prop_assert_eq!(sparse.get(k), 0.0);
                }
            }
            for k in 0..32u32 {
                prop_assert!((sparse.get(k) - dense[k as usize]).abs() < 1e-9);
            }
            // keys sorted
            let keys: Vec<u32> = sparse.iter().map(|e| e.0).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            prop_assert_eq!(keys, sorted);
        }
    }
}
