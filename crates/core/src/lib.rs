//! # dlb-core — model types for network delay-aware load balancing
//!
//! This crate implements the mathematical model of Skowron & Rzadca,
//! *"Network delay-aware load balancing in selfish and cooperative
//! distributed systems"* (IPDPS 2013):
//!
//! * [`Instance`] — `m` organizations, each owning one server with speed
//!   `s_i` and an initial load of `n_i` unit requests, connected by a
//!   constant-latency network described by a [`LatencyMatrix`].
//! * [`Assignment`] — who executes whose requests: a sparse per-server
//!   ledger of `r_{k→j}` values (requests owned by organization `k`
//!   executing on server `j`), equivalent to the paper's relay-fraction
//!   matrix `ρ` via `r_{kj} = n_k ρ_{kj}`.
//! * [`cost`] — the expected-completion-time objective
//!   `ΣC = Σ_j l_j²/(2 s_j) + Σ_{kj} c_{kj} r_{kj}` and the per-organization
//!   cost `C_i`.
//! * [`workload`] — the initial-load and speed distributions used in the
//!   paper's evaluation (§VI-A): uniform, exponential and peak loads;
//!   constant and `U(1,5)` speeds.
//! * [`events`] — the deterministic `(due, seq)`-ordered virtual-time
//!   event heap shared by every simulation in the workspace (the
//!   protocol executor, scheduled gossip, fault injection).
//!
//! All quantities are `f64`: loads in requests, speeds in requests/ms,
//! latencies in ms, costs in request·ms.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assignment;
pub mod cost;
pub mod events;
pub mod instance;
pub mod latency;
pub mod rngutil;
pub mod sparse;
pub mod workload;

pub use assignment::Assignment;
pub use instance::Instance;
pub use latency::LatencyMatrix;
pub use sparse::SparseVec;
pub use workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};

/// Absolute tolerance used when checking conservation invariants
/// (per unit of load).
pub const INVARIANT_TOL: f64 = 1e-6;

/// Relative tolerance for floating-point comparisons in tests and
/// convergence checks.
pub const REL_TOL: f64 = 1e-9;

/// Returns `true` when `a` and `b` are equal up to a relative tolerance
/// `tol` (with an absolute fallback of `tol` near zero).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
    }
}
