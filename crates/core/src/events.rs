//! The shared virtual-time event heap.
//!
//! Both deterministic simulations in this workspace — the protocol
//! executor in `dlb-runtime` and the scheduled-gossip run in
//! `dlb-gossip` — drive their state machines from the same primitive:
//! a min-heap of future deliveries ordered by **(due time, sequence
//! number)**. The due time is virtual milliseconds; the sequence
//! number is the scheduling order and breaks same-instant ties, so the
//! delivered order is a pure function of the pushes — which is the
//! whole determinism story. This module hoists that heap out of the
//! two simulations (they previously each carried a private copy with
//! its own `Ord` impl) so one tie-break rule serves every simulation,
//! including the fault scripts in `dlb-faults` that reschedule delayed
//! frames through it.
//!
//! ```
//! use dlb_core::events::EventHeap;
//!
//! let mut heap: EventHeap<&str> = EventHeap::new();
//! heap.push(5.0, "later");
//! heap.push(1.0, "first");
//! heap.push(1.0, "second"); // same instant: scheduling order wins
//! let order: Vec<&str> = std::iter::from_fn(|| heap.pop().map(|e| e.item)).collect();
//! assert_eq!(order, ["first", "second", "later"]);
//! ```

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One scheduled delivery popped from an [`EventHeap`].
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// Virtual delivery time in ms.
    pub due: f64,
    /// Scheduling order; unique per heap, breaks same-instant ties.
    pub seq: u64,
    /// The scheduled payload.
    pub item: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        // Sequence numbers are unique per heap, so they identify the
        // event; payloads never need comparing.
        self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Due times are finite by the push assert, so total_cmp agrees
        // with the numeric order.
        self.due
            .total_cmp(&other.due)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A deterministic virtual-time event heap: pops in `(due, seq)` order.
///
/// `T` does not need any ordering of its own — ties are broken by the
/// sequence number alone, so two events are never compared by payload.
#[derive(Debug, Clone)]
pub struct EventHeap<T> {
    heap: BinaryHeap<Reverse<Scheduled<T>>>,
    next_seq: u64,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventHeap<T> {
    /// Creates an empty heap with sequence numbers starting at 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `item` for virtual time `due`, returning the sequence
    /// number it was assigned.
    ///
    /// # Panics
    /// Debug-panics on a non-finite due time (it would poison the heap
    /// order).
    pub fn push(&mut self, due: f64, item: T) -> u64 {
        debug_assert!(due.is_finite(), "event due time {due} must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { due, seq, item }));
        seq
    }

    /// Removes and returns the earliest event (`(due, seq)` order).
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// The due time of the next event, if any.
    pub fn peek_due(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(e)| e.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Sequence number the next push will receive (also the count of
    /// events ever scheduled).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_due_then_seq_order() {
        let mut heap = EventHeap::new();
        heap.push(3.0, 'c');
        heap.push(1.0, 'a');
        heap.push(1.0, 'b');
        heap.push(0.5, 'z');
        let order: Vec<(f64, u64, char)> =
            std::iter::from_fn(|| heap.pop().map(|e| (e.due, e.seq, e.item))).collect();
        assert_eq!(
            order,
            vec![(0.5, 3, 'z'), (1.0, 1, 'a'), (1.0, 2, 'b'), (3.0, 0, 'c')]
        );
    }

    #[test]
    fn seq_numbers_are_dense_and_reported() {
        let mut heap = EventHeap::new();
        assert_eq!(heap.next_seq(), 0);
        assert_eq!(heap.push(1.0, ()), 0);
        assert_eq!(heap.push(1.0, ()), 1);
        assert_eq!(heap.next_seq(), 2);
        assert_eq!(heap.len(), 2);
        assert!(!heap.is_empty());
    }

    #[test]
    fn peek_due_matches_pop() {
        let mut heap = EventHeap::new();
        assert_eq!(heap.peek_due(), None);
        heap.push(7.5, 1);
        heap.push(2.5, 2);
        assert_eq!(heap.peek_due(), Some(2.5));
        assert_eq!(heap.pop().unwrap().item, 2);
        assert_eq!(heap.peek_due(), Some(7.5));
    }

    #[test]
    fn payloads_never_need_ord() {
        // f64 payloads are not Eq/Ord; the heap must still order them.
        let mut heap: EventHeap<f64> = EventHeap::new();
        heap.push(2.0, f64::NAN);
        heap.push(1.0, 0.5);
        assert_eq!(heap.pop().unwrap().item, 0.5);
        assert!(heap.pop().unwrap().item.is_nan());
    }
}
