//! The expected-completion-time objective (paper §II).
//!
//! With random request ordering on each server, a request processed on
//! server `j` waits in expectation `l_j / 2 s_j`, so the expected total
//! completion time of organization `i` is
//!
//! ```text
//! C_i = Σ_j (l_j / 2 s_j + c_ij) · r_ij
//! ```
//!
//! and the system objective collapses (using `Σ_k r_kj = l_j`) to
//!
//! ```text
//! ΣC = Σ_j l_j² / (2 s_j)  +  Σ_{kj} c_kj · r_kj .
//! ```

use crate::assignment::Assignment;
use crate::instance::Instance;

/// Total processing time `ΣC_i` of an assignment: the sum of
/// [`server_cost`] over all servers.
///
/// Returns `f64::INFINITY` when requests are relayed over a forbidden
/// (infinite-latency) link.
pub fn total_cost(instance: &Instance, a: &Assignment) -> f64 {
    let m = instance.len();
    debug_assert_eq!(a.len(), m);
    (0..m).map(|j| server_cost(instance, a, j)).sum()
}

/// Cost attributable to server `j` alone: its congestion term plus the
/// communication cost of every request it hosts,
/// `l_j²/(2 s_j) + Σ_k c_kj r_kj`. [`total_cost`] is the sum of these
/// over all servers, and a pairwise exchange between `i` and `j`
/// changes only `server_cost(i) + server_cost(j)` — the identity behind
/// the engine's incremental `ΣC` maintenance.
pub fn server_cost(instance: &Instance, a: &Assignment, j: usize) -> f64 {
    let l = a.load(j);
    let mut cost = l * l / (2.0 * instance.speed(j));
    for (k, r) in a.ledger(j).iter() {
        let c = instance.c(k as usize, j);
        if c > 0.0 {
            cost += c * r;
        }
    }
    cost
}

/// Incrementally maintained `ΣC`.
///
/// The distributed engine's iterations consist of pairwise exchanges,
/// and each exchange already computes its exact cost change (the pair
/// cost before minus after). Accumulating those deltas replaces the
/// per-iteration `O(m·nnz)` [`total_cost`] walk with `O(1)` work per
/// exchange. Floating-point drift is bounded by periodically resyncing
/// against a fresh recompute ([`CostTracker::should_resync`] /
/// [`CostTracker::resync`]); debug builds additionally verify every
/// update against the exact value via
/// [`CostTracker::debug_assert_in_sync`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostTracker {
    value: f64,
    updates_since_resync: usize,
    resync_every: usize,
}

impl CostTracker {
    /// Relative drift tolerated between the accumulated value and a
    /// fresh recompute before the debug assertion fires.
    pub const DRIFT_TOL: f64 = 1e-6;

    /// Starts tracking from an exactly computed value; the tracker asks
    /// for a resync every `resync_every` updates (0 = never).
    pub fn new(initial: f64, resync_every: usize) -> Self {
        Self {
            value: initial,
            updates_since_resync: 0,
            resync_every,
        }
    }

    /// The tracked `ΣC`.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Applies one accumulated cost delta (negative for improvements).
    #[inline]
    pub fn apply_delta(&mut self, delta: f64) {
        self.value += delta;
        self.updates_since_resync += 1;
    }

    /// Whether enough updates accumulated that the caller should feed a
    /// fresh [`total_cost`] through [`CostTracker::resync`].
    #[inline]
    pub fn should_resync(&self) -> bool {
        self.resync_every > 0 && self.updates_since_resync >= self.resync_every
    }

    /// Replaces the accumulated value with an exactly recomputed one
    /// and returns the drift that had built up (`accumulated − exact`).
    pub fn resync(&mut self, exact: f64) -> f64 {
        let drift = self.value - exact;
        self.value = exact;
        self.updates_since_resync = 0;
        drift
    }

    /// Debug-build check that the accumulated value matches a fresh
    /// recompute to [`CostTracker::DRIFT_TOL`] relative. Release builds
    /// skip the recompute entirely. The recompute sums [`server_cost`]
    /// over all servers — the same per-server decomposition whose pair
    /// terms the accumulated exchange deltas are drawn from, so the
    /// assertion directly proves the incremental identity.
    pub fn debug_assert_in_sync(&self, instance: &Instance, a: &Assignment) {
        #[cfg(debug_assertions)]
        {
            let exact: f64 = (0..instance.len())
                .map(|j| server_cost(instance, a, j))
                .sum();
            if exact.is_finite() {
                debug_assert!(
                    (self.value - exact).abs() <= Self::DRIFT_TOL * exact.abs().max(1.0),
                    "incremental ΣC drifted: accumulated {} vs exact {exact}",
                    self.value
                );
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (instance, a);
        }
    }
}

/// Congestion-only part of the objective, `Σ_j l_j²/(2 s_j)`.
pub fn congestion_cost(instance: &Instance, a: &Assignment) -> f64 {
    (0..instance.len())
        .map(|j| {
            let l = a.load(j);
            l * l / (2.0 * instance.speed(j))
        })
        .sum()
}

/// Communication-only part of the objective, `Σ_{kj} c_kj r_kj`.
pub fn communication_cost(instance: &Instance, a: &Assignment) -> f64 {
    let mut cost = 0.0;
    for j in 0..instance.len() {
        for (k, r) in a.ledger(j).iter() {
            let c = instance.c(k as usize, j);
            if c > 0.0 {
                cost += c * r;
            }
        }
    }
    cost
}

/// Expected total completion time `C_i` of a single organization's
/// requests (paper Eq. 1).
pub fn org_cost(instance: &Instance, a: &Assignment, i: usize) -> f64 {
    let m = instance.len();
    let mut cost = 0.0;
    for j in 0..m {
        let r = a.requests(i, j);
        if r > 0.0 {
            cost += (a.load(j) / (2.0 * instance.speed(j)) + instance.c(i, j)) * r;
        }
    }
    cost
}

/// All per-organization costs; sums to [`total_cost`].
pub fn org_costs(instance: &Instance, a: &Assignment) -> Vec<f64> {
    let m = instance.len();
    let mut costs = vec![0.0; m];
    for j in 0..m {
        let wait = a.load(j) / (2.0 * instance.speed(j));
        for (k, r) in a.ledger(j).iter() {
            costs[k as usize] += (wait + instance.c(k as usize, j)) * r;
        }
    }
    costs
}

/// A lower bound on the optimal `ΣC`: congestion of the perfectly
/// speed-proportional load split with zero communication,
/// `(Σ n)² / (2 Σ s)`.
///
/// For homogeneous instances this is the paper's `m l_av² / 2s` bound
/// used in Theorem 1.
pub fn ideal_lower_bound(instance: &Instance) -> f64 {
    let n = instance.total_load();
    let s = instance.total_speed();
    if s == 0.0 {
        0.0
    } else {
        n * n / (2.0 * s)
    }
}

/// Makespan-flavoured metric: the largest server drain time
/// `max_j l_j / s_j` (ms). The paper optimizes `ΣC` but discusses the
/// contrast with makespan (§II "Completion times"); exposing both lets
/// the examples and benches quantify the difference.
pub fn makespan(instance: &Instance, a: &Assignment) -> f64 {
    (0..instance.len())
        .map(|j| a.load(j) / instance.speed(j))
        .fold(0.0, f64::max)
}

/// Per-server drain times `l_j / s_j` (the makespan vector).
pub fn drain_times(instance: &Instance, a: &Assignment) -> Vec<f64> {
    (0..instance.len())
        .map(|j| a.load(j) / instance.speed(j))
        .collect()
}

/// Jain's fairness index of the speed-normalized loads
/// (`(Σx)² / (m·Σx²)`, 1 = perfectly balanced). A compact imbalance
/// diagnostic used by the dynamic-load example and benches.
pub fn load_fairness(instance: &Instance, a: &Assignment) -> f64 {
    let m = instance.len();
    if m == 0 {
        return 1.0;
    }
    let xs: Vec<f64> = (0..m).map(|j| a.load(j) / instance.speed(j)).collect();
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (m as f64 * sq)
    }
}

/// Exact cost change from moving `delta` requests owned by `k` from
/// server `from` to server `to` (Lemma 1's `f(Δ) - f(0)`), without
/// mutating the assignment.
pub fn move_cost_delta(
    instance: &Instance,
    a: &Assignment,
    k: usize,
    from: usize,
    to: usize,
    delta: f64,
) -> f64 {
    if from == to || delta == 0.0 {
        return 0.0;
    }
    let li = a.load(from);
    let lj = a.load(to);
    let si = instance.speed(from);
    let sj = instance.speed(to);
    let congestion = ((li - delta) * (li - delta) - li * li) / (2.0 * si)
        + ((lj + delta) * (lj + delta) - lj * lj) / (2.0 * sj);
    let comm = delta * (instance.c(k, to) - instance.c(k, from));
    congestion + comm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyMatrix;
    use proptest::prelude::*;

    fn small_instance() -> Instance {
        Instance::new(
            vec![1.0, 2.0],
            vec![10.0, 4.0],
            LatencyMatrix::homogeneous(2, 3.0),
        )
    }

    #[test]
    fn local_assignment_cost() {
        let inst = small_instance();
        let a = Assignment::local(&inst);
        // l = [10, 4]; cost = 100/2 + 16/4 = 54; no communication.
        assert_eq!(total_cost(&inst, &a), 54.0);
        assert_eq!(communication_cost(&inst, &a), 0.0);
        assert_eq!(congestion_cost(&inst, &a), 54.0);
    }

    #[test]
    fn relayed_cost_includes_latency() {
        let inst = small_instance();
        let mut a = Assignment::local(&inst);
        a.move_requests(0, 0, 1, 4.0);
        // l = [6, 8]; congestion = 36/2 + 64/4 = 34; comm = 4 * 3 = 12.
        assert_eq!(congestion_cost(&inst, &a), 34.0);
        assert_eq!(communication_cost(&inst, &a), 12.0);
        assert_eq!(total_cost(&inst, &a), 46.0);
    }

    #[test]
    fn org_costs_sum_to_total() {
        let inst = small_instance();
        let mut a = Assignment::local(&inst);
        a.move_requests(0, 0, 1, 4.0);
        let per_org = org_costs(&inst, &a);
        let total: f64 = per_org.iter().sum();
        assert!((total - total_cost(&inst, &a)).abs() < 1e-12);
        assert!((org_cost(&inst, &a, 0) - per_org[0]).abs() < 1e-12);
        assert!((org_cost(&inst, &a, 1) - per_org[1]).abs() < 1e-12);
    }

    #[test]
    fn org_cost_formula_manual() {
        let inst = small_instance();
        let mut a = Assignment::local(&inst);
        a.move_requests(0, 0, 1, 4.0);
        // org 0: 6 requests at server 0 (l=6, s=1, wait 3), 4 at server 1
        // (l=8, s=2, wait 2, c=3): 6*3 + 4*(2+3) = 38.
        assert!((org_cost(&inst, &a, 0) - 38.0).abs() < 1e-12);
        // org 1: 4 requests at server 1: 4 * 2 = 8.
        assert!((org_cost(&inst, &a, 1) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_latency_forbids_relay() {
        let mut lat = LatencyMatrix::homogeneous(2, 3.0);
        lat.set(0, 1, f64::INFINITY);
        let inst = Instance::new(vec![1.0, 1.0], vec![5.0, 5.0], lat);
        let mut a = Assignment::local(&inst);
        a.move_requests(0, 0, 1, 1.0);
        assert!(total_cost(&inst, &a).is_infinite());
    }

    #[test]
    fn ideal_lower_bound_homogeneous() {
        let inst = Instance::homogeneous(4, 2.0, 20.0, 100.0);
        // (400)^2 / (2*8) = 10000 = m * lav^2 / (2 s) = 4 * 10000 / 4.
        assert_eq!(ideal_lower_bound(&inst), 10000.0);
    }

    #[test]
    fn makespan_and_drain_times() {
        let inst = small_instance();
        let a = Assignment::local(&inst);
        // drains: 10/1 = 10, 4/2 = 2.
        assert_eq!(drain_times(&inst, &a), vec![10.0, 2.0]);
        assert_eq!(makespan(&inst, &a), 10.0);
    }

    #[test]
    fn makespan_improves_with_balancing() {
        let inst = small_instance();
        let mut a = Assignment::local(&inst);
        a.move_requests(0, 0, 1, 4.0);
        assert!(makespan(&inst, &a) < 10.0);
    }

    #[test]
    fn fairness_index_bounds() {
        let inst = small_instance();
        let a = Assignment::local(&inst);
        let f = load_fairness(&inst, &a);
        assert!(f > 0.0 && f < 1.0, "imbalanced system: {f}");
        // Perfectly speed-proportional load ⇒ fairness 1.
        let mut b = Assignment::local(&inst);
        // loads (10,4); speeds (1,2): want l0/1 == l1/2, total 14 ⇒ l0 =
        // 14/3. move 10 − 14/3 from 0 to 1.
        b.move_requests(0, 0, 1, 10.0 - 14.0 / 3.0);
        let f = load_fairness(&inst, &b);
        assert!((f - 1.0).abs() < 1e-9, "balanced fairness = {f}");
        // Empty system is trivially fair.
        let empty = Instance::new(vec![1.0], vec![0.0], LatencyMatrix::zero(1));
        assert_eq!(load_fairness(&empty, &Assignment::local(&empty)), 1.0);
    }

    #[test]
    fn server_cost_sums_to_total() {
        let inst = small_instance();
        let mut a = Assignment::local(&inst);
        a.move_requests(0, 0, 1, 4.0);
        let summed: f64 = (0..2).map(|j| server_cost(&inst, &a, j)).sum();
        assert!((summed - total_cost(&inst, &a)).abs() < 1e-12);
    }

    #[test]
    fn cost_tracker_accumulates_and_resyncs() {
        let mut t = CostTracker::new(100.0, 2);
        t.apply_delta(-10.0);
        assert_eq!(t.value(), 90.0);
        assert!(!t.should_resync());
        t.apply_delta(-5.0);
        assert!(t.should_resync());
        let drift = t.resync(85.5);
        assert!((drift - (-0.5)).abs() < 1e-12);
        assert_eq!(t.value(), 85.5);
        assert!(!t.should_resync());
        // resync_every = 0 disables the cadence entirely.
        let mut never = CostTracker::new(1.0, 0);
        for _ in 0..1000 {
            never.apply_delta(0.0);
        }
        assert!(!never.should_resync());
    }

    #[test]
    fn cost_tracker_debug_check_accepts_exact_tracking() {
        let inst = small_instance();
        let mut a = Assignment::local(&inst);
        let mut t = CostTracker::new(total_cost(&inst, &a), 64);
        let delta = move_cost_delta(&inst, &a, 0, 0, 1, 4.0);
        a.move_requests(0, 0, 1, 4.0);
        t.apply_delta(delta);
        t.debug_assert_in_sync(&inst, &a);
    }

    #[test]
    fn move_cost_delta_matches_recomputation() {
        let inst = small_instance();
        let mut a = Assignment::local(&inst);
        let before = total_cost(&inst, &a);
        let predicted = move_cost_delta(&inst, &a, 0, 0, 1, 4.0);
        a.move_requests(0, 0, 1, 4.0);
        let after = total_cost(&inst, &a);
        assert!((after - before - predicted).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_move_delta_consistent(
            n0 in 1.0f64..50.0, n1 in 1.0f64..50.0,
            frac in 0.0f64..1.0, c in 0.0f64..10.0,
            s0 in 0.5f64..4.0, s1 in 0.5f64..4.0,
        ) {
            let inst = Instance::new(
                vec![s0, s1],
                vec![n0, n1],
                LatencyMatrix::homogeneous(2, c),
            );
            let mut a = Assignment::local(&inst);
            let delta = n0 * frac;
            let before = total_cost(&inst, &a);
            let predicted = move_cost_delta(&inst, &a, 0, 0, 1, delta);
            if delta > 0.0 {
                a.move_requests(0, 0, 1, delta);
            }
            let after = total_cost(&inst, &a);
            prop_assert!((after - before - predicted).abs() < 1e-7 * before.max(1.0));
        }

        #[test]
        fn prop_lower_bound_below_any_assignment(
            loads in prop::collection::vec(0.0f64..100.0, 3),
            fracs in prop::collection::vec(0.01f64..1.0, 9),
        ) {
            let inst = Instance::new(
                vec![1.0, 2.0, 3.0],
                loads,
                LatencyMatrix::homogeneous(3, 1.0),
            );
            let m = 3;
            let mut rho = vec![0.0; 9];
            for k in 0..m {
                let s: f64 = fracs[k * m..(k + 1) * m].iter().sum();
                for j in 0..m {
                    rho[k * m + j] = fracs[k * m + j] / s;
                }
            }
            let a = Assignment::from_fractions(&inst, &rho);
            prop_assert!(total_cost(&inst, &a) >= ideal_lower_bound(&inst) - 1e-9);
        }
    }
}
