//! Problem instances: organizations, servers, initial loads, latencies.

use crate::latency::LatencyMatrix;

/// A load-balancing problem instance (paper §II).
///
/// Organization `i` owns server `i` with processing speed `s_i`
/// (requests per ms) and produces `n_i` unit requests. Servers are
/// connected by a network with constant pairwise latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    speeds: Vec<f64>,
    own_loads: Vec<f64>,
    latency: LatencyMatrix,
}

impl Instance {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics when dimensions disagree, any speed is not strictly
    /// positive, or any load is negative.
    pub fn new(speeds: Vec<f64>, own_loads: Vec<f64>, latency: LatencyMatrix) -> Self {
        assert_eq!(
            speeds.len(),
            own_loads.len(),
            "speeds/loads dimension mismatch"
        );
        assert_eq!(speeds.len(), latency.len(), "latency dimension mismatch");
        for (i, &s) in speeds.iter().enumerate() {
            assert!(
                s > 0.0 && s.is_finite(),
                "speed of server {i} must be positive, got {s}"
            );
        }
        for (i, &n) in own_loads.iter().enumerate() {
            assert!(
                n >= 0.0 && n.is_finite(),
                "load of org {i} must be non-negative, got {n}"
            );
        }
        Self {
            speeds,
            own_loads,
            latency,
        }
    }

    /// A homogeneous instance: `m` servers of speed `s`, all-pairs
    /// latency `c`, every organization holding `load` requests.
    /// This is the setting of the paper's §V-A analysis.
    pub fn homogeneous(m: usize, s: f64, c: f64, load: f64) -> Self {
        Self::new(vec![s; m], vec![load; m], LatencyMatrix::homogeneous(m, c))
    }

    /// Number of organizations / servers.
    #[inline]
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// Returns `true` for the empty instance.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.speeds.is_empty()
    }

    /// Speed of server `i` (requests per ms).
    #[inline]
    pub fn speed(&self, i: usize) -> f64 {
        self.speeds[i]
    }

    /// All server speeds.
    #[inline]
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// Initial (own) load of organization `i`.
    #[inline]
    pub fn own_load(&self, i: usize) -> f64 {
        self.own_loads[i]
    }

    /// All initial loads.
    #[inline]
    pub fn own_loads(&self) -> &[f64] {
        &self.own_loads
    }

    /// Replaces the initial loads (used by dynamic-load scenarios where
    /// demand changes between balancing rounds).
    pub fn set_own_loads(&mut self, loads: Vec<f64>) {
        assert_eq!(loads.len(), self.len());
        for (i, &n) in loads.iter().enumerate() {
            assert!(
                n >= 0.0 && n.is_finite(),
                "load of org {i} must be non-negative"
            );
        }
        self.own_loads = loads;
    }

    /// The latency matrix.
    #[inline]
    pub fn latency(&self) -> &LatencyMatrix {
        &self.latency
    }

    /// Latency from server `i` to server `j` in ms.
    #[inline]
    pub fn c(&self, i: usize, j: usize) -> f64 {
        self.latency.get(i, j)
    }

    /// Total load in the system, `Σ n_i`.
    #[inline]
    pub fn total_load(&self) -> f64 {
        self.own_loads.iter().sum()
    }

    /// Average load per server, `l_av = Σ n_i / m`.
    #[inline]
    pub fn average_load(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.total_load() / self.len() as f64
        }
    }

    /// Total processing capacity, `Σ s_i`.
    #[inline]
    pub fn total_speed(&self) -> f64 {
        self.speeds.iter().sum()
    }

    /// Returns `true` when all speeds are equal and all off-diagonal
    /// latencies are equal (the homogeneous setting of §V-A).
    pub fn is_homogeneous(&self, tol: f64) -> bool {
        let m = self.len();
        if m == 0 {
            return true;
        }
        let s0 = self.speeds[0];
        if self.speeds.iter().any(|&s| (s - s0).abs() > tol) {
            return false;
        }
        if self.latency.homogeneous_value().is_some() {
            return true; // compact storage: uniform by representation
        }
        let mut c0 = None;
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    let c = self.latency.get(i, j);
                    match c0 {
                        None => c0 = Some(c),
                        Some(v) if (c - v).abs() > tol => return false,
                        _ => {}
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_instance() {
        let inst = Instance::homogeneous(5, 2.0, 20.0, 100.0);
        assert_eq!(inst.len(), 5);
        assert_eq!(inst.total_load(), 500.0);
        assert_eq!(inst.average_load(), 100.0);
        assert_eq!(inst.total_speed(), 10.0);
        assert!(inst.is_homogeneous(1e-12));
        assert_eq!(inst.c(0, 1), 20.0);
        assert_eq!(inst.c(2, 2), 0.0);
    }

    #[test]
    fn heterogeneous_detection() {
        let mut inst = Instance::new(
            vec![1.0, 2.0],
            vec![10.0, 0.0],
            LatencyMatrix::homogeneous(2, 5.0),
        );
        assert!(!inst.is_homogeneous(1e-12));
        inst.set_own_loads(vec![3.0, 4.0]);
        assert_eq!(inst.own_load(0), 3.0);
        assert_eq!(inst.total_load(), 7.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_speed() {
        Instance::new(vec![0.0], vec![1.0], LatencyMatrix::zero(1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_load() {
        Instance::new(vec![1.0], vec![-1.0], LatencyMatrix::zero(1));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_dimension_mismatch() {
        Instance::new(vec![1.0, 1.0], vec![1.0], LatencyMatrix::zero(2));
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = Instance::new(vec![], vec![], LatencyMatrix::zero(0));
        assert!(inst.is_empty());
        assert_eq!(inst.average_load(), 0.0);
        assert!(inst.is_homogeneous(0.0));
    }
}
