//! Deterministic RNG plumbing for reproducible experiments.
//!
//! Every experiment in the workspace is seeded; sub-streams are derived
//! with [`derive_seed`] so that adding a new experiment never perturbs
//! the random draws of an existing one.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from a base seed and a stream label using the
/// SplitMix64 finalizer (a high-quality 64-bit mix).
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a deterministic RNG for (base seed, stream).
pub fn rng_for(base: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(base, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len(), "stream seeds must be distinct");
    }

    #[test]
    fn rng_for_reproduces() {
        let a: f64 = rng_for(1, 2).gen();
        let b: f64 = rng_for(1, 2).gen();
        let c: f64 = rng_for(1, 3).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
