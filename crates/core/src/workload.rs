//! Workload generators matching the paper's evaluation settings (§VI-A).
//!
//! * Initial loads: uniform, exponential, or *peak* (the entire load on a
//!   single server) distributions, parameterized by the average load per
//!   server.
//! * Speeds: constant, or uniform on `⟨1, 5⟩` as in the paper.

use rand::distributions::Distribution;
use rand::Rng;

use crate::instance::Instance;
use crate::latency::LatencyMatrix;

/// Distribution of the initial load over organizations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadDistribution {
    /// Every organization owns exactly the average load.
    Constant,
    /// Loads drawn uniformly from `[0, 2·l_av]` (mean `l_av`).
    Uniform,
    /// Loads drawn from an exponential distribution with mean `l_av`.
    Exponential,
    /// The paper's peak scenario: one uniformly chosen organization owns
    /// the whole system load (`m · l_av`), everyone else owns nothing.
    Peak,
}

impl LoadDistribution {
    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            LoadDistribution::Constant => "const",
            LoadDistribution::Uniform => "uniform",
            LoadDistribution::Exponential => "exp",
            LoadDistribution::Peak => "peak",
        }
    }

    /// Samples initial loads for `m` organizations with per-server
    /// average `avg_load`.
    pub fn sample<R: Rng + ?Sized>(&self, m: usize, avg_load: f64, rng: &mut R) -> Vec<f64> {
        assert!(avg_load >= 0.0, "average load must be non-negative");
        match self {
            LoadDistribution::Constant => vec![avg_load; m],
            LoadDistribution::Uniform => (0..m)
                .map(|_| rng.gen_range(0.0..=2.0 * avg_load.max(f64::MIN_POSITIVE)))
                .collect(),
            LoadDistribution::Exponential => (0..m)
                .map(|_| {
                    // Inverse-CDF sampling; `1 - u` avoids ln(0).
                    let u: f64 = rng.gen();
                    -avg_load * (1.0 - u).ln()
                })
                .collect(),
            LoadDistribution::Peak => {
                let mut loads = vec![0.0; m];
                if m > 0 {
                    let owner = rng.gen_range(0..m);
                    loads[owner] = avg_load * m as f64;
                }
                loads
            }
        }
    }
}

/// Distribution of server processing speeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedDistribution {
    /// All servers share one speed (the paper's "const s_i" rows; speed 1
    /// means one request takes 1 ms).
    Constant(f64),
    /// Speeds drawn uniformly from `[lo, hi]` (the paper uses `⟨1, 5⟩`).
    UniformRange {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
}

impl SpeedDistribution {
    /// The paper's default heterogeneous speed setting `U(1, 5)`.
    pub fn paper_uniform() -> Self {
        SpeedDistribution::UniformRange { lo: 1.0, hi: 5.0 }
    }

    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SpeedDistribution::Constant(_) => "const",
            SpeedDistribution::UniformRange { .. } => "uniform",
        }
    }

    /// Samples `m` speeds.
    pub fn sample<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<f64> {
        match *self {
            SpeedDistribution::Constant(s) => {
                assert!(s > 0.0, "constant speed must be positive");
                vec![s; m]
            }
            SpeedDistribution::UniformRange { lo, hi } => {
                assert!(lo > 0.0 && hi >= lo, "invalid speed range");
                (0..m).map(|_| rng.gen_range(lo..=hi)).collect()
            }
        }
    }
}

/// A complete workload specification: how to draw an [`Instance`] given a
/// latency matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Initial-load distribution.
    pub loads: LoadDistribution,
    /// Average load per server (requests).
    pub avg_load: f64,
    /// Speed distribution.
    pub speeds: SpeedDistribution,
}

impl WorkloadSpec {
    /// Draws an instance over the given latency matrix.
    pub fn sample<R: Rng + ?Sized>(&self, latency: LatencyMatrix, rng: &mut R) -> Instance {
        let m = latency.len();
        let speeds = self.speeds.sample(m, rng);
        let loads = self.loads.sample(m, self.avg_load, rng);
        Instance::new(speeds, loads, latency)
    }
}

/// A standard exponential distribution helper compatible with
/// `rand::distributions::Distribution`, used by the simulators.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    mean: f64,
}

impl Exp {
    /// Exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Self { mean }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        -self.mean * (1.0 - u).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_loads() {
        let mut rng = StdRng::seed_from_u64(1);
        let loads = LoadDistribution::Constant.sample(5, 7.0, &mut rng);
        assert_eq!(loads, vec![7.0; 5]);
    }

    #[test]
    fn uniform_loads_have_right_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let loads = LoadDistribution::Uniform.sample(20_000, 50.0, &mut rng);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean was {mean}");
        assert!(loads.iter().all(|&l| (0.0..=100.0).contains(&l)));
    }

    #[test]
    fn exponential_loads_have_right_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let loads = LoadDistribution::Exponential.sample(50_000, 20.0, &mut rng);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean was {mean}");
        assert!(loads.iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn peak_concentrates_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let loads = LoadDistribution::Peak.sample(10, 100.0, &mut rng);
        let nonzero: Vec<&f64> = loads.iter().filter(|&&l| l > 0.0).collect();
        assert_eq!(nonzero.len(), 1);
        assert_eq!(*nonzero[0], 1000.0);
    }

    #[test]
    fn speed_sampling() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = SpeedDistribution::Constant(2.0).sample(3, &mut rng);
        assert_eq!(s, vec![2.0; 3]);
        let s = SpeedDistribution::paper_uniform().sample(1000, &mut rng);
        assert!(s.iter().all(|&v| (1.0..=5.0).contains(&v)));
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean speed was {mean}");
    }

    #[test]
    fn workload_spec_builds_valid_instance() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 50.0,
            speeds: SpeedDistribution::paper_uniform(),
        };
        let inst = spec.sample(LatencyMatrix::homogeneous(30, 20.0), &mut rng);
        assert_eq!(inst.len(), 30);
        assert!(inst.total_load() > 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(LoadDistribution::Peak.label(), "peak");
        assert_eq!(LoadDistribution::Uniform.label(), "uniform");
        assert_eq!(LoadDistribution::Exponential.label(), "exp");
        assert_eq!(SpeedDistribution::Constant(1.0).label(), "const");
        assert_eq!(SpeedDistribution::paper_uniform().label(), "uniform");
    }

    #[test]
    fn exp_helper_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let exp = Exp::with_mean(4.0);
        let mean: f64 = (0..50_000).map(|_| exp.sample(&mut rng)).sum::<f64>() / 50_000.0;
        assert!((mean - 4.0).abs() < 0.1, "mean was {mean}");
    }
}
