//! Request assignments: who executes whose requests.
//!
//! An [`Assignment`] stores, for every *server* `j`, a sparse ledger of
//! `r_{k→j}` — the number of requests owned by organization `k` that are
//! executed on `j`. This matches the state kept by the paper's
//! distributed algorithm ("each organization `i` keeps for each server
//! `k` the information about the number of requests that were relayed to
//! `i` by `k`") and is equivalent to the relay-fraction matrix `ρ`
//! through `r_{kj} = n_k ρ_{kj}`.

use crate::instance::Instance;
use crate::sparse::SparseVec;
use crate::INVARIANT_TOL;

/// A (fractional) assignment of every organization's requests to servers.
///
/// Invariants maintained by all mutating operations:
/// * every ledger value is non-negative,
/// * `Σ_j r_{kj} = n_k` for every organization `k` (conservation),
/// * the cached per-server loads equal the ledger column sums.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    m: usize,
    /// `ledgers[j]` maps owner `k` to the requests of `k` running on `j`.
    ledgers: Vec<SparseVec>,
    /// Cached loads: `loads[j] = Σ_k ledgers[j][k]`.
    loads: Vec<f64>,
}

impl Assignment {
    /// The identity assignment: every organization executes all of its
    /// own requests locally (`ρ = I`). This is the paper's starting
    /// state for both the distributed algorithm and best-response
    /// dynamics.
    pub fn local(instance: &Instance) -> Self {
        let m = instance.len();
        let mut ledgers = Vec::with_capacity(m);
        let mut loads = Vec::with_capacity(m);
        for i in 0..m {
            let n = instance.own_load(i);
            let mut ledger = SparseVec::new();
            if n > 0.0 {
                ledger.set(i as u32, n);
            }
            ledgers.push(ledger);
            loads.push(n);
        }
        Self { m, ledgers, loads }
    }

    /// Builds an assignment from a dense row-major fraction matrix
    /// `ρ` (`rho[k * m + j]` = fraction of org `k`'s load sent to `j`).
    ///
    /// # Panics
    /// Panics when a row of `ρ` for an organization with positive load
    /// does not sum to 1 (within [`INVARIANT_TOL`]) or contains negative
    /// entries.
    pub fn from_fractions(instance: &Instance, rho: &[f64]) -> Self {
        let m = instance.len();
        assert_eq!(rho.len(), m * m, "fraction matrix must be m*m");
        let mut a = Self {
            m,
            ledgers: vec![SparseVec::new(); m],
            loads: vec![0.0; m],
        };
        for k in 0..m {
            let n = instance.own_load(k);
            let row = &rho[k * m..(k + 1) * m];
            let sum: f64 = row.iter().sum();
            if n > 0.0 {
                assert!(
                    (sum - 1.0).abs() <= INVARIANT_TOL * m as f64,
                    "fraction row {k} sums to {sum}, expected 1"
                );
            }
            for (j, &f) in row.iter().enumerate() {
                assert!(f >= -INVARIANT_TOL, "fraction ({k},{j}) is negative: {f}");
                let r = f.max(0.0) * n;
                if r > 0.0 {
                    a.ledgers[j].add(k as u32, r);
                    a.loads[j] += r;
                }
            }
        }
        a
    }

    /// Converts back to a dense row-major fraction matrix `ρ`.
    /// Organizations with zero load get the identity row.
    pub fn to_fractions(&self, instance: &Instance) -> Vec<f64> {
        let m = self.m;
        let mut rho = vec![0.0; m * m];
        for (j, ledger) in self.ledgers.iter().enumerate() {
            for (k, r) in ledger.iter() {
                let n = instance.own_load(k as usize);
                if n > 0.0 {
                    rho[k as usize * m + j] += r / n;
                }
            }
        }
        for k in 0..m {
            if instance.own_load(k) == 0.0 {
                rho[k * m + k] = 1.0;
            }
        }
        rho
    }

    /// Number of servers.
    #[inline]
    pub fn len(&self) -> usize {
        self.m
    }

    /// Returns `true` for the empty assignment.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Requests of organization `k` executing on server `j`.
    #[inline]
    pub fn requests(&self, k: usize, j: usize) -> f64 {
        self.ledgers[j].get(k as u32)
    }

    /// Current load of server `j` (`l_j`).
    #[inline]
    pub fn load(&self, j: usize) -> f64 {
        self.loads[j]
    }

    /// All server loads.
    #[inline]
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// The ledger of server `j`: `(owner, requests)` pairs sorted by
    /// owner.
    #[inline]
    pub fn ledger(&self, j: usize) -> &SparseVec {
        &self.ledgers[j]
    }

    /// Moves `amount` requests owned by `k` from server `from` to server
    /// `to`, keeping loads in sync.
    ///
    /// # Panics
    /// Panics (in debug builds) when `amount` exceeds what `k` has on
    /// `from` by more than the invariant tolerance.
    pub fn move_requests(&mut self, k: usize, from: usize, to: usize, amount: f64) {
        if amount == 0.0 || from == to {
            return;
        }
        debug_assert!(amount > 0.0, "move amount must be positive");
        let have = self.ledgers[from].get(k as u32);
        debug_assert!(
            amount <= have + INVARIANT_TOL,
            "moving {amount} of org {k} from {from} but only {have} present"
        );
        let moved = amount.min(have);
        self.ledgers[from].add(k as u32, -moved);
        self.ledgers[to].add(k as u32, moved);
        self.loads[from] -= moved;
        self.loads[to] += moved;
    }

    /// Overwrites the ledger of server `j` and patches the cached load.
    /// Used by the pairwise-exchange kernel, which rebuilds two ledgers
    /// at a time.
    pub fn replace_ledger(&mut self, j: usize, ledger: SparseVec) {
        self.loads[j] = ledger.sum();
        self.ledgers[j] = ledger;
    }

    /// Takes the ledger of server `j`, leaving it empty with zero load.
    pub fn take_ledger(&mut self, j: usize) -> SparseVec {
        self.loads[j] = 0.0;
        std::mem::take(&mut self.ledgers[j])
    }

    /// Total requests of organization `k` over all servers
    /// (`Σ_j r_{kj}`); equals `n_k` for a valid assignment.
    pub fn owner_total(&self, k: usize) -> f64 {
        self.ledgers.iter().map(|l| l.get(k as u32)).sum()
    }

    /// The full row of organization `k`: requests on every server.
    pub fn owner_row(&self, k: usize) -> Vec<f64> {
        (0..self.m).map(|j| self.ledgers[j].get(k as u32)).collect()
    }

    /// Replaces organization `k`'s entire row (used by best-response
    /// dynamics). `row[j]` is the amount `k` runs on server `j`.
    pub fn set_owner_row(&mut self, k: usize, row: &[f64]) {
        assert_eq!(row.len(), self.m);
        for (j, &r) in row.iter().enumerate() {
            assert!(r >= -INVARIANT_TOL, "row entry ({k},{j}) negative: {r}");
            let old = self.ledgers[j].get(k as u32);
            let new = r.max(0.0);
            if old != new {
                self.ledgers[j].set(k as u32, new);
                self.loads[j] += new - old;
            }
        }
    }

    /// Amount of requests relayed *away* by organization `i`
    /// (`out(ρ, i) = Σ_{j≠i} r_{ij}` in the paper's Appendix).
    pub fn relayed_out(&self, i: usize) -> f64 {
        let mut out = 0.0;
        for (j, ledger) in self.ledgers.iter().enumerate() {
            if j != i {
                out += ledger.get(i as u32);
            }
        }
        out
    }

    /// Amount of foreign requests hosted by server `i`
    /// (`in(ρ, i) = Σ_{j≠i} r_{ji}`).
    pub fn hosted_foreign(&self, i: usize) -> f64 {
        self.ledgers[i]
            .iter()
            .filter(|&(k, _)| k as usize != i)
            .map(|(_, r)| r)
            .sum()
    }

    /// Verifies all invariants against an instance; returns a
    /// description of the first violation, if any.
    pub fn check_invariants(&self, instance: &Instance) -> Result<(), String> {
        if instance.len() != self.m {
            return Err(format!(
                "dimension mismatch: assignment {} vs instance {}",
                self.m,
                instance.len()
            ));
        }
        let scale = instance.total_load().max(1.0);
        for (j, ledger) in self.ledgers.iter().enumerate() {
            let mut sum = 0.0;
            for (k, r) in ledger.iter() {
                if r < 0.0 {
                    return Err(format!("negative requests r[{k}][{j}] = {r}"));
                }
                sum += r;
            }
            if (sum - self.loads[j]).abs() > INVARIANT_TOL * scale {
                return Err(format!(
                    "cached load of server {j} is {} but ledger sums to {sum}",
                    self.loads[j]
                ));
            }
        }
        for k in 0..self.m {
            let total = self.owner_total(k);
            let n = instance.own_load(k);
            if (total - n).abs() > INVARIANT_TOL * scale {
                return Err(format!(
                    "org {k} has {total} requests assigned but owns {n}"
                ));
            }
        }
        Ok(())
    }

    /// Recomputes cached loads from ledgers, discarding accumulated
    /// floating-point drift. Long-running engines call this
    /// periodically.
    pub fn refresh_loads(&mut self) {
        for j in 0..self.m {
            self.loads[j] = self.ledgers[j].sum();
        }
    }

    /// Number of non-zero `r_{kj}` entries (a sparsity diagnostic).
    pub fn nnz(&self) -> usize {
        self.ledgers.iter().map(|l| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyMatrix;
    use proptest::prelude::*;

    fn inst(m: usize) -> Instance {
        Instance::new(
            (0..m).map(|i| 1.0 + i as f64).collect(),
            (0..m).map(|i| 10.0 * (i + 1) as f64).collect(),
            LatencyMatrix::homogeneous(m, 5.0),
        )
    }

    #[test]
    fn local_assignment_matches_loads() {
        let instance = inst(4);
        let a = Assignment::local(&instance);
        for i in 0..4 {
            assert_eq!(a.load(i), instance.own_load(i));
            assert_eq!(a.requests(i, i), instance.own_load(i));
        }
        a.check_invariants(&instance).unwrap();
        assert_eq!(a.nnz(), 4);
    }

    #[test]
    fn move_requests_conserves() {
        let instance = inst(3);
        let mut a = Assignment::local(&instance);
        a.move_requests(0, 0, 2, 4.0);
        assert_eq!(a.requests(0, 0), 6.0);
        assert_eq!(a.requests(0, 2), 4.0);
        assert_eq!(a.load(0), 6.0);
        assert_eq!(a.load(2), 34.0);
        a.check_invariants(&instance).unwrap();
    }

    #[test]
    fn move_zero_or_self_is_noop() {
        let instance = inst(2);
        let mut a = Assignment::local(&instance);
        let before = a.clone();
        a.move_requests(0, 0, 1, 0.0);
        a.move_requests(0, 0, 0, 5.0);
        assert_eq!(a, before);
    }

    #[test]
    fn fraction_roundtrip() {
        let instance = inst(3);
        let rho = vec![
            0.5, 0.25, 0.25, //
            0.0, 1.0, 0.0, //
            0.1, 0.2, 0.7,
        ];
        let a = Assignment::from_fractions(&instance, &rho);
        a.check_invariants(&instance).unwrap();
        let back = a.to_fractions(&instance);
        for (x, y) in rho.iter().zip(back.iter()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn zero_load_org_gets_identity_fraction_row() {
        let instance = Instance::new(vec![1.0, 1.0], vec![0.0, 8.0], LatencyMatrix::zero(2));
        let a = Assignment::local(&instance);
        let rho = a.to_fractions(&instance);
        assert_eq!(rho, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn from_fractions_rejects_bad_row() {
        let instance = inst(2);
        Assignment::from_fractions(&instance, &[0.5, 0.4, 0.0, 1.0]);
    }

    #[test]
    fn set_owner_row_updates_loads() {
        let instance = inst(2);
        let mut a = Assignment::local(&instance);
        a.set_owner_row(0, &[2.0, 8.0]);
        assert_eq!(a.load(0), 2.0);
        assert_eq!(a.load(1), 28.0);
        a.check_invariants(&instance).unwrap();
    }

    #[test]
    fn relayed_out_and_hosted_foreign() {
        let instance = inst(2);
        let mut a = Assignment::local(&instance);
        a.move_requests(0, 0, 1, 3.0);
        assert_eq!(a.relayed_out(0), 3.0);
        assert_eq!(a.relayed_out(1), 0.0);
        assert_eq!(a.hosted_foreign(1), 3.0);
        assert_eq!(a.hosted_foreign(0), 0.0);
    }

    #[test]
    fn take_and_replace_ledger() {
        let instance = inst(2);
        let mut a = Assignment::local(&instance);
        let ledger = a.take_ledger(0);
        assert_eq!(a.load(0), 0.0);
        assert_eq!(ledger.sum(), 10.0);
        a.replace_ledger(0, ledger);
        assert_eq!(a.load(0), 10.0);
        a.check_invariants(&instance).unwrap();
    }

    proptest! {
        #[test]
        fn prop_moves_preserve_invariants(
            moves in prop::collection::vec((0usize..4, 0usize..4, 0usize..4, 0.0f64..5.0), 0..60)
        ) {
            let instance = inst(4);
            let mut a = Assignment::local(&instance);
            for (k, from, to, amount) in moves {
                let available = a.requests(k, from);
                let amt = amount.min(available);
                if amt > 0.0 {
                    a.move_requests(k, from, to, amt);
                }
            }
            prop_assert!(a.check_invariants(&instance).is_ok());
        }

        #[test]
        fn prop_fraction_roundtrip(rows in prop::collection::vec(
            prop::collection::vec(0.01f64..1.0, 4), 4
        )) {
            let instance = inst(4);
            let m = 4;
            let mut rho = vec![0.0; m * m];
            for (k, row) in rows.iter().enumerate() {
                let s: f64 = row.iter().sum();
                for (j, &v) in row.iter().enumerate() {
                    rho[k * m + j] = v / s;
                }
            }
            let a = Assignment::from_fractions(&instance, &rho);
            prop_assert!(a.check_invariants(&instance).is_ok());
            let back = a.to_fractions(&instance);
            for (x, y) in rho.iter().zip(back.iter()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
