//! Pairwise communication-latency matrices.
//!
//! The model assumes the latency `c_{ij}` of relaying a single request
//! between servers `i` and `j` is a constant that does not depend on the
//! exchanged volume (validated by the paper's PlanetLab experiment, which
//! `dlb-netsim` recreates). `c_{ii} = 0` always. An entry of
//! `f64::INFINITY` encodes "organization `i` may not relay to `j`"
//! (the trust-restricted variant from §II).
//!
//! Storage is adaptive: the paper's homogeneous network (`c_{ij} = c`)
//! is held as a single scalar — `O(1)` memory instead of the dense
//! `m²` table, which at the 100 000-server scale the event runtime
//! targets would be an 80 GB allocation. Heterogeneous generators get
//! the dense representation the moment they write a non-uniform entry.

/// An `m × m` matrix of pairwise communication latencies in
/// milliseconds.
///
/// The matrix is not required to be symmetric (real RTT measurements are
/// mildly asymmetric) but must have a zero diagonal and non-negative
/// entries. Equality is semantic (entry-wise), independent of the
/// internal representation.
#[derive(Debug, Clone)]
pub struct LatencyMatrix {
    m: usize,
    storage: Storage,
}

#[derive(Debug, Clone)]
enum Storage {
    /// Row-major `m * m` entries.
    Dense(Vec<f64>),
    /// `c_{ij} = c` for every `i ≠ j`, zero diagonal. Covers both the
    /// paper's homogeneous network and the degenerate single-site
    /// (all-zero) network without materializing `m²` floats.
    Homogeneous(f64),
}

impl LatencyMatrix {
    /// Builds a latency matrix from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != m * m`, a diagonal entry is non-zero,
    /// or any entry is negative / NaN.
    pub fn from_rows(m: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), m * m, "latency data must be m*m");
        for i in 0..m {
            assert_eq!(data[i * m + i], 0.0, "diagonal latency must be zero");
        }
        for (idx, &v) in data.iter().enumerate() {
            assert!(
                v >= 0.0,
                "latency must be non-negative (entry {idx} is {v})"
            );
        }
        Self {
            m,
            storage: Storage::Dense(data),
        }
    }

    /// A fully connected homogeneous network: `c_{ij} = c` for all
    /// `i ≠ j` (the paper's `c_{ij} = 20` configuration). `O(1)` memory
    /// for any `m`.
    pub fn homogeneous(m: usize, c: f64) -> Self {
        assert!(c >= 0.0, "latency must be non-negative");
        Self {
            m,
            storage: Storage::Homogeneous(c),
        }
    }

    /// The degenerate single-site network (all latencies zero): classic
    /// delay-oblivious load balancing.
    pub fn zero(m: usize) -> Self {
        Self {
            m,
            storage: Storage::Homogeneous(0.0),
        }
    }

    /// Number of servers.
    #[inline]
    pub fn len(&self) -> usize {
        self.m
    }

    /// Returns `true` for the empty (0-server) matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// When every off-diagonal entry is the *same* constant `c` (and the
    /// matrix is stored compactly as such), returns `Some(c)`.
    ///
    /// This is a representation query, not an `O(m²)` content scan: a
    /// dense matrix that happens to be uniform returns `None`. Callers
    /// use it to pick `O(k)` fast paths (e.g. nearest-`k` candidate
    /// construction) that would otherwise scan full rows.
    #[inline]
    pub fn homogeneous_value(&self) -> Option<f64> {
        match self.storage {
            Storage::Homogeneous(c) => Some(c),
            Storage::Dense(_) => None,
        }
    }

    /// Latency from server `i` to server `j` in ms.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.m && j < self.m);
        match &self.storage {
            Storage::Dense(data) => data[i * self.m + j],
            Storage::Homogeneous(c) => {
                if i == j {
                    0.0
                } else {
                    *c
                }
            }
        }
    }

    /// Mutable access used by topology generators.
    ///
    /// A compactly stored homogeneous matrix densifies on the first
    /// write that breaks uniformity (generators only do this at
    /// generator scale, never on the 100k fast path).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(value >= 0.0, "latency must be non-negative");
        assert!(i != j || value == 0.0, "diagonal latency must stay zero");
        if let Storage::Homogeneous(c) = self.storage {
            if i == j || value == c {
                return; // still uniform, nothing to store
            }
            self.densify();
        }
        match &mut self.storage {
            Storage::Dense(data) => data[i * self.m + j] = value,
            Storage::Homogeneous(_) => unreachable!("densified above"),
        }
    }

    /// Materializes the dense representation (no-op when already dense).
    fn densify(&mut self) {
        if let Storage::Homogeneous(c) = self.storage {
            let mut data = vec![c; self.m * self.m];
            for i in 0..self.m {
                data[i * self.m + i] = 0.0;
            }
            self.storage = Storage::Dense(data);
        }
    }

    /// Mean off-diagonal finite latency; `0` for `m < 2`.
    pub fn mean_latency(&self) -> f64 {
        match &self.storage {
            Storage::Homogeneous(c) => {
                if self.m >= 2 && c.is_finite() {
                    *c
                } else {
                    0.0
                }
            }
            Storage::Dense(data) => {
                let mut sum = 0.0;
                let mut count = 0usize;
                for i in 0..self.m {
                    for j in 0..self.m {
                        if i != j && data[i * self.m + j].is_finite() {
                            sum += data[i * self.m + j];
                            count += 1;
                        }
                    }
                }
                if count == 0 {
                    0.0
                } else {
                    sum / count as f64
                }
            }
        }
    }

    /// Largest finite off-diagonal latency (0 when none).
    pub fn max_latency(&self) -> f64 {
        match &self.storage {
            Storage::Homogeneous(c) => {
                if self.m >= 2 && c.is_finite() {
                    *c
                } else {
                    0.0
                }
            }
            Storage::Dense(data) => data
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .fold(0.0, f64::max),
        }
    }

    /// Returns `true` when the matrix satisfies the triangle inequality
    /// `c_{ij} ≤ c_{ik} + c_{kj}` up to `tol`.
    ///
    /// The paper assumes the network layer already routes optimally, so
    /// model inputs should be metric-closed; topology generators use
    /// [`Self::metric_close`] to enforce this.
    pub fn is_metric(&self, tol: f64) -> bool {
        let m = self.m;
        let data = match &self.storage {
            // c ≤ c + c holds for every non-negative c (including ∞).
            Storage::Homogeneous(_) => return true,
            Storage::Dense(data) => data,
        };
        for k in 0..m {
            for i in 0..m {
                let cik = data[i * m + k];
                if !cik.is_finite() {
                    continue;
                }
                for j in 0..m {
                    let ckj = data[k * m + j];
                    if ckj.is_finite() && data[i * m + j] > cik + ckj + tol {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Replaces every entry by the shortest-path distance (Floyd-Warshall
    /// metric closure). This mirrors the paper's footnote 3: the iPlane
    /// dataset is incomplete, so missing pairs are filled with minimal
    /// distances.
    pub fn metric_close(&mut self) {
        let m = self.m;
        let data = match &mut self.storage {
            // Already metric: direct hop c never beats c + c.
            Storage::Homogeneous(_) => return,
            Storage::Dense(data) => data,
        };
        for k in 0..m {
            for i in 0..m {
                let cik = data[i * m + k];
                if !cik.is_finite() {
                    continue;
                }
                for j in 0..m {
                    let through = cik + data[k * m + j];
                    if through < data[i * m + j] {
                        data[i * m + j] = through;
                    }
                }
            }
        }
    }

    /// Returns `true` when every off-diagonal entry is finite, i.e. the
    /// relay graph is complete.
    pub fn is_complete(&self) -> bool {
        match &self.storage {
            Storage::Homogeneous(c) => self.m < 2 || c.is_finite(),
            Storage::Dense(data) => data.iter().all(|v| v.is_finite()),
        }
    }
}

impl PartialEq for LatencyMatrix {
    /// Entry-wise equality regardless of representation: a densified
    /// homogeneous matrix still equals its compact twin.
    fn eq(&self, other: &Self) -> bool {
        if self.m != other.m {
            return false;
        }
        match (&self.storage, &other.storage) {
            (Storage::Homogeneous(a), Storage::Homogeneous(b)) => self.m < 2 || a == b,
            (Storage::Dense(a), Storage::Dense(b)) => a == b,
            _ => (0..self.m).all(|i| (0..self.m).all(|j| self.get(i, j) == other.get(i, j))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn homogeneous_shape() {
        let c = LatencyMatrix::homogeneous(4, 20.0);
        assert_eq!(c.len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                let expected = if i == j { 0.0 } else { 20.0 };
                assert_eq!(c.get(i, j), expected);
            }
        }
        assert_eq!(c.mean_latency(), 20.0);
        assert_eq!(c.max_latency(), 20.0);
        assert!(c.is_metric(1e-12));
    }

    #[test]
    fn zero_matrix() {
        let c = LatencyMatrix::zero(3);
        assert_eq!(c.mean_latency(), 0.0);
        assert!(c.is_metric(0.0));
        assert!(c.is_complete());
    }

    #[test]
    fn homogeneous_is_compact_and_densifies_on_nonuniform_write() {
        let mut c = LatencyMatrix::homogeneous(5, 20.0);
        assert_eq!(c.homogeneous_value(), Some(20.0));
        c.set(1, 2, 20.0); // uniform write: stays compact
        c.set(3, 3, 0.0); // diagonal write: stays compact
        assert_eq!(c.homogeneous_value(), Some(20.0));
        c.set(1, 2, 7.0); // breaks uniformity: densifies
        assert_eq!(c.homogeneous_value(), None);
        assert_eq!(c.get(1, 2), 7.0);
        assert_eq!(c.get(2, 1), 20.0);
        assert_eq!(c.get(4, 4), 0.0);
    }

    #[test]
    fn compact_scales_to_figure2_sizes() {
        // The dense form of this matrix would be 80 GB.
        let c = LatencyMatrix::homogeneous(100_000, 20.0);
        assert_eq!(c.len(), 100_000);
        assert_eq!(c.get(0, 99_999), 20.0);
        assert_eq!(c.get(99_999, 99_999), 0.0);
        assert_eq!(c.mean_latency(), 20.0);
        assert_eq!(c.max_latency(), 20.0);
        assert!(c.is_metric(1e-12));
        assert!(c.is_complete());
    }

    #[test]
    fn equality_is_semantic_across_representations() {
        let compact = LatencyMatrix::homogeneous(4, 20.0);
        let mut densified = LatencyMatrix::homogeneous(4, 20.0);
        densified.set(0, 1, 5.0);
        densified.set(0, 1, 20.0); // back to uniform content, dense storage
        assert_eq!(compact, densified);
        assert_eq!(densified, compact);
        let mut data = vec![20.0; 16];
        for i in 0..4 {
            data[i * 4 + i] = 0.0;
        }
        assert_eq!(compact, LatencyMatrix::from_rows(4, data));
        assert_ne!(compact, LatencyMatrix::homogeneous(4, 19.0));
        assert_ne!(compact, LatencyMatrix::homogeneous(5, 20.0));
    }

    #[test]
    #[should_panic(expected = "diagonal latency must be zero")]
    fn rejects_nonzero_diagonal() {
        LatencyMatrix::from_rows(2, vec![1.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        LatencyMatrix::from_rows(2, vec![0.0, -2.0, 2.0, 0.0]);
    }

    #[test]
    fn metric_close_fixes_violations() {
        // c(0,2) = 100 but 0 -> 1 -> 2 costs 3.
        let mut c =
            LatencyMatrix::from_rows(3, vec![0.0, 1.0, 100.0, 1.0, 0.0, 2.0, 100.0, 2.0, 0.0]);
        assert!(!c.is_metric(1e-12));
        c.metric_close();
        assert!(c.is_metric(1e-12));
        assert_eq!(c.get(0, 2), 3.0);
        assert_eq!(c.get(2, 0), 3.0);
    }

    #[test]
    fn metric_close_completes_infinite_entries() {
        let mut c = LatencyMatrix::homogeneous(3, 5.0);
        c.set(0, 2, f64::INFINITY);
        assert!(!c.is_complete());
        c.metric_close();
        assert!(c.is_complete());
        assert_eq!(c.get(0, 2), 10.0); // via server 1
    }

    #[test]
    fn restricted_graph_keeps_unreachable_infinite() {
        // 0 and 1 mutually reachable, 2 isolated.
        let inf = f64::INFINITY;
        let mut c = LatencyMatrix::from_rows(3, vec![0.0, 1.0, inf, 1.0, 0.0, inf, inf, inf, 0.0]);
        c.metric_close();
        assert!(c.get(0, 2).is_infinite());
        assert!(c.get(2, 1).is_infinite());
        assert_eq!(c.get(0, 1), 1.0);
    }

    proptest! {
        #[test]
        fn prop_metric_close_is_idempotent_and_metric(
            vals in prop::collection::vec(0.1f64..100.0, 36)
        ) {
            let m = 6;
            let mut data = vals;
            for i in 0..m { data[i * m + i] = 0.0; }
            let mut c = LatencyMatrix::from_rows(m, data);
            c.metric_close();
            prop_assert!(c.is_metric(1e-9));
            let once = c.clone();
            c.metric_close();
            for i in 0..m {
                for j in 0..m {
                    prop_assert!((c.get(i, j) - once.get(i, j)).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn prop_metric_close_never_increases(
            vals in prop::collection::vec(0.1f64..50.0, 25)
        ) {
            let m = 5;
            let mut data = vals;
            for i in 0..m { data[i * m + i] = 0.0; }
            let orig = LatencyMatrix::from_rows(m, data);
            let mut closed = orig.clone();
            closed.metric_close();
            for i in 0..m {
                for j in 0..m {
                    prop_assert!(closed.get(i, j) <= orig.get(i, j) + 1e-12);
                }
            }
        }
    }
}
