//! Dense pairwise communication-latency matrices.
//!
//! The model assumes the latency `c_{ij}` of relaying a single request
//! between servers `i` and `j` is a constant that does not depend on the
//! exchanged volume (validated by the paper's PlanetLab experiment, which
//! `dlb-netsim` recreates). `c_{ii} = 0` always. An entry of
//! `f64::INFINITY` encodes "organization `i` may not relay to `j`"
//! (the trust-restricted variant from §II).

/// A dense `m × m` matrix of pairwise communication latencies in
/// milliseconds.
///
/// The matrix is not required to be symmetric (real RTT measurements are
/// mildly asymmetric) but must have a zero diagonal and non-negative
/// entries.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyMatrix {
    m: usize,
    data: Vec<f64>,
}

impl LatencyMatrix {
    /// Builds a latency matrix from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != m * m`, a diagonal entry is non-zero,
    /// or any entry is negative / NaN.
    pub fn from_rows(m: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), m * m, "latency data must be m*m");
        for i in 0..m {
            assert_eq!(data[i * m + i], 0.0, "diagonal latency must be zero");
        }
        for (idx, &v) in data.iter().enumerate() {
            assert!(
                v >= 0.0,
                "latency must be non-negative (entry {idx} is {v})"
            );
        }
        Self { m, data }
    }

    /// A fully connected homogeneous network: `c_{ij} = c` for all
    /// `i ≠ j` (the paper's `c_{ij} = 20` configuration).
    pub fn homogeneous(m: usize, c: f64) -> Self {
        assert!(c >= 0.0, "latency must be non-negative");
        let mut data = vec![c; m * m];
        for i in 0..m {
            data[i * m + i] = 0.0;
        }
        Self { m, data }
    }

    /// The degenerate single-site network (all latencies zero): classic
    /// delay-oblivious load balancing.
    pub fn zero(m: usize) -> Self {
        Self {
            m,
            data: vec![0.0; m * m],
        }
    }

    /// Number of servers.
    #[inline]
    pub fn len(&self) -> usize {
        self.m
    }

    /// Returns `true` for the empty (0-server) matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Latency from server `i` to server `j` in ms.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.m && j < self.m);
        self.data[i * self.m + j]
    }

    /// Mutable access used by topology generators.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(value >= 0.0, "latency must be non-negative");
        assert!(i != j || value == 0.0, "diagonal latency must stay zero");
        self.data[i * self.m + j] = value;
    }

    /// Row `i` as a slice (latencies from server `i` to every server).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.m..(i + 1) * self.m]
    }

    /// Mean off-diagonal finite latency; `0` for `m < 2`.
    pub fn mean_latency(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..self.m {
            for j in 0..self.m {
                if i != j && self.data[i * self.m + j].is_finite() {
                    sum += self.data[i * self.m + j];
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Largest finite off-diagonal latency (0 when none).
    pub fn max_latency(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0, f64::max)
    }

    /// Returns `true` when the matrix satisfies the triangle inequality
    /// `c_{ij} ≤ c_{ik} + c_{kj}` up to `tol`.
    ///
    /// The paper assumes the network layer already routes optimally, so
    /// model inputs should be metric-closed; topology generators use
    /// [`Self::metric_close`] to enforce this.
    pub fn is_metric(&self, tol: f64) -> bool {
        let m = self.m;
        for k in 0..m {
            for i in 0..m {
                let cik = self.get(i, k);
                if !cik.is_finite() {
                    continue;
                }
                for j in 0..m {
                    let ckj = self.get(k, j);
                    if ckj.is_finite() && self.get(i, j) > cik + ckj + tol {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Replaces every entry by the shortest-path distance (Floyd-Warshall
    /// metric closure). This mirrors the paper's footnote 3: the iPlane
    /// dataset is incomplete, so missing pairs are filled with minimal
    /// distances.
    pub fn metric_close(&mut self) {
        let m = self.m;
        for k in 0..m {
            for i in 0..m {
                let cik = self.data[i * m + k];
                if !cik.is_finite() {
                    continue;
                }
                for j in 0..m {
                    let through = cik + self.data[k * m + j];
                    if through < self.data[i * m + j] {
                        self.data[i * m + j] = through;
                    }
                }
            }
        }
    }

    /// Returns `true` when every off-diagonal entry is finite, i.e. the
    /// relay graph is complete.
    pub fn is_complete(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn homogeneous_shape() {
        let c = LatencyMatrix::homogeneous(4, 20.0);
        assert_eq!(c.len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                let expected = if i == j { 0.0 } else { 20.0 };
                assert_eq!(c.get(i, j), expected);
            }
        }
        assert_eq!(c.mean_latency(), 20.0);
        assert_eq!(c.max_latency(), 20.0);
        assert!(c.is_metric(1e-12));
    }

    #[test]
    fn zero_matrix() {
        let c = LatencyMatrix::zero(3);
        assert_eq!(c.mean_latency(), 0.0);
        assert!(c.is_metric(0.0));
        assert!(c.is_complete());
    }

    #[test]
    #[should_panic(expected = "diagonal latency must be zero")]
    fn rejects_nonzero_diagonal() {
        LatencyMatrix::from_rows(2, vec![1.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        LatencyMatrix::from_rows(2, vec![0.0, -2.0, 2.0, 0.0]);
    }

    #[test]
    fn metric_close_fixes_violations() {
        // c(0,2) = 100 but 0 -> 1 -> 2 costs 3.
        let mut c =
            LatencyMatrix::from_rows(3, vec![0.0, 1.0, 100.0, 1.0, 0.0, 2.0, 100.0, 2.0, 0.0]);
        assert!(!c.is_metric(1e-12));
        c.metric_close();
        assert!(c.is_metric(1e-12));
        assert_eq!(c.get(0, 2), 3.0);
        assert_eq!(c.get(2, 0), 3.0);
    }

    #[test]
    fn metric_close_completes_infinite_entries() {
        let mut c = LatencyMatrix::homogeneous(3, 5.0);
        c.set(0, 2, f64::INFINITY);
        assert!(!c.is_complete());
        c.metric_close();
        assert!(c.is_complete());
        assert_eq!(c.get(0, 2), 10.0); // via server 1
    }

    #[test]
    fn restricted_graph_keeps_unreachable_infinite() {
        // 0 and 1 mutually reachable, 2 isolated.
        let inf = f64::INFINITY;
        let mut c = LatencyMatrix::from_rows(3, vec![0.0, 1.0, inf, 1.0, 0.0, inf, inf, inf, 0.0]);
        c.metric_close();
        assert!(c.get(0, 2).is_infinite());
        assert!(c.get(2, 1).is_infinite());
        assert_eq!(c.get(0, 1), 1.0);
    }

    proptest! {
        #[test]
        fn prop_metric_close_is_idempotent_and_metric(
            vals in prop::collection::vec(0.1f64..100.0, 36)
        ) {
            let m = 6;
            let mut data = vals;
            for i in 0..m { data[i * m + i] = 0.0; }
            let mut c = LatencyMatrix::from_rows(m, data);
            c.metric_close();
            prop_assert!(c.is_metric(1e-9));
            let once = c.clone();
            c.metric_close();
            for i in 0..m {
                for j in 0..m {
                    prop_assert!((c.get(i, j) - once.get(i, j)).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn prop_metric_close_never_increases(
            vals in prop::collection::vec(0.1f64..50.0, 25)
        ) {
            let m = 5;
            let mut data = vals;
            for i in 0..m { data[i * m + i] = 0.0; }
            let orig = LatencyMatrix::from_rows(m, data);
            let mut closed = orig.clone();
            closed.metric_close();
            for i in 0..m {
                for j in 0..m {
                    prop_assert!(closed.get(i, j) <= orig.get(i, j) + 1e-12);
                }
            }
        }
    }
}
