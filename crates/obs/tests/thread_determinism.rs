//! Sharded metric accumulation must be `DLB_THREADS`-invariant: folding
//! one event stream into per-worker [`MetricSet`] shards over the
//! `dlb-par` pool and merging them produces a bit-identical result for
//! every thread count — and for the sequential fold.
//!
//! This is the end-to-end check behind the merge-law property tests in
//! `src/proptests.rs`: `par_fold_indexed` pushes worker results in
//! **completion order**, so the test exercises real merge-order
//! nondeterminism, which only commutative+associative integer state
//! survives bit-for-bit.
//!
//! This file is its own test binary so the `DLB_THREADS` mutations
//! cannot race with unrelated tests.

use dlb_obs::{Histogram, MetricSet, TraceEvent, TraceKind, KIND_COUNT};
use std::sync::Mutex;

/// Both tests mutate the process-wide `DLB_THREADS` variable; they must
/// not interleave within this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A deterministic synthetic event, derived arithmetically from its
/// index (no RNG: the stream itself must be identical on every path).
fn synth(i: usize) -> TraceEvent {
    TraceEvent {
        kind: TraceKind::from_u8((i % KIND_COUNT) as u8).expect("in range"),
        at_ms: i as f64 * 0.37,
        node: (i % 97) as u32,
        peer: ((i * 7) % 97) as u32,
        round: (i / 97) as u64,
        tag: (i % 5) as u8,
        detail: ((i * i) % 1009) as f64 * 0.25,
    }
}

const N: usize = 20_000;

fn sharded_fold() -> MetricSet {
    dlb_par::par_fold_indexed(
        N,
        MetricSet::default,
        |mut acc, i| {
            acc.ingest(&synth(i));
            acc
        },
        |mut a, b| {
            a.merge(&b);
            a
        },
    )
}

#[test]
fn sharded_metric_folds_are_thread_count_invariant() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut reference = MetricSet::default();
    for i in 0..N {
        reference.ingest(&synth(i));
    }
    assert_eq!(reference.total(), N as u64);
    assert!(
        reference.frame_latency_ms.count() > 0,
        "stream must be non-trivial"
    );

    std::env::set_var("DLB_THREADS", "1");
    let one = sharded_fold();
    std::env::set_var("DLB_THREADS", "4");
    let four = sharded_fold();
    std::env::remove_var("DLB_THREADS");
    let default = sharded_fold();

    assert_eq!(
        one, reference,
        "DLB_THREADS=1 diverged from the sequential fold"
    );
    assert_eq!(
        four, reference,
        "DLB_THREADS=4 diverged from the sequential fold"
    );
    assert_eq!(default, reference, "default thread count diverged");
}

#[test]
fn sharded_histograms_are_thread_count_invariant() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sample = |i: usize| ((i * 31 + 7) % 4099) as f64 * 0.125;
    let fold = || {
        dlb_par::par_fold_indexed(
            N,
            Histogram::default,
            |mut h, i| {
                h.record(sample(i));
                h
            },
            |mut a, b| {
                a.merge(&b);
                a
            },
        )
    };
    let mut reference = Histogram::default();
    for i in 0..N {
        reference.record(sample(i));
    }

    std::env::set_var("DLB_THREADS", "1");
    let one = fold();
    std::env::set_var("DLB_THREADS", "4");
    let four = fold();
    std::env::remove_var("DLB_THREADS");
    let default = fold();

    for (label, h) in [("1", &one), ("4", &four), ("default", &default)] {
        assert_eq!(h, &reference, "DLB_THREADS={label} diverged");
        // The quantities records surface are equal *because* the state
        // is — spot-check the derived views too.
        assert_eq!(h.quantile(0.5).to_bits(), reference.quantile(0.5).to_bits());
        assert_eq!(h.mean().to_bits(), reference.mean().to_bits());
    }
}
