//! Trace sinks: where emitted [`TraceEvent`]s go.
//!
//! The executor threads one `&mut dyn TraceSink` through its hot loop
//! and guards every emission with [`TraceSink::enabled`] — with the
//! default [`NullSink`] the whole observability plane costs one
//! predictable branch per hook, constructs no event, and allocates
//! nothing, so untraced runs stay byte-identical to the pre-obs
//! executor.

use crate::event::TraceEvent;
use crate::metrics::MetricSet;

/// Receives trace events in emission order (which, on the virtual
/// clock, is delivery order — deterministic per seed).
pub trait TraceSink {
    /// Whether emissions should be constructed at all. Hook sites
    /// check this *before* building the event, so a disabled sink
    /// costs one branch.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn emit(&mut self, ev: &TraceEvent);
}

/// The disabled plane: reports `enabled() == false` and ignores
/// everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _ev: &TraceEvent) {}
}

/// Buffers every event in memory — the recording sink behind
/// `trace=frames:FILE` and the comparison side of replay.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for MemorySink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// Streams events straight into a [`MetricSet`] without buffering —
/// the `trace=summary` sink.
#[derive(Debug, Default, Clone)]
pub struct SummarySink {
    /// The accumulated metrics.
    pub metrics: MetricSet,
}

impl TraceSink for SummarySink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.metrics.ingest(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.emit(&TraceEvent::mark(TraceKind::RoundBegin, 0.0, 0));
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut s = MemorySink::default();
        assert!(s.enabled());
        for i in 0..5 {
            s.emit(&TraceEvent::mark(TraceKind::StreamArrival, i as f64, i));
        }
        assert_eq!(s.events.len(), 5);
        assert_eq!(s.events[3].node, 3);
    }

    #[test]
    fn summary_sink_counts() {
        let mut s = SummarySink::default();
        s.emit(&TraceEvent::mark(TraceKind::RoundBegin, 0.0, 0));
        s.emit(&TraceEvent::mark(TraceKind::RoundBegin, 1.0, 0));
        assert_eq!(s.metrics.count(TraceKind::RoundBegin), 2);
    }
}
