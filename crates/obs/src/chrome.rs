//! Chrome trace-event JSON export (`chrome://tracing`, Perfetto).
//!
//! Maps the virtual timeline onto the trace-event format: protocol
//! rounds become complete-event spans (`ph:"X"`) on the coordinator
//! track, frames become flow arrows (`ph:"s"`/`"f"`) from source to
//! destination track, and drops / detector verdicts / stream traffic
//! become instant events (`ph:"i"`). Timestamps are virtual
//! microseconds (`ts = at_ms · 1000`), so the viewer's ruler reads in
//! simulated time.

use crate::event::{tag_label, TraceKind, NODE_COORD};
use crate::framelog::FrameLog;

/// Track id for a node (coordinator gets track 0, node `n` track
/// `n + 1`).
fn tid(node: u32) -> u64 {
    if node == NODE_COORD {
        0
    } else {
        node as u64 + 1
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_event(out: &mut Vec<String>, body: String) {
    out.push(format!("{{{body}}}"));
}

/// Renders the log as one Chrome trace-event JSON document.
pub fn render(log: &FrameLog) -> String {
    let mut evs: Vec<String> = Vec::new();
    push_event(
        &mut evs,
        format!(
            "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}",
            esc(&log.spec)
        ),
    );
    push_event(
        &mut evs,
        "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"coordinator\"}"
            .to_string(),
    );
    let mut open_round: Option<(u64, f64)> = None;
    let mut flow_id: u64 = 0;
    for ev in &log.events {
        let ts = ev.at_ms * 1000.0;
        match ev.kind {
            TraceKind::RoundBegin => open_round = Some((ev.round, ts)),
            TraceKind::RoundEnd => {
                let (round, t0) = open_round.take().unwrap_or((ev.round, ts));
                push_event(
                    &mut evs,
                    format!(
                        "\"name\":\"round {round}\",\"cat\":\"round\",\"ph\":\"X\",\
                         \"ts\":{t0},\"dur\":{},\"pid\":0,\"tid\":0",
                        ts - t0
                    ),
                );
            }
            TraceKind::FrameScheduled => {
                flow_id += 1;
                let name = tag_label(ev.tag);
                push_event(
                    &mut evs,
                    format!(
                        "\"name\":\"{name}\",\"cat\":\"frame\",\"ph\":\"s\",\"id\":{flow_id},\
                         \"ts\":{ts},\"pid\":0,\"tid\":{}",
                        tid(ev.peer)
                    ),
                );
                push_event(
                    &mut evs,
                    format!(
                        "\"name\":\"{name}\",\"cat\":\"frame\",\"ph\":\"f\",\"bp\":\"e\",\
                         \"id\":{flow_id},\"ts\":{},\"pid\":0,\"tid\":{}",
                        ts + ev.detail * 1000.0,
                        tid(ev.node)
                    ),
                );
            }
            TraceKind::FrameDropped
            | TraceKind::DetectorSuspect
            | TraceKind::DetectorExclude
            | TraceKind::DetectorRejoin
            | TraceKind::ExchangeAbort
            | TraceKind::StreamArrival
            | TraceKind::StreamDeparture
            | TraceKind::StreamDrop => {
                push_event(
                    &mut evs,
                    format!(
                        "\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{ts},\"pid\":0,\"tid\":{}",
                        ev.kind.label(),
                        ev.kind.family(),
                        tid(ev.node)
                    ),
                );
            }
            // Deliveries are witnessed by the flow arrow's `f` end;
            // the remaining kinds stay table-only.
            _ => {}
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        evs.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, NO_PEER};
    use crate::framelog::Trailer;

    fn log_with(events: Vec<TraceEvent>) -> FrameLog {
        FrameLog {
            spec: "algo=protocol m=4 runtime=events".into(),
            events,
            trailer: Trailer {
                event_hash: 1,
                final_cost: 2.0,
                rounds: 1,
                exchanges: 0,
                virtual_ms: 30.0,
            },
        }
    }

    #[test]
    fn rounds_become_spans_and_frames_become_flows() {
        let json = render(&log_with(vec![
            TraceEvent {
                kind: TraceKind::RoundBegin,
                at_ms: 0.0,
                node: NODE_COORD,
                peer: NO_PEER,
                round: 1,
                tag: 0,
                detail: 0.0,
            },
            TraceEvent {
                kind: TraceKind::FrameScheduled,
                at_ms: 1.0,
                node: 2,
                peer: NODE_COORD,
                round: 1,
                tag: 1,
                detail: 10.5,
            },
            TraceEvent {
                kind: TraceKind::RoundEnd,
                at_ms: 30.0,
                node: NODE_COORD,
                peer: NO_PEER,
                round: 1,
                tag: 0,
                detail: 30.0,
            },
        ]));
        assert!(json.contains("\"name\":\"round 1\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"dur\":30000"), "{json}");
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        // The flow lands on the destination's track at ts+flight.
        assert!(json.contains("\"ts\":11500,\"pid\":0,\"tid\":3"), "{json}");
        // Valid JSON per the bench-report parser's value grammar: at
        // minimum it must be non-empty and brace-balanced.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn drops_become_instants() {
        let json = render(&log_with(vec![TraceEvent {
            kind: TraceKind::FrameDropped,
            at_ms: 5.0,
            node: 1,
            peer: 0,
            round: 2,
            tag: 5,
            detail: 1.0,
        }]));
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("frame_dropped"), "{json}");
    }
}
