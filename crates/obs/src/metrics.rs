//! RNG-free, merge-deterministic metrics: log-bucketed histograms and
//! per-kind counters.
//!
//! Determinism discipline (the PR 7 Welford-estimator pattern, taken
//! one step further): every accumulator holds only *integer* state —
//! bucket counts, event counts, and a running sum in the same
//! quantized 1/1024-ms units the buckets use — plus min/max, whose
//! `min`/`max` folds are exactly associative and commutative. Integer
//! addition is associative and commutative bit-for-bit, so
//! [`MetricSet::merge`] produces identical totals for **any** shard
//! partition and **any** merge order: per-worker shards merged in
//! worker-id order are bit-identical across every `DLB_THREADS`
//! value, with no dependence on how the pool chunked the items. The
//! property tests pin both laws.

use crate::event::{TraceEvent, TraceKind, KIND_COUNT};

/// Number of log buckets: sub-millisecond up through ~2⁵³ ms.
pub const BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram over milliseconds.
///
/// Bucketing is integer-exact: a value `v` ms lands in bucket
/// `bit_length(⌊v·1024⌋)` (0 for `v < 1/1024`), i.e. bucket `b > 0`
/// covers `[2^(b-1), 2^b) / 1024` ms. No RNG, no platform-dependent
/// transcendentals — reproducible everywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    n: u64,
    /// Sum in quantized 1/1024-ms units (integer ⇒ merge-exact).
    sum_q: u128,
    min_ms: f64,
    max_ms: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            n: 0,
            sum_q: 0,
            min_ms: f64::INFINITY,
            max_ms: f64::NEG_INFINITY,
        }
    }
}

/// Quantizes `v_ms` to 1/1024-ms units, saturating absurd values.
fn quantize(v_ms: f64) -> u64 {
    let q = v_ms.max(0.0) * 1024.0;
    if q >= u64::MAX as f64 {
        u64::MAX
    } else {
        q as u64
    }
}

/// Index of the log bucket covering `v_ms`.
fn bucket_of(v_ms: f64) -> usize {
    ((u64::BITS - quantize(v_ms).leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// Records one sample (negative values clamp to 0).
    pub fn record(&mut self, v_ms: f64) {
        self.counts[bucket_of(v_ms)] += 1;
        self.n += 1;
        self.sum_q += quantize(v_ms) as u128;
        self.min_ms = self.min_ms.min(v_ms);
        self.max_ms = self.max_ms.max(v_ms);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the recorded samples at 1/1024-ms resolution (0 when
    /// empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sum_q as f64 / 1024.0) / self.n as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min_ms
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max_ms
        }
    }

    /// Bucket upper bound in ms (the quantile estimate's resolution).
    fn bucket_upper_ms(b: usize) -> f64 {
        if b == 0 {
            1.0 / 1024.0
        } else {
            (1u128 << b) as f64 / 1024.0
        }
    }

    /// Estimated `q`-quantile (`0 < q <= 1`): the upper bound of the
    /// bucket where the cumulative count crosses `⌈q·n⌉`. Within a
    /// factor of 2 of the true value by construction, and exactly
    /// reproducible. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let target = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Histogram::bucket_upper_ms(b).min(self.max_ms.max(0.0));
            }
        }
        self.max()
    }

    /// Folds `other` into `self`. All state is integer or min/max, so
    /// the result is bit-identical for any shard partition and merge
    /// order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.n += other.n;
        self.sum_q += other.sum_q;
        self.min_ms = self.min_ms.min(other.min_ms);
        self.max_ms = self.max_ms.max(other.max_ms);
    }

    /// The raw bucket counts (tests and renderers).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }
}

/// Per-kind counters plus the latency histograms the tentpole names:
/// frame flight times, exchange durations, detector latencies, and
/// per-round phase timings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricSet {
    counts: [u64; KIND_COUNT],
    /// Frame flight times (ingested from `FrameScheduled.detail`).
    pub frame_latency_ms: Histogram,
    /// Exchange propose→commit/abort durations (paired by
    /// [`MetricSet::from_events`]; streaming ingest cannot pair).
    pub exchange_ms: Histogram,
    /// True-positive detection latencies (`DetectorSuspect.detail`).
    pub detector_ms: Histogram,
    /// Per-round phase durations (`RoundEnd.detail`).
    pub round_ms: Histogram,
}

impl MetricSet {
    /// Folds one event into the counters and the directly ingestible
    /// histograms.
    pub fn ingest(&mut self, ev: &TraceEvent) {
        self.counts[ev.kind as usize] += 1;
        match ev.kind {
            TraceKind::FrameScheduled => self.frame_latency_ms.record(ev.detail),
            TraceKind::RoundEnd => self.round_ms.record(ev.detail),
            TraceKind::DetectorSuspect if ev.detail > 0.0 => self.detector_ms.record(ev.detail),
            _ => {}
        }
    }

    /// Builds the full set from a recorded event stream, including the
    /// exchange-duration histogram (propose → commit/abort paired by
    /// `(node, round)` in stream order).
    pub fn from_events(events: &[TraceEvent]) -> MetricSet {
        let mut set = MetricSet::default();
        let mut open: Vec<(u32, u64, f64)> = Vec::new();
        for ev in events {
            set.ingest(ev);
            match ev.kind {
                TraceKind::ExchangePropose => open.push((ev.node, ev.round, ev.at_ms)),
                TraceKind::ExchangeCommit | TraceKind::ExchangeAbort => {
                    if let Some(i) = open
                        .iter()
                        .position(|&(n, r, _)| n == ev.node && r == ev.round)
                    {
                        let (_, _, t0) = open.swap_remove(i);
                        set.exchange_ms.record(ev.at_ms - t0);
                    }
                }
                _ => {}
            }
        }
        set
    }

    /// Count of events of `kind`.
    pub fn count(&self, kind: TraceKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total events folded in.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Folds `other` into `self` — associative and commutative
    /// bit-for-bit (see module docs).
    pub fn merge(&mut self, other: &MetricSet) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.frame_latency_ms.merge(&other.frame_latency_ms);
        self.exchange_ms.merge(&other.exchange_ms);
        self.detector_ms.merge(&other.detector_ms);
        self.round_ms.merge(&other.round_ms);
    }

    /// Merges per-shard sets in shard-index order — the conventional
    /// order (merging is order-invariant, but a fixed convention keeps
    /// call sites auditable).
    pub fn merge_shards<'a>(shards: impl IntoIterator<Item = &'a MetricSet>) -> MetricSet {
        let mut out = MetricSet::default();
        for s in shards {
            out.merge(s);
        }
        out
    }

    /// Flattens to the record-facing summary.
    pub fn summary(&self) -> ObsSummary {
        ObsSummary {
            events: self.total(),
            frames: self.count(TraceKind::FrameDelivered),
            dropped: self.count(TraceKind::FrameDropped),
            held: self.count(TraceKind::FrameHeld),
            frame_p50_ms: self.frame_latency_ms.quantile(0.50),
            frame_p99_ms: self.frame_latency_ms.quantile(0.99),
        }
    }
}

/// The `obs_*` record field group: what a traced run appends to its
/// [`RunRecord`](https://docs.rs) shape. All zeros (and omitted from
/// records) when the scenario ran with `trace=off`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ObsSummary {
    /// Total trace events the run emitted.
    pub events: u64,
    /// Frames delivered.
    pub frames: u64,
    /// Frames dropped (faults, dead destinations).
    pub dropped: u64,
    /// Frames held past their base link time by the fault script.
    pub held: u64,
    /// Median frame flight time (log-bucket estimate, ms).
    pub frame_p50_ms: f64,
    /// p99 frame flight time (log-bucket estimate, ms).
    pub frame_p99_ms: f64,
}

impl ObsSummary {
    /// `true` when the run was untraced — the record omits the
    /// `obs_*` group entirely (shape-stability rule).
    pub fn is_quiet(&self) -> bool {
        self.events == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_PEER;

    fn ev(kind: TraceKind, at: f64, node: u32, round: u64, detail: f64) -> TraceEvent {
        TraceEvent {
            kind,
            at_ms: at,
            node,
            peer: NO_PEER,
            round,
            tag: 0,
            detail,
        }
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(0.0005), 0); // < 1/1024 ms
        assert_eq!(bucket_of(1.0), 11); // 1024 = 2^10 → bit length 11
        assert_eq!(bucket_of(2.0), 12);
        assert_eq!(bucket_of(1e300), BUCKETS - 1);
        assert_eq!(bucket_of(-3.0), 0);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 3.0, 50.0, 400.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile(0.5);
        // Bucket upper bound of the median sample (3.0 → (2,4]).
        assert!((3.0..=4.0).contains(&p50), "{p50}");
        let p99 = h.quantile(0.99);
        assert!((400.0..=512.0).contains(&p99), "{p99}");
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 400.0);
        assert!((h.mean() - 91.2).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn from_events_pairs_exchanges() {
        let events = vec![
            ev(TraceKind::ExchangePropose, 10.0, 3, 1, 0.0),
            ev(TraceKind::ExchangePropose, 11.0, 4, 1, 0.0),
            ev(TraceKind::ExchangeCommit, 25.0, 3, 1, 0.0),
            ev(TraceKind::ExchangeAbort, 40.0, 4, 1, 0.0),
            // Unmatched commit: ignored, not a panic.
            ev(TraceKind::ExchangeCommit, 50.0, 9, 2, 0.0),
        ];
        let set = MetricSet::from_events(&events);
        assert_eq!(set.exchange_ms.count(), 2);
        assert_eq!(set.exchange_ms.min(), 15.0);
        assert_eq!(set.exchange_ms.max(), 29.0);
        assert_eq!(set.count(TraceKind::ExchangeCommit), 2);
    }

    #[test]
    fn summary_flattens() {
        let mut set = MetricSet::default();
        set.ingest(&ev(TraceKind::FrameScheduled, 0.0, 1, 0, 12.0));
        set.ingest(&ev(TraceKind::FrameDelivered, 12.0, 1, 0, 0.0));
        set.ingest(&ev(TraceKind::FrameDropped, 13.0, 2, 0, 1.0));
        let s = set.summary();
        assert_eq!(s.events, 3);
        assert_eq!(s.frames, 1);
        assert_eq!(s.dropped, 1);
        assert!(!s.is_quiet());
        assert!(ObsSummary::default().is_quiet());
    }

    /// Chunking a sample stream into shards and merging in shard order
    /// reproduces the unsharded fold exactly — for every shard count
    /// (the in-process analogue of `DLB_THREADS` invariance).
    #[test]
    fn shard_merge_is_chunking_invariant() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 97) as f64 * 0.37 + 0.01).collect();
        let mut whole = MetricSet::default();
        for &v in &samples {
            whole.ingest(&ev(TraceKind::FrameScheduled, 0.0, 0, 0, v));
        }
        for shards in [1usize, 2, 3, 4, 7, 16] {
            let chunk = samples.len().div_ceil(shards);
            let parts: Vec<MetricSet> = samples
                .chunks(chunk)
                .map(|c| {
                    let mut s = MetricSet::default();
                    for &v in c {
                        s.ingest(&ev(TraceKind::FrameScheduled, 0.0, 0, 0, v));
                    }
                    s
                })
                .collect();
            let merged = MetricSet::merge_shards(parts.iter());
            assert_eq!(merged, whole, "shards={shards}");
        }
    }
}
