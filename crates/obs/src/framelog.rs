//! The binary frame-log container behind `trace=frames:FILE`.
//!
//! Layout (format v1, little-endian throughout, following the
//! bounds-checked cursor idiom of `dlb-gossip`'s `wire.rs`):
//!
//! ```text
//! header:  magic "DLBF" · version u32 · spec_len u32 · spec utf-8
//! body:    event_count u64 · events (34 bytes each:
//!          kind u8 · at_ms u64(bits) · node u32 · peer u32 ·
//!          round u64 · tag u8 · detail u64(bits))
//! trailer: magic "DLBE" · event_hash u64 · final_cost u64(bits) ·
//!          rounds u64 · exchanges u64 · virtual_ms u64(bits)
//! ```
//!
//! The header's `spec` is the run's canonical scenario text with the
//! `trace=` axis stripped — everything replay needs to re-derive the
//! instance, the fault/stream scripts, and the cluster options from
//! one seed. The trailer pins what the recorded run reported, so
//! replay cross-checks outcomes (`final_cost`, `rounds`) *in addition
//! to* the bit-exact `event_hash` — a hash match alone could not
//! distinguish "reproduced the run" from "reproduced the log".

use crate::event::{TraceEvent, TraceKind};

/// Header magic.
const MAGIC: &[u8; 4] = b"DLBF";
/// Trailer magic.
const END_MAGIC: &[u8; 4] = b"DLBE";
/// Format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;
/// Encoded size of one event.
const EVENT_BYTES: usize = 1 + 8 + 4 + 4 + 8 + 1 + 8;

/// What the recorded run reported — replay's cross-check targets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Trailer {
    /// The executor's delivered-order fingerprint.
    pub event_hash: u64,
    /// Final ΣC of the recorded run.
    pub final_cost: f64,
    /// Protocol rounds executed.
    pub rounds: u64,
    /// Exchanges committed.
    pub exchanges: u64,
    /// Virtual milliseconds the run spanned.
    pub virtual_ms: f64,
}

/// A decoded frame log: the recording scenario, the event stream, and
/// the recorded outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameLog {
    /// Canonical scenario text (with `trace=` stripped) that produced
    /// the stream.
    pub spec: String,
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
    /// Recorded outcomes.
    pub trailer: Trailer,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.s.len())
            .ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        let out = &self.s[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
}

impl FrameLog {
    /// Encodes the log to its binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            4 + 4 + 4 + self.spec.len() + 8 + self.events.len() * EVENT_BYTES + 4 + 40,
        );
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u32(&mut out, self.spec.len() as u32);
        out.extend_from_slice(self.spec.as_bytes());
        put_u64(&mut out, self.events.len() as u64);
        for ev in &self.events {
            out.push(ev.kind as u8);
            put_u64(&mut out, ev.at_ms.to_bits());
            put_u32(&mut out, ev.node);
            put_u32(&mut out, ev.peer);
            put_u64(&mut out, ev.round);
            out.push(ev.tag);
            put_u64(&mut out, ev.detail.to_bits());
        }
        out.extend_from_slice(END_MAGIC);
        put_u64(&mut out, self.trailer.event_hash);
        put_u64(&mut out, self.trailer.final_cost.to_bits());
        put_u64(&mut out, self.trailer.rounds);
        put_u64(&mut out, self.trailer.exchanges);
        put_u64(&mut out, self.trailer.virtual_ms.to_bits());
        out
    }

    /// Decodes a binary frame log, rejecting truncation, trailing
    /// garbage, bad magic, unknown versions, hostile lengths, and
    /// unknown event kinds.
    pub fn decode(bytes: &[u8]) -> Result<FrameLog, String> {
        let mut c = Cursor { s: bytes, pos: 0 };
        if c.take(4)? != MAGIC {
            return Err("not a dlb frame log (bad magic)".into());
        }
        let version = c.u32()?;
        if version != FORMAT_VERSION {
            return Err(format!(
                "frame-log format v{version} (this build reads v{FORMAT_VERSION})"
            ));
        }
        let spec_len = c.u32()? as usize;
        let spec = std::str::from_utf8(c.take(spec_len)?)
            .map_err(|_| "spec text is not utf-8".to_string())?
            .to_string();
        let count = c.u64()? as usize;
        // Hostile-length protection: the remaining bytes must actually
        // hold `count` events plus the trailer.
        let need = count
            .checked_mul(EVENT_BYTES)
            .and_then(|n| n.checked_add(4 + 40))
            .ok_or("event count overflows")?;
        if bytes.len() - c.pos < need {
            return Err(format!(
                "event count {count} exceeds remaining {} bytes",
                bytes.len() - c.pos
            ));
        }
        let mut events = Vec::with_capacity(count);
        for i in 0..count {
            let kind = TraceKind::from_u8(c.u8()?)
                .ok_or_else(|| format!("unknown event kind at record {i}"))?;
            events.push(TraceEvent {
                kind,
                at_ms: c.f64()?,
                node: c.u32()?,
                peer: c.u32()?,
                round: c.u64()?,
                tag: c.u8()?,
                detail: c.f64()?,
            });
        }
        if c.take(4)? != END_MAGIC {
            return Err("missing trailer magic".into());
        }
        let trailer = Trailer {
            event_hash: c.u64()?,
            final_cost: c.f64()?,
            rounds: c.u64()?,
            exchanges: c.u64()?,
            virtual_ms: c.f64()?,
        };
        if c.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", c.pos));
        }
        Ok(FrameLog {
            spec,
            events,
            trailer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NODE_COORD, NO_PEER};

    pub(crate) fn sample_log() -> FrameLog {
        FrameLog {
            spec: "algo=protocol net=pl m=64 seed=3 runtime=events".into(),
            events: vec![
                TraceEvent {
                    kind: TraceKind::RoundBegin,
                    at_ms: 0.0,
                    node: NODE_COORD,
                    peer: NO_PEER,
                    round: 1,
                    tag: 0,
                    detail: 0.0,
                },
                TraceEvent {
                    kind: TraceKind::FrameScheduled,
                    at_ms: 0.0,
                    node: 3,
                    peer: NODE_COORD,
                    round: 1,
                    tag: 1,
                    detail: 12.25,
                },
                TraceEvent {
                    kind: TraceKind::FrameDelivered,
                    at_ms: 12.25,
                    node: 3,
                    peer: NODE_COORD,
                    round: 1,
                    tag: 1,
                    detail: 0.0,
                },
            ],
            trailer: Trailer {
                event_hash: 0xDEAD_BEEF_0BAD_F00D,
                final_cost: 34654.117784,
                rounds: 8,
                exchanges: 21,
                virtual_ms: 940.226659,
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let log = sample_log();
        let bytes = log.encode();
        assert_eq!(FrameLog::decode(&bytes).unwrap(), log);
    }

    #[test]
    fn empty_log_round_trips() {
        let log = FrameLog {
            spec: String::new(),
            events: vec![],
            trailer: Trailer {
                event_hash: 0,
                final_cost: 0.0,
                rounds: 0,
                exchanges: 0,
                virtual_ms: 0.0,
            },
        };
        assert_eq!(FrameLog::decode(&log.encode()).unwrap(), log);
    }

    #[test]
    fn decode_rejects_every_truncation() {
        let bytes = sample_log().encode();
        for len in 0..bytes.len() {
            assert!(
                FrameLog::decode(&bytes[..len]).is_err(),
                "accepted truncation to {len} bytes"
            );
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let good = sample_log().encode();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(FrameLog::decode(&bad).is_err());
        // Unknown version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(FrameLog::decode(&bad).is_err());
        // Hostile event count.
        let mut bad = good.clone();
        let spec_len = 4 + 4 + 4 + sample_log().spec.len();
        bad[spec_len..spec_len + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(FrameLog::decode(&bad).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(FrameLog::decode(&bad).is_err());
        // Unknown event kind.
        let mut bad = good;
        bad[spec_len + 8] = 250;
        assert!(FrameLog::decode(&bad).is_err());
    }
}
