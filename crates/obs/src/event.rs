//! The trace-event vocabulary: one flat, codec-friendly record per
//! observable occurrence, stamped in **virtual milliseconds**.
//!
//! Every event is a fixed-width tuple (`kind`, `at_ms`, `node`,
//! `peer`, `round`, `tag`, `detail`) rather than a deep enum: the
//! executor emits them on its single-threaded classification path, the
//! frame log encodes them in 34 bytes flat, and replay compares them
//! field-for-field — a shape with no heap payloads keeps all three
//! cheap. Kind-specific meaning of `detail` is documented on each
//! [`TraceKind`] variant.

use std::fmt;

/// Sentinel node id naming the coordinator (mirrors the executor's
/// `Dest::Coordinator` → `u64::MAX` hashing convention).
pub const NODE_COORD: u32 = u32::MAX;

/// Sentinel for "no peer" (events with a single participant).
pub const NO_PEER: u32 = u32::MAX - 1;

/// `detail` reason code on [`TraceKind::FrameDropped`]: the
/// destination was down when the frame landed.
pub const DROP_DEST_DOWN: f64 = 1.0;
/// `detail` reason code on [`TraceKind::FrameDropped`]: the fault
/// script's lossy link swallowed the frame past its retransmit budget.
pub const DROP_LINK_LOSS: f64 = 2.0;
/// `detail` reason code on [`TraceKind::FrameDropped`]: the source was
/// down at emission time, so its outbound batch never left.
pub const DROP_SRC_DOWN: f64 = 3.0;

/// What happened. Discriminants are the wire encoding (frame-log
/// format v1) — append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A frame entered the fabric. `node` = destination, `peer` =
    /// source, `tag` = frame tag, `detail` = total flight time in ms
    /// (delivery is due at `at_ms + detail`), which is also what the
    /// frame-latency histogram ingests.
    FrameScheduled = 0,
    /// A frame left the heap and reached an alive destination.
    /// `detail` = 0.
    FrameDelivered = 1,
    /// A frame left the heap but was discarded. `detail` = one of the
    /// `DROP_*` reason codes.
    FrameDropped = 2,
    /// The fault script delayed a frame beyond its base link time.
    /// `node`/`peer`/`tag` as scheduled; `detail` = extra ms.
    FrameHeld = 3,
    /// A timer fired. `tag` = the executor's timer tag (16 deadline,
    /// 17 exchange RTO, 18 stream arrival, 19 stream departure).
    TimerFired = 4,
    /// The coordinator opened a round (`round`); `node` =
    /// [`NODE_COORD`].
    RoundBegin = 5,
    /// The coordinator closed a round; `detail` = phase duration ms —
    /// what the per-round phase-timing histogram ingests.
    RoundEnd = 6,
    /// A node's exchange proposal reached its partner. `node` =
    /// proposer, `peer` = partner.
    ExchangePropose = 7,
    /// An exchange committed (`Commit` landed). `node` = committer,
    /// `peer` = partner when known.
    ExchangeCommit = 8,
    /// An exchange aborted (RTO rollback under in-protocol detection).
    /// `node` = the side that timed out.
    ExchangeAbort = 9,
    /// The failure detector suspected `node`; `detail` = detection
    /// latency ms when the suspicion is a true positive (0 otherwise).
    DetectorSuspect = 10,
    /// The coordinator excluded `node` from round `round`.
    DetectorExclude = 11,
    /// A wrongly suspected (or recovered) node rejoined.
    DetectorRejoin = 12,
    /// A gossip delta exchange: `node` = receiver, `peer` = sender,
    /// `detail` = payload bytes.
    GossipDelta = 13,
    /// A gossip full-shard fallback exchange; fields as
    /// [`TraceKind::GossipDelta`].
    GossipFull = 14,
    /// A streamed request arrived at organization `node`.
    StreamArrival = 15,
    /// A streamed request departed (was served); `node` = home
    /// organization, `detail` = sojourn ms when known.
    StreamDeparture = 16,
    /// A streamed request was dropped (unroutable: every host of its
    /// organization's load was down). `detail` = requests dropped.
    StreamDrop = 17,
}

/// Number of [`TraceKind`] variants (per-kind counter array size).
pub const KIND_COUNT: usize = 18;

impl TraceKind {
    /// All variants, in discriminant order.
    pub const ALL: [TraceKind; KIND_COUNT] = [
        TraceKind::FrameScheduled,
        TraceKind::FrameDelivered,
        TraceKind::FrameDropped,
        TraceKind::FrameHeld,
        TraceKind::TimerFired,
        TraceKind::RoundBegin,
        TraceKind::RoundEnd,
        TraceKind::ExchangePropose,
        TraceKind::ExchangeCommit,
        TraceKind::ExchangeAbort,
        TraceKind::DetectorSuspect,
        TraceKind::DetectorExclude,
        TraceKind::DetectorRejoin,
        TraceKind::GossipDelta,
        TraceKind::GossipFull,
        TraceKind::StreamArrival,
        TraceKind::StreamDeparture,
        TraceKind::StreamDrop,
    ];

    /// Decodes a wire discriminant.
    pub fn from_u8(v: u8) -> Option<TraceKind> {
        TraceKind::ALL.get(v as usize).copied()
    }

    /// Stable lower-case label (CLI filter vocabulary).
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::FrameScheduled => "frame_scheduled",
            TraceKind::FrameDelivered => "frame_delivered",
            TraceKind::FrameDropped => "frame_dropped",
            TraceKind::FrameHeld => "frame_held",
            TraceKind::TimerFired => "timer",
            TraceKind::RoundBegin => "round_begin",
            TraceKind::RoundEnd => "round_end",
            TraceKind::ExchangePropose => "exchange_propose",
            TraceKind::ExchangeCommit => "exchange_commit",
            TraceKind::ExchangeAbort => "exchange_abort",
            TraceKind::DetectorSuspect => "detector_suspect",
            TraceKind::DetectorExclude => "detector_exclude",
            TraceKind::DetectorRejoin => "detector_rejoin",
            TraceKind::GossipDelta => "gossip_delta",
            TraceKind::GossipFull => "gossip_full",
            TraceKind::StreamArrival => "stream_arrival",
            TraceKind::StreamDeparture => "stream_departure",
            TraceKind::StreamDrop => "stream_drop",
        }
    }

    /// Event family (coarse CLI filter): `frame`, `timer`, `round`,
    /// `exchange`, `detector`, `gossip`, or `stream`.
    pub fn family(&self) -> &'static str {
        match self {
            TraceKind::FrameScheduled
            | TraceKind::FrameDelivered
            | TraceKind::FrameDropped
            | TraceKind::FrameHeld => "frame",
            TraceKind::TimerFired => "timer",
            TraceKind::RoundBegin | TraceKind::RoundEnd => "round",
            TraceKind::ExchangePropose | TraceKind::ExchangeCommit | TraceKind::ExchangeAbort => {
                "exchange"
            }
            TraceKind::DetectorSuspect | TraceKind::DetectorExclude | TraceKind::DetectorRejoin => {
                "detector"
            }
            TraceKind::GossipDelta | TraceKind::GossipFull => "gossip",
            TraceKind::StreamArrival | TraceKind::StreamDeparture | TraceKind::StreamDrop => {
                "stream"
            }
        }
    }
}

/// Human label for a frame or timer `tag` (the executor's hashing
/// vocabulary: frame tags 1–9 from the wire codec, timer tags 16–19).
pub fn tag_label(tag: u8) -> &'static str {
    match tag {
        0 => "-",
        1 => "RoundStart",
        2 => "Propose",
        3 => "Accept",
        4 => "Busy",
        5 => "Commit",
        6 => "Report",
        7 => "Shutdown",
        8 => "FinalLedger",
        9 => "CommitAck",
        16 => "Deadline",
        17 => "ExchangeRto",
        18 => "Arrival",
        19 => "Departure",
        _ => "?",
    }
}

/// One observable occurrence on the virtual clock. Field semantics are
/// kind-specific — see [`TraceKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceKind,
    /// Virtual time of the occurrence, in milliseconds.
    pub at_ms: f64,
    /// Primary participant (destination for frames; [`NODE_COORD`]
    /// names the coordinator).
    pub node: u32,
    /// Secondary participant (source for frames; [`NO_PEER`] when
    /// absent).
    pub peer: u32,
    /// Protocol round the event belongs to (0 when not applicable).
    pub round: u64,
    /// Frame tag (1–9) or timer tag (16–19); 0 when not applicable.
    pub tag: u8,
    /// Kind-specific scalar (latency ms, extra delay ms, bytes, drop
    /// reason…).
    pub detail: f64,
}

impl TraceEvent {
    /// Builds an event with no peer, round, tag, or detail — the
    /// common shape for stream/round markers.
    pub fn mark(kind: TraceKind, at_ms: f64, node: u32) -> Self {
        TraceEvent {
            kind,
            at_ms,
            node,
            peer: NO_PEER,
            round: 0,
            tag: 0,
            detail: 0.0,
        }
    }

    /// Pretty node label (`coord` for the coordinator sentinel).
    pub fn node_label(id: u32) -> String {
        match id {
            NODE_COORD => "coord".to_string(),
            NO_PEER => "-".to_string(),
            n => n.to_string(),
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12.3}ms {:<17} node={} peer={} round={} tag={} detail={}",
            self.at_ms,
            self.kind.label(),
            TraceEvent::node_label(self.node),
            TraceEvent::node_label(self.peer),
            self.round,
            tag_label(self.tag),
            self.detail,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_their_discriminants() {
        for (i, k) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(*k as u8, i as u8);
            assert_eq!(TraceKind::from_u8(i as u8), Some(*k));
        }
        assert_eq!(TraceKind::from_u8(KIND_COUNT as u8), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut seen: Vec<&str> = Vec::new();
        for k in TraceKind::ALL {
            assert!(!seen.contains(&k.label()), "duplicate {}", k.label());
            seen.push(k.label());
        }
    }

    #[test]
    fn display_is_compact() {
        let ev = TraceEvent {
            kind: TraceKind::FrameDelivered,
            at_ms: 12.5,
            node: 3,
            peer: NODE_COORD,
            round: 2,
            tag: 1,
            detail: 0.0,
        };
        let s = ev.to_string();
        assert!(s.contains("frame_delivered"), "{s}");
        assert!(s.contains("peer=coord"), "{s}");
        assert!(s.contains("tag=RoundStart"), "{s}");
    }
}
