//! # dlb-obs — the deterministic observability plane
//!
//! Zero-overhead-when-off tracing and metrics for the virtual-time
//! runtime. Everything here is stamped in **virtual milliseconds** and
//! derived from the executor's deterministic delivery order, so two
//! runs of one scenario produce byte-identical traces — which is what
//! makes frame logs *replayable*: `dlb trace replay FILE` re-derives
//! the run from the spec embedded in the log header and cross-checks
//! every recorded event plus the recorded `event_hash` bit-for-bit.
//!
//! The pieces:
//! * [`TraceEvent`]/[`TraceKind`] — the flat event vocabulary
//!   (frames, timers, round phases, exchanges, detector verdicts,
//!   gossip exchanges, stream traffic).
//! * [`TraceSink`] — where events go: [`NullSink`] (disabled; one
//!   branch per hook, untraced runs stay byte-identical),
//!   [`MemorySink`] (recording), [`SummarySink`] (streaming metrics).
//! * [`Histogram`]/[`MetricSet`] — RNG-free log-bucketed metrics with
//!   integer-state merge: per-worker shards merge bit-identically for
//!   every `DLB_THREADS` value.
//! * [`FrameLog`] — the binary container (`header · events ·
//!   trailer`) with a property-tested codec.
//! * [`chrome`] — Chrome trace-event JSON export of the virtual
//!   timeline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod framelog;
pub mod metrics;
pub mod sink;

pub use event::{tag_label, TraceEvent, TraceKind, KIND_COUNT, NODE_COORD, NO_PEER};
pub use framelog::{FrameLog, Trailer, FORMAT_VERSION};
pub use metrics::{Histogram, MetricSet, ObsSummary, BUCKETS};
pub use sink::{MemorySink, NullSink, SummarySink, TraceSink};

#[cfg(all(test, feature = "proptests"))]
mod proptests;
