//! Property-based tests: frame-log codec round-trip and the metric
//! merge laws (associativity, commutativity) the determinism story
//! rests on.

#![cfg(test)]

use proptest::prelude::*;

use crate::event::{TraceEvent, TraceKind, KIND_COUNT};
use crate::framelog::{FrameLog, Trailer};
use crate::metrics::MetricSet;

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        0..KIND_COUNT as u8,
        0.0f64..1e9,
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u8>(),
        0.0f64..1e9,
    )
        .prop_map(|(kind, at_ms, node, peer, round, tag, detail)| TraceEvent {
            kind: TraceKind::from_u8(kind).expect("in range"),
            at_ms,
            node,
            peer,
            round,
            tag,
            detail,
        })
}

fn arb_log() -> impl Strategy<Value = FrameLog> {
    let arb_spec = proptest::collection::vec(0u8..27, 0..80).prop_map(|v| {
        v.into_iter()
            .map(|b| if b == 26 { ' ' } else { (b'a' + b) as char })
            .collect::<String>()
    });
    (
        arb_spec,
        proptest::collection::vec(arb_event(), 0..48),
        any::<u64>(),
        0.0f64..1e12,
        any::<u64>(),
        any::<u64>(),
        0.0f64..1e9,
    )
        .prop_map(
            |(spec, events, event_hash, final_cost, rounds, exchanges, virtual_ms)| FrameLog {
                spec,
                events,
                trailer: Trailer {
                    event_hash,
                    final_cost,
                    rounds,
                    exchanges,
                    virtual_ms,
                },
            },
        )
}

fn metric_set(events: &[TraceEvent]) -> MetricSet {
    let mut s = MetricSet::default();
    for ev in events {
        s.ingest(ev);
    }
    s
}

proptest! {
    /// Every log round-trips exactly through the binary codec.
    #[test]
    fn framelog_round_trips(log in arb_log()) {
        let bytes = log.encode();
        prop_assert_eq!(FrameLog::decode(&bytes).expect("decodes"), log);
    }

    /// No truncated prefix of a valid log may decode, and none may
    /// panic (the trailer magic plus fixed event size make every cut
    /// detectable).
    #[test]
    fn framelog_truncation_is_always_rejected(log in arb_log()) {
        let bytes = log.encode();
        for cut in 0..bytes.len() {
            prop_assert!(FrameLog::decode(&bytes[..cut]).is_err(), "cut {} decoded", cut);
        }
    }

    /// Metric merge is commutative bit-for-bit: all accumulator state
    /// is integer or min/max.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(arb_event(), 0..40),
        b in proptest::collection::vec(arb_event(), 0..40),
    ) {
        let (sa, sb) = (metric_set(&a), metric_set(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Metric merge is associative bit-for-bit, so any shard partition
    /// and any merge tree produce identical totals — the property that
    /// makes sharded accumulation `DLB_THREADS`-invariant.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(arb_event(), 0..30),
        b in proptest::collection::vec(arb_event(), 0..30),
        c in proptest::collection::vec(arb_event(), 0..30),
    ) {
        let (sa, sb, sc) = (metric_set(&a), metric_set(&b), metric_set(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Sharded ingestion (split anywhere, merge in shard order) equals
    /// the unsharded fold exactly.
    #[test]
    fn sharding_is_exact(events in proptest::collection::vec(arb_event(), 1..80), cut in 0usize..80) {
        let cut = cut % events.len();
        let whole = metric_set(&events);
        let merged = MetricSet::merge_shards([
            metric_set(&events[..cut]),
            metric_set(&events[cut..]),
        ].iter());
        prop_assert_eq!(merged, whole);
    }
}
