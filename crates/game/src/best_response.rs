//! Exact selfish best response of a single organization.
//!
//! With everyone else's placement fixed, organization `i` chooses
//! `x_j ≥ 0`, `Σ x_j = n_i` minimizing
//!
//! ```text
//! C_i(x) = Σ_j ( (L_j + x_j) / 2s_j + c_ij ) x_j ,
//! ```
//!
//! where `L_j` is the load others put on server `j`. The KKT conditions
//! give `x_j = s_j (λ − a_j)₊` with `a_j = c_ij + L_j / 2s_j` — a
//! water-filling problem solved exactly by `dlb-solver`.

use dlb_core::{Assignment, Instance};
use dlb_solver::waterfill::{waterfill, waterfill_capped};

/// Computes organization `i`'s exact best response against the current
/// assignment. Returns the new row (`x_j` = requests of `i` on server
/// `j`).
///
/// ```
/// use dlb_core::{Assignment, Instance, LatencyMatrix};
/// use dlb_game::best_response;
///
/// // Latency 1000 ms dwarfs any congestion relief: the selfish best
/// // response keeps everything at home.
/// let instance = Instance::new(
///     vec![1.0, 1.0],
///     vec![10.0, 0.0],
///     LatencyMatrix::homogeneous(2, 1000.0),
/// );
/// let a = Assignment::local(&instance);
/// assert_eq!(best_response(&instance, &a, 0), vec![10.0, 0.0]);
/// ```
pub fn best_response(instance: &Instance, a: &Assignment, i: usize) -> Vec<f64> {
    best_response_capped(instance, a, i, None)
}

/// Best response with an optional uniform per-server cap (the §VII
/// replication extension uses `cap = n_i / R`).
pub fn best_response_capped(
    instance: &Instance,
    a: &Assignment,
    i: usize,
    cap: Option<f64>,
) -> Vec<f64> {
    let m = instance.len();
    let n_i = instance.own_load(i);
    if n_i == 0.0 {
        return vec![0.0; m];
    }
    let mut coeff = vec![0.0; m];
    for j in 0..m {
        let x_cur = a.requests(i, j);
        let others = a.load(j) - x_cur;
        let c = instance.c(i, j);
        coeff[j] = if c.is_finite() {
            c + others / (2.0 * instance.speed(j))
        } else {
            f64::INFINITY
        };
    }
    match cap {
        Some(u) => waterfill_capped(&coeff, instance.speeds(), &vec![u; m], n_i),
        None => waterfill(&coeff, instance.speeds(), n_i),
    }
}

/// `C_i` that organization `i` would obtain by unilaterally playing
/// `row` against the rest of the current assignment.
pub fn best_response_cost(instance: &Instance, a: &Assignment, i: usize, row: &[f64]) -> f64 {
    let m = instance.len();
    let mut cost = 0.0;
    for j in 0..m {
        let x = row[j];
        if x <= 0.0 {
            continue;
        }
        let others = a.load(j) - a.requests(i, j);
        cost += ((others + x) / (2.0 * instance.speed(j)) + instance.c(i, j)) * x;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::cost::org_cost;
    use dlb_core::LatencyMatrix;
    use proptest::prelude::*;

    fn inst(c: f64, speeds: Vec<f64>, loads: Vec<f64>) -> Instance {
        let m = speeds.len();
        Instance::new(speeds, loads, LatencyMatrix::homogeneous(m, c))
    }

    #[test]
    fn lone_org_splits_by_speed_at_zero_latency() {
        let instance = inst(0.0, vec![1.0, 3.0], vec![8.0, 0.0]);
        let a = Assignment::local(&instance);
        let br = best_response(&instance, &a, 0);
        assert!((br[0] - 2.0).abs() < 1e-9, "{br:?}");
        assert!((br[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn current_cost_matches_org_cost() {
        let instance = inst(3.0, vec![1.0, 2.0], vec![10.0, 4.0]);
        let mut a = Assignment::local(&instance);
        a.move_requests(0, 0, 1, 4.0);
        let row = a.owner_row(0);
        assert!(
            (best_response_cost(&instance, &a, 0, &row) - org_cost(&instance, &a, 0)).abs() < 1e-9
        );
    }

    #[test]
    fn best_response_never_worse_than_status_quo() {
        let instance = inst(2.0, vec![1.0, 1.5, 2.0], vec![20.0, 5.0, 1.0]);
        let mut a = Assignment::local(&instance);
        a.move_requests(0, 0, 2, 6.0);
        for i in 0..3 {
            let br = best_response(&instance, &a, i);
            let cur = a.owner_row(i);
            assert!(
                best_response_cost(&instance, &a, i, &br)
                    <= best_response_cost(&instance, &a, i, &cur) + 1e-9
            );
        }
    }

    #[test]
    fn high_latency_keeps_selfish_org_home() {
        let instance = inst(1000.0, vec![1.0, 1.0], vec![10.0, 0.0]);
        let a = Assignment::local(&instance);
        let br = best_response(&instance, &a, 0);
        assert_eq!(br, vec![10.0, 0.0]);
    }

    #[test]
    fn congested_foreign_server_is_avoided() {
        // Server 1 is fast but heavily loaded by org 1; org 0 should
        // send less there than the speed ratio alone would suggest.
        let instance = inst(0.0, vec![1.0, 4.0], vec![10.0, 100.0]);
        let a = Assignment::local(&instance);
        let br = best_response(&instance, &a, 0);
        // Marginal at server 1 starts at L/2s = 100/8 = 12.5, at server 0
        // it starts at 0: org 0 keeps everything home (marginal there
        // reaches 10 < 12.5).
        assert_eq!(br[1], 0.0, "{br:?}");
    }

    #[test]
    fn capped_response_respects_cap() {
        let instance = inst(0.0, vec![1.0, 1.0, 1.0], vec![9.0, 0.0, 0.0]);
        let a = Assignment::local(&instance);
        let br = best_response_capped(&instance, &a, 0, Some(4.0));
        assert!(br.iter().all(|&x| x <= 4.0 + 1e-9), "{br:?}");
        assert!((br.iter().sum::<f64>() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn forbidden_server_excluded() {
        let mut lat = LatencyMatrix::homogeneous(3, 1.0);
        lat.set(0, 2, f64::INFINITY);
        let instance = Instance::new(vec![1.0; 3], vec![12.0, 0.0, 0.0], lat);
        let a = Assignment::local(&instance);
        let br = best_response(&instance, &a, 0);
        assert_eq!(br[2], 0.0);
        assert!((br.iter().sum::<f64>() - 12.0).abs() < 1e-9);
    }

    proptest! {
        /// The closed-form best response beats every random feasible row.
        #[test]
        fn prop_best_response_is_optimal(
            speeds in prop::collection::vec(0.5f64..4.0, 3),
            loads in prop::collection::vec(0.0f64..30.0, 3),
            c in 0.0f64..8.0,
            w in prop::collection::vec(0.01f64..1.0, 3),
        ) {
            let n0 = loads[0];
            prop_assume!(n0 > 0.1);
            let instance = inst(c, speeds, loads);
            let a = Assignment::local(&instance);
            let br = best_response(&instance, &a, 0);
            let opt = best_response_cost(&instance, &a, 0, &br);
            let wsum: f64 = w.iter().sum();
            let y: Vec<f64> = w.iter().map(|v| v / wsum * n0).collect();
            let other = best_response_cost(&instance, &a, 0, &y);
            prop_assert!(opt <= other + 1e-6 * other.abs().max(1.0),
                "br {opt} worse than random {other}");
        }

        /// Budget feasibility of the best response.
        #[test]
        fn prop_best_response_feasible(
            speeds in prop::collection::vec(0.5f64..4.0, 4),
            loads in prop::collection::vec(0.0f64..50.0, 4),
            c in 0.0f64..10.0,
        ) {
            let instance = inst(c, speeds, loads.clone());
            let a = Assignment::local(&instance);
            for i in 0..4 {
                let br = best_response(&instance, &a, i);
                let sum: f64 = br.iter().sum();
                prop_assert!((sum - loads[i]).abs() < 1e-6 * loads[i].max(1.0));
                prop_assert!(br.iter().all(|&x| x >= 0.0));
            }
        }
    }
}
