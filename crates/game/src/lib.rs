//! # dlb-game — selfish organizations and the price of anarchy
//!
//! Implements §V of the paper: every organization selfishly minimizes
//! the expected completion time `C_i` of its *own* requests.
//!
//! * [`best_response()`](best_response()) — the exact best response of one organization
//!   (a single-row QP solved in closed form by water-filling; the
//!   replication extension adds caps),
//! * [`dynamics`] — sequential best-response dynamics with the paper's
//!   termination rule (all organizations change their distribution by
//!   less than 1 % in two consecutive rounds),
//! * [`nash`] — ε-Nash verification,
//! * [`poa`] — the price of anarchy: measured ratios, Theorem 1's
//!   closed-form band for homogeneous networks, Lemma 3's equilibrium
//!   load-spread bound, and the tightness construction from the proof.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod best_response;
pub mod dynamics;
pub mod nash;
pub mod poa;

pub use best_response::{best_response, best_response_cost};
pub use dynamics::{run_best_response_dynamics, DynamicsOptions, DynamicsReport};
pub use nash::{epsilon_nash_gap, is_epsilon_nash};
pub use poa::{lemma3_load_spread_bound, theorem1_bounds, theorem1_tight_equilibrium};
