//! Sequential best-response dynamics.
//!
//! The paper approximates Nash equilibria with the following heuristic
//! (§VI-C): every organization in turn plays its exact best response to
//! the current distribution of requests; the process stops when all
//! organizations changed their distribution by less than 1 % in two
//! consecutive rounds.

use dlb_core::rngutil::rng_for;
use dlb_core::{Assignment, Instance};
use rand::seq::SliceRandom;

use crate::best_response::best_response_capped;

/// Options for the best-response dynamics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsOptions {
    /// Relative per-organization change below which a round counts as
    /// calm (the paper uses 1 %).
    pub change_threshold: f64,
    /// Consecutive calm rounds required to stop (the paper uses 2).
    pub calm_rounds: usize,
    /// Hard round budget.
    pub max_rounds: usize,
    /// Shuffle the response order every round.
    pub shuffle: bool,
    /// RNG seed for the order.
    pub seed: u64,
    /// Optional uniform per-server cap on each organization's
    /// placements (`n_i / R` for the replication extension).
    pub replication: Option<usize>,
}

impl Default for DynamicsOptions {
    fn default() -> Self {
        Self {
            change_threshold: 0.01,
            calm_rounds: 2,
            max_rounds: 10_000,
            shuffle: true,
            seed: 0,
            replication: None,
        }
    }
}

/// Result of a best-response-dynamics run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the calm criterion was met within the budget.
    pub converged: bool,
    /// Largest relative change in the final round.
    pub final_max_change: f64,
}

/// Runs sequential best-response dynamics in place and reports how it
/// terminated. `assignment` is typically [`Assignment::local`].
pub fn run_best_response_dynamics(
    instance: &Instance,
    assignment: &mut Assignment,
    options: &DynamicsOptions,
) -> DynamicsReport {
    let m = instance.len();
    let mut rng = rng_for(options.seed, 0x6A3E);
    let mut order: Vec<usize> = (0..m).collect();
    let mut calm = 0usize;
    let mut final_max_change = f64::INFINITY;
    for round in 0..options.max_rounds {
        if options.shuffle {
            order.shuffle(&mut rng);
        }
        let mut max_change = 0.0f64;
        for &i in &order {
            let n_i = instance.own_load(i);
            if n_i == 0.0 {
                continue;
            }
            let cap = options.replication.map(|r| n_i / r as f64);
            let new_row = best_response_capped(instance, assignment, i, cap);
            let old_row = assignment.owner_row(i);
            let change: f64 = new_row
                .iter()
                .zip(old_row.iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / n_i;
            max_change = max_change.max(change);
            assignment.set_owner_row(i, &new_row);
        }
        final_max_change = max_change;
        if max_change < options.change_threshold {
            calm += 1;
            if calm >= options.calm_rounds {
                return DynamicsReport {
                    rounds: round + 1,
                    converged: true,
                    final_max_change,
                };
            }
        } else {
            calm = 0;
        }
    }
    DynamicsReport {
        rounds: options.max_rounds,
        converged: false,
        final_max_change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nash::epsilon_nash_gap;
    use dlb_core::cost::total_cost;
    use dlb_core::rngutil::rng_for;
    use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
    use dlb_core::LatencyMatrix;

    fn sample(m: usize, avg: f64, seed: u64) -> Instance {
        let mut rng = rng_for(seed, 17);
        WorkloadSpec {
            loads: LoadDistribution::Uniform,
            avg_load: avg,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(m, 20.0), &mut rng)
    }

    #[test]
    fn dynamics_converge_and_reach_near_nash() {
        for seed in 0..3 {
            let instance = sample(15, 50.0, seed);
            let mut a = Assignment::local(&instance);
            let report = run_best_response_dynamics(
                &instance,
                &mut a,
                &DynamicsOptions {
                    seed,
                    change_threshold: 1e-4,
                    ..Default::default()
                },
            );
            assert!(report.converged, "seed {seed}");
            a.check_invariants(&instance).unwrap();
            let gap = epsilon_nash_gap(&instance, &a);
            assert!(gap < 1e-2, "seed {seed}: nash gap {gap}");
        }
    }

    #[test]
    fn tighter_threshold_means_tighter_equilibrium() {
        let instance = sample(10, 40.0, 9);
        let mut loose = Assignment::local(&instance);
        run_best_response_dynamics(
            &instance,
            &mut loose,
            &DynamicsOptions {
                change_threshold: 0.05,
                ..Default::default()
            },
        );
        let mut tight = Assignment::local(&instance);
        run_best_response_dynamics(
            &instance,
            &mut tight,
            &DynamicsOptions {
                change_threshold: 1e-6,
                ..Default::default()
            },
        );
        assert!(epsilon_nash_gap(&instance, &tight) <= epsilon_nash_gap(&instance, &loose) + 1e-9);
    }

    #[test]
    fn symmetric_instance_stays_symmetric_enough() {
        // Equal loads and speeds: all-local is already an equilibrium
        // when the latency is large relative to load differences.
        let instance = Instance::new(
            vec![1.0; 5],
            vec![10.0; 5],
            LatencyMatrix::homogeneous(5, 100.0),
        );
        let mut a = Assignment::local(&instance);
        let before = total_cost(&instance, &a);
        let report = run_best_response_dynamics(&instance, &mut a, &DynamicsOptions::default());
        assert!(report.converged);
        let after = total_cost(&instance, &a);
        assert!((before - after).abs() < 1e-9, "nothing should move");
    }

    #[test]
    fn replication_cap_is_enforced_throughout() {
        let instance = sample(8, 60.0, 4);
        let mut a = Assignment::local(&instance);
        // NB: starting all-local violates the cap; the first responses
        // repair it.
        let r = 3usize;
        run_best_response_dynamics(
            &instance,
            &mut a,
            &DynamicsOptions {
                replication: Some(r),
                change_threshold: 1e-4,
                ..Default::default()
            },
        );
        for k in 0..8 {
            let cap = instance.own_load(k) / r as f64;
            for j in 0..8 {
                assert!(
                    a.requests(k, j) <= cap + 1e-6,
                    "org {k} exceeds cap on server {j}"
                );
            }
        }
    }

    #[test]
    fn zero_load_orgs_are_skipped() {
        let instance = Instance::new(
            vec![1.0, 1.0],
            vec![0.0, 10.0],
            LatencyMatrix::homogeneous(2, 5.0),
        );
        let mut a = Assignment::local(&instance);
        let report = run_best_response_dynamics(&instance, &mut a, &DynamicsOptions::default());
        assert!(report.converged);
        a.check_invariants(&instance).unwrap();
    }
}
