//! ε-Nash verification.
//!
//! A state is an ε-Nash equilibrium when no organization can lower its
//! own cost `C_i` by more than a factor `ε` by unilaterally deviating.
//! Because the exact best response is computable in closed form, the
//! verification is exact (up to floating point).

use dlb_core::{Assignment, Instance};

use crate::best_response::{best_response, best_response_cost};

/// The largest relative gain any organization could realize by
/// deviating: `max_i (C_i − C_i^BR) / max(C_i, 1)`.
pub fn epsilon_nash_gap(instance: &Instance, a: &Assignment) -> f64 {
    let m = instance.len();
    let mut worst: f64 = 0.0;
    for i in 0..m {
        if instance.own_load(i) == 0.0 {
            continue;
        }
        let cur_row = a.owner_row(i);
        let cur = best_response_cost(instance, a, i, &cur_row);
        let br = best_response(instance, a, i);
        let best = best_response_cost(instance, a, i, &br);
        let gain = (cur - best) / cur.max(1.0);
        worst = worst.max(gain);
    }
    worst
}

/// Returns `true` when no organization can improve its own cost by a
/// relative factor larger than `epsilon`.
pub fn is_epsilon_nash(instance: &Instance, a: &Assignment, epsilon: f64) -> bool {
    epsilon_nash_gap(instance, a) <= epsilon
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{run_best_response_dynamics, DynamicsOptions};
    use dlb_core::LatencyMatrix;

    #[test]
    fn local_state_is_nash_under_huge_latency() {
        let instance = Instance::new(
            vec![1.0; 4],
            vec![10.0, 20.0, 5.0, 8.0],
            LatencyMatrix::homogeneous(4, 10_000.0),
        );
        let a = Assignment::local(&instance);
        assert!(is_epsilon_nash(&instance, &a, 1e-9));
    }

    #[test]
    fn imbalanced_state_is_not_nash_at_zero_latency() {
        let instance = Instance::new(vec![1.0, 1.0], vec![100.0, 0.0], LatencyMatrix::zero(2));
        let a = Assignment::local(&instance);
        assert!(!is_epsilon_nash(&instance, &a, 0.01));
        assert!(epsilon_nash_gap(&instance, &a) > 0.1);
    }

    #[test]
    fn dynamics_output_passes_verification() {
        let instance = Instance::new(
            vec![2.0, 1.0, 3.0],
            vec![50.0, 10.0, 0.0],
            LatencyMatrix::homogeneous(3, 5.0),
        );
        let mut a = Assignment::local(&instance);
        run_best_response_dynamics(
            &instance,
            &mut a,
            &DynamicsOptions {
                change_threshold: 1e-8,
                ..Default::default()
            },
        );
        assert!(is_epsilon_nash(&instance, &a, 1e-5));
    }

    #[test]
    fn gap_is_monotone_in_imbalance() {
        let make = |n0: f64| {
            let instance = Instance::new(
                vec![1.0, 1.0],
                vec![n0, 0.0],
                LatencyMatrix::homogeneous(2, 1.0),
            );
            let a = Assignment::local(&instance);
            epsilon_nash_gap(&instance, &a)
        };
        assert!(make(100.0) > make(10.0));
    }
}
