//! Price of anarchy: measured ratios and the closed-form theory of §V-A.
//!
//! For a homogeneous network (speed `s`, latency `c`, average load
//! `l_av`) the paper proves
//!
//! ```text
//! 1 + 2cs/l_av − 4(cs/l_av)²  ≤  PoA  ≤  1 + 2cs/l_av + (cs/l_av)²
//! ```
//!
//! (Theorem 1) and that in any equilibrium the load spread obeys
//! `|l_i − l_j| ≤ c·s` (Lemma 3). Both bounds, the tightness
//! construction from the proof, and the measured-cost ratio used in
//! Table III live here.

use dlb_core::{Assignment, Instance};

/// Theorem 1's closed-form band on the homogeneous price of anarchy:
/// `(lower, upper)` around `1 + 2cs/l_av`.
pub fn theorem1_bounds(c: f64, s: f64, l_av: f64) -> (f64, f64) {
    assert!(l_av > 0.0, "average load must be positive");
    let x = c * s / l_av;
    (
        (1.0 + 2.0 * x - 4.0 * x * x).max(1.0),
        1.0 + 2.0 * x + x * x,
    )
}

/// Lemma 3: in a homogeneous equilibrium, `|l_i − l_j| ≤ c·s`.
pub fn lemma3_load_spread_bound(c: f64, s: f64) -> f64 {
    c * s
}

/// Maximal pairwise load spread of an assignment (for checking Lemma 3
/// against measured equilibria).
pub fn load_spread(a: &Assignment) -> f64 {
    let loads = a.loads();
    let max = loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = loads.iter().copied().fold(f64::INFINITY, f64::min);
    if max.is_finite() && min.is_finite() {
        max - min
    } else {
        0.0
    }
}

/// The equilibrium used in Theorem 1's tightness proof: on a
/// homogeneous instance with equal initial loads `l_av ≥ 2cs`, every
/// organization keeps `2cs + (l_av − 2cs)/m` at home and relays
/// `(l_av − 2cs)/m` to each other server. Every server's load remains
/// `l_av`, yet `(m−1)(l_av−2cs)/m` requests per organization pay the
/// latency `c` — a socially wasteful Nash equilibrium.
///
/// # Panics
/// Panics when the instance is not homogeneous or `l_av < 2cs` (the
/// construction requires loaded servers).
pub fn theorem1_tight_equilibrium(instance: &Instance) -> Assignment {
    let m = instance.len();
    assert!(m >= 2, "need at least two servers");
    assert!(
        instance.is_homogeneous(1e-9),
        "tightness construction needs a homogeneous network"
    );
    let s = instance.speed(0);
    let c = instance.c(0, 1);
    let l_av = instance.average_load();
    for i in 0..m {
        assert!(
            (instance.own_load(i) - l_av).abs() <= 1e-9 * l_av.max(1.0),
            "tightness construction needs equal initial loads"
        );
    }
    assert!(
        l_av >= 2.0 * c * s,
        "construction requires l_av ≥ 2cs (loaded servers)"
    );
    let away = (l_av - 2.0 * c * s) / m as f64;
    let keep = l_av - (m as f64 - 1.0) * away;
    let mut rho = vec![0.0; m * m];
    for i in 0..m {
        for j in 0..m {
            rho[i * m + j] = if i == j { keep / l_av } else { away / l_av };
        }
    }
    Assignment::from_fractions(instance, &rho)
}

/// Measured cost ratio `ΣC(state) / ΣC(reference)` — the "cost of
/// selfishness" of Table III when `state` is an equilibrium and
/// `reference` the cooperative optimum.
pub fn cost_ratio(instance: &Instance, state: &Assignment, reference: &Assignment) -> f64 {
    let num = dlb_core::cost::total_cost(instance, state);
    let den = dlb_core::cost::total_cost(instance, reference);
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{run_best_response_dynamics, DynamicsOptions};
    use crate::nash::{epsilon_nash_gap, is_epsilon_nash};
    use dlb_core::cost::total_cost;
    use dlb_core::rngutil::rng_for;
    use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
    use dlb_core::LatencyMatrix;
    use dlb_solver::solve_bcd;

    #[test]
    fn bounds_shape() {
        let (lo, hi) = theorem1_bounds(20.0, 1.0, 1000.0);
        assert!(lo > 1.0 && hi > lo);
        // x = 0.02: lo ≈ 1.0384, hi ≈ 1.0404
        assert!((lo - (1.0 + 0.04 - 4.0 * 0.0004)).abs() < 1e-12);
        assert!((hi - (1.0 + 0.04 + 0.0004)).abs() < 1e-12);
        // Unloaded servers: lower bound clamps at 1.
        let (lo2, _) = theorem1_bounds(100.0, 1.0, 10.0);
        assert_eq!(lo2, 1.0);
    }

    #[test]
    fn tight_construction_is_nash() {
        let instance = Instance::homogeneous(6, 1.0, 5.0, 100.0);
        let eq = theorem1_tight_equilibrium(&instance);
        eq.check_invariants(&instance).unwrap();
        // Every server keeps load l_av.
        for j in 0..6 {
            assert!((eq.load(j) - 100.0).abs() < 1e-9);
        }
        assert!(
            is_epsilon_nash(&instance, &eq, 1e-9),
            "gap = {}",
            epsilon_nash_gap(&instance, &eq)
        );
    }

    #[test]
    fn tight_construction_cost_matches_lower_bound() {
        let m = 50;
        let (s, c, l_av) = (1.0, 5.0, 100.0);
        let instance = Instance::homogeneous(m, s, c, l_av);
        let eq = theorem1_tight_equilibrium(&instance);
        let opt = Assignment::local(&instance); // equal loads: optimal
        let ratio = cost_ratio(&instance, &eq, &opt);
        let (lo, hi) = theorem1_bounds(c, s, l_av);
        assert!(
            ratio >= lo - 0.01 && ratio <= hi + 0.01,
            "ratio {ratio} outside [{lo}, {hi}]"
        );
    }

    #[test]
    fn measured_poa_within_theorem1_band_homogeneous() {
        // Homogeneous loaded network, equal initial loads: by Theorem 1
        // any equilibrium ratio sits within the band (the all-local
        // optimum is exact here).
        let m = 10;
        let (s, c, l_av) = (1.0, 10.0, 200.0);
        let instance = Instance::homogeneous(m, s, c, l_av);
        let mut nash = Assignment::local(&instance);
        run_best_response_dynamics(
            &instance,
            &mut nash,
            &DynamicsOptions {
                change_threshold: 1e-8,
                ..Default::default()
            },
        );
        let opt = Assignment::local(&instance);
        let ratio = cost_ratio(&instance, &nash, &opt);
        let (_, hi) = theorem1_bounds(c, s, l_av);
        assert!(ratio >= 1.0 - 1e-9);
        assert!(ratio <= hi + 1e-6, "ratio {ratio} above upper bound {hi}");
    }

    #[test]
    fn lemma3_spread_holds_in_measured_equilibria() {
        let mut rng = rng_for(3, 5);
        let m = 12;
        let (s, c) = (1.0, 10.0);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 100.0,
            speeds: SpeedDistribution::Constant(s),
        }
        .sample(LatencyMatrix::homogeneous(m, c), &mut rng);
        let mut nash = Assignment::local(&instance);
        run_best_response_dynamics(
            &instance,
            &mut nash,
            &DynamicsOptions {
                change_threshold: 1e-8,
                ..Default::default()
            },
        );
        let spread = load_spread(&nash);
        let bound = lemma3_load_spread_bound(c, s);
        // Allow slack for the ε in the ε-equilibrium.
        assert!(
            spread <= bound * 1.05 + 1e-6,
            "spread {spread} exceeds Lemma 3 bound {bound}"
        );
    }

    #[test]
    fn cost_of_selfishness_is_small_on_paper_like_instances() {
        // The Table III headline: ratios ≤ 1.15.
        let mut worst: f64 = 0.0;
        for seed in 0..4 {
            let mut rng = rng_for(seed, 6);
            let instance = WorkloadSpec {
                loads: LoadDistribution::Uniform,
                avg_load: 50.0,
                speeds: SpeedDistribution::Constant(1.0),
            }
            .sample(LatencyMatrix::homogeneous(20, 20.0), &mut rng);
            let mut nash = Assignment::local(&instance);
            run_best_response_dynamics(
                &instance,
                &mut nash,
                &DynamicsOptions {
                    seed,
                    change_threshold: 1e-6,
                    ..Default::default()
                },
            );
            let (opt_state, _) = solve_bcd(&instance, 2_000, 1e-10);
            let opt_cost = dlb_solver::objective(&instance, &opt_state);
            let ratio = total_cost(&instance, &nash) / opt_cost;
            assert!(ratio >= 1.0 - 1e-6, "nash beat the optimum?! {ratio}");
            worst = worst.max(ratio);
        }
        assert!(
            worst < 1.25,
            "cost of selfishness suspiciously high: {worst}"
        );
    }
}
