//! Fixpoint parity between the two protocol runtimes.
//!
//! The event executor replays the exact same [`NodeMachine`] protocol
//! the thread runtime deploys — only message *timing* differs (per-link
//! virtual delays vs real channel races). Mirroring
//! `crates/distributed/tests/batched_parity.rs`, these tests pin the
//! consequence down: run both runtimes with the certified round budget
//! (`m − 1` quiet rounds requested, 20m + 100 rounds available — deep
//! into the audit rotation's tail either way), and the final `ΣC` must
//! agree within 1% across seeds, workload shapes, and network
//! substrates. Quiescence itself is *not* asserted: on tie-heavy
//! workloads (e.g. homogeneous latencies) Algorithm 1 legally shuffles
//! zero-improvement volume between equally good hosts forever, so
//! either runtime may exhaust the round budget at the fixpoint cost
//! without ever certifying.
//!
//! [`NodeMachine`]: dlb_runtime::NodeMachine

use dlb_core::workload::LoadDistribution;
use dlb_core::{Instance, LatencyMatrix};
use dlb_runtime::{run_cluster, run_cluster_events, ClusterOptions};

mod common;
use common::{planetlab_like, workload};

/// Certified options with a quiescent volume loose enough for the
/// thread runtime's racy exchange order to settle: the default 1e-9
/// can keep FP-noise volumes circulating for hundreds of rounds, while
/// 1e-6 is still ~8 orders below the workloads here.
fn certified(m: usize) -> ClusterOptions {
    ClusterOptions {
        quiescent_volume: 1e-6,
        ..ClusterOptions::certified(m)
    }
}

fn assert_parity(instance: &Instance, seed: u64, label: &str) {
    let m = instance.len();
    let options = certified(m);
    let threads = run_cluster(instance, &options);
    threads.assignment.check_invariants(instance).unwrap();
    let events = run_cluster_events(instance, &options, |i, j| instance.c(i, j) / 2.0);
    events.assignment.check_invariants(instance).unwrap();
    assert!(
        events.final_cost <= threads.final_cost * 1.01
            && threads.final_cost <= events.final_cost * 1.01,
        "{label} seed {seed}: events {} vs threads {}",
        events.final_cost,
        threads.final_cost
    );
}

#[test]
fn parity_uniform_homogeneous() {
    for seed in 1..=3u64 {
        let instance = workload(
            LoadDistribution::Uniform,
            50.0,
            LatencyMatrix::homogeneous(16, 20.0),
            seed,
        );
        assert_parity(&instance, seed, "uniform/homogeneous");
    }
}

#[test]
fn parity_exponential_heterogeneous() {
    for seed in 1..=3u64 {
        let instance = workload(
            LoadDistribution::Exponential,
            60.0,
            planetlab_like(14, seed),
            seed,
        );
        assert_parity(&instance, seed, "exponential/heterogeneous");
    }
}

#[test]
fn parity_peak_workload() {
    // The paper's hardest shape: all load on one server, spread by
    // doubling. Event timing must not change where the peak lands.
    for seed in 1..=2u64 {
        let m = 16;
        let mut instance = Instance::homogeneous(m, 1.0, 0.0, 20.0);
        let mut loads = vec![0.0; m];
        loads[0] = 50_000.0;
        instance.set_own_loads(loads);
        assert_parity(&instance, seed, "peak/homogeneous");
    }
}

#[test]
fn parity_with_failed_nodes() {
    let instance = workload(
        LoadDistribution::Exponential,
        80.0,
        planetlab_like(12, 5),
        5,
    );
    let options = ClusterOptions {
        failed: vec![3, 7],
        ..certified(12)
    };
    let threads = run_cluster(&instance, &options);
    let events = run_cluster_events(&instance, &options, |i, j| instance.c(i, j) / 2.0);
    for &f in &[3usize, 7] {
        assert_eq!(events.assignment.load(f), instance.own_load(f));
        assert_eq!(events.assignment.load(f), threads.assignment.load(f));
    }
    assert!(
        events.final_cost <= threads.final_cost * 1.01
            && threads.final_cost <= events.final_cost * 1.01,
        "failed-node parity: events {} vs threads {}",
        events.final_cost,
        threads.final_cost
    );
}
