//! Instance sampling shared by the runtime integration-test binaries,
//! so the determinism and parity suites exercise the same workloads.

use dlb_core::rngutil::rng_for;
use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
use dlb_core::{Instance, LatencyMatrix};
use rand::Rng;

/// A metric, asymmetry-free stand-in for measured PlanetLab latencies.
pub fn planetlab_like(m: usize, seed: u64) -> LatencyMatrix {
    let mut rng = rng_for(seed, 0xBA7C);
    let mut lat = LatencyMatrix::zero(m);
    for i in 0..m {
        for j in 0..m {
            if i != j {
                lat.set(i, j, rng.gen_range(2.0..80.0));
            }
        }
    }
    lat.metric_close();
    lat
}

/// Samples a §VI-A workload over the given latency substrate.
pub fn workload(dist: LoadDistribution, avg: f64, lat: LatencyMatrix, seed: u64) -> Instance {
    let mut rng = rng_for(seed, 0xF12);
    WorkloadSpec {
        loads: dist,
        avg_load: avg,
        speeds: SpeedDistribution::paper_uniform(),
    }
    .sample(lat, &mut rng)
}
