//! Deterministic simulation: the event executor must produce
//! bit-identical runs however many workers drain its delivery batches,
//! and however many times a configuration is replayed.
//!
//! The executor shards each batch over the `dlb-par` pool with the
//! order-preserving `par_map_mut`, so the delivered event order — and
//! therefore every ledger, every cost history entry, and the whole
//! `RunRecord` the scenario layer emits — is a pure function of
//! (instance, options, delay function). These tests pin that down
//! across `DLB_THREADS ∈ {1, 4, default}` and across repeats at the
//! executor API; `crates/scenario/tests/event_record_determinism.rs`
//! extends the same property to the whole `RunRecord`.
//!
//! This file is its own test binary so the `DLB_THREADS` mutations
//! cannot race with unrelated tests.

use dlb_core::workload::LoadDistribution;
use dlb_core::Instance;
use dlb_faults::{FaultPlan, FaultScript};
use dlb_runtime::{run_cluster_events, run_cluster_events_faulted, ClusterOptions, ClusterReport};
use std::sync::Mutex;

mod common;
use common::{planetlab_like, workload};

/// Both tests mutate the process-wide `DLB_THREADS` variable; they must
/// not interleave within this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// An instance big enough that delivery batches clear `dlb-par`'s
/// sequential cutoff (32 destinations), so the parallel sharding path
/// really runs under `DLB_THREADS=4`.
fn instance(m: usize, seed: u64) -> Instance {
    workload(
        LoadDistribution::Exponential,
        70.0,
        planetlab_like(m, seed),
        seed,
    )
}

fn simulate(instance: &Instance) -> ClusterReport {
    run_cluster_events(instance, &ClusterOptions::default(), |i, j| {
        instance.c(i, j) / 2.0
    })
}

/// Everything observable about a run that must be bit-stable. Wall
/// time is excluded on purpose — it is the one quantity the host may
/// legitimately vary (the scenario-level test covers `wall_secs`,
/// which carries *virtual* time for event runs).
fn fingerprint(report: &ClusterReport) -> (u64, Vec<u64>, Vec<u64>, usize, usize, u64, bool) {
    (
        report.event_hash,
        report.history.iter().map(|c| c.to_bits()).collect(),
        report
            .assignment
            .loads()
            .iter()
            .map(|l| l.to_bits())
            .collect(),
        report.rounds,
        report.exchanges,
        report.virtual_ms.to_bits(),
        report.quiescent,
    )
}

#[test]
fn event_order_and_results_are_thread_count_invariant() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let inst = instance(64, 1);
    std::env::set_var("DLB_THREADS", "1");
    let one = fingerprint(&simulate(&inst));
    std::env::set_var("DLB_THREADS", "4");
    let four = fingerprint(&simulate(&inst));
    std::env::remove_var("DLB_THREADS");
    let default = fingerprint(&simulate(&inst));
    assert_eq!(one, four, "DLB_THREADS=1 vs 4 diverged");
    assert_eq!(one, default, "pinned vs default thread count diverged");
}

/// A crash+loss+spike+partition script over the same workload: fault
/// trajectories must be exactly as thread-count-invariant as clean
/// runs — every script consultation happens on the single-threaded
/// scheduling path.
fn chaos_script(m: usize) -> FaultScript {
    FaultPlan::new()
        .churn(0.2, 40.0, 400.0)
        .loss(0.1)
        .spike(3.0, 20.0, 300.0)
        .partition(60.0, 200.0)
        .compile(5, m)
}

fn simulate_faulted(instance: &Instance, script: &FaultScript) -> ClusterReport {
    run_cluster_events_faulted(
        instance,
        &ClusterOptions::default(),
        |i, j| instance.c(i, j) / 2.0,
        script,
    )
}

#[test]
fn fault_trajectories_are_thread_count_invariant() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let inst = instance(64, 1);
    let script = chaos_script(64);
    std::env::set_var("DLB_THREADS", "1");
    let one = fingerprint(&simulate_faulted(&inst, &script));
    let one_faults = simulate_faulted(&inst, &script).faults;
    std::env::set_var("DLB_THREADS", "4");
    let four = fingerprint(&simulate_faulted(&inst, &script));
    let four_faults = simulate_faulted(&inst, &script).faults;
    std::env::remove_var("DLB_THREADS");
    let default = fingerprint(&simulate_faulted(&inst, &script));
    assert_eq!(one, four, "faulted DLB_THREADS=1 vs 4 diverged");
    assert_eq!(one, default, "faulted pinned vs default diverged");
    assert_eq!(one_faults, four_faults, "fault summaries diverged");
    // The script really bit: the trajectory differs from the clean run.
    let clean = fingerprint(&simulate(&inst));
    assert_ne!(one.0, clean.0, "faults must change the event order");
}

#[test]
fn repeated_runs_are_bit_identical_per_seed_and_differ_across_seeds() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::remove_var("DLB_THREADS");
    for seed in [2u64, 3] {
        let inst = instance(48, seed);
        let a = fingerprint(&simulate(&inst));
        let b = fingerprint(&simulate(&inst));
        assert_eq!(a, b, "seed {seed}: repeat diverged");
    }
    assert_ne!(
        fingerprint(&simulate(&instance(48, 2))).0,
        fingerprint(&simulate(&instance(48, 3))).0,
        "different instances must produce different event orders"
    );
}
