//! Exact load conservation under every fault script × detect mode.
//!
//! The safety contract of the exchange protocol: every request is
//! owned by exactly one server at every instant — whether exchanges
//! complete, tear on a crashed partner, roll back on a retransmission
//! timeout, or freeze inside a dead node's ledger. These tests sweep
//! the full fault grammar (crash, churn, loss, spike, partition, slow,
//! and their composition) against all three liveness-detection modes
//! and assert that the final assignment's per-owner totals reproduce
//! the input workload *bit-for-bit within 1e-6* and pass every
//! structural invariant. No silent-drop accounting: an exchange either
//! happened on both sides or on neither.

use dlb_core::workload::LoadDistribution;
use dlb_core::Instance;
use dlb_faults::FaultPlan;
use dlb_runtime::{run_cluster_events_faulted, ClusterOptions, DetectMode};

mod common;
use common::{planetlab_like, workload};

/// Every request lands on exactly one server: the per-owner totals of
/// the final assignment reproduce the input loads exactly.
fn assert_conserved(instance: &Instance, options: &ClusterOptions, plan: &FaultPlan, label: &str) {
    let m = instance.len();
    let script = plan.compile(11, m);
    let report =
        run_cluster_events_faulted(instance, options, |i, j| instance.c(i, j) / 2.0, &script);
    report
        .assignment
        .check_invariants(instance)
        .unwrap_or_else(|e| panic!("{label}: invariants broken: {e:?}"));
    for k in 0..m {
        let total = report.assignment.owner_total(k);
        assert!(
            (total - instance.own_load(k)).abs() < 1e-6,
            "{label}: owner {k} holds {total}, workload says {}",
            instance.own_load(k)
        );
    }
}

/// The script grid: every primitive alone plus the kitchen-sink
/// composition, covering torn exchanges (crash mid-round), rollbacks
/// (timeouts on slow partners), retransmissions (loss), and held
/// frames (partition).
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("crash", FaultPlan::new().crash(0.2, 60.0)),
        ("churn", FaultPlan::new().churn(0.25, 40.0, 400.0)),
        ("loss", FaultPlan::new().loss(0.2)),
        ("spike", FaultPlan::new().spike(6.0, 0.0, 1_500.0)),
        ("partition", FaultPlan::new().partition(20.0, 500.0)),
        ("slow", FaultPlan::new().slow(0.3, 6.0)),
        (
            "everything",
            FaultPlan::new()
                .crash(0.15, 80.0)
                .loss(0.1)
                .spike(3.0, 100.0, 600.0)
                .partition(200.0, 450.0)
                .slow(0.2, 4.0),
        ),
    ]
}

fn detect_modes() -> Vec<(&'static str, DetectMode)> {
    vec![
        ("oracle", DetectMode::Oracle),
        ("timeout", DetectMode::Timeout(120.0)),
        ("adaptive", DetectMode::Adaptive),
    ]
}

#[test]
fn conservation_survives_every_script_and_detector() {
    let instance = workload(
        LoadDistribution::Exponential,
        80.0,
        planetlab_like(14, 3),
        5,
    );
    for (plan_name, plan) in plans() {
        for (mode_name, detect) in detect_modes() {
            let options = ClusterOptions {
                detect,
                exchange_rto_ms: 4_000.0,
                ..Default::default()
            };
            assert_conserved(
                &instance,
                &options,
                &plan,
                &format!("{plan_name}/{mode_name}"),
            );
        }
    }
}

/// The adversarial corner: an RTO short enough to tear alive–alive
/// exchanges. A late Commit or CommitAck arriving after its waiter
/// rolled back must be ignored, never half-applied.
#[test]
fn conservation_survives_rto_tearing_live_exchanges() {
    let instance = workload(
        LoadDistribution::Exponential,
        90.0,
        planetlab_like(12, 7),
        9,
    );
    // 6× stragglers against an RTO of ~2 median hops: straggler
    // chains routinely overrun the timer while both parties live.
    let plan = FaultPlan::new().slow(0.3, 6.0);
    for (mode_name, detect) in detect_modes() {
        if matches!(detect, DetectMode::Oracle) {
            continue; // no RTOs under the oracle
        }
        let options = ClusterOptions {
            detect,
            exchange_rto_ms: 80.0,
            ..Default::default()
        };
        assert_conserved(&instance, &options, &plan, &format!("tearing/{mode_name}"));
    }
}
