//! Pluggable pacing for the event executor.
//!
//! The executor's event heap fixes *what* happens and in *which
//! order*; the clock only decides how long the caller waits between
//! delivery batches. [`VirtualClock`] never waits — simulated time
//! jumps from batch to batch, which is what tests and Figure-2-scale
//! experiments want. [`WallClock`] sleeps until each batch's virtual
//! due time has really elapsed, turning the same executor into a live,
//! paced run. Because the clock cannot reorder deliveries, results are
//! bit-identical under either implementation.

use std::time::{Duration, Instant};

/// Pacing policy of the event executor (see the module docs).
pub trait Clock {
    /// Called once per delivery batch with the batch's virtual due
    /// time (milliseconds since the run started, non-decreasing).
    /// Returns when the batch may be delivered.
    fn wait_until(&mut self, virtual_ms: f64);
}

/// Deterministic simulation pacing: never waits, so a run covering
/// hours of simulated protocol time finishes as fast as the machine
/// can drain the heap.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock;

impl Clock for VirtualClock {
    fn wait_until(&mut self, _virtual_ms: f64) {}
}

/// Live pacing: sleeps until each batch's virtual due time has
/// elapsed on the machine's monotonic clock. `scale` maps virtual to
/// real time (`1.0` = real time, `0.001` = 1000× fast-forward).
///
/// One clock value can pace several consecutive runs: virtual due
/// times are non-decreasing within a run, so a *decrease* marks the
/// start of the next run and re-anchors the monotonic baseline —
/// without this, a reused clock would find every due time already in
/// the past and silently stop pacing.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    start: Option<Instant>,
    last_ms: f64,
    scale: f64,
}

impl WallClock {
    /// A real-time clock (1 virtual ms = 1 wall ms).
    pub fn new() -> Self {
        Self::with_scale(1.0)
    }

    /// A clock running at `scale` wall seconds per virtual second.
    ///
    /// # Panics
    /// Panics when `scale` is negative or not finite.
    pub fn with_scale(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "scale must be finite and non-negative"
        );
        Self {
            start: None,
            last_ms: 0.0,
            scale,
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn wait_until(&mut self, virtual_ms: f64) {
        if virtual_ms < self.last_ms {
            self.start = None; // next run began: re-anchor
        }
        self.last_ms = virtual_ms;
        let start = *self.start.get_or_insert_with(Instant::now);
        let due = Duration::from_secs_f64((virtual_ms * self.scale / 1000.0).max(0.0));
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_never_waits() {
        let mut clock = VirtualClock;
        let start = Instant::now();
        for t in 0..1000 {
            clock.wait_until(t as f64 * 1e6);
        }
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn wall_clock_paces_to_the_due_time() {
        let mut clock = WallClock::new();
        let start = Instant::now();
        clock.wait_until(0.0);
        clock.wait_until(30.0);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(28), "elapsed {elapsed:?}");
    }

    #[test]
    fn wall_clock_scale_fast_forwards() {
        let mut clock = WallClock::with_scale(0.01);
        let start = Instant::now();
        clock.wait_until(100.0); // 100 virtual ms → 1 wall ms
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn wall_clock_reanchors_for_a_second_run() {
        let mut clock = WallClock::new();
        clock.wait_until(0.0);
        clock.wait_until(25.0); // first run ends 25 virtual ms in
        let start = Instant::now();
        clock.wait_until(0.0); // time went backwards: a new run
        clock.wait_until(20.0); // must be paced against the new anchor
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(18), "elapsed {elapsed:?}");
    }

    #[test]
    fn wall_clock_tolerates_past_due_times() {
        let mut clock = WallClock::new();
        clock.wait_until(5.0);
        std::thread::sleep(Duration::from_millis(10));
        let start = Instant::now();
        clock.wait_until(6.0); // already in the past: no sleep
        assert!(start.elapsed() < Duration::from_millis(5));
    }
}
