//! The thread runtime: one OS thread per organization plus a
//! coordinator thread loop, wired with unbounded channels.
//!
//! Round/termination logic lives in
//! [`CoordinatorMachine`] and the per-node protocol in
//! [`NodeMachine`](crate::machine::NodeMachine) —
//! this module only supplies the *thread-shaped driver*: spawn `m`
//! node threads, pump the coordinator's inbox, fan its broadcasts out
//! over the channel mesh, and join. The event executor
//! ([`crate::executor`]) drives the same machines without any of the
//! threads, which is the mode that scales to Figure-2-size clusters.
//!
//! The coordinator plays two roles the paper assumes as substrates:
//! the converged *gossip layer* (it rebroadcasts the load vector at
//! every round start — `dlb-gossip` shows the decentralized version of
//! this plumbing) and the *termination detector* (it stops once no
//! request volume has moved for a configurable number of rounds).
//!
//! The per-round `ΣC` history is reconstructed exactly from the nodes'
//! local cost terms: each report carries
//! `Σ_k r_kj (l_j/2s_j + c_kj)`, and these sum to the system objective
//! — the coordinator never needs to see a ledger until shutdown.

use crossbeam::channel::{unbounded, Receiver, Sender};
use dlb_core::{Assignment, Instance};
use std::sync::Arc;
use std::thread;

use crate::machine::{CoordinatorMachine, Dest, Outbound};
use crate::message::Frame;
use crate::node::{run_node, NodeConfig, NodeLinks};

/// How the coordinator learns that a node has crashed.
///
/// The baseline [`DetectMode::Oracle`] is the script-fed liveness
/// oracle: the driver tells the coordinator which nodes are down
/// (ground truth, zero detection latency) — the idealized-failure
/// regime every parity test pins. The other two modes move detection
/// *into the protocol*: the coordinator arms a per-round report
/// deadline and suspects any node whose report has not arrived when it
/// fires; exchanges get their own retransmission timeout so a proposer
/// whose partner dies mid-exchange aborts and rolls back locally.
/// Under both in-protocol modes the oracle is provably unreached
/// ([`CoordinatorMachine::set_down`] panics if consulted).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DetectMode {
    /// Ground-truth liveness from the fault script (the default).
    #[default]
    Oracle,
    /// Fixed per-round report deadline, in virtual milliseconds after
    /// the round start. Aggressive values trade detection latency for
    /// false positives (wrongly suspected stragglers, which later
    /// rejoin through the probation path).
    Timeout(f64),
    /// Phi-accrual-style adaptive deadline: a per-node running
    /// mean/variance over observed report latencies (Welford, pure
    /// f64, no RNG) sets each node's bound at `μ + 4σ + 1 ms`; nodes
    /// with fewer than three observations fall back to the global
    /// estimator, which itself boots at
    /// [`ADAPTIVE_BOOTSTRAP_MS`](crate::machine::ADAPTIVE_BOOTSTRAP_MS).
    /// Deterministic across repeats and `DLB_THREADS`.
    Adaptive,
}

/// What the in-protocol failure detector did during a run (all zeros
/// under [`DetectMode::Oracle`] and for the thread runtime).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DetectorSummary {
    /// Nodes suspected after missing a report deadline (a node
    /// re-suspected in a later round counts again).
    pub suspicions: u32,
    /// Suspicions that turned out wrong: the node was alive and its
    /// late report triggered the probation/rejoin handshake.
    pub false_positives: u32,
    /// Mean virtual time from a node's physical crash to its
    /// suspicion, over true-positive detections (`0` when none).
    pub detection_latency_ms: f64,
    /// Total virtual time wrongly-suspected nodes spent excluded
    /// before rejoining.
    pub rejoin_ms: f64,
    /// Exchanges a node aborted and rolled back after its partner went
    /// silent mid-exchange.
    pub aborted_exchanges: u32,
}

impl DetectorSummary {
    /// Whether the detector has nothing to report.
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

/// What the open-system request stream experienced during a run (all
/// zeros for closed-batch runs and the thread runtime). Latencies are
/// virtual milliseconds; the percentile fields are computed over the
/// sojourns of every served request.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamSummary {
    /// Requests routed to a live server and served.
    pub served: u64,
    /// Requests dropped because their chosen server was physically
    /// down at arrival time.
    pub dropped: u64,
    /// Median request sojourn (network delay + expected wait), ms.
    pub p50_ms: f64,
    /// 99th-percentile request sojourn, ms.
    pub p99_ms: f64,
    /// Virtual time the cluster spent imbalanced while requests
    /// flowed: stretches where the worst live server's normalized load
    /// `l_j/s_j` exceeded twice the live mean.
    pub imbalance_ms: f64,
}

impl StreamSummary {
    /// Whether no stream ran (the closed-batch summary).
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

/// Cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOptions {
    /// Maximum number of rounds to run.
    pub max_rounds: usize,
    /// Stop after this many consecutive rounds in which the moved
    /// request volume stays below [`ClusterOptions::quiescent_volume`].
    /// With auditing on, `m − 1` quiet rounds certify pairwise
    /// optimality of the final state; the default is a cheaper
    /// heuristic that the integration tests show suffices in practice.
    pub quiescent_rounds: usize,
    /// Moved volume below which a round counts as quiet.
    pub quiescent_volume: f64,
    /// Nodes excluded from every round (crash-faulted from the start;
    /// the coordinator announces them, so peers neither propose nor
    /// audit them).
    pub failed: Vec<u32>,
    /// Per-node protocol configuration.
    pub node: NodeConfig,
    /// How crashed nodes are detected (see [`DetectMode`]). Only the
    /// event executor honors the in-protocol modes; the thread runtime
    /// (which has no virtual clock to arm deadlines on) requires
    /// [`DetectMode::Oracle`].
    pub detect: DetectMode,
    /// Exchange retransmission timeout (virtual ms) under in-protocol
    /// detection: how long a node waits for its partner's next
    /// data-plane frame before aborting the exchange and rolling back.
    /// Must exceed the worst-case frame round trip (including fault
    /// retransmissions and partition holds) or live exchanges tear;
    /// the scenario layer derives a safe bound from the fault plan.
    /// Ignored under [`DetectMode::Oracle`].
    pub exchange_rto_ms: f64,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            max_rounds: 300,
            quiescent_rounds: 3,
            quiescent_volume: 1e-9,
            failed: Vec::new(),
            node: NodeConfig::default(),
            detect: DetectMode::Oracle,
            exchange_rto_ms: 10_000.0,
        }
    }
}

impl ClusterOptions {
    /// Options that run until the audit rotation certifies pairwise
    /// optimality: `m − 1` consecutive quiet rounds.
    pub fn certified(m: usize) -> Self {
        Self {
            quiescent_rounds: m.saturating_sub(1).max(1),
            max_rounds: 20 * m + 100,
            ..Default::default()
        }
    }
}

/// Result of a cluster run (either runtime).
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The final assignment assembled from the nodes' ledgers.
    pub assignment: Assignment,
    /// `ΣC` of the final assignment.
    pub final_cost: f64,
    /// Exact `ΣC` after every round (index 0 = initial assignment).
    pub history: Vec<f64>,
    /// Rounds actually executed.
    pub rounds: usize,
    /// Total exchanges across all rounds (including zero-volume audit
    /// exchanges).
    pub exchanges: usize,
    /// Total request volume moved across all rounds.
    pub moved: f64,
    /// Proposals that lost to a busy partner.
    pub lost_proposals: usize,
    /// Whether the run ended by quiescence (`true`) or by the round
    /// budget (`false`).
    pub quiescent: bool,
    /// Simulated protocol time in ms under the event executor's link
    /// delays (`0.0` for the thread runtime, which has no virtual
    /// clock).
    pub virtual_ms: f64,
    /// Fingerprint of the delivered event order (event executor only;
    /// `0` for the thread runtime). Bit-identical across repeats and
    /// `DLB_THREADS` values — the determinism suite's witness.
    pub event_hash: u64,
    /// What the fault script injected during the run (all zeros for
    /// the thread runtime and for fault-free event runs).
    pub faults: dlb_faults::FaultSummary,
    /// What the in-protocol failure detector did (all zeros under
    /// [`DetectMode::Oracle`] and for the thread runtime).
    pub detector: DetectorSummary,
    /// What the open-system request stream experienced (all zeros for
    /// closed-batch runs and the thread runtime).
    pub stream: StreamSummary,
}

/// Runs the full message-passing protocol for `instance` on the thread
/// runtime (one OS thread per organization), starting from the
/// all-local assignment. For clusters past a few hundred nodes prefer
/// [`run_cluster_events`](crate::executor::run_cluster_events), which
/// hosts the same protocol on the event executor in a single process.
pub fn run_cluster(instance: &Instance, options: &ClusterOptions) -> ClusterReport {
    assert!(
        matches!(options.detect, DetectMode::Oracle),
        "the thread runtime has no virtual clock to arm deadlines on; \
         in-protocol detection needs the event executor"
    );
    let m = instance.len();
    let shared = Arc::new(instance.clone());
    let mut coordinator = CoordinatorMachine::new(Arc::clone(&shared), options);

    // Channel mesh: one inbox per node, one for the coordinator.
    let mut inboxes: Vec<Option<Receiver<Frame>>> = Vec::with_capacity(m);
    let mut senders: Vec<Sender<Frame>> = Vec::with_capacity(m);
    for _ in 0..m {
        let (tx, rx) = unbounded::<Frame>();
        senders.push(tx);
        inboxes.push(Some(rx));
    }
    let (coord_tx, coord_rx) = unbounded::<Frame>();

    let mut handles = Vec::with_capacity(m);
    for id in 0..m {
        let inbox = inboxes[id].take().expect("inbox taken once");
        let links = NodeLinks {
            peers: senders.clone(),
            coordinator: coord_tx.clone(),
        };
        let instance = Arc::clone(&shared);
        let ledger = crate::machine::local_ledger(&instance, id as u32);
        let node_config = options.node;
        handles.push(
            thread::Builder::new()
                .name(format!("dlb-node-{id}"))
                .spawn(move || run_node(id as u32, instance, ledger, node_config, inbox, links))
                .expect("spawn node thread"),
        );
    }
    drop(coord_tx); // coordinator keeps only the receiving side

    let mut out: Vec<Outbound> = Vec::new();
    let broadcast = |senders: &[Sender<Frame>], out: &mut Vec<Outbound>| {
        for o in out.drain(..) {
            match o.to {
                Dest::Node(j) => {
                    let frame = Arc::try_unwrap(o.frame).unwrap_or_else(|a| (*a).clone());
                    let _ = senders[j as usize].send(frame);
                }
                Dest::Coordinator => unreachable!("coordinator never messages itself"),
            }
        }
    };
    coordinator.start(&mut out);
    broadcast(&senders, &mut out);
    while !coordinator.is_done() {
        match coord_rx.recv() {
            Ok(frame) => {
                coordinator.handle(&frame, &mut out);
                broadcast(&senders, &mut out);
            }
            Err(_) => panic!("all nodes disconnected before the run completed"),
        }
    }
    for h in handles {
        h.join().expect("node thread panicked");
    }
    coordinator.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::cost::total_cost;
    use dlb_core::rngutil::rng_for;
    use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
    use dlb_core::LatencyMatrix;
    use dlb_core::SparseVec;
    use dlb_distributed::{Engine, EngineOptions};

    fn engine_fixpoint(instance: &Instance) -> f64 {
        let mut engine = Engine::new(
            instance.clone(),
            EngineOptions {
                parallel: false,
                ..Default::default()
            },
        );
        engine.run_to_convergence(1e-12, 3, 300).final_cost
    }

    #[test]
    fn two_nodes_split_a_peak() {
        let mut instance = Instance::homogeneous(2, 1.0, 1.0, 0.0);
        instance.set_own_loads(vec![1000.0, 0.0]);
        let report = run_cluster(&instance, &ClusterOptions::default());
        report.assignment.check_invariants(&instance).unwrap();
        // Lemma 1: optimal transfer is (l_0 − l_1 − c·s)/2 = 499.5.
        let l0 = report.assignment.load(0);
        let l1 = report.assignment.load(1);
        assert!((l0 - 500.5).abs() < 1e-6, "l0 = {l0}");
        assert!((l1 - 499.5).abs() < 1e-6, "l1 = {l1}");
        assert!(report.quiescent);
        // The thread runtime has no virtual clock.
        assert_eq!(report.virtual_ms, 0.0);
        assert_eq!(report.event_hash, 0);
    }

    #[test]
    fn cluster_matches_engine_fixpoint() {
        let mut rng = rng_for(3, 0xC1);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 80.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(12, 20.0), &mut rng);
        let report = run_cluster(&instance, &ClusterOptions::certified(12));
        report.assignment.check_invariants(&instance).unwrap();
        let opt = engine_fixpoint(&instance);
        // Both sides stop at *a* pairwise-optimal state, and those are
        // not unique: the certified cluster and the engine follow
        // different exchange orders (threads vs shuffled sweep), so
        // their fixpoints can differ by a small margin. 2% is the same
        // band the engine's own pruned-vs-exact comparison uses.
        assert!(
            report.final_cost <= opt * 1.02,
            "cluster {} vs engine fixpoint {}",
            report.final_cost,
            opt
        );
    }

    #[test]
    fn history_is_exact_and_decreasing() {
        let mut rng = rng_for(5, 0xC3);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 60.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(8, 10.0), &mut rng);
        let report = run_cluster(&instance, &ClusterOptions::default());
        // Last history entry must equal the exact final cost: the
        // local cost terms sum to the objective.
        let last = *report.history.last().unwrap();
        assert!(
            (last - report.final_cost).abs() <= 1e-6 * report.final_cost.max(1.0),
            "reported {last} vs exact {}",
            report.final_cost
        );
        // ΣC never increases: every exchange is a pairwise optimum.
        for w in report.history.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9 * w[0].max(1.0),
                "cost rose: {:?}",
                report.history
            );
        }
    }

    #[test]
    fn peak_spreads_in_logarithmic_rounds() {
        let m = 16;
        let mut instance = Instance::homogeneous(m, 1.0, 0.0, 20.0);
        let mut loads = vec![0.0; m];
        loads[0] = 16_000.0;
        instance.set_own_loads(loads);
        let report = run_cluster(&instance, &ClusterOptions::default());
        report.assignment.check_invariants(&instance).unwrap();
        for j in 0..m {
            let l = report.assignment.load(j);
            assert!((l - 1000.0).abs() < 150.0, "server {j} ended with load {l}");
        }
        assert!(report.quiescent, "should reach quiescence");
        assert!(
            (4..=60).contains(&report.rounds),
            "{} rounds",
            report.rounds
        );
    }

    #[test]
    fn failed_nodes_take_no_part() {
        let mut instance = Instance::homogeneous(6, 1.0, 1.0, 0.0);
        instance.set_own_loads(vec![600.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let report = run_cluster(
            &instance,
            &ClusterOptions {
                failed: vec![4, 5],
                ..Default::default()
            },
        );
        report.assignment.check_invariants(&instance).unwrap();
        assert_eq!(report.assignment.load(4), 0.0);
        assert_eq!(report.assignment.load(5), 0.0);
        // The four live nodes share the peak.
        for j in 0..4 {
            assert!(report.assignment.load(j) > 100.0);
        }
    }

    #[test]
    fn conservation_under_concurrency() {
        // Many owners, many rounds, real threads: every organization's
        // request total must survive the message storm exactly.
        let mut rng = rng_for(17, 0xC2);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Uniform,
            avg_load: 120.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(24, 5.0), &mut rng);
        let report = run_cluster(&instance, &ClusterOptions::default());
        report.assignment.check_invariants(&instance).unwrap();
        for k in 0..24 {
            let total = report.assignment.owner_total(k);
            assert!(
                (total - instance.own_load(k)).abs() < 1e-6,
                "owner {k}: {total} != {}",
                instance.own_load(k)
            );
        }
    }

    #[test]
    fn single_node_cluster_is_trivial() {
        let instance = Instance::homogeneous(1, 1.0, 0.0, 50.0);
        let report = run_cluster(&instance, &ClusterOptions::default());
        assert_eq!(report.exchanges, 0);
        assert!(report.quiescent);
        assert_eq!(report.assignment.load(0), 50.0);
    }

    #[test]
    fn audit_discovers_relabelings() {
        // Two servers host each other's requests with equal loads: the
        // load-based score sees nothing, only an audit probe running
        // Algorithm 1 can untangle it. Build the state by disabling
        // audits first, then rebalance with audits on.
        let mut instance = Instance::homogeneous(2, 1.0, 50.0, 0.0);
        instance.set_own_loads(vec![100.0, 100.0]);
        let mut crossed = Assignment::local(&instance);
        // Cross-host everything by hand.
        let mut l0 = SparseVec::new();
        l0.set(1, 100.0);
        let mut l1 = SparseVec::new();
        l1.set(0, 100.0);
        crossed.replace_ledger(0, l0);
        crossed.replace_ledger(1, l1);
        crossed.refresh_loads();
        let crossed_cost = total_cost(&instance, &crossed);
        // The cluster cannot start from a crossed state (nodes start
        // all-local), so check the primitive directly: an audit
        // exchange on the crossed ledgers returns everything home.
        use dlb_distributed::transfer::calc_best_transfer;
        let out = calc_best_transfer(&instance, crossed.ledger(0), crossed.ledger(1), 0, 1);
        assert_eq!(out.ledger_i.get(0), 100.0, "own requests return home");
        assert_eq!(out.ledger_j.get(1), 100.0);
        let mut fixed = crossed.clone();
        fixed.replace_ledger(0, out.ledger_i);
        fixed.replace_ledger(1, out.ledger_j);
        fixed.refresh_loads();
        assert!(total_cost(&instance, &fixed) < crossed_cost * 0.6);
    }
}
