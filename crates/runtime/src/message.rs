//! The wire protocol of the message-passing runtime.
//!
//! Every payload that crosses a channel is first serialized into a
//! length-delimited little-endian frame (via `bytes`), exactly as it
//! would be on a TCP connection between two organizations. Encoding a
//! ledger costs 12 bytes per entry, so even a full exchange between two
//! heavily shared servers in a 5000-organization system is a frame of
//! ~60 kB — small next to the request payloads the system actually
//! relays.
//!
//! The protocol has two planes:
//!
//! * **control plane** (coordinator ↔ node): [`Frame::RoundStart`],
//!   [`Frame::Report`], [`Frame::Shutdown`], [`Frame::FinalLedger`] —
//!   the coordinator stands in for the gossip layer (it redistributes
//!   the load vector each round) and detects termination;
//! * **data plane** (node ↔ node): [`Frame::Propose`],
//!   [`Frame::Accept`], [`Frame::Busy`], [`Frame::Commit`] — the
//!   pairwise exchange of Algorithm 1, executed on real serialized
//!   ledgers.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dlb_core::SparseVec;
use std::sync::Arc;

/// How a node's initiator role ended this round (carried by
/// [`Frame::Report`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundOutcome {
    /// The node saw no partner worth proposing to.
    NoProposal,
    /// The chosen partner was already locked in another exchange.
    Lost,
    /// The exchange completed (reported by the initiator).
    Exchanged,
    /// The node yielded its initiator role in a proposal collision and
    /// took part as the acceptor; the initiator separately reports the
    /// exchange itself.
    Accepted,
    /// The node timed out waiting on its exchange partner mid-protocol
    /// and rolled the tentative transfer back locally. Only emitted
    /// under in-protocol failure detection (`detect != oracle`), where
    /// exchanges carry their own retransmission timeout.
    Aborted,
}

impl RoundOutcome {
    fn to_u8(self) -> u8 {
        match self {
            RoundOutcome::NoProposal => 0,
            RoundOutcome::Lost => 1,
            RoundOutcome::Exchanged => 2,
            RoundOutcome::Accepted => 3,
            RoundOutcome::Aborted => 4,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(RoundOutcome::NoProposal),
            1 => Some(RoundOutcome::Lost),
            2 => Some(RoundOutcome::Exchanged),
            3 => Some(RoundOutcome::Accepted),
            4 => Some(RoundOutcome::Aborted),
            _ => None,
        }
    }
}

/// A protocol message. `from` fields are node indices; ledgers travel
/// as `(owner, requests)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Coordinator → node: a new round begins. Carries the round number
    /// and the freshest load vector (the coordinator plays the role of
    /// a converged gossip layer; `dlb-gossip` shows the decentralized
    /// equivalent).
    RoundStart {
        /// Round number (0-based).
        round: u64,
        /// Load of every server, by index. One `Arc` per round
        /// (epoch): the coordinator builds the vector once and every
        /// per-node frame — including the per-channel `Frame` clones
        /// the thread runtime makes — shares it instead of carrying
        /// one of `m` copies.
        loads: Arc<Vec<f64>>,
        /// Servers excluded this round (failed / crashed), sorted
        /// ascending by id.
        excluded: Vec<u32>,
        /// Load-vector epoch: advances only when the gossiped view
        /// (loads or exclusions) changed since the previous round.
        /// Nodes running `SelectPolicy::TopK` rebuild their candidate
        /// merge iff this advances; stays 0 under exact selection.
        epoch: u64,
        /// The epoch's gossiped hot set (most over-/under-loaded live
        /// nodes), sorted ascending by id; empty under exact
        /// selection. One `Arc` per epoch, shared like `loads`.
        hot: Arc<Vec<u32>>,
    },
    /// Node → node: "let us run Algorithm 1 on our pair".
    Propose {
        /// Proposing node.
        from: u32,
        /// Round the proposal belongs to.
        round: u64,
    },
    /// Node → node: acceptance, carrying the acceptor's full ledger so
    /// the initiator can run Algorithm 1 exactly.
    Accept {
        /// Accepting node.
        from: u32,
        /// Round of the matching proposal.
        round: u64,
        /// The acceptor's ledger: who owns how many of its requests.
        ledger: Vec<(u32, f64)>,
    },
    /// Node → node: the contacted node is already in an exchange (or
    /// itself awaiting an answer) this round.
    Busy {
        /// Rejecting node.
        from: u32,
        /// Round of the rejected proposal.
        round: u64,
    },
    /// Node → node: the initiator's result of Algorithm 1 — the
    /// acceptor's new ledger after the optimal pairwise transfer.
    Commit {
        /// Initiating node.
        from: u32,
        /// Round of the exchange.
        round: u64,
        /// The acceptor's new ledger.
        ledger: Vec<(u32, f64)>,
    },
    /// Node → coordinator: the node's initiator role resolved. Carries
    /// the node's current load and local cost term
    /// `Σ_k r_kj (l_j/2s_j + c_kj)` — summing these over all nodes
    /// reproduces the exact `ΣC` — plus the partner's values when an
    /// exchange happened, so the coordinator can refresh its view
    /// without waiting for acceptors.
    Report {
        /// Reporting node.
        from: u32,
        /// Round being reported.
        round: u64,
        /// How the initiator role ended.
        outcome: RoundOutcome,
        /// Reporting node's load after the round.
        load: f64,
        /// Reporting node's local `ΣC` contribution.
        local_cost: f64,
        /// `(partner, partner_load, partner_local_cost, moved)` for
        /// [`RoundOutcome::Exchanged`].
        exchange: Option<(u32, f64, f64, f64)>,
    },
    /// Node → node: the acceptor installed the committed ledger. Only
    /// sent under in-protocol failure detection, where the initiator
    /// applies its own half of the transfer on this acknowledgement
    /// instead of at [`Frame::Commit`] time — so a partner that dies
    /// mid-exchange leaves *nothing* half-applied on either side.
    CommitAck {
        /// Acknowledging (acceptor) node.
        from: u32,
        /// Round of the exchange.
        round: u64,
    },
    /// Coordinator → node: stop after sending back the final ledger.
    Shutdown,
    /// Node → coordinator: the node's final ledger.
    FinalLedger {
        /// Reporting node.
        from: u32,
        /// Final ledger of the node's server.
        ledger: Vec<(u32, f64)>,
    },
}

const TAG_ROUND_START: u8 = 1;
const TAG_PROPOSE: u8 = 2;
const TAG_ACCEPT: u8 = 3;
const TAG_BUSY: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_REPORT: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
const TAG_FINAL_LEDGER: u8 = 8;
const TAG_COMMIT_ACK: u8 = 9;

fn put_ledger(buf: &mut BytesMut, ledger: &[(u32, f64)]) {
    buf.put_u32_le(ledger.len() as u32);
    for &(owner, amount) in ledger {
        buf.put_u32_le(owner);
        buf.put_f64_le(amount);
    }
}

fn get_ledger(buf: &mut Bytes) -> Option<Vec<(u32, f64)>> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 12 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let owner = buf.get_u32_le();
        let amount = buf.get_f64_le();
        out.push((owner, amount));
    }
    Some(out)
}

impl Frame {
    /// Serializes the frame into a standalone byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            Frame::RoundStart {
                round,
                loads,
                excluded,
                epoch,
                hot,
            } => {
                buf.put_u8(TAG_ROUND_START);
                buf.put_u64_le(*round);
                buf.put_u32_le(loads.len() as u32);
                for &l in loads.iter() {
                    buf.put_f64_le(l);
                }
                buf.put_u32_le(excluded.len() as u32);
                for &x in excluded {
                    buf.put_u32_le(x);
                }
                buf.put_u64_le(*epoch);
                buf.put_u32_le(hot.len() as u32);
                for &x in hot.iter() {
                    buf.put_u32_le(x);
                }
            }
            Frame::Propose { from, round } => {
                buf.put_u8(TAG_PROPOSE);
                buf.put_u32_le(*from);
                buf.put_u64_le(*round);
            }
            Frame::Accept {
                from,
                round,
                ledger,
            } => {
                buf.put_u8(TAG_ACCEPT);
                buf.put_u32_le(*from);
                buf.put_u64_le(*round);
                put_ledger(&mut buf, ledger);
            }
            Frame::Busy { from, round } => {
                buf.put_u8(TAG_BUSY);
                buf.put_u32_le(*from);
                buf.put_u64_le(*round);
            }
            Frame::Commit {
                from,
                round,
                ledger,
            } => {
                buf.put_u8(TAG_COMMIT);
                buf.put_u32_le(*from);
                buf.put_u64_le(*round);
                put_ledger(&mut buf, ledger);
            }
            Frame::Report {
                from,
                round,
                outcome,
                load,
                local_cost,
                exchange,
            } => {
                buf.put_u8(TAG_REPORT);
                buf.put_u32_le(*from);
                buf.put_u64_le(*round);
                buf.put_u8(outcome.to_u8());
                buf.put_f64_le(*load);
                buf.put_f64_le(*local_cost);
                match exchange {
                    Some((partner, partner_load, partner_cost, moved)) => {
                        buf.put_u8(1);
                        buf.put_u32_le(*partner);
                        buf.put_f64_le(*partner_load);
                        buf.put_f64_le(*partner_cost);
                        buf.put_f64_le(*moved);
                    }
                    None => buf.put_u8(0),
                }
            }
            Frame::CommitAck { from, round } => {
                buf.put_u8(TAG_COMMIT_ACK);
                buf.put_u32_le(*from);
                buf.put_u64_le(*round);
            }
            Frame::Shutdown => {
                buf.put_u8(TAG_SHUTDOWN);
            }
            Frame::FinalLedger { from, ledger } => {
                buf.put_u8(TAG_FINAL_LEDGER);
                buf.put_u32_le(*from);
                put_ledger(&mut buf, ledger);
            }
        }
        buf.freeze()
    }

    /// Decodes a frame produced by [`Frame::encode`]. Returns `None` on
    /// malformed input.
    pub fn decode(mut buf: Bytes) -> Option<Frame> {
        if buf.remaining() < 1 {
            return None;
        }
        let tag = buf.get_u8();
        match tag {
            TAG_ROUND_START => {
                if buf.remaining() < 12 {
                    return None;
                }
                let round = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n * 8 + 4 {
                    return None;
                }
                let loads = Arc::new((0..n).map(|_| buf.get_f64_le()).collect());
                let k = buf.get_u32_le() as usize;
                if buf.remaining() < k * 4 + 12 {
                    return None;
                }
                let excluded = (0..k).map(|_| buf.get_u32_le()).collect();
                let epoch = buf.get_u64_le();
                let h = buf.get_u32_le() as usize;
                if buf.remaining() < h * 4 {
                    return None;
                }
                let hot = Arc::new((0..h).map(|_| buf.get_u32_le()).collect());
                Some(Frame::RoundStart {
                    round,
                    loads,
                    excluded,
                    epoch,
                    hot,
                })
            }
            TAG_PROPOSE => {
                if buf.remaining() < 12 {
                    return None;
                }
                Some(Frame::Propose {
                    from: buf.get_u32_le(),
                    round: buf.get_u64_le(),
                })
            }
            TAG_ACCEPT => {
                if buf.remaining() < 12 {
                    return None;
                }
                let from = buf.get_u32_le();
                let round = buf.get_u64_le();
                let ledger = get_ledger(&mut buf)?;
                Some(Frame::Accept {
                    from,
                    round,
                    ledger,
                })
            }
            TAG_BUSY => {
                if buf.remaining() < 12 {
                    return None;
                }
                Some(Frame::Busy {
                    from: buf.get_u32_le(),
                    round: buf.get_u64_le(),
                })
            }
            TAG_COMMIT => {
                if buf.remaining() < 12 {
                    return None;
                }
                let from = buf.get_u32_le();
                let round = buf.get_u64_le();
                let ledger = get_ledger(&mut buf)?;
                Some(Frame::Commit {
                    from,
                    round,
                    ledger,
                })
            }
            TAG_REPORT => {
                if buf.remaining() < 29 {
                    return None;
                }
                let from = buf.get_u32_le();
                let round = buf.get_u64_le();
                let outcome = RoundOutcome::from_u8(buf.get_u8())?;
                let load = buf.get_f64_le();
                let local_cost = buf.get_f64_le();
                let has_exchange = buf.get_u8();
                let exchange = match has_exchange {
                    0 => None,
                    1 => {
                        if buf.remaining() < 28 {
                            return None;
                        }
                        Some((
                            buf.get_u32_le(),
                            buf.get_f64_le(),
                            buf.get_f64_le(),
                            buf.get_f64_le(),
                        ))
                    }
                    _ => return None,
                };
                Some(Frame::Report {
                    from,
                    round,
                    outcome,
                    load,
                    local_cost,
                    exchange,
                })
            }
            TAG_COMMIT_ACK => {
                if buf.remaining() < 12 {
                    return None;
                }
                Some(Frame::CommitAck {
                    from: buf.get_u32_le(),
                    round: buf.get_u64_le(),
                })
            }
            TAG_SHUTDOWN => Some(Frame::Shutdown),
            TAG_FINAL_LEDGER => {
                if buf.remaining() < 4 {
                    return None;
                }
                let from = buf.get_u32_le();
                let ledger = get_ledger(&mut buf)?;
                Some(Frame::FinalLedger { from, ledger })
            }
            _ => None,
        }
    }
}

/// Converts a [`SparseVec`] ledger into its wire representation.
pub fn ledger_to_wire(ledger: &SparseVec) -> Vec<(u32, f64)> {
    ledger.iter().collect()
}

/// Rebuilds a [`SparseVec`] from wire entries.
pub fn wire_to_ledger(entries: &[(u32, f64)]) -> SparseVec {
    let mut v = SparseVec::with_capacity(entries.len());
    for &(owner, amount) in entries {
        v.set(owner, amount);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode();
        let decoded = Frame::decode(bytes).expect("decodes");
        assert_eq!(frame, decoded);
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(Frame::RoundStart {
            round: 7,
            loads: Arc::new(vec![1.0, 2.5, 0.0]),
            excluded: vec![2],
            epoch: 0,
            hot: Arc::new(vec![]),
        });
        roundtrip(Frame::RoundStart {
            round: 8,
            loads: Arc::new(vec![4.0, 0.0, 9.5]),
            excluded: vec![],
            epoch: 3,
            hot: Arc::new(vec![0, 2]),
        });
        roundtrip(Frame::Propose { from: 3, round: 9 });
        roundtrip(Frame::Accept {
            from: 1,
            round: 2,
            ledger: vec![(0, 10.0), (5, 2.25)],
        });
        roundtrip(Frame::Busy { from: 4, round: 2 });
        roundtrip(Frame::Commit {
            from: 0,
            round: 3,
            ledger: vec![],
        });
        roundtrip(Frame::Report {
            from: 2,
            round: 1,
            outcome: RoundOutcome::Exchanged,
            load: 42.0,
            local_cost: 99.5,
            exchange: Some((5, 17.0, 3.25, 12.5)),
        });
        roundtrip(Frame::Report {
            from: 2,
            round: 1,
            outcome: RoundOutcome::NoProposal,
            load: 42.0,
            local_cost: 0.0,
            exchange: None,
        });
        roundtrip(Frame::Report {
            from: 9,
            round: 4,
            outcome: RoundOutcome::Accepted,
            load: 7.0,
            local_cost: 1.25,
            exchange: None,
        });
        roundtrip(Frame::Report {
            from: 3,
            round: 6,
            outcome: RoundOutcome::Aborted,
            load: 11.0,
            local_cost: 2.5,
            exchange: None,
        });
        roundtrip(Frame::CommitAck { from: 5, round: 3 });
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::FinalLedger {
            from: 6,
            ledger: vec![(6, 100.0)],
        });
    }

    #[test]
    fn decode_rejects_commit_ack_truncation() {
        let frame = Frame::CommitAck { from: 5, round: 3 };
        let bytes = frame.encode();
        for cut in 1..bytes.len() {
            let truncated = bytes.slice(0..cut);
            if let Some(decoded) = Frame::decode(truncated) {
                assert_ne!(decoded, frame);
            }
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let frame = Frame::Accept {
            from: 1,
            round: 2,
            ledger: vec![(0, 10.0), (5, 2.25)],
        };
        let bytes = frame.encode();
        for cut in 1..bytes.len() {
            let truncated = bytes.slice(0..cut);
            // Must never panic; shorter prefixes must either fail or
            // decode to a *different*, self-consistent frame (they
            // cannot equal the original).
            if let Some(decoded) = Frame::decode(truncated) {
                assert_ne!(decoded, frame);
            }
        }
    }

    #[test]
    fn decode_rejects_round_start_truncation() {
        let frame = Frame::RoundStart {
            round: 5,
            loads: Arc::new(vec![1.0, 2.0]),
            excluded: vec![1],
            epoch: 9,
            hot: Arc::new(vec![0, 1, 7]),
        };
        let bytes = frame.encode();
        for cut in 1..bytes.len() {
            let truncated = bytes.slice(0..cut);
            if let Some(decoded) = Frame::decode(truncated) {
                assert_ne!(decoded, frame);
            }
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let buf = Bytes::from_static(&[200, 0, 0, 0]);
        assert_eq!(Frame::decode(buf), None);
    }

    #[test]
    fn ledger_wire_roundtrip() {
        let mut ledger = SparseVec::new();
        ledger.set(3, 5.5);
        ledger.set(100, 1.0);
        let wire = ledger_to_wire(&ledger);
        let back = wire_to_ledger(&wire);
        assert_eq!(ledger, back);
    }
}
