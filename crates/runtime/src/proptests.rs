//! Property-based tests for the wire protocol.

#![cfg(test)]

use bytes::Bytes;
use proptest::prelude::*;

use crate::message::{ledger_to_wire, wire_to_ledger, Frame, RoundOutcome};
use dlb_core::SparseVec;

fn arb_ledger() -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::btree_map(0u32..5000, 0.001f64..1e9, 0..40)
        .prop_map(|m| m.into_iter().collect())
}

fn arb_outcome() -> impl Strategy<Value = RoundOutcome> {
    prop_oneof![
        Just(RoundOutcome::NoProposal),
        Just(RoundOutcome::Lost),
        Just(RoundOutcome::Exchanged),
        Just(RoundOutcome::Accepted),
        Just(RoundOutcome::Aborted),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            any::<u64>(),
            proptest::collection::vec(0.0f64..1e9, 0..50),
            proptest::collection::vec(0u32..64, 0..8),
            any::<u64>(),
            proptest::collection::vec(0u32..64, 0..8)
        )
            .prop_map(|(round, loads, excluded, epoch, hot)| Frame::RoundStart {
                round,
                loads: std::sync::Arc::new(loads),
                excluded,
                epoch,
                hot: std::sync::Arc::new(hot),
            }),
        (any::<u32>(), any::<u64>()).prop_map(|(from, round)| Frame::Propose { from, round }),
        (any::<u32>(), any::<u64>(), arb_ledger()).prop_map(|(from, round, ledger)| {
            Frame::Accept {
                from,
                round,
                ledger,
            }
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(from, round)| Frame::Busy { from, round }),
        (any::<u32>(), any::<u64>(), arb_ledger()).prop_map(|(from, round, ledger)| {
            Frame::Commit {
                from,
                round,
                ledger,
            }
        }),
        (
            any::<u32>(),
            any::<u64>(),
            arb_outcome(),
            0.0f64..1e12,
            0.0f64..1e12,
            proptest::option::of((any::<u32>(), 0.0f64..1e12, 0.0f64..1e12, 0.0f64..1e12))
        )
            .prop_map(|(from, round, outcome, load, local_cost, exchange)| {
                Frame::Report {
                    from,
                    round,
                    outcome,
                    load,
                    local_cost,
                    exchange,
                }
            }),
        Just(Frame::Shutdown),
        (any::<u32>(), arb_ledger()).prop_map(|(from, ledger)| Frame::FinalLedger { from, ledger }),
        (any::<u32>(), any::<u64>()).prop_map(|(from, round)| Frame::CommitAck { from, round }),
    ]
}

proptest! {
    /// Every frame survives an encode/decode roundtrip bit-exactly.
    #[test]
    fn frame_roundtrip(frame in arb_frame()) {
        let bytes = frame.encode();
        let decoded = Frame::decode(bytes).expect("well-formed frame decodes");
        prop_assert_eq!(frame, decoded);
    }

    /// Decoding never panics on arbitrary byte soup (it may succeed on
    /// a valid prefix, but must not crash or loop).
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(Bytes::from(bytes));
    }

    /// Ledger wire conversion preserves every entry and drops nothing.
    #[test]
    fn ledger_wire_roundtrip(entries in arb_ledger()) {
        let mut v = SparseVec::new();
        for &(k, x) in &entries {
            v.set(k, x);
        }
        let wire = ledger_to_wire(&v);
        let back = wire_to_ledger(&wire);
        prop_assert_eq!(v, back);
    }

    /// Truncating an encoded frame never decodes to the original
    /// (no silent data loss from short reads).
    #[test]
    fn truncation_never_forges(frame in arb_frame(), cut in 1usize..64) {
        let bytes = frame.encode();
        if cut < bytes.len() {
            let truncated = bytes.slice(0..bytes.len() - cut);
            if let Some(decoded) = Frame::decode(truncated) {
                prop_assert_ne!(decoded, frame);
            }
        }
    }
}
