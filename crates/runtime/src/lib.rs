//! # dlb-runtime — a message-passing realization of the protocol
//!
//! The analytic engine in `dlb-distributed` simulates the paper's
//! distributed algorithm on shared memory. This crate runs the same
//! protocol the way the paper deploys it (§IV): every organization is
//! an independent actor (an OS thread) that only sees
//!
//! * its **own request ledger** — who relayed how much to its server,
//! * the **gossiped load vector** — refreshed once per round,
//! * the **static configuration** — speeds and its latency column,
//!
//! and everything else travels over channels as wire-encoded frames
//! ([`message::Frame`]): proposals, ledger handoffs, commits.
//!
//! Two things make this more than a re-run of the engine:
//!
//! 1. **Partner choice uses local information only.** A real
//!    organization cannot evaluate `impr(i, j)` exactly — Algorithm 1
//!    needs both ledgers. Nodes rank partners with the closed-form
//!    score from the gossiped loads and fetch the one ledger they need
//!    only after the partner accepts. The integration tests verify
//!    this cheaper selection still reaches the engine's fixpoint.
//! 2. **Concurrency is real.** Proposal collisions, busy rejections,
//!    commits racing round boundaries — the protocol handles them the
//!    way a deployment must, and the conservation tests assert no
//!    request is ever lost or duplicated in flight.
//!
//! ```
//! use dlb_core::Instance;
//! use dlb_runtime::{run_cluster, ClusterOptions};
//!
//! let mut instance = Instance::homogeneous(4, 1.0, 1.0, 0.0);
//! instance.set_own_loads(vec![400.0, 0.0, 0.0, 0.0]);
//! let report = run_cluster(&instance, &ClusterOptions::default());
//! assert!(report.quiescent);
//! assert!(report.assignment.load(3) > 90.0); // peak got spread
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod message;
pub mod node;
#[cfg(all(test, feature = "proptests"))]
mod proptests;

pub use cluster::{run_cluster, ClusterOptions, ClusterReport};
pub use message::{Frame, RoundOutcome};
