//! # dlb-runtime — the protocol as a deployable system, twice
//!
//! The analytic engine in `dlb-distributed` simulates the paper's
//! distributed algorithm on shared memory. This crate runs the same
//! protocol the way the paper deploys it (§IV): every organization
//! only sees
//!
//! * its **own request ledger** — who relayed how much to its server,
//! * the **gossiped load vector** — refreshed once per round,
//! * the **static configuration** — speeds and its latency column,
//!
//! and everything else travels as wire-encoded frames
//! ([`message::Frame`]): proposals, ledger handoffs, commits.
//!
//! The crate is split along a machine/driver seam:
//!
//! * [`machine`] — the protocol itself, as poll-style state machines
//!   ([`machine::NodeMachine`], [`machine::CoordinatorMachine`]) that
//!   consume one frame and emit frames, never blocking;
//! * [`cluster`] — the **thread runtime**: one OS thread per
//!   organization and a channel mesh. Real concurrency, real races —
//!   the deployment shape, practical to a few hundred nodes;
//! * [`executor`] — the **event-driven runtime**: a deterministic
//!   virtual-time heap delivers frames to thousands of machines in one
//!   process, with per-link latencies supplied by the caller (the
//!   scenario layer samples them from `dlb-netsim`) and delivery
//!   batches fanned out over the `dlb-par` worker pool;
//! * [`clock`] — pacing for the executor: [`clock::VirtualClock`]
//!   jumps between batches (simulation), [`clock::WallClock`] sleeps
//!   until each batch is really due (live replay). The clock cannot
//!   reorder deliveries, so both produce bit-identical results.
//!
//! Two things make this more than a re-run of the engine:
//!
//! 1. **Partner choice uses local information only.** A real
//!    organization cannot evaluate `impr(i, j)` exactly — Algorithm 1
//!    needs both ledgers. Nodes rank partners with the closed-form
//!    score from the gossiped loads and fetch the one ledger they need
//!    only after the partner accepts. The integration tests verify
//!    this cheaper selection still reaches the engine's fixpoint.
//! 2. **Message timing is a first-class input.** The thread runtime
//!    exercises real collisions and commit/round races; the event
//!    executor replays the same protocol under *measured* link
//!    latencies, reports the simulated protocol time
//!    ([`ClusterReport::virtual_ms`]), and is deterministic: one seed
//!    gives one event order ([`ClusterReport::event_hash`]), however
//!    many worker threads drain the batches — the property every
//!    failure/staleness scenario test builds on.
//!
//! ```
//! use dlb_core::Instance;
//! use dlb_runtime::{run_cluster_events, ClusterOptions};
//!
//! let mut instance = Instance::homogeneous(4, 1.0, 1.0, 0.0);
//! instance.set_own_loads(vec![400.0, 0.0, 0.0, 0.0]);
//! // Virtual-time simulation: one-way link delay = half the RTT column.
//! let report = run_cluster_events(&instance, &ClusterOptions::default(), |i, j| {
//!     instance.c(i, j) / 2.0
//! });
//! assert!(report.quiescent);
//! assert!(report.assignment.load(3) > 90.0); // peak got spread
//! assert!(report.virtual_ms > 0.0); // simulated protocol time
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod cluster;
pub mod executor;
pub mod machine;
pub mod message;
pub mod node;
#[cfg(all(test, feature = "proptests"))]
mod proptests;

pub use clock::{Clock, VirtualClock, WallClock};
pub use cluster::{
    run_cluster, ClusterOptions, ClusterReport, DetectMode, DetectorSummary, StreamSummary,
};
pub use executor::{
    run_cluster_events, run_cluster_events_faulted, run_cluster_events_observed,
    run_cluster_events_streamed, run_cluster_events_streamed_with_clock,
    run_cluster_events_with_clock,
};
pub use machine::{
    CoordinatorMachine, Dest, NodeConfig, NodeMachine, Outbound, RtoKind, SelectPolicy,
    ADAPTIVE_BOOTSTRAP_MS,
};
pub use message::{Frame, RoundOutcome};
