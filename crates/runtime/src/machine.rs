//! Poll-style protocol state machines.
//!
//! The protocol logic of the runtime lives here, factored out of any
//! particular concurrency substrate: a [`NodeMachine`] is one
//! organization's half of the §IV message-passing protocol, and a
//! [`CoordinatorMachine`] is the round/termination driver (the stand-in
//! for the converged gossip layer). Both are *pure* state machines —
//! `handle` consumes one inbound [`Frame`] and appends outbound frames
//! to a caller-supplied buffer; they never block, sleep, or touch a
//! channel. Two drivers execute them:
//!
//! * the **thread runtime** ([`crate::cluster::run_cluster`]) wraps
//!   every `NodeMachine` in an OS thread reading a channel inbox — the
//!   original deployment shape, kept for live runs on real cores;
//! * the **event executor** ([`crate::executor`]) drives thousands of
//!   machines from a deterministic virtual-time event heap in a single
//!   process — the simulation shape Figure-2-scale experiments need.
//!
//! Keeping one copy of the protocol behind both drivers is what makes
//! the event/thread parity tests meaningful: the two runtimes can only
//! differ in *when* frames arrive, never in how they are answered.
//!
//! # Node protocol
//!
//! Per round each node plays two roles at once:
//!
//! * **initiator** — ranks partners by the closed-form score of
//!   [`dlb_distributed::mine::partner_score`] (computable from purely
//!   local knowledge: the gossiped load vector and the node's own
//!   latency column, the paper's §IV input model), proposes to the
//!   best-scoring candidate and, on acceptance, runs Algorithm 1 on
//!   the two real ledgers;
//! * **acceptor** — answers a proposal with its serialized ledger when
//!   it is not already committed to an exchange, and installs the
//!   committed result.
//!
//! The pairing discipline matches the analytic engine's `pair_once`
//! semantics: at most one *completed* exchange per node per round. A
//! node whose own proposal is rejected stays available as an acceptor
//! for the rest of the round, exactly like a free server in the engine.
//!
//! **Audit probing.** The closed-form score sees only loads, so it is
//! blind to *relabelings* — states where loads are balanced but
//! requests sit on needlessly distant servers. When no partner clears
//! the score floor and auditing is enabled, the node instead probes one
//! peer in a deterministic rotation; the probe runs full Algorithm 1 on
//! the real ledgers, so every pair is re-examined at least once every
//! `m − 1` quiet rounds and the quiescent state is genuinely pairwise
//! optimal (Lemma 2) — which, by convexity, is the global optimum.
//!
//! A **proposal collision** (both endpoints of a pair propose to each
//! other in the same round) is broken by index: the lower-id node
//! yields its initiator role and answers as an acceptor; the higher-id
//! node ignores the incoming proposal, because the yielding side's
//! acceptance is already on the wire.
//!
//! **Report discipline**: every node sends exactly one
//! [`Frame::Report`] per round — `NoProposal` straight after
//! `RoundStart`, `Exchanged`/`Lost` when its proposal resolves, or
//! `Accepted` after a collision-yield commit. A node that accepts a
//! foreign proposal *after* reporting does not report again; the
//! initiator's `Exchanged` report already carries the node's new load
//! and cost term.
//!
//! **Deferral.** A commit for the previous round may still be in
//! flight when the next `RoundStart` (or, under the event executor's
//! real link delays, even the `Shutdown`) arrives — the initiator
//! reports to the coordinator before its `Commit` reaches the
//! acceptor. The machine stashes the control frame and replays it the
//! moment the commit lands, so no exchange is ever torn. Under the
//! thread runtime the per-node channel is FIFO across producers'
//! causal order and the `Shutdown` case cannot trigger; under real
//! per-link latencies it routinely does.

use dlb_core::cost::total_cost;
use dlb_core::{Assignment, Instance, SparseVec};
use dlb_distributed::mine::partner_score;
use dlb_distributed::transfer::calc_best_transfer;
use dlb_topology::k_nearest_row;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::cluster::{ClusterOptions, ClusterReport, DetectMode, DetectorSummary};
use crate::message::{ledger_to_wire, wire_to_ledger, Frame, RoundOutcome};

/// Where an outbound frame is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// A peer organization's inbox.
    Node(u32),
    /// The coordinator's control-plane inbox.
    Coordinator,
}

/// One outbound frame produced by a machine. Frames are reference
/// counted so a coordinator broadcast of the `m`-entry load vector is
/// shared, not copied `m` times.
#[derive(Debug, Clone)]
pub struct Outbound {
    /// Destination inbox.
    pub to: Dest,
    /// The frame to deliver.
    pub frame: Arc<Frame>,
}

impl Outbound {
    fn node(to: u32, frame: Frame) -> Self {
        Self {
            to: Dest::Node(to),
            frame: Arc::new(frame),
        }
    }

    fn coordinator(frame: Frame) -> Self {
        Self {
            to: Dest::Coordinator,
            frame: Arc::new(frame),
        }
    }
}

/// Partner-selection policy: which peers a node scores at each round
/// start — the runtime port of the analytic engine's `PartnerSelection`
/// axis (`dlb_distributed::mine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectPolicy {
    /// Score every live peer — the literal §IV scan, O(m) per node per
    /// round (O(m²) per round cluster-wide).
    Exact,
    /// Score only a candidate index: the `k` delay-nearest peers (from
    /// the node's own latency column, the §IV local-knowledge input)
    /// merged with the coordinator's gossiped *hot set* of the most
    /// over- and under-loaded live nodes. O(k) per round start; the
    /// index is epoch-tagged and rebuilt only when the gossiped load
    /// view actually changed. With `k ≥ m − 1` this is exactly
    /// [`SelectPolicy::Exact`] (pinned by tests).
    TopK(u32),
}

/// Static per-node configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Probe a rotating peer with full Algorithm 1 when no partner
    /// clears the score floor (see the module docs).
    pub audit: bool,
    /// Partner-selection policy (see [`SelectPolicy`]).
    pub select: SelectPolicy,
    /// Run exchanges in two phases: the initiator applies its half of
    /// the transfer only when the acceptor's [`Frame::CommitAck`]
    /// proves the other half was installed. Required under in-protocol
    /// failure detection ([`DetectMode`] other than oracle), where a
    /// partner can die mid-exchange: whichever side times out rolls
    /// back having applied *nothing*, so conservation is exact without
    /// the driver special-casing dead destinations. Off by default —
    /// the oracle runtimes keep the single-phase wire schedule the
    /// parity tests pin.
    pub two_phase: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            audit: true,
            select: SelectPolicy::Exact,
            two_phase: false,
        }
    }
}

/// Which in-flight wait an exchange retransmission timeout guards.
/// Drivers running in-protocol detection arm one RTO per data-plane
/// frame they schedule and deliver it via [`NodeMachine::on_rto`];
/// a timer whose wait already resolved is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtoKind {
    /// Initiator waiting for `Accept`/`Busy` after its `Propose`.
    Answer,
    /// Acceptor waiting for the `Commit` after its `Accept`.
    CommitWait,
    /// Initiator waiting for the `CommitAck` after its `Commit`.
    Ack,
}

/// The initiator's half of a two-phase exchange, held back until the
/// acceptor's `CommitAck` proves the other half was installed.
#[derive(Debug)]
struct PendingExchange {
    partner: u32,
    ledger: SparseVec,
    partner_load: f64,
    partner_cost: f64,
    moved: f64,
}

/// Exchange-lock state within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lock {
    /// May accept proposals.
    Free,
    /// Accepted a proposal from the given initiator; its commit is in
    /// flight. Round boundaries must wait for it.
    AwaitingCommit(u32),
    /// Completed an exchange this round; rejects further proposals.
    Locked,
}

/// Minimum closed-form score below which a node does not propose on
/// score grounds (same role as the engine's `min_improvement` floor).
const SCORE_FLOOR: f64 = 1e-9;

/// The node's local contribution to `ΣC`:
/// `Σ_k r_k,id · (l_id / 2 s_id + c_k,id)`.
fn local_cost(id: u32, instance: &Instance, ledger: &SparseVec) -> f64 {
    let load = ledger.sum();
    let congestion_per_request = load / (2.0 * instance.speed(id as usize));
    ledger
        .iter()
        .map(|(k, r)| r * (congestion_per_request + instance.c(k as usize, id as usize)))
        .sum()
}

/// Scores `candidates` (which must come in ascending id order so the
/// keep-first tie-break matches the exact scan) and returns the best
/// peer above the floor. `excluded` must be sorted ascending.
fn score_best(
    id: u32,
    instance: &Instance,
    loads: &[f64],
    excluded: &[u32],
    candidates: impl Iterator<Item = u32>,
) -> Option<u32> {
    debug_assert!(excluded.windows(2).all(|w| w[0] < w[1]), "excluded sorted");
    let mut best: Option<(u32, f64)> = None;
    for j in candidates {
        if j == id || excluded.binary_search(&j).is_ok() {
            continue;
        }
        let score = partner_score(instance, loads, id as usize, j as usize);
        match best {
            Some((_, b)) if score <= b => {}
            _ => best = Some((j, score)),
        }
    }
    best.filter(|&(_, s)| s > SCORE_FLOOR).map(|(j, _)| j)
}

/// Picks the proposal target by the exact scan: the peer with the best
/// closed-form pairwise score computed from the gossiped loads —
/// everything a real organization knows locally. Returns `None` when no
/// peer clears the floor.
fn choose_target(id: u32, instance: &Instance, loads: &[f64], excluded: &[u32]) -> Option<u32> {
    score_best(id, instance, loads, excluded, 0..instance.len() as u32)
}

/// The all-local starting ledger of node `id`: its own load at home,
/// kept sparse (a zero load is no entry, not an explicit zero).
pub fn local_ledger(instance: &Instance, id: u32) -> SparseVec {
    let mut ledger = SparseVec::new();
    let own = instance.own_load(id as usize);
    if own > 0.0 {
        ledger.set(id, own);
    }
    ledger
}

/// Deterministic audit rotation: visits every live peer once per
/// `m − 1` rounds. Allocation-free: instead of materializing the
/// candidate list, the rotation index is mapped to the `idx`-th live
/// peer by a gap walk over the sorted removed ids (`excluded ∪ {id}`),
/// which runs every round for every quiet node. `excluded` must be
/// sorted ascending.
fn audit_target(id: u32, m: usize, round: u64, excluded: &[u32]) -> Option<u32> {
    debug_assert!(excluded.windows(2).all(|w| w[0] < w[1]), "excluded sorted");
    let removed = excluded.len() + usize::from(excluded.binary_search(&id).is_err());
    let count = (m - removed.min(m)) as u64;
    if count == 0 {
        return None;
    }
    let mut candidate = (round % count) as u32;
    // Walk the removed ids in ascending order (excluded merged with
    // {id} on the fly): each removed id at or below the running
    // candidate shifts it up by one.
    let mut idx = 0usize;
    let mut self_pending = true;
    loop {
        let next = match (excluded.get(idx).copied(), self_pending) {
            (Some(e), true) if id <= e => {
                self_pending = false;
                if id == e {
                    idx += 1;
                }
                id
            }
            (Some(e), _) => {
                idx += 1;
                e
            }
            (None, true) => {
                self_pending = false;
                id
            }
            (None, false) => break,
        };
        if next <= candidate {
            candidate += 1;
        } else {
            break;
        }
    }
    Some(candidate)
}

/// A node's lazily maintained partner-candidate index (used only under
/// [`SelectPolicy::TopK`]).
///
/// `base` — the `k` delay-nearest peers from the node's own latency
/// column — is computed once, on the first round start. `merged` —
/// `base ∪` the round's gossiped hot set, ascending, minus self — is
/// the actual scan list; it is rebuilt only when the coordinator's
/// load-vector `epoch` advances, so quiet stretches (where the load
/// view is frozen) cost nothing. Exclusions are *not* baked in: they
/// are skipped at scoring time, which keeps the cache valid across
/// crash/recovery churn.
#[derive(Debug, Default)]
struct CandidateIndex {
    base: Vec<u32>,
    merged: Vec<u32>,
    epoch: Option<u64>,
}

impl CandidateIndex {
    /// Rebuilds `merged` for `epoch` if it advanced; builds `base`
    /// (and marks it built via the first epoch tag) on first use.
    /// `hot` must be sorted ascending; `base` is by construction.
    fn refresh(&mut self, id: u32, instance: &Instance, k: u32, epoch: u64, hot: &[u32]) {
        if self.epoch == Some(epoch) {
            return;
        }
        if self.epoch.is_none() {
            self.base = k_nearest_row(instance.latency(), id as usize, k as usize);
        }
        self.epoch = Some(epoch);
        self.merged.clear();
        self.merged.reserve(self.base.len() + hot.len());
        let (mut a, mut b) = (0usize, 0usize);
        loop {
            let next = match (self.base.get(a).copied(), hot.get(b).copied()) {
                (Some(x), Some(y)) => {
                    if x <= y {
                        a += 1;
                        if x == y {
                            b += 1;
                        }
                        x
                    } else {
                        b += 1;
                        y
                    }
                }
                (Some(x), None) => {
                    a += 1;
                    x
                }
                (None, Some(y)) => {
                    b += 1;
                    y
                }
                (None, None) => break,
            };
            if next != id {
                self.merged.push(next);
            }
        }
    }
}

/// One organization's protocol state machine (see the module docs).
#[derive(Debug)]
pub struct NodeMachine {
    id: u32,
    instance: Arc<Instance>,
    ledger: SparseVec,
    config: NodeConfig,
    /// Partner-candidate cache for [`SelectPolicy::TopK`] (empty and
    /// untouched under [`SelectPolicy::Exact`]).
    index: CandidateIndex,
    /// 0 = "no round joined yet"; real rounds are 1-based (see the
    /// coordinator). A proposal overtaking our first RoundStart thus
    /// satisfies `r > round` and waits in the early queue instead of
    /// being served with boot state and corrupting the report count.
    round: u64,
    lock: Lock,
    /// In-flight proposal target, if any.
    proposal: Option<u32>,
    /// Whether this round's report has been filed.
    reported: bool,
    /// Proposals from a round we have not reached yet.
    early_proposals: VecDeque<Frame>,
    /// A `RoundStart`/`Shutdown` stashed while a commit is in flight.
    deferred: Option<Frame>,
    /// Two-phase exchange awaiting the acceptor's `CommitAck` (only
    /// under [`NodeConfig::two_phase`]).
    pending: Option<PendingExchange>,
    /// Streaming load deltas `(org, amount)` buffered while an
    /// exchange is open — the ledger is promised to a peer then and
    /// may be wholesale replaced by its Commit, which would silently
    /// drop a directly-applied deposit. Drained the moment the
    /// exchange resolves. Positive amounts deposit, negative withdraw.
    stream_buf: Vec<(u32, f64)>,
    /// Whether the final ledger has been sent (machine finished).
    done: bool,
}

impl NodeMachine {
    /// Creates the machine for node `id` with its initial (usually
    /// all-local) ledger.
    pub fn new(id: u32, instance: Arc<Instance>, ledger: SparseVec, config: NodeConfig) -> Self {
        Self {
            id,
            instance,
            ledger,
            config,
            index: CandidateIndex::default(),
            round: 0,
            lock: Lock::Free,
            proposal: None,
            reported: false,
            early_proposals: VecDeque::new(),
            deferred: None,
            pending: None,
            stream_buf: Vec::new(),
            done: false,
        }
    }

    /// The machine for node `id` starting from the all-local ledger.
    pub fn local(id: u32, instance: Arc<Instance>, config: NodeConfig) -> Self {
        let ledger = local_ledger(&instance, id);
        Self::new(id, instance, ledger, config)
    }

    /// Whether the machine has sent its final ledger and stopped.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The machine's current request ledger. Fault-aware drivers read
    /// this to freeze a crashed node's state into the final assignment
    /// (its requests stay where they were when it went down).
    pub fn ledger(&self) -> &SparseVec {
        &self.ledger
    }

    /// Streaming arrival: `amount` units of organization `org`'s work
    /// land on this server between protocol frames. Applied to the
    /// ledger immediately when no exchange is open; otherwise buffered
    /// until the exchange resolves (the in-flight Commit may replace
    /// the ledger wholesale, which would drop a direct write). Returns
    /// `false` — the request is refused — once the final ledger has
    /// been sent: a late mutation could never reach the coordinator.
    pub fn deposit(&mut self, org: u32, amount: f64) -> bool {
        if self.done {
            return false;
        }
        if self.exchange_open() {
            self.stream_buf.push((org, amount));
        } else {
            self.apply_stream_delta(org, amount);
        }
        true
    }

    /// Streaming departure: up to `amount` units of `org`'s work leave
    /// this server (clamped at what the ledger actually holds once
    /// applied). Buffered under an open exchange like [`Self::deposit`].
    pub fn withdraw(&mut self, org: u32, amount: f64) {
        if self.done {
            return;
        }
        if self.exchange_open() {
            self.stream_buf.push((org, -amount));
        } else {
            self.apply_stream_delta(org, -amount);
        }
    }

    /// Applies one signed streaming delta to the ledger, clamping
    /// withdrawals at the available volume (a request that finished on
    /// another replica after a rebalance moved the entry away).
    fn apply_stream_delta(&mut self, org: u32, amount: f64) {
        let next = (self.ledger.get(org) + amount).max(0.0);
        self.ledger.set(org, next);
    }

    /// Replays deltas buffered behind an exchange, now that it has
    /// resolved. Called at every resolution point, right before the
    /// deferred control frame (if any) — so a deferred `Shutdown`'s
    /// final ledger includes them.
    fn drain_stream_ops(&mut self) {
        if self.stream_buf.is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.stream_buf);
        for (org, amount) in ops {
            self.apply_stream_delta(org, amount);
        }
    }

    /// Consumes one inbound frame, appending any outbound frames to
    /// `out` in send order.
    pub fn handle(&mut self, frame: &Frame, out: &mut Vec<Outbound>) {
        if self.done {
            // Our final ledger is already in the coordinator's hands;
            // nothing may mutate it. A straggling proposer (possible
            // under in-protocol detection, where rounds end on a
            // deadline) gets a NACK so its own round can close; every
            // other late frame is stale by construction and ignored.
            if let Frame::Propose { from, round } = frame {
                out.push(Outbound::node(
                    *from,
                    Frame::Busy {
                        from: self.id,
                        round: *round,
                    },
                ));
            }
            return;
        }
        match frame {
            Frame::Shutdown => {
                if self.exchange_open() {
                    // An exchange is still in flight (we await an
                    // Accept/Busy answer, a Commit or, two-phase, a
                    // CommitAck); its ledger must make it into the
                    // final answer or requests would be torn in half.
                    self.deferred = Some(Frame::Shutdown);
                    return;
                }
                out.push(Outbound::coordinator(Frame::FinalLedger {
                    from: self.id,
                    ledger: ledger_to_wire(&self.ledger),
                }));
                self.done = true;
            }
            Frame::RoundStart {
                round,
                loads,
                excluded,
                epoch,
                hot,
            } => {
                if self.exchange_open() {
                    // A frame for the previous round's exchange is
                    // still in flight (the initiator reports to the
                    // coordinator before our Commit arrives). Join the
                    // round the moment it lands.
                    self.deferred = Some(frame.clone());
                    return;
                }
                self.start_round(*round, loads.as_slice(), excluded, *epoch, hot, out);
            }
            Frame::Propose { from, round } => self.on_propose(*from, *round, out),
            Frame::Accept {
                from,
                round,
                ledger,
            } => self.on_accept(*from, *round, ledger, out),
            Frame::Busy { from, round } => self.on_busy(*from, *round, out),
            Frame::Commit {
                from,
                round,
                ledger,
            } => self.on_commit(*from, *round, ledger, out),
            Frame::CommitAck { from, round } => self.on_commit_ack(*from, *round, out),
            Frame::Report { .. } | Frame::FinalLedger { .. } => {
                // Control-plane frames never reach node inboxes.
                debug_assert!(false, "node {} received a coordinator frame", self.id);
            }
        }
    }

    /// Is any leg of an exchange still unresolved? Control frames
    /// (RoundStart, Shutdown) must wait behind an open exchange: our
    /// ledger may still change, and a torn exchange loses requests.
    /// Under the oracle runtimes rounds only end once every node
    /// reported — and a node reports only with all legs closed — so
    /// this fires exclusively under in-protocol detection, where the
    /// coordinator's deadline can end a round over a busy node.
    fn exchange_open(&self) -> bool {
        self.proposal.is_some()
            || matches!(self.lock, Lock::AwaitingCommit(_))
            || self.pending.is_some()
    }

    fn report(
        &mut self,
        outcome: RoundOutcome,
        exchange: Option<(u32, f64, f64, f64)>,
    ) -> Outbound {
        self.reported = true;
        Outbound::coordinator(Frame::Report {
            from: self.id,
            round: self.round,
            outcome,
            load: self.ledger.sum(),
            local_cost: local_cost(self.id, &self.instance, &self.ledger),
            exchange,
        })
    }

    fn start_round(
        &mut self,
        round: u64,
        loads: &[f64],
        excluded: &[u32],
        epoch: u64,
        hot: &[u32],
        out: &mut Vec<Outbound>,
    ) {
        self.round = round;
        self.lock = Lock::Free;
        self.proposal = None;
        self.reported = false;
        if excluded.binary_search(&self.id).is_ok() {
            self.lock = Lock::Locked; // takes no part this round
            let report = self.report(RoundOutcome::NoProposal, None);
            out.push(report);
        } else {
            let scored = match self.config.select {
                SelectPolicy::Exact => choose_target(self.id, &self.instance, loads, excluded),
                SelectPolicy::TopK(k) => {
                    self.index.refresh(self.id, &self.instance, k, epoch, hot);
                    score_best(
                        self.id,
                        &self.instance,
                        loads,
                        excluded,
                        self.index.merged.iter().copied(),
                    )
                }
            };
            let target = scored.or_else(|| {
                if self.config.audit {
                    audit_target(self.id, self.instance.len(), round, excluded)
                } else {
                    None
                }
            });
            match target {
                Some(j) => {
                    self.proposal = Some(j);
                    out.push(Outbound::node(
                        j,
                        Frame::Propose {
                            from: self.id,
                            round,
                        },
                    ));
                }
                None => {
                    let report = self.report(RoundOutcome::NoProposal, None);
                    out.push(report);
                }
            }
        }
        // Serve proposals that arrived before our RoundStart.
        for _ in 0..self.early_proposals.len() {
            if let Some(Frame::Propose { from, round }) = self.early_proposals.pop_front() {
                self.on_propose(from, round, out);
            }
        }
    }

    fn on_propose(&mut self, from: u32, r: u64, out: &mut Vec<Outbound>) {
        if r > self.round {
            // Proposer is ahead of us; answer after our RoundStart
            // arrives.
            self.early_proposals
                .push_back(Frame::Propose { from, round: r });
            return;
        }
        if r < self.round {
            // Defensive: by the report discipline a proposal cannot
            // outlive its round, but a NACK is always safe.
            out.push(Outbound::node(
                from,
                Frame::Busy {
                    from: self.id,
                    round: r,
                },
            ));
            return;
        }
        if self.lock != Lock::Free {
            out.push(Outbound::node(
                from,
                Frame::Busy {
                    from: self.id,
                    round: r,
                },
            ));
            return;
        }
        match self.proposal {
            // Collision with our own proposal to the same peer.
            Some(j) if j == from => {
                if self.id < from {
                    // Yield: become the acceptor; our own proposal will
                    // be ignored by the peer.
                    self.proposal = None;
                    self.lock = Lock::AwaitingCommit(from);
                    out.push(Outbound::node(
                        from,
                        Frame::Accept {
                            from: self.id,
                            round: r,
                            ledger: ledger_to_wire(&self.ledger),
                        },
                    ));
                }
                // Higher id: ignore — the peer's Accept is already on
                // the wire.
            }
            // Waiting on a different peer: cannot promise our ledger to
            // two exchanges at once.
            Some(_) => {
                out.push(Outbound::node(
                    from,
                    Frame::Busy {
                        from: self.id,
                        round: r,
                    },
                ));
            }
            // Free (never proposed, or proposal already resolved
            // without an exchange): accept.
            None => {
                self.lock = Lock::AwaitingCommit(from);
                out.push(Outbound::node(
                    from,
                    Frame::Accept {
                        from: self.id,
                        round: r,
                        ledger: ledger_to_wire(&self.ledger),
                    },
                ));
            }
        }
    }

    fn on_accept(&mut self, from: u32, r: u64, their_wire: &[(u32, f64)], out: &mut Vec<Outbound>) {
        if r != self.round || self.proposal != Some(from) {
            return; // stale acceptance; ignore
        }
        let theirs = wire_to_ledger(their_wire);
        let outcome = calc_best_transfer(
            &self.instance,
            &self.ledger,
            &theirs,
            self.id as usize,
            from as usize,
        );
        let partner_ledger = outcome.ledger_j;
        let partner_load = partner_ledger.sum();
        let partner_cost = local_cost(from, &self.instance, &partner_ledger);
        out.push(Outbound::node(
            from,
            Frame::Commit {
                from: self.id,
                round: r,
                ledger: ledger_to_wire(&partner_ledger),
            },
        ));
        self.proposal = None;
        self.lock = Lock::Locked;
        if self.config.two_phase {
            // Hold our half back until the acceptor's CommitAck: if it
            // died before installing, the Ack RTO rolls us back with
            // nothing half-applied on either side.
            self.pending = Some(PendingExchange {
                partner: from,
                ledger: outcome.ledger_i,
                partner_load,
                partner_cost,
                moved: outcome.moved,
            });
        } else {
            self.ledger = outcome.ledger_i;
            let report = self.report(
                RoundOutcome::Exchanged,
                Some((from, partner_load, partner_cost, outcome.moved)),
            );
            out.push(report);
            self.drain_stream_ops();
            if let Some(frame) = self.deferred.take() {
                self.handle(&frame, out);
            }
        }
    }

    fn on_busy(&mut self, from: u32, r: u64, out: &mut Vec<Outbound>) {
        if r != self.round || self.proposal != Some(from) {
            return;
        }
        self.proposal = None;
        // Stay Free: we may still serve someone else's proposal this
        // round.
        let report = self.report(RoundOutcome::Lost, None);
        out.push(report);
        // A control frame held behind the outstanding proposal can go
        // ahead now.
        self.drain_stream_ops();
        if let Some(frame) = self.deferred.take() {
            self.handle(&frame, out);
        }
    }

    fn on_commit(&mut self, from: u32, r: u64, new_wire: &[(u32, f64)], out: &mut Vec<Outbound>) {
        if r != self.round || self.lock != Lock::AwaitingCommit(from) {
            return;
        }
        self.ledger = wire_to_ledger(new_wire);
        self.lock = Lock::Locked;
        if self.config.two_phase {
            // Install-then-ack is atomic from the driver's view: the
            // initiator applies its half only on this ack.
            out.push(Outbound::node(
                from,
                Frame::CommitAck {
                    from: self.id,
                    round: r,
                },
            ));
        }
        if !self.reported {
            // Collision-yield path: our initiator role ended in an
            // acceptance; close the round's report.
            let report = self.report(RoundOutcome::Accepted, None);
            out.push(report);
        }
        // Replay the control frame that raced this commit, if any.
        self.drain_stream_ops();
        if let Some(frame) = self.deferred.take() {
            self.handle(&frame, out);
        }
    }

    fn on_commit_ack(&mut self, from: u32, r: u64, out: &mut Vec<Outbound>) {
        if r != self.round || self.pending.as_ref().map(|p| p.partner) != Some(from) {
            return; // stale ack; ignore
        }
        let p = self.pending.take().expect("pending matched");
        self.ledger = p.ledger;
        let report = self.report(
            RoundOutcome::Exchanged,
            Some((p.partner, p.partner_load, p.partner_cost, p.moved)),
        );
        out.push(report);
        self.drain_stream_ops();
        if let Some(frame) = self.deferred.take() {
            self.handle(&frame, out);
        }
    }

    /// Would an `(round, kind)` retransmission timeout still fire?
    ///
    /// The executor calls this when a timer pops to discard stale
    /// entries — a timer whose wait already resolved was logically
    /// cancelled and must not advance virtual time.
    pub fn rto_pending(&self, r: u64, kind: RtoKind) -> bool {
        if self.done || r != self.round {
            return false;
        }
        match kind {
            RtoKind::Answer => self.proposal.is_some(),
            RtoKind::CommitWait => matches!(self.lock, Lock::AwaitingCommit(_)),
            RtoKind::Ack => self.pending.is_some(),
        }
    }

    /// An exchange retransmission timeout fired. The driver arms one
    /// per data-plane frame it schedules under in-protocol detection;
    /// `kind` says which wait the timer guarded. A timer whose wait
    /// already resolved — or that belongs to an earlier round — is a
    /// no-op. When the wait is still open the partner is gone: the
    /// machine rolls the exchange back locally (nothing of a two-phase
    /// transfer has been applied yet, so rollback is dropping state)
    /// and closes its round report with [`RoundOutcome::Aborted`].
    pub fn on_rto(&mut self, r: u64, kind: RtoKind, out: &mut Vec<Outbound>) {
        if self.done || r != self.round {
            return;
        }
        let fired = match kind {
            RtoKind::Answer => {
                // Our Propose was never answered; free the initiator
                // role. We stay available as an acceptor.
                self.proposal.take().is_some()
            }
            RtoKind::CommitWait => {
                // We accepted but the initiator's Commit never came;
                // nothing was installed, so releasing the lock is the
                // whole rollback.
                if matches!(self.lock, Lock::AwaitingCommit(_)) {
                    self.lock = Lock::Free;
                    true
                } else {
                    false
                }
            }
            // Our Commit was never acknowledged; the acceptor died
            // before installing, so dropping the held-back half undoes
            // the exchange exactly.
            RtoKind::Ack => self.pending.take().is_some(),
        };
        if !fired {
            return;
        }
        if !self.reported {
            let report = self.report(RoundOutcome::Aborted, None);
            out.push(report);
        }
        // A control frame stashed behind the dead exchange can go
        // ahead now.
        self.drain_stream_ops();
        if let Some(frame) = self.deferred.take() {
            self.handle(&frame, out);
        }
    }
}

/// Report-deadline bound used by [`DetectMode::Adaptive`] before the
/// global latency estimator has three samples (virtual ms). Generous
/// on purpose: the first rounds calibrate the estimator, and a too-low
/// boot value would mass-suspect the whole cluster before any latency
/// has been observed.
pub const ADAPTIVE_BOOTSTRAP_MS: f64 = 10_000.0;

/// One entry of the coordinator's suspect list.
#[derive(Debug, Clone, Copy)]
struct Suspect {
    node: u32,
    /// Virtual time the deadline fired on this node.
    at_ms: f64,
    /// Start time of the round whose missing report triggered the
    /// suspicion — the baseline for the late report's latency sample.
    round_start_ms: f64,
}

/// Welford accumulators `(count, mean, M2)` over report latencies —
/// pure f64 arithmetic in arrival order, which the executor makes
/// deterministic across repeats and `DLB_THREADS`.
fn welford_feed(acc: &mut (u64, f64, f64), x: f64) {
    acc.0 += 1;
    let d = x - acc.1;
    acc.1 += d / acc.0 as f64;
    acc.2 += d * (x - acc.1);
}

/// The phi-accrual-style bound `μ + 4σ + 1 ms` once the accumulator
/// has three samples; `None` before that.
fn welford_bound(acc: &(u64, f64, f64)) -> Option<f64> {
    if acc.0 < 3 {
        return None;
    }
    let var = (acc.2 / (acc.0 - 1) as f64).max(0.0);
    Some(acc.1 + 4.0 * var.sqrt() + 1.0)
}

/// Which stage of its life the coordinator is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Driving rounds, counting reports.
    Rounds,
    /// Shutdown broadcast sent; collecting final ledgers.
    Collecting,
    /// All ledgers in; [`CoordinatorMachine::into_report`] may be
    /// called.
    Done,
}

/// The round/termination driver of a cluster run (see the module
/// docs). One per run, regardless of the driver substrate.
#[derive(Debug)]
pub struct CoordinatorMachine {
    instance: Arc<Instance>,
    options: ClusterOptions,
    phase: Phase,
    round: u64,
    loads: Vec<f64>,
    local_costs: Vec<f64>,
    history: Vec<f64>,
    exchanges: usize,
    moved: f64,
    lost: usize,
    quiet: usize,
    rounds: usize,
    quiescent: bool,
    reports: usize,
    /// Reports expected this round: every node not down at the round
    /// start.
    expected: usize,
    /// Liveness oracle input (sorted): what the driver last told us
    /// about crashed nodes. Latched into `down` at each round start.
    pending_down: Vec<u32>,
    /// The down set latched at the current round's start. Frozen for
    /// the round, so every live node's causal chains complete.
    down: Vec<u32>,
    seen: Vec<bool>,
    round_moved: f64,
    /// Load-vector epoch for the nodes' candidate caches: bumped at a
    /// round start iff the gossiped view (loads or exclusions) changed
    /// since the last bump. Stays 0 under [`SelectPolicy::Exact`].
    epoch: u64,
    /// The loads snapshot at the last epoch bump.
    epoch_loads: Vec<f64>,
    /// The excluded set at the last epoch bump.
    last_excluded: Vec<u32>,
    /// The gossiped hot set of the current epoch: the most under- and
    /// over-loaded live nodes by `l_j / s_j`, sorted by id. Shared by
    /// every RoundStart of the epoch.
    hot: Arc<Vec<u32>>,
    ledgers: Vec<Option<SparseVec>>,
    collected: usize,
    /// Virtual time of the last [`Self::handle_at`]/[`Self::on_deadline`]
    /// call. Stays `0` under the oracle drivers, which never pass a
    /// clock.
    now_ms: f64,
    /// Virtual time the current round's `RoundStart` went out.
    round_started_at: f64,
    /// In-protocol detection: currently suspected nodes, sorted by id.
    /// Always empty under [`DetectMode::Oracle`].
    suspects: Vec<Suspect>,
    /// Per-node Welford accumulators over report latencies
    /// ([`DetectMode::Adaptive`] only).
    node_lat: Vec<(u64, f64, f64)>,
    /// Global Welford accumulator — the fallback bound for nodes with
    /// fewer than three samples.
    global_lat: (u64, f64, f64),
    /// Running detector counters. `detection_latency_ms` stays `0`
    /// here: only the driver knows physical crash times, so it fills
    /// that field in after the run.
    detector: DetectorSummary,
    /// Forensic log of every report (debug builds): used to diagnose
    /// protocol violations with full context.
    report_log: Vec<(u64, u32, RoundOutcome)>,
    /// Streaming drivers set this while requests are still arriving:
    /// quiescence must not shut the cluster down (the load landscape
    /// keeps shifting). A quiet round *parks* instead — see
    /// [`Self::kick`] — and `max_rounds` is deferred until the hold is
    /// released (the finite stream bounds the run in the meantime).
    hold_open: bool,
    /// Held open and the last round moved nothing: round-driving
    /// frames would spin at one virtual instant, so the coordinator
    /// waits for the driver to [`Self::kick`] it on stream activity.
    parked: bool,
}

impl CoordinatorMachine {
    /// Creates the coordinator for a cluster over `instance`.
    ///
    /// # Panics
    /// Panics when the instance is empty or a failed node is out of
    /// range.
    pub fn new(instance: Arc<Instance>, options: &ClusterOptions) -> Self {
        let m = instance.len();
        assert!(m >= 1, "cluster needs at least one node");
        for &f in &options.failed {
            assert!((f as usize) < m, "failed node {f} out of range");
        }
        let mut options = options.clone();
        // The excluded sets on the wire are sorted (nodes look peers up
        // by binary search); normalize the caller's failed list once.
        options.failed.sort_unstable();
        options.failed.dedup();
        let loads = instance.own_loads().to_vec();
        // Initial local costs: all requests at home, no latency.
        let local_costs: Vec<f64> = (0..m)
            .map(|j| {
                let l = instance.own_load(j);
                l * l / (2.0 * instance.speed(j))
            })
            .collect();
        let initial_cost = total_cost(&instance, &Assignment::local(&instance));
        Self {
            instance,
            options,
            phase: Phase::Rounds,
            round: 0,
            loads,
            local_costs,
            history: vec![initial_cost],
            exchanges: 0,
            moved: 0.0,
            lost: 0,
            quiet: 0,
            rounds: 0,
            quiescent: false,
            reports: 0,
            expected: m,
            pending_down: Vec::new(),
            down: Vec::new(),
            seen: vec![false; m],
            round_moved: 0.0,
            epoch: 0,
            epoch_loads: Vec::new(),
            last_excluded: Vec::new(),
            hot: Arc::new(Vec::new()),
            ledgers: (0..m).map(|_| None).collect(),
            collected: 0,
            now_ms: 0.0,
            round_started_at: 0.0,
            suspects: Vec::new(),
            node_lat: vec![(0, 0.0, 0.0); m],
            global_lat: (0, 0.0, 0.0),
            detector: DetectorSummary::default(),
            report_log: Vec::new(),
            hold_open: false,
            parked: false,
        }
    }

    fn in_protocol_detect(&self) -> bool {
        !matches!(self.options.detect, DetectMode::Oracle)
    }

    /// Index of `node` in the sorted suspect list, if suspected.
    fn suspect_index(&self, node: u32) -> Option<usize> {
        self.suspects.binary_search_by_key(&node, |s| s.node).ok()
    }

    /// Number of organizations in the cluster.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Returns `false` (a coordinator always has at least one node).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether every final ledger has been collected.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Whether the shutdown broadcast has gone out and final ledgers
    /// are being collected.
    pub fn is_collecting(&self) -> bool {
        self.phase == Phase::Collecting
    }

    /// The current (1-based) round number.
    pub fn round_number(&self) -> u64 {
        self.round
    }

    /// Updates the liveness oracle: `down` is the sorted list of nodes
    /// currently crashed. The set is *latched at the next round start*
    /// — mid-round it changes nothing, so a round's causal chains
    /// always complete among the nodes that entered it. Fault-free
    /// drivers never call this.
    pub fn set_down(&mut self, down: Vec<u32>) {
        assert!(
            matches!(self.options.detect, DetectMode::Oracle),
            "liveness oracle consulted under in-protocol detection ({:?})",
            self.options.detect
        );
        debug_assert!(down.windows(2).all(|w| w[0] < w[1]), "down set not sorted");
        debug_assert!(down.len() < self.len(), "at least one node must live");
        self.pending_down = down;
    }

    /// The down set latched at the current round's start (what the
    /// driver must gate data-plane deliveries on).
    pub fn down_now(&self) -> &[u32] {
        &self.down
    }

    /// While held open, quiescence does not end the run: a streaming
    /// driver keeps the protocol rebalancing as long as requests are
    /// still arriving or in flight, then releases the hold to let the
    /// normal quiet-round shutdown (and `max_rounds` stop) fire. After
    /// releasing, call [`Self::kick`] so a parked coordinator resumes.
    pub fn set_hold(&mut self, hold: bool) {
        self.hold_open = hold;
    }

    /// Resumes rounds after a park (no-op otherwise). A streaming
    /// driver calls this whenever stream activity lands: parked means
    /// the landscape was flat at the last round's end, and an arrival
    /// or departure has just deformed it.
    pub fn kick(&mut self, out: &mut Vec<Outbound>) {
        if !self.parked {
            return;
        }
        self.parked = false;
        self.round += 1;
        self.begin_round(out);
    }

    /// Kicks off round 1. Rounds are 1-based on the wire: nodes boot
    /// with `round == 0` meaning "no round joined yet", so a proposal
    /// that overtakes the recipient's own RoundStart is correctly
    /// classified as early and queued instead of being served with
    /// boot state.
    pub fn start(&mut self, out: &mut Vec<Outbound>) {
        debug_assert_eq!(self.round, 0, "start called twice");
        self.round = 1;
        self.begin_round(out);
    }

    fn begin_round(&mut self, out: &mut Vec<Outbound>) {
        self.reports = 0;
        self.round_moved = 0.0;
        self.seen.iter_mut().for_each(|s| *s = false);
        self.round_started_at = self.now_ms;
        // Latch the liveness oracle for the round: crashed nodes get no
        // RoundStart, owe no report, and are announced as excluded so
        // no live node proposes to (or audits) them. Under in-protocol
        // detection the oracle is never fed (`down` stays empty) and
        // the suspect list plays the same role.
        self.down = self.pending_down.clone();
        let mut skip = self.down.clone();
        skip.extend(self.suspects.iter().map(|s| s.node));
        skip.sort_unstable();
        self.expected = self.len() - skip.len();
        let mut excluded = self.options.failed.clone();
        excluded.extend_from_slice(&skip);
        excluded.sort_unstable();
        excluded.dedup();
        if let SelectPolicy::TopK(k) = self.options.node.select {
            // Epoch maintenance for the nodes' candidate caches: bump
            // (and rebuild the hot set) only when the gossiped view
            // actually moved, so quiet stretches rebuild nothing.
            if self.epoch == 0 || self.loads != self.epoch_loads || excluded != self.last_excluded {
                self.epoch += 1;
                self.epoch_loads.clone_from(&self.loads);
                self.last_excluded.clone_from(&excluded);
                self.hot = Arc::new(self.build_hot(&excluded, k));
            }
        }
        let frame = Arc::new(Frame::RoundStart {
            round: self.round,
            loads: Arc::new(self.loads.clone()),
            excluded,
            epoch: self.epoch,
            hot: Arc::clone(&self.hot),
        });
        self.broadcast_except(&skip, frame, out);
    }

    /// The hot set of an epoch: the `⌈k/2⌉`-ish most under-loaded and
    /// most over-loaded live nodes by normalized load `l_j / s_j` —
    /// the peers *every* node may profitably trade with regardless of
    /// delay, grafted onto each node's delay-nearest candidates. Pure
    /// function of (loads, excluded): ties break by id, output sorted
    /// ascending, so the set is identical for every thread count.
    fn build_hot(&self, excluded: &[u32], k: u32) -> Vec<u32> {
        let h = (k as usize / 2).max(1);
        let mut live: Vec<u32> = (0..self.len() as u32)
            .filter(|j| excluded.binary_search(j).is_err())
            .collect();
        if live.len() <= 2 * h {
            return live;
        }
        let key = |j: u32| self.loads[j as usize] / self.instance.speed(j as usize);
        let by_key = |a: &u32, b: &u32| key(*a).total_cmp(&key(*b)).then(a.cmp(b));
        // Lowest h …
        live.select_nth_unstable_by(h - 1, by_key);
        let mut hot: Vec<u32> = live[..h].to_vec();
        // … and highest h of the remainder.
        let rest = &mut live[h..];
        let split = rest.len() - h;
        rest.select_nth_unstable_by(split, by_key);
        hot.extend_from_slice(&rest[split..]);
        hot.sort_unstable();
        hot
    }

    fn shutdown(&mut self, out: &mut Vec<Outbound>) {
        self.phase = Phase::Collecting;
        self.broadcast_live(Arc::new(Frame::Shutdown), out);
    }

    /// Queues `frame` for every node not in the latched down set —
    /// one merge pass over the sorted `down` list, not a `contains`
    /// scan per node. Note that the down set is *empty* under
    /// in-protocol detection, so the `Shutdown` broadcast reaches all
    /// `m` nodes there — including suspected ones, whose frozen
    /// ledgers the coordinator still wants back if they are alive.
    fn broadcast_live(&self, frame: Arc<Frame>, out: &mut Vec<Outbound>) {
        self.broadcast_except(&self.down, frame, out);
    }

    /// Queues `frame` for every node not in the sorted `skip` list.
    fn broadcast_except(&self, skip: &[u32], frame: Arc<Frame>, out: &mut Vec<Outbound>) {
        let mut idx = 0usize;
        out.extend(
            (0..self.len() as u32)
                .filter(|&j| {
                    if skip.get(idx) == Some(&j) {
                        idx += 1;
                        false
                    } else {
                        true
                    }
                })
                .map(|j| Outbound {
                    to: Dest::Node(j),
                    frame: Arc::clone(&frame),
                }),
        );
    }

    /// Consumes one control-plane frame, appending any broadcasts to
    /// `out`.
    pub fn handle(&mut self, frame: &Frame, out: &mut Vec<Outbound>) {
        match (self.phase, frame) {
            (
                Phase::Rounds,
                Frame::Report {
                    from,
                    round: r,
                    outcome,
                    load,
                    local_cost,
                    exchange,
                },
            ) => {
                if self.in_protocol_detect() {
                    if let Some(idx) = self.suspect_index(*from) {
                        // A suspected node spoke: the suspicion was
                        // wrong. Probation/rejoin instead of the
                        // normal round accounting.
                        self.rejoin(idx, *outcome, *load, *local_cost, *exchange);
                        return;
                    }
                    if matches!(self.options.detect, DetectMode::Adaptive) {
                        let lat = self.now_ms - self.round_started_at;
                        welford_feed(&mut self.node_lat[*from as usize], lat);
                        welford_feed(&mut self.global_lat, lat);
                    }
                }
                if cfg!(debug_assertions) {
                    self.report_log.push((*r, *from, *outcome));
                    if *r != self.round || self.seen[*from as usize] {
                        panic!(
                            "protocol violation: node {from} sent {outcome:?} for round {r} \
                             during round {} (seen={}); log: {:?}",
                            self.round, self.seen[*from as usize], self.report_log
                        );
                    }
                }
                self.seen[*from as usize] = true;
                self.reports += 1;
                self.loads[*from as usize] = *load;
                self.local_costs[*from as usize] = *local_cost;
                match outcome {
                    RoundOutcome::Exchanged => {
                        let (partner, partner_load, partner_cost, volume) =
                            exchange.expect("exchange data present");
                        self.loads[partner as usize] = partner_load;
                        self.local_costs[partner as usize] = partner_cost;
                        self.exchanges += 1;
                        self.moved += volume;
                        self.round_moved += volume;
                    }
                    RoundOutcome::Lost => self.lost += 1,
                    // The node rolled back an exchange whose partner
                    // went silent (in-protocol detection only).
                    RoundOutcome::Aborted => self.detector.aborted_exchanges += 1,
                    // Accepted = collision-yield acceptor; the
                    // initiator's Exchanged report carries the exchange
                    // itself.
                    RoundOutcome::Accepted | RoundOutcome::NoProposal => {}
                }
                if self.reports == self.expected {
                    self.end_round(out);
                }
            }
            (Phase::Collecting, Frame::FinalLedger { from, ledger }) => {
                if self.ledgers[*from as usize].is_none() {
                    self.collected += 1;
                }
                self.ledgers[*from as usize] = Some(wire_to_ledger(ledger));
                if self.collected == self.len() {
                    self.phase = Phase::Done;
                }
            }
            // Late round reports during collection: dropped under the
            // oracle; under in-protocol detection one from a suspected
            // node still completes the probation handshake (it proves
            // the suspicion wrong, which the detector must own up to).
            (
                Phase::Collecting,
                Frame::Report {
                    from,
                    outcome,
                    load,
                    local_cost,
                    exchange,
                    ..
                },
            ) => {
                if self.in_protocol_detect() {
                    if let Some(idx) = self.suspect_index(*from) {
                        self.rejoin(idx, *outcome, *load, *local_cost, *exchange);
                    }
                }
            }
            (_, other) => {
                debug_assert!(
                    matches!(other, Frame::FinalLedger { .. }),
                    "unexpected coordinator frame {other:?} in {:?}",
                    self.phase
                );
            }
        }
    }

    /// Clock-aware variant of [`Self::handle`] for drivers running
    /// in-protocol detection: records the frame's arrival instant (the
    /// latency sample source and rejoin timestamp) before delegating.
    pub fn handle_at(&mut self, frame: &Frame, now: f64, out: &mut Vec<Outbound>) {
        self.now_ms = now;
        self.handle(frame, out);
    }

    /// The probation/rejoin handshake: a report from a suspected node
    /// proves it alive. The node leaves the suspect list (so the next
    /// `RoundStart` re-includes it — that broadcast *is* the resync:
    /// fresh round number, fresh load view; its frozen ledger was
    /// never touched, so load conservation is exact through wrongful
    /// exclusion and re-admission), and the coordinator adopts the
    /// report's load view so the rejoin round starts from truth.
    fn rejoin(
        &mut self,
        idx: usize,
        outcome: RoundOutcome,
        load: f64,
        local_cost: f64,
        exchange: Option<(u32, f64, f64, f64)>,
    ) {
        let s = self.suspects.remove(idx);
        self.detector.false_positives += 1;
        self.detector.rejoin_ms += self.now_ms - s.at_ms;
        self.loads[s.node as usize] = load;
        self.local_costs[s.node as usize] = local_cost;
        match outcome {
            RoundOutcome::Exchanged => {
                let (partner, partner_load, partner_cost, volume) =
                    exchange.expect("exchange data present");
                self.loads[partner as usize] = partner_load;
                self.local_costs[partner as usize] = partner_cost;
                self.exchanges += 1;
                self.moved += volume;
                self.round_moved += volume;
            }
            RoundOutcome::Aborted => self.detector.aborted_exchanges += 1,
            RoundOutcome::Lost | RoundOutcome::Accepted | RoundOutcome::NoProposal => {}
        }
        if matches!(self.options.detect, DetectMode::Adaptive) {
            // The late report is exactly the sample the estimator was
            // missing: feeding it teaches the detector this node's
            // true latency, which is how adaptive stops re-suspecting
            // a persistent straggler.
            let lat = self.now_ms - s.round_start_ms;
            welford_feed(&mut self.node_lat[s.node as usize], lat);
            welford_feed(&mut self.global_lat, lat);
        }
    }

    /// The report deadline for the round that just started, or `None`
    /// under [`DetectMode::Oracle`] (no deadline) or once rounds are
    /// over. Drivers call this after every round advance and schedule
    /// [`Self::on_deadline`] at the returned instant.
    pub fn arm_deadline(&self, now: f64) -> Option<f64> {
        if self.phase != Phase::Rounds {
            return None;
        }
        match self.options.detect {
            DetectMode::Oracle => None,
            DetectMode::Timeout(ms) => Some(now + ms),
            DetectMode::Adaptive => {
                let global = welford_bound(&self.global_lat).unwrap_or(ADAPTIVE_BOOTSTRAP_MS);
                let mut worst = f64::NEG_INFINITY;
                for j in 0..self.len() as u32 {
                    if self.suspect_index(j).is_some() {
                        continue; // owes no report this round
                    }
                    worst = worst.max(welford_bound(&self.node_lat[j as usize]).unwrap_or(global));
                }
                // All nodes suspected: keep a heartbeat so the round
                // still ends and the run can reach its budget.
                Some(now + if worst.is_finite() { worst } else { global })
            }
        }
    }

    /// The report deadline fired. Stale timers (earlier round, or the
    /// round already ended) are no-ops. Otherwise every node that owed
    /// a report and stayed silent becomes *suspected* — excluded from
    /// the next `RoundStart` — and the round ends on the reports that
    /// made it.
    pub fn on_deadline(&mut self, round: u64, now: f64, out: &mut Vec<Outbound>) {
        if self.phase != Phase::Rounds || round != self.round {
            return;
        }
        debug_assert!(self.in_protocol_detect(), "deadline armed under oracle");
        self.now_ms = now;
        let round_start_ms = self.round_started_at;
        for j in 0..self.len() as u32 {
            if !self.seen[j as usize] && self.suspect_index(j).is_none() {
                let pos = self.suspects.partition_point(|s| s.node < j);
                self.suspects.insert(
                    pos,
                    Suspect {
                        node: j,
                        at_ms: now,
                        round_start_ms,
                    },
                );
                self.detector.suspicions += 1;
            }
        }
        self.end_round(out);
    }

    /// Currently suspected nodes, sorted ascending. Drivers diff this
    /// across interactions to attribute detection latency (they know
    /// the physical crash times; the coordinator does not).
    pub fn suspects_now(&self) -> Vec<u32> {
        self.suspects.iter().map(|s| s.node).collect()
    }

    /// Nodes whose final ledger has not arrived. Once collecting and
    /// the event heap is dry, these are exactly the dead nodes: the
    /// driver freezes their machines' local ledgers into the answer.
    pub fn missing_ledgers(&self) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&j| self.ledgers[j as usize].is_none())
            .collect()
    }

    fn end_round(&mut self, out: &mut Vec<Outbound>) {
        self.rounds += 1;
        self.history.push(self.local_costs.iter().sum());
        if self.hold_open {
            // Streaming: a quiet round is a pause, not convergence —
            // but chaining straight into the next round would spin at
            // one virtual instant (control frames travel free). Park
            // until stream activity kicks us.
            self.quiet = 0;
            if self.round_moved <= self.options.quiescent_volume {
                self.parked = true;
            } else {
                self.round += 1;
                self.begin_round(out);
            }
            return;
        }
        if self.round_moved <= self.options.quiescent_volume {
            self.quiet += 1;
            if self.quiet >= self.options.quiescent_rounds {
                self.quiescent = true;
                self.shutdown(out);
                return;
            }
        } else {
            self.quiet = 0;
        }
        if self.round >= self.options.max_rounds as u64 {
            self.shutdown(out);
            return;
        }
        self.round += 1;
        self.begin_round(out);
    }

    /// Assembles the final [`ClusterReport`] once [`Self::is_done`].
    ///
    /// # Panics
    /// Panics when called before every final ledger arrived.
    pub fn into_report(self) -> ClusterReport {
        assert!(
            self.phase == Phase::Done,
            "into_report called before all final ledgers arrived"
        );
        let mut assignment = Assignment::local(&self.instance);
        for (j, ledger) in self.ledgers.into_iter().enumerate() {
            assignment.replace_ledger(j, ledger.expect("ledger collected"));
        }
        assignment.refresh_loads();
        let final_cost = total_cost(&self.instance, &assignment);
        ClusterReport {
            assignment,
            final_cost,
            history: self.history,
            rounds: self.rounds,
            exchanges: self.exchanges,
            moved: self.moved,
            lost_proposals: self.lost,
            quiescent: self.quiescent,
            virtual_ms: 0.0,
            event_hash: 0,
            faults: dlb_faults::FaultSummary::default(),
            detector: self.detector,
            stream: crate::cluster::StreamSummary::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_target_prefers_imbalanced_peer() {
        let instance = Instance::homogeneous(3, 1.0, 1.0, 0.0);
        // Node 0 idle; node 1 heavily loaded; node 2 idle.
        let loads = vec![0.0, 300.0, 0.0];
        assert_eq!(choose_target(0, &instance, &loads, &[]), Some(1));
        assert_eq!(choose_target(2, &instance, &loads, &[]), Some(1));
    }

    #[test]
    fn choose_target_respects_exclusions() {
        let instance = Instance::homogeneous(3, 1.0, 1.0, 0.0);
        let loads = vec![0.0, 300.0, 100.0];
        assert_eq!(choose_target(0, &instance, &loads, &[1]), Some(2));
    }

    #[test]
    fn choose_target_none_when_balanced() {
        let instance = Instance::homogeneous(4, 1.0, 10.0, 0.0);
        let loads = vec![50.0; 4];
        assert_eq!(choose_target(0, &instance, &loads, &[]), None);
    }

    #[test]
    fn audit_rotation_covers_all_peers() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..3u64 {
            seen.insert(audit_target(1, 4, round, &[]).unwrap());
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn audit_rotation_skips_excluded_and_handles_empty() {
        for round in 0..10u64 {
            let t = audit_target(0, 3, round, &[2]).unwrap();
            assert_eq!(t, 1);
        }
        assert_eq!(audit_target(0, 1, 0, &[]), None);
    }

    #[test]
    fn audit_gap_walk_matches_materialized_rotation() {
        for m in [1usize, 2, 5, 9] {
            for id in 0..m as u32 {
                for excluded in [vec![], vec![0], vec![1, 3], vec![0, 1, 2, 3]] {
                    let excluded: Vec<u32> =
                        excluded.into_iter().filter(|&e| (e as usize) < m).collect();
                    let naive: Vec<u32> = (0..m as u32)
                        .filter(|&j| j != id && !excluded.contains(&j))
                        .collect();
                    for round in 0..12u64 {
                        let want = if naive.is_empty() {
                            None
                        } else {
                            Some(naive[round as usize % naive.len()])
                        };
                        assert_eq!(
                            audit_target(id, m, round, &excluded),
                            want,
                            "m={m} id={id} excluded={excluded:?} round={round}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidate_index_merges_and_caches_by_epoch() {
        let instance = Instance::homogeneous(10, 1.0, 1.0, 0.0);
        let mut idx = CandidateIndex::default();
        // Homogeneous → base is the wheel successors of 3: {4,5,6,7}.
        idx.refresh(3, &instance, 4, 1, &[0, 3, 9]);
        assert_eq!(
            idx.merged,
            vec![0, 4, 5, 6, 7, 9],
            "hot merged, self dropped"
        );
        // Same epoch: cache hit, even with a different hot set.
        idx.refresh(3, &instance, 4, 1, &[1]);
        assert_eq!(idx.merged, vec![0, 4, 5, 6, 7, 9]);
        // Epoch advance: merged rebuilt from the kept base.
        idx.refresh(3, &instance, 4, 2, &[1, 5]);
        assert_eq!(idx.merged, vec![1, 4, 5, 6, 7]);
    }

    #[test]
    fn topk_with_saturating_k_matches_exact_scan() {
        let instance = Instance::homogeneous(6, 1.0, 1.0, 0.0);
        let mut idx = CandidateIndex::default();
        idx.refresh(0, &instance, 5, 1, &[]);
        for loads in [
            vec![0.0, 300.0, 0.0, 10.0, 5.0, 80.0],
            vec![50.0; 6],
            vec![9.0, 0.0, 0.0, 0.0, 0.0, 900.0],
        ] {
            for excluded in [vec![], vec![1], vec![1, 5]] {
                assert_eq!(
                    score_best(0, &instance, &loads, &excluded, idx.merged.iter().copied()),
                    choose_target(0, &instance, &loads, &excluded),
                    "loads={loads:?} excluded={excluded:?}"
                );
            }
        }
    }

    #[test]
    fn local_cost_matches_definition() {
        let instance = Instance::homogeneous(2, 2.0, 5.0, 0.0);
        let mut ledger = SparseVec::new();
        ledger.set(0, 6.0); // own requests: no latency
        ledger.set(1, 4.0); // foreign: latency 5
                            // load 10, speed 2 → congestion/request 2.5
                            // cost = 6·2.5 + 4·(2.5 + 5) = 15 + 30 = 45
        let c = local_cost(0, &instance, &ledger);
        assert!((c - 45.0).abs() < 1e-12, "got {c}");
    }

    fn drive(machine: &mut NodeMachine, frame: Frame) -> Vec<Outbound> {
        let mut out = Vec::new();
        machine.handle(&frame, &mut out);
        out
    }

    #[test]
    fn node_defers_shutdown_past_inflight_commit() {
        // Node 1 accepts a proposal (AwaitingCommit), then Shutdown
        // overtakes the Commit: the final ledger must reflect the
        // committed exchange, not the pre-exchange state.
        let instance = Arc::new(Instance::homogeneous(2, 1.0, 1.0, 0.0));
        let mut machine = NodeMachine::local(1, Arc::clone(&instance), NodeConfig::default());
        // Round 1 with balanced loads: no proposal on score grounds;
        // audit targets peer 0 (a Propose goes out).
        let out = drive(
            &mut machine,
            Frame::RoundStart {
                round: 1,
                loads: Arc::new(vec![0.0, 0.0]),
                excluded: vec![],
                epoch: 0,
                hot: Arc::new(vec![]),
            },
        );
        assert!(matches!(*out[0].frame, Frame::Propose { .. }));
        // Peer 0's own proposal collides; node 1 (higher id) keeps its
        // initiator role and ignores it... so instead simulate the
        // acceptor path directly: peer 0 answers Busy, then proposes.
        let out = drive(&mut machine, Frame::Busy { from: 0, round: 1 });
        assert!(matches!(
            *out[0].frame,
            Frame::Report {
                outcome: RoundOutcome::Lost,
                ..
            }
        ));
        let out = drive(&mut machine, Frame::Propose { from: 0, round: 1 });
        assert!(matches!(*out[0].frame, Frame::Accept { .. }));
        // Shutdown races ahead of the commit: nothing may go out yet.
        let out = drive(&mut machine, Frame::Shutdown);
        assert!(out.is_empty(), "shutdown must wait for the commit");
        assert!(!machine.is_done());
        // The commit lands: the machine installs the new ledger, files
        // no second report (already reported Lost), and completes the
        // deferred shutdown with the *committed* ledger.
        let committed = vec![(0u32, 7.5f64)];
        let out = drive(
            &mut machine,
            Frame::Commit {
                from: 0,
                round: 1,
                ledger: committed.clone(),
            },
        );
        assert!(machine.is_done());
        assert_eq!(out.len(), 1);
        match &*out[0].frame {
            Frame::FinalLedger { from, ledger } => {
                assert_eq!(*from, 1);
                assert_eq!(*ledger, committed);
            }
            other => panic!("expected FinalLedger, got {other:?}"),
        }
    }

    #[test]
    fn node_defers_round_start_past_inflight_commit() {
        let instance = Arc::new(Instance::homogeneous(3, 1.0, 1.0, 0.0));
        let mut machine = NodeMachine::local(2, Arc::clone(&instance), NodeConfig::default());
        drive(
            &mut machine,
            Frame::RoundStart {
                round: 1,
                loads: Arc::new(vec![0.0, 0.0, 0.0]),
                excluded: vec![],
                epoch: 0,
                hot: Arc::new(vec![]),
            },
        );
        // The audit rotation targets peer 1 in round 1; its Busy frees
        // the initiator role, then peer 0's proposal is accepted.
        drive(&mut machine, Frame::Busy { from: 1, round: 1 });
        let out = drive(&mut machine, Frame::Propose { from: 0, round: 1 });
        assert!(matches!(*out[0].frame, Frame::Accept { .. }));
        // Round 2 starts while the commit is still in flight.
        let out = drive(
            &mut machine,
            Frame::RoundStart {
                round: 2,
                loads: Arc::new(vec![1.0, 1.0, 1.0]),
                excluded: vec![],
                epoch: 0,
                hot: Arc::new(vec![]),
            },
        );
        assert!(out.is_empty(), "round start must wait for the commit");
        // The commit lands; the machine then joins round 2 and acts in
        // it (balanced loads → audit probe goes out).
        let out = drive(
            &mut machine,
            Frame::Commit {
                from: 0,
                round: 1,
                ledger: vec![(2, 1.0)],
            },
        );
        let rounds: Vec<u64> = out
            .iter()
            .filter_map(|o| match &*o.frame {
                Frame::Propose { round, .. } | Frame::Report { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert!(
            rounds.contains(&2),
            "machine must join round 2 after the commit: {out:?}"
        );
    }

    #[test]
    fn coordinator_runs_a_trivial_single_node_cluster() {
        let instance = Arc::new(Instance::homogeneous(1, 1.0, 0.0, 50.0));
        let mut coordinator = CoordinatorMachine::new(instance.clone(), &ClusterOptions::default());
        let mut node = NodeMachine::local(0, instance, NodeConfig::default());
        let mut out = Vec::new();
        coordinator.start(&mut out);
        // Shuttle frames between the two machines until done.
        let mut guard = 0;
        while !coordinator.is_done() {
            guard += 1;
            assert!(guard < 100, "did not terminate");
            let batch: Vec<Outbound> = std::mem::take(&mut out);
            for o in batch {
                match o.to {
                    Dest::Node(0) => node.handle(&o.frame, &mut out),
                    Dest::Coordinator => coordinator.handle(&o.frame, &mut out),
                    Dest::Node(j) => panic!("unexpected destination {j}"),
                }
            }
        }
        let report = coordinator.into_report();
        assert_eq!(report.exchanges, 0);
        assert!(report.quiescent);
        assert_eq!(report.assignment.load(0), 50.0);
    }
}
