//! The event-driven executor: Figure-2-scale clusters in one process.
//!
//! Instead of one OS thread per organization (m threads and an O(m²)
//! channel mesh), the executor drives every [`NodeMachine`] plus the
//! [`CoordinatorMachine`] from a single deterministic event heap:
//!
//! 1. **Pop a delivery batch** — all events due at the earliest
//!    virtual time. The [`Clock`] decides whether to wait
//!    ([`WallClock`](crate::clock::WallClock)) or jump
//!    ([`VirtualClock`]) to that instant; it can never reorder
//!    deliveries.
//! 2. **Shard the batch** — events are grouped into per-destination
//!    run queues, and the destinations are fanned out over the
//!    `dlb-par` worker pool ([`dlb_par::par_map_mut`], static
//!    chunking: each worker owns a disjoint shard of node machines for
//!    the duration of the batch). Machines only touch node-local
//!    state, so the fan-out is race-free by construction, and the
//!    order-preserving map keeps results bit-identical for every
//!    `DLB_THREADS` value.
//! 3. **Schedule the replies** — outbound frames are collected in
//!    deterministic (destination, emission) order and pushed back into
//!    the heap with per-link latencies from the caller's delay
//!    function (`dlb-netsim`'s [`LinkDelayModel`] in the scenario
//!    layer), data-plane frames paying the measured one-way delay and
//!    control-plane frames (coordinator ↔ node) travelling free — the
//!    coordinator stands in for the converged gossip substrate, which
//!    has no single physical location.
//!
//! Determinism is the point: the heap orders events by `(virtual due
//! time, sequence number)`, both of which are pure functions of the
//! inputs, so the same instance + options + delay function reproduces
//! the same event order, final ledgers, and cost history bit for bit —
//! across repeats *and* across worker-pool sizes. The running
//! [`ClusterReport::event_hash`] fingerprints the delivered sequence
//! so tests can assert exactly that.
//!
//! Virtual time doubles as a measurement: `ClusterReport::virtual_ms`
//! is the simulated wall-clock span of the protocol under the given
//! link delays — the quantity the paper's deployment would observe,
//! which no thread-runtime stopwatch can produce faithfully.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

use dlb_core::Instance;
use dlb_par::par_map_mut;

use crate::clock::{Clock, VirtualClock};
use crate::cluster::{ClusterOptions, ClusterReport};
use crate::machine::{CoordinatorMachine, Dest, NodeMachine, Outbound};
use crate::message::Frame;

/// One-way delay of control-plane frames (coordinator ↔ node), in
/// virtual ms. Zero: the coordinator models the already-converged
/// gossip layer, not a physical host (see the module docs).
const CONTROL_DELAY_MS: f64 = 0.0;

/// A scheduled delivery.
#[derive(Debug, Clone)]
struct Event {
    /// Virtual delivery time in ms.
    due: f64,
    /// Tie-breaker: scheduling order. Unique per event.
    seq: u64,
    dest: Dest,
    frame: Arc<Frame>,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Due times are finite by the scheduling asserts.
        self.due
            .total_cmp(&other.due)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// FNV-1a-style mixing of one word into the event-order fingerprint.
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

/// Folds an event's identity (due time, destination, frame shape) into
/// the running fingerprint. Ledger payloads are deliberately excluded:
/// the determinism tests compare final ledgers directly, and the hash
/// only needs to witness the *order* of deliveries.
fn hash_event(mut h: u64, e: &Event) -> u64 {
    h = mix(h, e.due.to_bits());
    h = mix(
        h,
        match e.dest {
            Dest::Node(j) => j as u64,
            Dest::Coordinator => u64::MAX,
        },
    );
    let (tag, from, round) = match &*e.frame {
        Frame::RoundStart { round, .. } => (1u64, 0, *round),
        Frame::Propose { from, round } => (2, *from, *round),
        Frame::Accept { from, round, .. } => (3, *from, *round),
        Frame::Busy { from, round } => (4, *from, *round),
        Frame::Commit { from, round, .. } => (5, *from, *round),
        Frame::Report { from, round, .. } => (6, *from, *round),
        Frame::Shutdown => (7, 0, 0),
        Frame::FinalLedger { from, .. } => (8, *from, 0),
    };
    h = mix(h, tag);
    h = mix(h, from as u64);
    mix(h, round)
}

/// The executor state shared by the scheduling helpers.
struct Heap {
    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl Heap {
    fn push(&mut self, due: f64, dest: Dest, frame: Arc<Frame>) {
        debug_assert!(due.is_finite(), "event due time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event {
            due,
            seq,
            dest,
            frame,
        }));
    }

    /// Schedules a machine's emissions. `src` is `None` for the
    /// coordinator.
    fn schedule<D: Fn(usize, usize) -> f64>(
        &mut self,
        now: f64,
        src: Option<usize>,
        out: &mut Vec<Outbound>,
        delays: &D,
    ) {
        for o in out.drain(..) {
            let delay = match (src, o.to) {
                (Some(i), Dest::Node(j)) => {
                    let d = delays(i, j as usize);
                    debug_assert!(
                        d.is_finite() && d >= 0.0,
                        "delay({i}, {j}) = {d} must be finite and non-negative"
                    );
                    d
                }
                _ => CONTROL_DELAY_MS,
            };
            self.push(now + delay, o.to, o.frame);
        }
    }
}

/// Runs the full message-passing protocol for `instance` on the
/// event-driven executor under a [`VirtualClock`] — the deterministic
/// simulation mode. `delays(i, j)` is the one-way delivery latency in
/// ms from node `i` to node `j` (must be finite and non-negative;
/// control-plane frames travel free).
pub fn run_cluster_events<D>(
    instance: &Instance,
    options: &ClusterOptions,
    delays: D,
) -> ClusterReport
where
    D: Fn(usize, usize) -> f64,
{
    run_cluster_events_with_clock(instance, options, delays, &mut VirtualClock)
}

/// [`run_cluster_events`] with an explicit pacing [`Clock`] — pass a
/// [`WallClock`](crate::clock::WallClock) to replay the simulated
/// schedule in real time.
pub fn run_cluster_events_with_clock<D, C>(
    instance: &Instance,
    options: &ClusterOptions,
    delays: D,
    clock: &mut C,
) -> ClusterReport
where
    D: Fn(usize, usize) -> f64,
    C: Clock,
{
    let m = instance.len();
    let shared = Arc::new(instance.clone());
    let mut coordinator = CoordinatorMachine::new(Arc::clone(&shared), options);
    let mut machines: Vec<Option<NodeMachine>> = (0..m)
        .map(|id| {
            Some(NodeMachine::local(
                id as u32,
                Arc::clone(&shared),
                options.node,
            ))
        })
        .collect();
    let mut heap = Heap {
        events: BinaryHeap::new(),
        next_seq: 0,
    };
    let mut out: Vec<Outbound> = Vec::new();
    let mut now = 0.0f64;
    let mut hash = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
    coordinator.start(&mut out);
    heap.schedule(now, None, &mut out, &delays);

    // Batch scratch, reused across iterations: per-node run queues plus
    // the list of destinations touched this batch (in first-delivery
    // order — deterministic, since events pop in (due, seq) order).
    let mut run_queues: Vec<Vec<Arc<Frame>>> = (0..m).map(|_| Vec::new()).collect();
    let mut touched: Vec<u32> = Vec::new();
    let mut coord_frames: Vec<Arc<Frame>> = Vec::new();

    while let Some(Reverse(first)) = heap.events.pop() {
        now = first.due;
        clock.wait_until(now);
        hash = hash_event(hash, &first);
        match first.dest {
            Dest::Node(j) => {
                touched.push(j);
                run_queues[j as usize].push(first.frame);
            }
            Dest::Coordinator => coord_frames.push(first.frame),
        }
        while heap.events.peek().is_some_and(|Reverse(e)| e.due == now) {
            let Reverse(e) = heap.events.pop().expect("peeked event present");
            hash = hash_event(hash, &e);
            match e.dest {
                Dest::Node(j) => {
                    if run_queues[j as usize].is_empty() {
                        touched.push(j);
                    }
                    run_queues[j as usize].push(e.frame);
                }
                Dest::Coordinator => coord_frames.push(e.frame),
            }
        }

        // Fan the touched shards out over the worker pool. Each entry
        // owns its machine for the batch, so `handle` runs without
        // locks; order-preserving `par_map_mut` keeps the collected
        // emissions independent of the worker count.
        let mut work: Vec<(u32, NodeMachine, Vec<Arc<Frame>>)> = touched
            .drain(..)
            .map(|j| {
                let machine = machines[j as usize].take().expect("machine present");
                (j, machine, std::mem::take(&mut run_queues[j as usize]))
            })
            .collect();
        let emissions: Vec<Vec<Outbound>> = par_map_mut(&mut work, |(_, machine, frames)| {
            let mut local_out = Vec::new();
            for frame in frames.drain(..) {
                machine.handle(&frame, &mut local_out);
            }
            local_out
        });
        let sources: Vec<u32> = work
            .into_iter()
            .map(|(j, machine, queue)| {
                machines[j as usize] = Some(machine);
                run_queues[j as usize] = queue; // return the allocation
                j
            })
            .collect();
        for (src, mut outs) in sources.into_iter().zip(emissions) {
            heap.schedule(now, Some(src as usize), &mut outs, &delays);
        }

        for frame in coord_frames.drain(..) {
            coordinator.handle(&frame, &mut out);
            heap.schedule(now, None, &mut out, &delays);
        }
        if coordinator.is_done() {
            break;
        }
    }

    let mut report = coordinator.into_report();
    report.virtual_ms = now;
    report.event_hash = hash;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WallClock;
    use dlb_core::rngutil::rng_for;
    use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
    use dlb_core::LatencyMatrix;
    use dlb_distributed::{Engine, EngineOptions};

    /// Half the instance's RTT as the one-way delay — the simplest
    /// honest delay model for tests that already carry a latency
    /// matrix.
    fn half_rtt(instance: &Instance) -> impl Fn(usize, usize) -> f64 + '_ {
        |i, j| instance.c(i, j) / 2.0
    }

    #[test]
    fn two_nodes_split_a_peak() {
        let mut instance = Instance::homogeneous(2, 1.0, 1.0, 0.0);
        instance.set_own_loads(vec![1000.0, 0.0]);
        let report = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        report.assignment.check_invariants(&instance).unwrap();
        // Lemma 1: optimal transfer is (l_0 − l_1 − c·s)/2 = 499.5.
        assert!((report.assignment.load(0) - 500.5).abs() < 1e-6);
        assert!((report.assignment.load(1) - 499.5).abs() < 1e-6);
        assert!(report.quiescent);
        assert!(report.virtual_ms > 0.0, "data frames paid link delay");
    }

    #[test]
    fn matches_engine_fixpoint() {
        let mut rng = rng_for(3, 0xC1);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 80.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(12, 20.0), &mut rng);
        let report = run_cluster_events(
            &instance,
            &ClusterOptions::certified(12),
            half_rtt(&instance),
        );
        report.assignment.check_invariants(&instance).unwrap();
        let mut engine = Engine::new(
            instance.clone(),
            EngineOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let opt = engine.run_to_convergence(1e-12, 3, 300).final_cost;
        assert!(
            report.final_cost <= opt * 1.02,
            "events {} vs engine fixpoint {opt}",
            report.final_cost
        );
    }

    #[test]
    fn conservation_under_heavy_traffic() {
        let mut rng = rng_for(17, 0xC2);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Uniform,
            avg_load: 120.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(40, 5.0), &mut rng);
        let report = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        report.assignment.check_invariants(&instance).unwrap();
        for k in 0..40 {
            let total = report.assignment.owner_total(k);
            assert!(
                (total - instance.own_load(k)).abs() < 1e-6,
                "owner {k}: {total} != {}",
                instance.own_load(k)
            );
        }
    }

    #[test]
    fn history_is_exact_and_decreasing() {
        let mut rng = rng_for(5, 0xC3);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 60.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(8, 10.0), &mut rng);
        let report = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        let last = *report.history.last().unwrap();
        assert!(
            (last - report.final_cost).abs() <= 1e-6 * report.final_cost.max(1.0),
            "reported {last} vs exact {}",
            report.final_cost
        );
        for w in report.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9 * w[0].max(1.0), "cost rose");
        }
    }

    #[test]
    fn failed_nodes_take_no_part() {
        let mut instance = Instance::homogeneous(6, 1.0, 1.0, 0.0);
        instance.set_own_loads(vec![600.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let report = run_cluster_events(
            &instance,
            &ClusterOptions {
                failed: vec![4, 5],
                ..Default::default()
            },
            half_rtt(&instance),
        );
        report.assignment.check_invariants(&instance).unwrap();
        assert_eq!(report.assignment.load(4), 0.0);
        assert_eq!(report.assignment.load(5), 0.0);
        for j in 0..4 {
            assert!(report.assignment.load(j) > 100.0);
        }
    }

    #[test]
    fn single_node_cluster_is_trivial() {
        let instance = Instance::homogeneous(1, 1.0, 0.0, 50.0);
        let report = run_cluster_events(&instance, &ClusterOptions::default(), |_, _| 1.0);
        assert_eq!(report.exchanges, 0);
        assert!(report.quiescent);
        assert_eq!(report.assignment.load(0), 50.0);
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let mut rng = rng_for(9, 0xD1);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 70.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(16, 15.0), &mut rng);
        let a = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        let b = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        assert_eq!(a.event_hash, b.event_hash);
        assert_eq!(a.history, b.history);
        assert_eq!(a.virtual_ms, b.virtual_ms);
        assert_eq!(a.assignment.loads(), b.assignment.loads());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.exchanges, b.exchanges);
    }

    #[test]
    fn virtual_time_scales_with_link_delay() {
        let mut instance = Instance::homogeneous(4, 1.0, 1.0, 0.0);
        instance.set_own_loads(vec![400.0, 0.0, 0.0, 0.0]);
        let slow = run_cluster_events(&instance, &ClusterOptions::default(), |_, _| 50.0);
        let fast = run_cluster_events(&instance, &ClusterOptions::default(), |_, _| 5.0);
        assert!(
            slow.virtual_ms > fast.virtual_ms,
            "slow {} vs fast {}",
            slow.virtual_ms,
            fast.virtual_ms
        );
        // Same protocol, different pacing: identical outcome.
        assert_eq!(slow.history, fast.history);
        assert_eq!(slow.assignment.loads(), fast.assignment.loads());
    }

    #[test]
    fn wall_clock_replays_the_same_schedule() {
        let mut instance = Instance::homogeneous(3, 1.0, 1.0, 0.0);
        instance.set_own_loads(vec![300.0, 0.0, 0.0]);
        let virt = run_cluster_events(&instance, &ClusterOptions::default(), |_, _| 2.0);
        // 1000× fast-forward keeps the test quick while still going
        // through the sleeping path.
        let mut clock = WallClock::with_scale(0.001);
        let wall = run_cluster_events_with_clock(
            &instance,
            &ClusterOptions::default(),
            |_, _| 2.0,
            &mut clock,
        );
        assert_eq!(virt.event_hash, wall.event_hash);
        assert_eq!(virt.history, wall.history);
        assert_eq!(virt.assignment.loads(), wall.assignment.loads());
    }
}
