//! The event-driven executor: Figure-2-scale clusters in one process.
//!
//! Instead of one OS thread per organization (m threads and an O(m²)
//! channel mesh), the executor drives every [`NodeMachine`] plus the
//! [`CoordinatorMachine`] from a single deterministic event heap
//! ([`dlb_core::events::EventHeap`], shared with the scheduled-gossip
//! simulation in `dlb-gossip`):
//!
//! 1. **Pop a delivery batch** — all events due at the earliest
//!    virtual time. The [`Clock`] decides whether to wait
//!    ([`WallClock`](crate::clock::WallClock)) or jump
//!    ([`VirtualClock`]) to that instant; it can never reorder
//!    deliveries.
//! 2. **Shard the batch** — events are grouped into per-destination
//!    run queues, and the destinations are fanned out over one
//!    *persistent* `dlb-par` worker pool ([`dlb_par::with_pool`],
//!    spawned once per run and fed every batch over channels — not a
//!    thread spawn/join per batch; static chunking: each worker owns a
//!    disjoint shard of node machines for the duration of the batch).
//!    Machines only touch node-local state, so the fan-out is
//!    race-free by construction, and the order-preserving, slot-
//!    reassembled map keeps results bit-identical for every
//!    `DLB_THREADS` value.
//! 3. **Schedule the replies** — outbound frames are collected in
//!    deterministic (destination, emission) order and pushed back into
//!    the heap with per-link latencies from the caller's delay
//!    function (`dlb-netsim`'s `LinkDelayModel` in the scenario
//!    layer), data-plane frames paying the measured one-way delay and
//!    control-plane frames (coordinator ↔ node) travelling free — the
//!    coordinator stands in for the converged gossip substrate, which
//!    has no single physical location.
//!
//! Determinism is the point: the heap orders events by `(virtual due
//! time, sequence number)`, both of which are pure functions of the
//! inputs, so the same instance + options + delay function reproduces
//! the same event order, final ledgers, and cost history bit for bit —
//! across repeats *and* across worker-pool sizes. The running
//! [`ClusterReport::event_hash`] fingerprints the delivered sequence
//! so tests can assert exactly that.
//!
//! Virtual time doubles as a measurement: `ClusterReport::virtual_ms`
//! is the simulated wall-clock span of the protocol under the given
//! link delays — the quantity the paper's deployment would observe,
//! which no thread-runtime stopwatch can produce faithfully.
//!
//! # Fault injection
//!
//! [`run_cluster_events_faulted`] runs the same simulation under a
//! compiled [`FaultScript`] (`dlb-faults`), which the executor consults
//! at two deterministic points:
//!
//! * **Scheduling** a data-plane frame:
//!   [`FaultScript::reliable_link`] composes partition holds, delay
//!   spikes, and loss-retransmission timeouts into extra one-way
//!   delay. The §IV exchange moves request ownership, so its frames
//!   ride a reliable transport — loss makes them *late*, never torn
//!   (see the `dlb-faults` crate docs).
//! * **Delivering** a frame: a destination that is down takes nothing
//!   — except a [`Frame::Commit`], which completes an exchange the
//!   initiator already applied (the acceptor processed it just before
//!   dying; dropping it would split requests in half). Down nodes
//!   emit nothing.
//!
//! Crash instants are **latched at round boundaries**: a node that
//! crashes at `t` drops out of the first round starting at or after
//! `t` — the coordinator (whose liveness oracle the executor feeds
//! from the script) stops scheduling it, announces it in the round's
//! `excluded` set, and stops expecting its report, so every round's
//! causal chains complete among the nodes that entered it and the
//! survivors keep converging. A recovered node rejoins at the next
//! round start. At shutdown, nodes that are down reply nothing; once
//! in-flight traffic drains, the executor freezes their ledgers into
//! the final assignment (their requests stay where they were when the
//! node went down), so conservation holds exactly even under churn.
//!
//! The script is pure and every consultation happens on the
//! single-threaded scheduling path, so fault trajectories — including
//! the [`FaultSummary`] accounting — are as bit-reproducible as the
//! fault-free runs, across repeats and `DLB_THREADS` values. An empty
//! script takes none of these paths: `run_cluster_events` and
//! `run_cluster_events_faulted(..., &FaultScript::empty(m))` produce
//! byte-identical reports.

use std::sync::Arc;

use dlb_core::events::EventHeap;
use dlb_core::Instance;
use dlb_faults::{FaultScript, FaultSummary};
use dlb_obs::event::{DROP_DEST_DOWN, DROP_SRC_DOWN};
use dlb_obs::{NullSink, TraceEvent, TraceKind, TraceSink, NODE_COORD, NO_PEER};
use dlb_par::with_pool;
use dlb_requestsim::stream::StreamScript;

use crate::clock::{Clock, VirtualClock};
use crate::cluster::{ClusterOptions, ClusterReport, DetectMode, StreamSummary};
use crate::machine::{CoordinatorMachine, Dest, NodeMachine, Outbound, RtoKind};
use crate::message::{ledger_to_wire, Frame};

/// One-way delay of control-plane frames (coordinator ↔ node), in
/// virtual ms. Zero: the coordinator models the already-converged
/// gossip layer, not a physical host (see the module docs).
const CONTROL_DELAY_MS: f64 = 0.0;

/// What travels on the heap: frame deliveries plus, under in-protocol
/// failure detection, the two timer species. Under
/// [`DetectMode::Oracle`] only frames are ever pushed, so the oracle
/// event stream (sequence numbers, hashes, everything) is byte-for-
/// byte what it was before timers existed.
enum Event {
    /// A frame headed for an inbox.
    Frame(Dest, Arc<Frame>),
    /// The coordinator's report deadline for the given round.
    Deadline(u64),
    /// An exchange retransmission timer: (node, round, guarded wait).
    Rto(u32, u64, RtoKind),
    /// A streamed request entering the system: index into the
    /// [`StreamScript`]'s arrival schedule. Only ever pushed when a
    /// non-empty stream drives the run, so no-stream event sequences
    /// (and their hashes) are untouched.
    Arrival(u32),
    /// A streamed request finishing service — its load leaves the
    /// cluster: `(org, server it was served on, amount, arrival idx)`.
    Departure(u32, u32, f64, u32),
}

/// What lands in a node's per-batch run queue.
enum Inbox {
    Frame(Arc<Frame>),
    Rto(u64, RtoKind),
}

/// What lands in the coordinator's per-batch queue.
enum CoordItem {
    Frame(Arc<Frame>),
    Deadline(u64),
}

/// FNV-1a-style mixing of one word into the event-order fingerprint.
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

/// A frame's hashing identity: `(tag, from, round)`. The tags are the
/// append-only vocabulary shared by the event hash, the trace events,
/// and [`dlb_obs::tag_label`] — one extraction point so the fingerprint
/// and the trace can never disagree about what a frame *was*.
fn frame_identity(frame: &Frame) -> (u8, u32, u64) {
    match frame {
        Frame::RoundStart { round, .. } => (1u8, 0, *round),
        Frame::Propose { from, round } => (2, *from, *round),
        Frame::Accept { from, round, .. } => (3, *from, *round),
        Frame::Busy { from, round } => (4, *from, *round),
        Frame::Commit { from, round, .. } => (5, *from, *round),
        Frame::Report { from, round, .. } => (6, *from, *round),
        Frame::Shutdown => (7, 0, 0),
        Frame::FinalLedger { from, .. } => (8, *from, 0),
        Frame::CommitAck { from, round } => (9, *from, *round),
    }
}

/// The trace-facing sender of a frame: coordinator-originated tags
/// (RoundStart, Shutdown) hash `from = 0` but *mean* the coordinator.
fn frame_peer(tag: u8, from: u32) -> u32 {
    if tag == 1 || tag == 7 {
        NODE_COORD
    } else {
        from
    }
}

/// Folds an event's identity (due time, destination, frame shape) into
/// the running fingerprint. Ledger payloads are deliberately excluded:
/// the determinism tests compare final ledgers directly, and the hash
/// only needs to witness the *order* of deliveries.
fn hash_event(mut h: u64, due: f64, dest: Dest, frame: &Frame) -> u64 {
    h = mix(h, due.to_bits());
    h = mix(
        h,
        match dest {
            Dest::Node(j) => j as u64,
            Dest::Coordinator => u64::MAX,
        },
    );
    let (tag, from, round) = frame_identity(frame);
    h = mix(h, tag as u64);
    h = mix(h, from as u64);
    mix(h, round)
}

/// Folds a fired timer into the fingerprint. Tags 16/17 are disjoint
/// from the frame tags, and timers only exist under in-protocol
/// detection, so oracle hashes are untouched.
fn hash_timer(mut h: u64, due: f64, tag: u64, node: u64, round: u64) -> u64 {
    h = mix(h, due.to_bits());
    h = mix(h, node);
    h = mix(h, tag);
    mix(h, round)
}

/// The simulated network: the shared event heap plus the delay model
/// and fault script every scheduled frame passes through.
struct Fabric<'s, 't, D, T: TraceSink> {
    heap: EventHeap<Event>,
    delays: D,
    script: &'s FaultScript,
    summary: FaultSummary,
    /// Exchange retransmission timeout under in-protocol detection:
    /// `Some(ms)` arms an abort timer whenever an exchange frame is
    /// dropped at a dead host (see [`Fabric::arm_abort`]); `None`
    /// (oracle) pushes no timers at all.
    rto: Option<f64>,
    /// The observability plane. Every emission is behind
    /// `tracer.enabled()`; with [`NullSink`] (a monomorphized constant
    /// `false`) the hooks compile down to nothing and the run is
    /// byte-identical to an unobserved one.
    tracer: &'t mut T,
}

impl<D: Fn(usize, usize) -> f64, T: TraceSink> Fabric<'_, '_, D, T> {
    /// Schedules a machine's emissions. `src` is `None` for the
    /// coordinator.
    fn schedule(&mut self, now: f64, src: Option<usize>, out: &mut Vec<Outbound>) {
        for o in out.drain(..) {
            let mut held = 0.0f64;
            let delay = match (src, o.to) {
                (Some(i), Dest::Node(j)) => {
                    let d = (self.delays)(i, j as usize);
                    debug_assert!(
                        d.is_finite() && d >= 0.0,
                        "delay({i}, {j}) = {d} must be finite and non-negative"
                    );
                    if self.script.is_empty() {
                        d
                    } else {
                        // A straggler's outbound frames crawl: the slow
                        // multiplier scales the base delay before the
                        // loss/partition composition on top of it.
                        let base = d * self.script.slow_factor(i, now);
                        // The seq this push will receive keys the
                        // per-frame loss decisions.
                        let fault = self.script.reliable_link(
                            now,
                            i,
                            j as usize,
                            self.heap.next_seq(),
                            base,
                        );
                        let extra = (base - d) + fault.extra_ms;
                        if extra > 0.0 {
                            self.summary.delayed_frames += 1;
                            self.summary.extra_delay_ms += extra;
                            held = extra;
                        }
                        d + extra
                    }
                }
                _ => CONTROL_DELAY_MS,
            };
            if self.tracer.enabled() {
                let (tag, _, round) = frame_identity(&o.frame);
                let node = match o.to {
                    Dest::Node(j) => j,
                    Dest::Coordinator => NODE_COORD,
                };
                let peer = match src {
                    Some(i) => i as u32,
                    None => NODE_COORD,
                };
                if held > 0.0 {
                    self.tracer.emit(&TraceEvent {
                        kind: TraceKind::FrameHeld,
                        at_ms: now,
                        node,
                        peer,
                        round,
                        tag,
                        detail: held,
                    });
                }
                self.tracer.emit(&TraceEvent {
                    kind: TraceKind::FrameScheduled,
                    at_ms: now,
                    node,
                    peer,
                    round,
                    tag,
                    detail: delay,
                });
            }
            self.heap.push(now + delay, Event::Frame(o.to, o.frame));
        }
    }

    /// A data-plane frame just vanished into a dead host. Under
    /// in-protocol detection the sender is now waiting on an answer
    /// that can never come: arm its retransmission timeout so the
    /// machine aborts the exchange after `exchange_rto_ms` of silence.
    ///
    /// Arming at the *drop* instead of blindly at every send keeps the
    /// abort exact — a timer only exists when the wait is provably
    /// unresolvable — which is the behavior of a correctly provisioned
    /// real-world RTO (one that exceeds the worst-case round trip, so
    /// it never tears an exchange both parties are still driving).
    fn arm_abort(&mut self, now: f64, frame: &Frame) {
        let Some(rto_ms) = self.rto else { return };
        let armed = match frame {
            // Our proposal died with the acceptor; nobody will answer.
            Frame::Propose { from, round } => Some((*from, *round, RtoKind::Answer)),
            // Our acceptance died with the initiator; no Commit comes.
            Frame::Accept { from, round, .. } => Some((*from, *round, RtoKind::CommitWait)),
            // Our Commit died with the acceptor; nothing was installed
            // and no ack comes — the held-back half must be dropped.
            Frame::Commit { from, round, .. } => Some((*from, *round, RtoKind::Ack)),
            _ => None,
        };
        if let Some((waiter, round, kind)) = armed {
            self.heap
                .push(now + rto_ms, Event::Rto(waiter, round, kind));
        }
    }
}

/// Runs the full message-passing protocol for `instance` on the
/// event-driven executor under a [`VirtualClock`] — the deterministic
/// simulation mode. `delays(i, j)` is the one-way delivery latency in
/// ms from node `i` to node `j` (must be finite and non-negative;
/// control-plane frames travel free).
pub fn run_cluster_events<D>(
    instance: &Instance,
    options: &ClusterOptions,
    delays: D,
) -> ClusterReport
where
    D: Fn(usize, usize) -> f64,
{
    run_cluster_events_faulted(
        instance,
        options,
        delays,
        &FaultScript::empty(instance.len()),
    )
}

/// [`run_cluster_events`] under a fault script: crashes, loss, delay
/// spikes, and partitions injected at deterministic virtual instants
/// (see the [module docs](self)). The script must have been compiled
/// for this instance's size.
pub fn run_cluster_events_faulted<D>(
    instance: &Instance,
    options: &ClusterOptions,
    delays: D,
    script: &FaultScript,
) -> ClusterReport
where
    D: Fn(usize, usize) -> f64,
{
    run_cluster_events_with_clock(instance, options, delays, script, &mut VirtualClock)
}

/// [`run_cluster_events_faulted`] with an explicit pacing [`Clock`] —
/// pass a [`WallClock`](crate::clock::WallClock) to replay the
/// simulated schedule in real time.
pub fn run_cluster_events_with_clock<D, C>(
    instance: &Instance,
    options: &ClusterOptions,
    delays: D,
    script: &FaultScript,
    clock: &mut C,
) -> ClusterReport
where
    D: Fn(usize, usize) -> f64,
    C: Clock,
{
    run_cluster_events_streamed_with_clock(
        instance,
        options,
        delays,
        script,
        &StreamScript::empty(),
        clock,
    )
}

/// [`run_cluster_events_faulted`] under a live request stream: the
/// compiled [`StreamScript`]'s arrivals ride the same `(due, seq)`
/// event heap as the protocol frames, so the cluster rebalances
/// *while* requests flow instead of converging over a frozen snapshot.
///
/// Each arrival is routed to a live server in proportion to how much
/// of its organization's work that server currently hosts (the live
/// relay fractions), deposits one unit of load there — buffered by the
/// node machine while an exchange is open, so no transfer is ever torn
/// — and departs after its modeled sojourn (`c_ij + l_j/2s_j + 1/s_j`),
/// withdrawing the unit from wherever rebalancing moved it. Arrivals
/// routed to a crashed (or already-finished) server are counted as
/// dropped. While requests are still arriving or in flight the
/// coordinator is *held open*: quiet rounds park instead of quiescing
/// (see [`CoordinatorMachine::kick`]), and every stream event resumes
/// a parked coordinator. Once the stream drains, the hold is released
/// and the normal quiescence shutdown fires.
///
/// The filled [`ClusterReport::stream`] carries requests served and
/// dropped, p50/p99 sojourn, and the virtual time the cluster spent
/// with its worst live utilization above twice the mean
/// ([`StreamSummary`]). An empty script takes none of these paths:
/// the run is byte-identical to [`run_cluster_events_faulted`].
pub fn run_cluster_events_streamed<D>(
    instance: &Instance,
    options: &ClusterOptions,
    delays: D,
    script: &FaultScript,
    stream: &StreamScript,
) -> ClusterReport
where
    D: Fn(usize, usize) -> f64,
{
    run_cluster_events_streamed_with_clock(
        instance,
        options,
        delays,
        script,
        stream,
        &mut VirtualClock,
    )
}

/// The fully general untraced entry: faults, stream, and explicit
/// clock, observed by nobody ([`NullSink`] — the hooks compile away
/// and the run is byte-identical to the pre-observability executor).
pub fn run_cluster_events_streamed_with_clock<D, C>(
    instance: &Instance,
    options: &ClusterOptions,
    delays: D,
    script: &FaultScript,
    stream: &StreamScript,
    clock: &mut C,
) -> ClusterReport
where
    D: Fn(usize, usize) -> f64,
    C: Clock,
{
    run_cluster_events_observed(
        instance,
        options,
        delays,
        script,
        stream,
        clock,
        &mut NullSink,
    )
}

/// The fully general entry: faults, stream, explicit clock, and a
/// [`TraceSink`] observing the run.
///
/// Every hook sits on the executor's single-threaded scheduling /
/// classification path behind a `tracer.enabled()` branch, emits in
/// deterministic `(due, seq)` delivery order, and never feeds back
/// into protocol state — so the trace is as bit-reproducible as the
/// run itself (across repeats *and* `DLB_THREADS` values), and a
/// disabled sink leaves the event stream, hash, and report
/// byte-identical to [`run_cluster_events_streamed_with_clock`].
#[allow(clippy::too_many_arguments)]
pub fn run_cluster_events_observed<D, C, T>(
    instance: &Instance,
    options: &ClusterOptions,
    delays: D,
    script: &FaultScript,
    stream: &StreamScript,
    clock: &mut C,
    tracer: &mut T,
) -> ClusterReport
where
    D: Fn(usize, usize) -> f64,
    C: Clock,
    T: TraceSink,
{
    let m = instance.len();
    assert_eq!(
        script.len(),
        m,
        "fault script compiled for a different cluster size"
    );
    let shared = Arc::new(instance.clone());
    let mut coordinator = CoordinatorMachine::new(Arc::clone(&shared), options);
    let use_oracle = matches!(options.detect, DetectMode::Oracle);
    // In-protocol detection requires two-phase exchanges: an aborting
    // initiator may only roll back state it has not applied yet, so
    // the transfer must be held until the acceptor's CommitAck.
    let mut node_config = options.node;
    if !use_oracle {
        node_config.two_phase = true;
    }
    let mut machines: Vec<Option<NodeMachine>> = (0..m)
        .map(|id| {
            Some(NodeMachine::local(
                id as u32,
                Arc::clone(&shared),
                node_config,
            ))
        })
        .collect();
    let mut fabric = Fabric {
        heap: EventHeap::new(),
        delays,
        script,
        summary: FaultSummary::default(),
        rto: (!use_oracle).then_some(options.exchange_rto_ms),
        tracer,
    };
    // The per-batch work the pool's workers run: drain one node's
    // queue through its machine, collecting emissions. Spawning the
    // pool once for the whole run (instead of a thread scope per
    // batch) is what keeps the per-instant dispatch overhead flat at
    // Figure-2 scale.
    let handler = |(_, machine, items): &mut (u32, NodeMachine, Vec<Inbox>)| {
        let mut local_out = Vec::new();
        for item in items.drain(..) {
            match item {
                Inbox::Frame(frame) => machine.handle(&frame, &mut local_out),
                Inbox::Rto(round, kind) => machine.on_rto(round, kind, &mut local_out),
            }
        }
        local_out
    };
    with_pool(handler, move |pool| {
        let mut out: Vec<Outbound> = Vec::new();
        let mut now = 0.0f64;
        let mut hash = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
        let faulty = !script.is_empty();
        // Which nodes currently take no deliveries. Under the oracle
        // this is the coordinator's round-latched down set; under
        // in-protocol detection it is raw physics — the script's down
        // set at `now`, latched at nothing (the protocol is on its own
        // to notice).
        let mut down = vec![false; m];
        // The script's down set only changes at its crash/recovery
        // instants; cache the phase so the refresh is O(1) per batch
        // instead of an O(m) rebuild.
        let mut down_phase = script.down_phase(now);
        if faulty && use_oracle {
            coordinator.set_down(script.down_at(now));
        }
        // Streaming: the whole arrival schedule goes on the heap up
        // front (it is pure data, already time-sorted), and the
        // coordinator is held open until the stream drains. An empty
        // stream pushes nothing — the event sequence and its hash are
        // byte-identical to the unstreamed run.
        let streaming = !stream.is_empty();
        let last_arrival_ms = stream.arrivals().last().map_or(0.0, |a| a.at_ms);
        if streaming {
            debug_assert!(
                stream.arrivals().iter().all(|a| (a.org as usize) < m),
                "stream compiled for a different cluster size"
            );
            for (idx, a) in stream.arrivals().iter().enumerate() {
                fabric.heap.push(a.at_ms, Event::Arrival(idx as u32));
            }
            coordinator.set_hold(true);
        }
        let mut hold = streaming;
        let mut outstanding = 0u64; // departures still on the heap
        let mut served = 0u64;
        let mut stream_dropped = 0u64;
        let mut sojourns: Vec<f64> = Vec::new();
        let mut imbalance_ms = 0.0f64;
        let mut was_imbalanced = false;
        let mut last_sample_ms = 0.0f64;
        coordinator.start(&mut out);
        let mut latched_round = coordinator.round_number();
        // Observability round phases — tracked separately from the
        // oracle's `latched_round` (which only advances on
        // faulty-oracle runs). `obs_excl_round` dedups the per-round
        // exclusion announcement, which every RoundStart frame carries.
        let mut obs_round = coordinator.round_number();
        let mut obs_round_start = 0.0f64;
        let mut obs_excl_round = 0u64;
        if fabric.tracer.enabled() {
            fabric.tracer.emit(&TraceEvent {
                kind: TraceKind::RoundBegin,
                at_ms: 0.0,
                node: NODE_COORD,
                peer: NO_PEER,
                round: obs_round,
                tag: 0,
                detail: 0.0,
            });
        }
        if use_oracle {
            for &j in coordinator.down_now() {
                down[j as usize] = true;
                // Down from the very first round: the run experienced
                // this crash (the summary counts *latched* transitions,
                // not script instants a finished run never reached).
                fabric.summary.crashes += 1;
            }
        } else {
            for &j in &script.down_at(now) {
                down[j as usize] = true;
                fabric.summary.crashes += 1;
            }
        }
        fabric.schedule(now, None, &mut out);
        // In-protocol detection bookkeeping: the round whose report
        // deadline has been armed, the suspect set last seen (to
        // attribute detection latency), and the true-positive latency
        // accumulator.
        let mut armed_round = 0u64;
        let mut prev_suspects: Vec<u32> = Vec::new();
        let mut tp_count = 0u32;
        let mut tp_latency_sum = 0.0f64;
        if !use_oracle {
            armed_round = coordinator.round_number();
            if let Some(due) = coordinator.arm_deadline(now) {
                fabric.heap.push(due, Event::Deadline(armed_round));
            }
        }

        // Batch scratch, reused across iterations: per-node run queues plus
        // the list of destinations touched this batch (in first-delivery
        // order — deterministic, since events pop in (due, seq) order).
        let mut run_queues: Vec<Vec<Inbox>> = (0..m).map(|_| Vec::new()).collect();
        let mut touched: Vec<u32> = Vec::new();
        let mut coord_items: Vec<CoordItem> = Vec::new();

        loop {
            // Pop the next live event, silently discarding timers whose
            // wait already resolved (a cancelled timer never fires — it
            // neither advances virtual time nor enters the hash).
            // Machine state at pop time is deterministic, so the
            // discard decisions are too.
            let first = loop {
                match fabric.heap.pop() {
                    None => break None,
                    Some(ev) => {
                        let stale = match &ev.item {
                            Event::Frame(..) | Event::Arrival(..) | Event::Departure(..) => false,
                            Event::Deadline(round) => {
                                coordinator.is_collecting()
                                    || coordinator.is_done()
                                    || *round != coordinator.round_number()
                            }
                            Event::Rto(j, round, kind) => !machines[*j as usize]
                                .as_ref()
                                .expect("machine parked")
                                .rto_pending(*round, *kind),
                        };
                        if !stale {
                            break Some(ev);
                        }
                    }
                }
            };
            let Some(first) = first else {
                if hold {
                    // Defensive: the heap cannot normally dry up while
                    // arrivals or departures are pending, but if it
                    // does, release the hold so the run can terminate.
                    hold = false;
                    coordinator.set_hold(false);
                    coordinator.kick(&mut out);
                    if !out.is_empty() {
                        fabric.schedule(now, None, &mut out);
                        continue;
                    }
                }
                // In-flight traffic is exhausted. The shutdown cannot
                // reach crashed nodes: freeze their ledgers into the
                // final answer (their requests stay where they were when
                // the node went down). Under the oracle the missing set
                // is the latched down set; under in-protocol detection
                // it is whoever never answered the shutdown.
                if coordinator.is_collecting() {
                    let frozen: Vec<u32> = if use_oracle {
                        coordinator.down_now().to_vec()
                    } else {
                        coordinator.missing_ledgers()
                    };
                    for j in frozen {
                        let machine = machines[j as usize].as_ref().expect("machine parked");
                        let frame = Frame::FinalLedger {
                            from: j,
                            ledger: ledger_to_wire(machine.ledger()),
                        };
                        coordinator.handle(&frame, &mut out);
                        fabric.schedule(now, None, &mut out);
                    }
                }
                break;
            };
            now = first.due;
            clock.wait_until(now);
            if faulty && !use_oracle {
                // In-protocol detection takes raw crash physics: the
                // delivery gate follows the script's down set the
                // instant it changes, not at round boundaries — nobody
                // tells the protocol, which is the point.
                let phase = script.down_phase(now);
                if phase != down_phase {
                    down_phase = phase;
                    let phys = script.down_at(now);
                    let mut idx = 0usize;
                    for (j, flag) in down.iter_mut().enumerate() {
                        let now_down = phys.get(idx).is_some_and(|&d| d as usize == j);
                        if now_down {
                            idx += 1;
                        }
                        match (*flag, now_down) {
                            (false, true) => fabric.summary.crashes += 1,
                            (true, false) => fabric.summary.recoveries += 1,
                            _ => {}
                        }
                        *flag = now_down;
                    }
                }
            }
            // Classify the whole same-instant batch in (due, seq) order.
            let mut stream_batch = false;
            let mut next = Some(first);
            while let Some(event) = next {
                match event.item {
                    Event::Frame(dest, frame) => {
                        hash = hash_event(hash, event.due, dest, &frame);
                        match dest {
                            Dest::Node(j) => {
                                // Dead destination: one frame species per
                                // mode still lands — the instant the
                                // exchange became *decided*. Oracle: the
                                // Commit (the initiator applied on Accept).
                                // Detection: the CommitAck (the acceptor
                                // installed on Commit; the dead initiator
                                // applies its held-back half exactly as a
                                // recovery log would, so its frozen ledger
                                // matches the partner's installed one).
                                // Everything else is dropped, and under
                                // detection each dropped exchange frame
                                // arms the sender's abort timeout.
                                let spared = if use_oracle {
                                    matches!(*frame, Frame::Commit { .. })
                                } else {
                                    matches!(*frame, Frame::CommitAck { .. })
                                };
                                if faulty && down[j as usize] && !spared {
                                    fabric.summary.dropped_frames += 1;
                                    if fabric.tracer.enabled() {
                                        let (tag, from, round) = frame_identity(&frame);
                                        fabric.tracer.emit(&TraceEvent {
                                            kind: TraceKind::FrameDropped,
                                            at_ms: now,
                                            node: j,
                                            peer: frame_peer(tag, from),
                                            round,
                                            tag,
                                            detail: DROP_DEST_DOWN,
                                        });
                                    }
                                    if !use_oracle {
                                        fabric.arm_abort(now, &frame);
                                    }
                                } else {
                                    if fabric.tracer.enabled() {
                                        let (tag, from, round) = frame_identity(&frame);
                                        fabric.tracer.emit(&TraceEvent {
                                            kind: TraceKind::FrameDelivered,
                                            at_ms: now,
                                            node: j,
                                            peer: frame_peer(tag, from),
                                            round,
                                            tag,
                                            detail: 0.0,
                                        });
                                        // Exchange lifecycle markers ride
                                        // the frames that decide them.
                                        match &*frame {
                                            Frame::Propose { from, round } => {
                                                fabric.tracer.emit(&TraceEvent {
                                                    kind: TraceKind::ExchangePropose,
                                                    at_ms: now,
                                                    node: *from,
                                                    peer: j,
                                                    round: *round,
                                                    tag,
                                                    detail: 0.0,
                                                });
                                            }
                                            Frame::Commit { from, round, .. } => {
                                                fabric.tracer.emit(&TraceEvent {
                                                    kind: TraceKind::ExchangeCommit,
                                                    at_ms: now,
                                                    node: *from,
                                                    peer: j,
                                                    round: *round,
                                                    tag,
                                                    detail: 0.0,
                                                });
                                            }
                                            Frame::RoundStart {
                                                round, excluded, ..
                                            } if *round != obs_excl_round => {
                                                obs_excl_round = *round;
                                                for &e in excluded {
                                                    fabric.tracer.emit(&TraceEvent {
                                                        kind: TraceKind::DetectorExclude,
                                                        at_ms: now,
                                                        node: e,
                                                        peer: NODE_COORD,
                                                        round: *round,
                                                        tag,
                                                        detail: 0.0,
                                                    });
                                                }
                                            }
                                            _ => {}
                                        }
                                    }
                                    if run_queues[j as usize].is_empty() {
                                        touched.push(j);
                                    }
                                    run_queues[j as usize].push(Inbox::Frame(frame));
                                }
                            }
                            Dest::Coordinator => {
                                if fabric.tracer.enabled() {
                                    let (tag, from, round) = frame_identity(&frame);
                                    fabric.tracer.emit(&TraceEvent {
                                        kind: TraceKind::FrameDelivered,
                                        at_ms: now,
                                        node: NODE_COORD,
                                        peer: frame_peer(tag, from),
                                        round,
                                        tag,
                                        detail: 0.0,
                                    });
                                }
                                coord_items.push(CoordItem::Frame(frame));
                            }
                        }
                    }
                    Event::Deadline(round) => {
                        hash = hash_timer(hash, event.due, 16, u64::MAX, round);
                        if fabric.tracer.enabled() {
                            fabric.tracer.emit(&TraceEvent {
                                kind: TraceKind::TimerFired,
                                at_ms: now,
                                node: NODE_COORD,
                                peer: NO_PEER,
                                round,
                                tag: 16,
                                detail: 0.0,
                            });
                        }
                        coord_items.push(CoordItem::Deadline(round));
                    }
                    Event::Rto(j, round, kind) => {
                        hash = hash_timer(hash, event.due, 17, j as u64, round);
                        if fabric.tracer.enabled() {
                            fabric.tracer.emit(&TraceEvent {
                                kind: TraceKind::TimerFired,
                                at_ms: now,
                                node: j,
                                peer: NO_PEER,
                                round,
                                tag: 17,
                                detail: 0.0,
                            });
                        }
                        // A dead node's timer fires into the void; if it
                        // recovers later still mid-exchange, the drain
                        // freeze recovers its ledger.
                        if !(faulty && down[j as usize]) {
                            // Stale timers died at pop, so a live RTO
                            // reaching its machine aborts the exchange.
                            if fabric.tracer.enabled() {
                                fabric.tracer.emit(&TraceEvent {
                                    kind: TraceKind::ExchangeAbort,
                                    at_ms: now,
                                    node: j,
                                    peer: NO_PEER,
                                    round,
                                    tag: 17,
                                    detail: 0.0,
                                });
                            }
                            if run_queues[j as usize].is_empty() {
                                touched.push(j);
                            }
                            run_queues[j as usize].push(Inbox::Rto(round, kind));
                        }
                    }
                    Event::Arrival(idx) => {
                        hash = hash_timer(hash, event.due, 18, idx as u64, 0);
                        stream_batch = true;
                        let a = stream.arrivals()[idx as usize];
                        let org = a.org as usize;
                        // Route in proportion to how much of this
                        // organization's work each live server hosts —
                        // the relay fractions ρ_i· of the live,
                        // mid-rebalance assignment. All machines are
                        // present here: classification runs before the
                        // batch fan-out takes any of them.
                        let mut total = 0.0f64;
                        let weights: Vec<f64> = (0..m)
                            .map(|j| {
                                let machine = machines[j].as_ref().expect("machine present");
                                if (faulty && down[j]) || machine.is_done() {
                                    0.0
                                } else {
                                    let w = machine.ledger().get(a.org).max(0.0);
                                    total += w;
                                    w
                                }
                            })
                            .collect();
                        let target = if total > 0.0 {
                            // Inverse CDF over the hosting weights with
                            // the arrival's pre-drawn uniform; the last
                            // positive host absorbs any float slack.
                            let mut acc = 0.0f64;
                            let mut pick = None;
                            for (j, &w) in weights.iter().enumerate() {
                                if w <= 0.0 {
                                    continue;
                                }
                                acc += w;
                                pick = Some(j);
                                if a.route * total <= acc {
                                    break;
                                }
                            }
                            pick
                        } else {
                            // Nobody hosts this organization yet (its
                            // own load was zero): serve at home if the
                            // home server is alive.
                            let home = machines[org].as_ref().expect("machine present");
                            let dead = home.is_done() || (faulty && down[org]);
                            (!dead).then_some(org)
                        };
                        match target {
                            None => {
                                stream_dropped += 1;
                                if fabric.tracer.enabled() {
                                    fabric.tracer.emit(&TraceEvent {
                                        kind: TraceKind::StreamDrop,
                                        at_ms: now,
                                        node: a.org,
                                        peer: NO_PEER,
                                        round: 0,
                                        tag: 18,
                                        detail: 1.0,
                                    });
                                }
                            }
                            Some(j) => {
                                let machine = machines[j].as_mut().expect("machine present");
                                let backlog = machine.ledger().sum().max(0.0);
                                let s = shared.speed(j);
                                // Expected wait under random order plus
                                // own service — the model's per-request
                                // price, §II.
                                let wait = backlog / (2.0 * s) + 1.0 / s;
                                if machine.deposit(a.org, 1.0) {
                                    served += 1;
                                    outstanding += 1;
                                    sojourns.push((fabric.delays)(org, j) + wait);
                                    if fabric.tracer.enabled() {
                                        fabric.tracer.emit(&TraceEvent {
                                            kind: TraceKind::StreamArrival,
                                            at_ms: now,
                                            node: a.org,
                                            peer: j as u32,
                                            round: 0,
                                            tag: 18,
                                            detail: wait,
                                        });
                                    }
                                    fabric.heap.push(
                                        now + wait,
                                        Event::Departure(a.org, j as u32, 1.0, idx),
                                    );
                                } else {
                                    stream_dropped += 1;
                                    if fabric.tracer.enabled() {
                                        fabric.tracer.emit(&TraceEvent {
                                            kind: TraceKind::StreamDrop,
                                            at_ms: now,
                                            node: a.org,
                                            peer: j as u32,
                                            round: 0,
                                            tag: 18,
                                            detail: 1.0,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    Event::Departure(org, server, amount, idx) => {
                        hash = hash_timer(hash, event.due, 19, server as u64, idx as u64);
                        if fabric.tracer.enabled() {
                            let sojourn = now - stream.arrivals()[idx as usize].at_ms;
                            fabric.tracer.emit(&TraceEvent {
                                kind: TraceKind::StreamDeparture,
                                at_ms: now,
                                node: org,
                                peer: server,
                                round: 0,
                                tag: 19,
                                detail: sojourn,
                            });
                        }
                        stream_batch = true;
                        outstanding -= 1;
                        // The unit may have been rebalanced since it
                        // arrived: drain it from the live hosts
                        // carrying the most of this organization's
                        // work. A shortfall stays frozen on whatever
                        // crashed server still holds it.
                        let mut hosts: Vec<(f64, usize)> = (0..m)
                            .filter(|&j| !(faulty && down[j]))
                            .filter_map(|j| {
                                let machine = machines[j].as_ref().expect("machine present");
                                if machine.is_done() {
                                    return None;
                                }
                                let w = machine.ledger().get(org);
                                (w > 0.0).then_some((w, j))
                            })
                            .collect();
                        hosts.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
                        let mut remaining = amount;
                        for (w, j) in hosts {
                            if remaining <= 0.0 {
                                break;
                            }
                            let take = w.min(remaining);
                            machines[j]
                                .as_mut()
                                .expect("machine present")
                                .withdraw(org, take);
                            remaining -= take;
                        }
                    }
                }
                next = match fabric.heap.peek_due() {
                    Some(due) if due == now => fabric.heap.pop(),
                    _ => None,
                };
            }

            if stream_batch {
                // Piecewise time-in-imbalance: close the interval
                // opened at the previous sample under its observation,
                // then observe the live landscape anew. "Imbalanced"
                // means the worst live utilization `l_j / s_j` exceeds
                // twice the live mean.
                if was_imbalanced {
                    imbalance_ms += now - last_sample_ms;
                }
                last_sample_ms = now;
                let mut max_util = 0.0f64;
                let mut sum_util = 0.0f64;
                let mut live = 0u32;
                for (j, machine) in machines.iter().enumerate() {
                    if faulty && down[j] {
                        continue;
                    }
                    let machine = machine.as_ref().expect("machine present");
                    if machine.is_done() {
                        continue;
                    }
                    let util = machine.ledger().sum() / shared.speed(j);
                    max_util = max_util.max(util);
                    sum_util += util;
                    live += 1;
                }
                was_imbalanced =
                    live > 0 && sum_util > 0.0 && max_util > 2.0 * (sum_util / live as f64);
                // Fresh stream activity resumes a parked coordinator —
                // latching any crash phase the oracle would otherwise
                // only see on its control-plane path.
                if faulty && use_oracle {
                    let phase = script.down_phase(now);
                    if phase != down_phase {
                        down_phase = phase;
                        coordinator.set_down(script.down_at(now));
                    }
                }
                coordinator.kick(&mut out);
                fabric.schedule(now, None, &mut out);
                // The stream has fully drained: release the hold so the
                // normal quiescence shutdown can fire.
                if hold && outstanding == 0 && now >= last_arrival_ms {
                    hold = false;
                    coordinator.set_hold(false);
                }
            }

            // Fan the touched shards out over the worker pool. Each entry
            // owns its machine for the batch, so `handle` runs without
            // locks; order-preserving `par_map_mut` keeps the collected
            // emissions independent of the worker count.
            let work: Vec<(u32, NodeMachine, Vec<Inbox>)> = touched
                .drain(..)
                .map(|j| {
                    let machine = machines[j as usize].take().expect("machine present");
                    (j, machine, std::mem::take(&mut run_queues[j as usize]))
                })
                .collect();
            let (work, emissions) = pool.map_mut(work);
            let sources: Vec<u32> = work
                .into_iter()
                .map(|(j, machine, queue)| {
                    machines[j as usize] = Some(machine);
                    run_queues[j as usize] = queue; // return the allocation
                    j
                })
                .collect();
            for (src, mut outs) in sources.into_iter().zip(emissions) {
                if faulty && down[src as usize] {
                    // A crashed node sends nothing (it only ever hears a
                    // final Commit; see above).
                    fabric.summary.dropped_frames += outs.len() as u64;
                    if fabric.tracer.enabled() {
                        for o in &outs {
                            let (tag, from, round) = frame_identity(&o.frame);
                            fabric.tracer.emit(&TraceEvent {
                                kind: TraceKind::FrameDropped,
                                at_ms: now,
                                node: match o.to {
                                    Dest::Node(j) => j,
                                    Dest::Coordinator => NODE_COORD,
                                },
                                peer: frame_peer(tag, from),
                                round,
                                tag,
                                detail: DROP_SRC_DOWN,
                            });
                        }
                    }
                    continue;
                }
                fabric.schedule(now, Some(src as usize), &mut outs);
            }

            if faulty && use_oracle && !coord_items.is_empty() {
                // Feed the liveness oracle before any report can close the
                // round: a round beginning now latches the crashes due by
                // now. The set is constant within a phase, so only a
                // phase crossing rebuilds it.
                let phase = script.down_phase(now);
                if phase != down_phase {
                    down_phase = phase;
                    coordinator.set_down(script.down_at(now));
                }
            }
            for item in coord_items.drain(..) {
                match item {
                    CoordItem::Frame(frame) => coordinator.handle_at(&frame, now, &mut out),
                    CoordItem::Deadline(round) => coordinator.on_deadline(round, now, &mut out),
                }
                fabric.schedule(now, None, &mut out);
            }
            if fabric.tracer.enabled() && coordinator.round_number() != obs_round {
                fabric.tracer.emit(&TraceEvent {
                    kind: TraceKind::RoundEnd,
                    at_ms: now,
                    node: NODE_COORD,
                    peer: NO_PEER,
                    round: obs_round,
                    tag: 0,
                    detail: now - obs_round_start,
                });
                obs_round = coordinator.round_number();
                obs_round_start = now;
                fabric.tracer.emit(&TraceEvent {
                    kind: TraceKind::RoundBegin,
                    at_ms: now,
                    node: NODE_COORD,
                    peer: NO_PEER,
                    round: obs_round,
                    tag: 0,
                    detail: 0.0,
                });
            }
            if faulty && use_oracle && coordinator.round_number() != latched_round {
                latched_round = coordinator.round_number();
                // Rebuild the delivery gate from the fresh latch, counting
                // the transitions the run actually experienced: a crash
                // (or recovery) whose round never started is not an event
                // of this run.
                let latched = coordinator.down_now();
                let mut idx = 0usize;
                for (j, flag) in down.iter_mut().enumerate() {
                    let now_down = latched.get(idx).is_some_and(|&d| d as usize == j);
                    if now_down {
                        idx += 1;
                    }
                    match (*flag, now_down) {
                        (false, true) => fabric.summary.crashes += 1,
                        (true, false) => fabric.summary.recoveries += 1,
                        _ => {}
                    }
                    *flag = now_down;
                }
            }
            if !use_oracle {
                if coordinator.round_number() != armed_round {
                    // A fresh round needs a fresh report deadline; the
                    // previous round's timer (if still queued) dies at
                    // pop time.
                    armed_round = coordinator.round_number();
                    if let Some(due) = coordinator.arm_deadline(now) {
                        fabric.heap.push(due, Event::Deadline(armed_round));
                    }
                }
                // Measurement hook, invisible to the protocol: a node
                // newly suspected while the script says it is down is a
                // true positive, and its detection latency runs from the
                // scripted crash instant.
                let cur = coordinator.suspects_now();
                if cur != prev_suspects {
                    // Sorted symmetric diff: ids only in `cur` are fresh
                    // suspicions, ids only in `prev_suspects` rejoined
                    // (probation readmission or recovery).
                    let (mut ci, mut pi) = (0usize, 0usize);
                    while ci < cur.len() || pi < prev_suspects.len() {
                        let both = ci < cur.len()
                            && pi < prev_suspects.len()
                            && cur[ci] == prev_suspects[pi];
                        let fresh = pi >= prev_suspects.len()
                            || (ci < cur.len() && cur[ci] < prev_suspects[pi]);
                        if both {
                            ci += 1;
                            pi += 1;
                        } else if fresh {
                            let s = cur[ci];
                            let mut latency = 0.0f64;
                            if script.node_down(s as usize, now) {
                                latency = now - script.crash_time(s as usize);
                                tp_count += 1;
                                tp_latency_sum += latency;
                            }
                            if fabric.tracer.enabled() {
                                fabric.tracer.emit(&TraceEvent {
                                    kind: TraceKind::DetectorSuspect,
                                    at_ms: now,
                                    node: s,
                                    peer: NODE_COORD,
                                    round: coordinator.round_number(),
                                    tag: 0,
                                    detail: latency,
                                });
                            }
                            ci += 1;
                        } else {
                            if fabric.tracer.enabled() {
                                fabric.tracer.emit(&TraceEvent {
                                    kind: TraceKind::DetectorRejoin,
                                    at_ms: now,
                                    node: prev_suspects[pi],
                                    peer: NODE_COORD,
                                    round: coordinator.round_number(),
                                    tag: 0,
                                    detail: 0.0,
                                });
                            }
                            pi += 1;
                        }
                    }
                    prev_suspects = cur;
                }
            }
            if coordinator.is_done() {
                break;
            }
        }

        if fabric.tracer.enabled() {
            fabric.tracer.emit(&TraceEvent {
                kind: TraceKind::RoundEnd,
                at_ms: now,
                node: NODE_COORD,
                peer: NO_PEER,
                round: obs_round,
                tag: 0,
                detail: now - obs_round_start,
            });
        }
        let mut report = coordinator.into_report();
        report.virtual_ms = now;
        report.event_hash = hash;
        report.faults = fabric.summary;
        if tp_count > 0 {
            report.detector.detection_latency_ms = tp_latency_sum / tp_count as f64;
        }
        if streaming {
            if was_imbalanced {
                imbalance_ms += now - last_sample_ms;
            }
            sojourns.sort_by(|x, y| x.total_cmp(y));
            let pct = |q: f64| {
                if sojourns.is_empty() {
                    0.0
                } else {
                    sojourns[((sojourns.len() as f64 * q) as usize).min(sojourns.len() - 1)]
                }
            };
            report.stream = StreamSummary {
                served,
                dropped: stream_dropped,
                p50_ms: pct(0.50),
                p99_ms: pct(0.99),
                imbalance_ms,
            };
        }
        report
    }) // with_pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WallClock;
    use dlb_core::rngutil::rng_for;
    use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
    use dlb_core::LatencyMatrix;
    use dlb_distributed::{Engine, EngineOptions};
    use dlb_faults::FaultPlan;

    /// Half the instance's RTT as the one-way delay — the simplest
    /// honest delay model for tests that already carry a latency
    /// matrix.
    fn half_rtt(instance: &Instance) -> impl Fn(usize, usize) -> f64 + '_ {
        |i, j| instance.c(i, j) / 2.0
    }

    #[test]
    fn two_nodes_split_a_peak() {
        let mut instance = Instance::homogeneous(2, 1.0, 1.0, 0.0);
        instance.set_own_loads(vec![1000.0, 0.0]);
        let report = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        report.assignment.check_invariants(&instance).unwrap();
        // Lemma 1: optimal transfer is (l_0 − l_1 − c·s)/2 = 499.5.
        assert!((report.assignment.load(0) - 500.5).abs() < 1e-6);
        assert!((report.assignment.load(1) - 499.5).abs() < 1e-6);
        assert!(report.quiescent);
        assert!(report.virtual_ms > 0.0, "data frames paid link delay");
        assert!(report.faults.is_quiet(), "no script, no fault events");
    }

    #[test]
    fn matches_engine_fixpoint() {
        let mut rng = rng_for(3, 0xC1);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 80.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(12, 20.0), &mut rng);
        let report = run_cluster_events(
            &instance,
            &ClusterOptions::certified(12),
            half_rtt(&instance),
        );
        report.assignment.check_invariants(&instance).unwrap();
        let mut engine = Engine::new(
            instance.clone(),
            EngineOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let opt = engine.run_to_convergence(1e-12, 3, 300).final_cost;
        assert!(
            report.final_cost <= opt * 1.02,
            "events {} vs engine fixpoint {opt}",
            report.final_cost
        );
    }

    #[test]
    fn conservation_under_heavy_traffic() {
        let mut rng = rng_for(17, 0xC2);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Uniform,
            avg_load: 120.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(40, 5.0), &mut rng);
        let report = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        report.assignment.check_invariants(&instance).unwrap();
        for k in 0..40 {
            let total = report.assignment.owner_total(k);
            assert!(
                (total - instance.own_load(k)).abs() < 1e-6,
                "owner {k}: {total} != {}",
                instance.own_load(k)
            );
        }
    }

    #[test]
    fn history_is_exact_and_decreasing() {
        let mut rng = rng_for(5, 0xC3);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 60.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(8, 10.0), &mut rng);
        let report = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        let last = *report.history.last().unwrap();
        assert!(
            (last - report.final_cost).abs() <= 1e-6 * report.final_cost.max(1.0),
            "reported {last} vs exact {}",
            report.final_cost
        );
        for w in report.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9 * w[0].max(1.0), "cost rose");
        }
    }

    #[test]
    fn failed_nodes_take_no_part() {
        let mut instance = Instance::homogeneous(6, 1.0, 1.0, 0.0);
        instance.set_own_loads(vec![600.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let report = run_cluster_events(
            &instance,
            &ClusterOptions {
                failed: vec![4, 5],
                ..Default::default()
            },
            half_rtt(&instance),
        );
        report.assignment.check_invariants(&instance).unwrap();
        assert_eq!(report.assignment.load(4), 0.0);
        assert_eq!(report.assignment.load(5), 0.0);
        for j in 0..4 {
            assert!(report.assignment.load(j) > 100.0);
        }
    }

    #[test]
    fn single_node_cluster_is_trivial() {
        let instance = Instance::homogeneous(1, 1.0, 0.0, 50.0);
        let report = run_cluster_events(&instance, &ClusterOptions::default(), |_, _| 1.0);
        assert_eq!(report.exchanges, 0);
        assert!(report.quiescent);
        assert_eq!(report.assignment.load(0), 50.0);
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let mut rng = rng_for(9, 0xD1);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 70.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(16, 15.0), &mut rng);
        let a = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        let b = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        assert_eq!(a.event_hash, b.event_hash);
        assert_eq!(a.history, b.history);
        assert_eq!(a.virtual_ms, b.virtual_ms);
        assert_eq!(a.assignment.loads(), b.assignment.loads());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.exchanges, b.exchanges);
    }

    #[test]
    fn virtual_time_scales_with_link_delay() {
        let mut instance = Instance::homogeneous(4, 1.0, 1.0, 0.0);
        instance.set_own_loads(vec![400.0, 0.0, 0.0, 0.0]);
        let slow = run_cluster_events(&instance, &ClusterOptions::default(), |_, _| 50.0);
        let fast = run_cluster_events(&instance, &ClusterOptions::default(), |_, _| 5.0);
        assert!(
            slow.virtual_ms > fast.virtual_ms,
            "slow {} vs fast {}",
            slow.virtual_ms,
            fast.virtual_ms
        );
        // Same protocol, different pacing: identical outcome.
        assert_eq!(slow.history, fast.history);
        assert_eq!(slow.assignment.loads(), fast.assignment.loads());
    }

    #[test]
    fn wall_clock_replays_the_same_schedule() {
        let mut instance = Instance::homogeneous(3, 1.0, 1.0, 0.0);
        instance.set_own_loads(vec![300.0, 0.0, 0.0]);
        let virt = run_cluster_events(&instance, &ClusterOptions::default(), |_, _| 2.0);
        // 1000× fast-forward keeps the test quick while still going
        // through the sleeping path.
        let mut clock = WallClock::with_scale(0.001);
        let wall = run_cluster_events_with_clock(
            &instance,
            &ClusterOptions::default(),
            |_, _| 2.0,
            &FaultScript::empty(3),
            &mut clock,
        );
        assert_eq!(virt.event_hash, wall.event_hash);
        assert_eq!(virt.history, wall.history);
        assert_eq!(virt.assignment.loads(), wall.assignment.loads());
    }

    /// One crashed node: the survivors keep balancing, the victim's
    /// ledger freezes, and conservation holds exactly.
    #[test]
    fn crash_freezes_the_victim_and_survivors_converge() {
        let mut instance = Instance::homogeneous(8, 1.0, 0.0, 0.0);
        instance.set_own_loads(vec![800.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let script = FaultPlan::new().crash(0.25, 30.0).compile(5, 8);
        let victims = script.down_at(1e12);
        assert_eq!(victims.len(), 2);
        let report =
            run_cluster_events_faulted(&instance, &ClusterOptions::default(), |_, _| 5.0, &script);
        report.assignment.check_invariants(&instance).unwrap();
        for k in 0..8 {
            let total = report.assignment.owner_total(k);
            assert!(
                (total - instance.own_load(k)).abs() < 1e-6,
                "owner {k}: {total} != {}",
                instance.own_load(k)
            );
        }
        assert!(report.quiescent, "survivors must still quiesce");
        assert_eq!(report.faults.crashes, 2);
        assert_eq!(report.faults.recoveries, 0);
        // Crash latching works at round boundaries, so a pure crash
        // produces no in-flight drops: nothing is ever *sent* to a
        // node the round already knows is dead.
        // Survivors carry real load; the peak got spread among them.
        let live_loaded = (0..8u32)
            .filter(|j| !victims.contains(j))
            .filter(|&j| report.assignment.load(j as usize) > 50.0)
            .count();
        assert!(live_loaded >= 4, "survivors share the peak");
    }

    /// Loss and delay spikes stretch virtual time but cannot tear an
    /// exchange: the run still reaches a conservation-clean fixpoint.
    #[test]
    fn loss_and_spikes_delay_but_do_not_tear() {
        let mut rng = rng_for(23, 0xC4);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 90.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(12, 20.0), &mut rng);
        let clean = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        let script = FaultPlan::new()
            .loss(0.15)
            .spike(5.0, 0.0, 2_000.0)
            .compile(4, 12);
        let faulted = run_cluster_events_faulted(
            &instance,
            &ClusterOptions::default(),
            half_rtt(&instance),
            &script,
        );
        faulted.assignment.check_invariants(&instance).unwrap();
        assert!(
            faulted.virtual_ms > clean.virtual_ms,
            "faults must cost time: {} vs {}",
            faulted.virtual_ms,
            clean.virtual_ms
        );
        assert!(faulted.faults.delayed_frames > 0);
        assert!(faulted.faults.extra_delay_ms > 0.0);
        assert_eq!(faulted.faults.crashes, 0);
        assert!(faulted.quiescent);
    }

    /// A partition holds crossing frames until it heals; the run
    /// completes afterwards with clean conservation.
    #[test]
    fn partition_heals_and_the_run_completes() {
        let mut rng = rng_for(41, 0xC6);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 100.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(10, 10.0), &mut rng);
        let script = FaultPlan::new().partition(10.0, 400.0).compile(6, 10);
        let report = run_cluster_events_faulted(
            &instance,
            &ClusterOptions::default(),
            half_rtt(&instance),
            &script,
        );
        report.assignment.check_invariants(&instance).unwrap();
        assert!(report.quiescent);
        assert!(
            report.virtual_ms > 400.0,
            "crossing traffic waits for the heal: {}",
            report.virtual_ms
        );
    }

    /// Recovery: nodes that crash and come back rejoin the rounds and
    /// end up carrying load again.
    #[test]
    fn recovered_nodes_rejoin() {
        let mut rng = rng_for(48, 0xC7);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 100.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(8, 10.0), &mut rng);
        let script = FaultPlan::new().churn(0.5, 20.0, 120.0).compile(2, 8);
        let report = run_cluster_events_faulted(
            &instance,
            &ClusterOptions::default(),
            half_rtt(&instance),
            &script,
        );
        report.assignment.check_invariants(&instance).unwrap();
        assert!(report.quiescent);
        assert_eq!(report.faults.crashes, 4);
        assert_eq!(report.faults.recoveries, 4);
        // After recovery every node is a balancing citizen again:
        // every server ends up carrying real load.
        let loaded = (0..8).filter(|&j| report.assignment.load(j) > 10.0).count();
        assert!(loaded >= 7, "recovered nodes take load: {loaded}");
    }

    /// The no-faults parity the scenario layer relies on: an empty
    /// script is byte-identical to the fault-free entry point.
    #[test]
    fn empty_script_is_byte_identical_to_no_script() {
        let mut rng = rng_for(31, 0xC5);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 70.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(14, 15.0), &mut rng);
        let plain = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        let scripted = run_cluster_events_faulted(
            &instance,
            &ClusterOptions::default(),
            half_rtt(&instance),
            &FaultScript::empty(14),
        );
        assert_eq!(plain.event_hash, scripted.event_hash);
        assert_eq!(plain.history, scripted.history);
        assert_eq!(plain.virtual_ms, scripted.virtual_ms);
        assert_eq!(plain.assignment.loads(), scripted.assignment.loads());
        assert_eq!(plain.faults, scripted.faults);
    }

    /// Exact per-owner conservation: every request ends up on exactly
    /// one server, aborted or not.
    fn assert_conserved(report: &ClusterReport, instance: &Instance) {
        report.assignment.check_invariants(instance).unwrap();
        for k in 0..instance.len() {
            let total = report.assignment.owner_total(k);
            assert!(
                (total - instance.own_load(k)).abs() < 1e-6,
                "owner {k}: {total} != {}",
                instance.own_load(k)
            );
        }
    }

    /// In-protocol timeout detection: nobody feeds the oracle (the
    /// coordinator asserts if anyone tries), yet scripted crashes are
    /// suspected from pure silence, survivors converge, and
    /// conservation holds exactly.
    #[test]
    fn timeout_detection_finds_crashes_from_silence() {
        let mut instance = Instance::homogeneous(8, 1.0, 0.0, 0.0);
        instance.set_own_loads(vec![800.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let script = FaultPlan::new().crash(0.25, 30.0).compile(5, 8);
        assert_eq!(script.down_at(1e12).len(), 2);
        let options = ClusterOptions {
            detect: DetectMode::Timeout(250.0),
            exchange_rto_ms: 400.0,
            ..Default::default()
        };
        let report = run_cluster_events_faulted(&instance, &options, |_, _| 5.0, &script);
        assert_conserved(&report, &instance);
        assert!(report.quiescent, "survivors must still quiesce");
        assert!(
            report.detector.suspicions >= 2,
            "both crashes suspected: {:?}",
            report.detector
        );
        assert!(
            report.detector.detection_latency_ms > 0.0
                && report.detector.detection_latency_ms <= 300.0,
            "silence noticed within a deadline: {:?}",
            report.detector
        );
        assert_eq!(report.faults.crashes, 2);
    }

    /// A straggler is slow, not dead: an over-aggressive fixed timeout
    /// wrongly suspects it, the probation path readmits it, its
    /// exclusion time is recorded, and not a single unit of load is
    /// lost across the wrongful exclusion.
    #[test]
    fn wrongly_suspected_straggler_rejoins_with_exact_conservation() {
        let mut rng = rng_for(84, 0xD5);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 90.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(12, 20.0), &mut rng);
        // A healthy exchange chain is ~4 link hops (40 ms); the 60 ms
        // deadline clears it, but a straggler's 5× outbound legs
        // overrun it — suspected, yet very much alive.
        let script = FaultPlan::new().slow(0.25, 5.0).compile(9, 12);
        assert!(script.straggler_count() > 0);
        let options = ClusterOptions {
            detect: DetectMode::Timeout(60.0),
            // Generous exchange RTO: partners must wait stragglers
            // out, only the coordinator gets impatient.
            exchange_rto_ms: 20_000.0,
            ..Default::default()
        };
        let report = run_cluster_events_faulted(&instance, &options, |_, _| 10.0, &script);
        assert_conserved(&report, &instance);
        assert!(report.quiescent);
        assert!(
            report.detector.false_positives > 0,
            "the tight timeout must fire on a straggler: {:?}",
            report.detector
        );
        assert!(report.detector.rejoin_ms > 0.0);
        assert!(report.detector.suspicions >= report.detector.false_positives);
        assert_eq!(report.faults.crashes, 0, "nobody actually died");
    }

    /// Adaptive detection learns the stragglers' latency instead of
    /// suspecting them forever: same workload and script as the tight
    /// fixed timeout, strictly fewer false positives.
    #[test]
    fn adaptive_detection_tolerates_stragglers() {
        let mut rng = rng_for(84, 0xD5);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 90.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(12, 20.0), &mut rng);
        let script = FaultPlan::new().slow(0.25, 5.0).compile(9, 12);
        let run = |detect: DetectMode| {
            let options = ClusterOptions {
                detect,
                exchange_rto_ms: 20_000.0,
                ..Default::default()
            };
            run_cluster_events_faulted(&instance, &options, |_, _| 10.0, &script)
        };
        let fixed = run(DetectMode::Timeout(60.0));
        let adaptive = run(DetectMode::Adaptive);
        assert_conserved(&adaptive, &instance);
        assert!(adaptive.quiescent);
        assert!(
            adaptive.detector.false_positives < fixed.detector.false_positives,
            "adaptive {:?} must beat fixed {:?} on false positives",
            adaptive.detector,
            fixed.detector
        );
    }

    /// Crashes and stragglers together, adaptive detection: the dead
    /// are detected, the slow survive, conservation is exact — the
    /// acceptance-drill scenario at test scale.
    #[test]
    fn adaptive_detection_under_crash_and_slow() {
        let mut rng = rng_for(77, 0xD7);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 90.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(12, 10.0), &mut rng);
        let script = FaultPlan::new()
            .crash(0.2, 120.0)
            .slow(0.2, 4.0)
            .compile(13, 12);
        let options = ClusterOptions {
            detect: DetectMode::Adaptive,
            exchange_rto_ms: 2_000.0,
            ..Default::default()
        };
        let report = run_cluster_events_faulted(&instance, &options, half_rtt(&instance), &script);
        assert_conserved(&report, &instance);
        assert!(report.quiescent);
        assert!(report.detector.suspicions > 0);
        assert!(report.faults.crashes > 0);
    }

    /// One detect-mode run, twice: every observable — event hash,
    /// history, detector counters — is bit-identical. The worker-count
    /// sweep lives in the scenario determinism tests; this pins the
    /// single-process replay.
    #[test]
    fn detect_runs_are_bit_identical_across_repeats() {
        let mut rng = rng_for(51, 0xD9);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 70.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(10, 10.0), &mut rng);
        let script = FaultPlan::new()
            .crash(0.2, 80.0)
            .slow(0.3, 8.0)
            .compile(3, 10);
        let options = ClusterOptions {
            detect: DetectMode::Adaptive,
            exchange_rto_ms: 1_500.0,
            ..Default::default()
        };
        let a = run_cluster_events_faulted(&instance, &options, half_rtt(&instance), &script);
        let b = run_cluster_events_faulted(&instance, &options, half_rtt(&instance), &script);
        assert_eq!(a.event_hash, b.event_hash);
        assert_eq!(a.history, b.history);
        assert_eq!(a.virtual_ms, b.virtual_ms);
        assert_eq!(a.assignment.loads(), b.assignment.loads());
        assert_eq!(a.detector, b.detector);
        assert_eq!(a.faults, b.faults);
    }

    /// The no-stream parity the scenario layer relies on: an empty
    /// stream script is byte-identical to the unstreamed entry point,
    /// and its summary stays quiet.
    #[test]
    fn empty_stream_is_byte_identical_to_unstreamed() {
        let mut rng = rng_for(12, 0xE1);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 70.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(10, 12.0), &mut rng);
        let plain = run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        let streamed = run_cluster_events_streamed(
            &instance,
            &ClusterOptions::default(),
            half_rtt(&instance),
            &FaultScript::empty(10),
            &StreamScript::empty(),
        );
        assert_eq!(plain.event_hash, streamed.event_hash);
        assert_eq!(plain.history, streamed.history);
        assert_eq!(plain.virtual_ms, streamed.virtual_ms);
        assert_eq!(plain.assignment.loads(), streamed.assignment.loads());
        assert!(streamed.stream.is_quiet());
    }

    /// A live Poisson stream is served end to end: every arrival is
    /// either served or dropped, latency percentiles are finite, and
    /// the run outlives the last arrival before quiescing.
    #[test]
    fn streamed_arrivals_are_served_with_finite_latency() {
        use dlb_requestsim::stream::ArrivalPlan;
        let mut rng = rng_for(7, 0xE2);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 60.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(8, 8.0), &mut rng);
        let stream = ArrivalPlan::new()
            .poisson(300.0)
            .compile(3, 1_000.0, instance.own_loads());
        assert!(!stream.is_empty());
        let report = run_cluster_events_streamed(
            &instance,
            &ClusterOptions::default(),
            half_rtt(&instance),
            &FaultScript::empty(8),
            &stream,
        );
        let s = report.stream;
        assert_eq!(s.served + s.dropped, stream.len() as u64);
        assert!(s.served > 0, "no faults: requests get served: {s:?}");
        assert_eq!(s.dropped, 0, "no faults: nothing drops: {s:?}");
        assert!(s.p50_ms.is_finite() && s.p50_ms > 0.0, "{s:?}");
        assert!(s.p99_ms.is_finite() && s.p99_ms >= s.p50_ms, "{s:?}");
        assert!(s.imbalance_ms.is_finite() && s.imbalance_ms >= 0.0);
        let last = stream.arrivals().last().unwrap().at_ms;
        assert!(
            report.virtual_ms >= last,
            "run must outlive the stream: {} < {last}",
            report.virtual_ms
        );
        assert!(report.quiescent, "hold released, protocol quiesced");
    }

    /// Streamed runs replay bit-identically: same schedule, same
    /// summary, same event hash.
    #[test]
    fn streamed_runs_are_bit_identical() {
        use dlb_requestsim::stream::ArrivalPlan;
        let mut rng = rng_for(19, 0xE3);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Uniform,
            avg_load: 50.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(6, 10.0), &mut rng);
        let stream = ArrivalPlan::new()
            .poisson(150.0)
            .burst(300.0, 200.0, 400.0)
            .compile(11, 800.0, instance.own_loads());
        let run = || {
            run_cluster_events_streamed(
                &instance,
                &ClusterOptions::default(),
                half_rtt(&instance),
                &FaultScript::empty(6),
                &stream,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.event_hash, b.event_hash);
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.history, b.history);
        assert_eq!(a.virtual_ms, b.virtual_ms);
        assert_eq!(a.assignment.loads(), b.assignment.loads());
    }

    /// A crash mid-stream: arrivals whose organization's work is
    /// frozen on the dead server are counted as dropped, the rest keep
    /// being served, and the run still terminates.
    #[test]
    fn crash_mid_stream_drops_the_victims_requests() {
        use dlb_requestsim::stream::ArrivalPlan;
        // Homogeneous loads: no exchanges move work, so each org is
        // hosted exactly at home and a crash strands its stream.
        let instance = Instance::homogeneous(8, 1.0, 0.0, 50.0);
        let script = FaultPlan::new().crash(0.25, 100.0).compile(5, 8);
        assert_eq!(script.down_at(1e12).len(), 2);
        let stream = ArrivalPlan::new()
            .poisson(200.0)
            .compile(9, 600.0, instance.own_loads());
        let report = run_cluster_events_streamed(
            &instance,
            &ClusterOptions::default(),
            |_, _| 5.0,
            &script,
            &stream,
        );
        let s = report.stream;
        assert_eq!(s.served + s.dropped, stream.len() as u64);
        assert!(s.served > 0, "survivors keep serving: {s:?}");
        assert!(s.dropped > 0, "victims' requests strand: {s:?}");
        assert_eq!(report.faults.crashes, 2);
    }

    /// Two-phase exchanges under the oracle-free happy path reach the
    /// same fixpoint as the classic single-phase protocol — the extra
    /// ack round-trip costs time, not quality.
    #[test]
    fn two_phase_reaches_the_single_phase_fixpoint() {
        let mut rng = rng_for(62, 0xDA);
        let instance = WorkloadSpec {
            loads: LoadDistribution::Exponential,
            avg_load: 80.0,
            speeds: SpeedDistribution::paper_uniform(),
        }
        .sample(LatencyMatrix::homogeneous(9, 12.0), &mut rng);
        let classic =
            run_cluster_events(&instance, &ClusterOptions::default(), half_rtt(&instance));
        let detect = run_cluster_events(
            &instance,
            &ClusterOptions {
                detect: DetectMode::Timeout(5_000.0),
                ..Default::default()
            },
            half_rtt(&instance),
        );
        assert_conserved(&detect, &instance);
        assert!(detect.quiescent);
        let err: f64 = (detect.final_cost - classic.final_cost).abs();
        assert!(
            err < 1e-6 * classic.final_cost.max(1.0),
            "two-phase fixpoint drifted: {} vs {}",
            detect.final_cost,
            classic.final_cost
        );
        assert!(
            detect.virtual_ms > classic.virtual_ms,
            "the ack leg costs virtual time"
        );
    }
}
