//! The per-server actor of the message-passing runtime.
//!
//! Each node is an event loop over a single inbox. Per round it plays
//! two roles at once:
//!
//! * **initiator** — ranks partners by the closed-form score of
//!   [`dlb_distributed::mine::partner_score`] (computable from purely
//!   local knowledge: the gossiped load vector and the node's own
//!   latency column, the paper's §IV input model), proposes to the
//!   best-scoring candidate and, on acceptance, runs Algorithm 1 on
//!   the two real ledgers;
//! * **acceptor** — answers a proposal with its serialized ledger when
//!   it is not already committed to an exchange, and installs the
//!   committed result.
//!
//! The pairing discipline matches the analytic engine's `pair_once`
//! semantics: at most one *completed* exchange per node per round. A
//! node whose own proposal is rejected stays available as an acceptor
//! for the rest of the round, exactly like a free server in the
//! engine.
//!
//! **Audit probing.** The closed-form score sees only loads, so it is
//! blind to *relabelings* — states where loads are balanced but
//! requests sit on needlessly distant servers (e.g. two servers each
//! hosting the other's requests). When no partner clears the score
//! floor and auditing is enabled, the node instead probes one peer in
//! a deterministic rotation; the probe runs full Algorithm 1 on the
//! real ledgers, so every pair is re-examined at least once every
//! `m − 1` quiet rounds and the quiescent state is genuinely pairwise
//! optimal (Lemma 2) — which, by convexity, is the global optimum.
//!
//! A **proposal collision** (both endpoints of a pair propose to each
//! other in the same round) is broken by index: the lower-id node
//! yields its initiator role and answers as an acceptor; the higher-id
//! node ignores the incoming proposal, because the yielding side's
//! acceptance is already on the wire.
//!
//! **Report discipline**: every node sends exactly one
//! [`Frame::Report`] per round — `NoProposal` straight after
//! `RoundStart`, `Exchanged`/`Lost` when its proposal resolves, or
//! `Accepted` after a collision-yield commit. A node that accepts a
//! foreign proposal *after* reporting does not report again; the
//! initiator's `Exchanged` report already carries the node's new load
//! and cost term.

use crossbeam::channel::{Receiver, Sender};
use dlb_core::{Instance, SparseVec};
use dlb_distributed::mine::partner_score;
use dlb_distributed::transfer::calc_best_transfer;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::message::{ledger_to_wire, wire_to_ledger, Frame, RoundOutcome};

/// Outbound links of a node: one sender per peer plus the control link
/// to the coordinator.
pub struct NodeLinks {
    /// `peers[j]` delivers to node `j`'s inbox (index `id` is unused).
    pub peers: Vec<Sender<Frame>>,
    /// Control-plane link to the coordinator.
    pub coordinator: Sender<Frame>,
}

/// Static per-node configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Probe a rotating peer with full Algorithm 1 when no partner
    /// clears the score floor (see the module docs).
    pub audit: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self { audit: true }
    }
}

/// Exchange-lock state within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lock {
    /// May accept proposals.
    Free,
    /// Accepted a proposal from the given initiator; its commit is in
    /// flight. Round boundaries must wait for it.
    AwaitingCommit(u32),
    /// Completed an exchange this round; rejects further proposals.
    Locked,
}

/// Minimum closed-form score below which a node does not propose on
/// score grounds (same role as the engine's `min_improvement` floor).
const SCORE_FLOOR: f64 = 1e-9;

/// The node's local contribution to `ΣC`:
/// `Σ_k r_k,id · (l_id / 2 s_id + c_k,id)`.
fn local_cost(id: u32, instance: &Instance, ledger: &SparseVec) -> f64 {
    let load = ledger.sum();
    let congestion_per_request = load / (2.0 * instance.speed(id as usize));
    ledger
        .iter()
        .map(|(k, r)| r * (congestion_per_request + instance.c(k as usize, id as usize)))
        .sum()
}

/// Runs one node until shutdown. `id` is the node index, `ledger` its
/// initial request ledger (usually all-local). The instance is shared
/// read-only configuration: every organization knows the static speeds
/// and its own latency column.
pub fn run_node(
    id: u32,
    instance: Arc<Instance>,
    mut ledger: SparseVec,
    config: NodeConfig,
    inbox: Receiver<Frame>,
    links: NodeLinks,
) {
    // 0 = "no round joined yet"; real rounds are 1-based (see the
    // coordinator). A proposal overtaking our first RoundStart thus
    // satisfies `r > round` and waits in the early queue instead of
    // being served with boot state and corrupting the report count.
    let mut round = 0u64;
    let mut lock = Lock::Free;
    // In-flight proposal target, if any.
    let mut proposal: Option<u32> = None;
    // Whether this round's report has been filed.
    let mut reported = false;
    // Re-queued frames (processed before reading the inbox).
    let mut pending: VecDeque<Frame> = VecDeque::new();
    // Proposals from a round we have not reached yet.
    let mut early_proposals: VecDeque<Frame> = VecDeque::new();

    loop {
        let frame = match pending.pop_front() {
            Some(f) => f,
            None => match inbox.recv() {
                Ok(f) => f,
                Err(_) => return, // coordinator hung up
            },
        };
        match frame {
            Frame::Shutdown => {
                let _ = links.coordinator.send(Frame::FinalLedger {
                    from: id,
                    ledger: ledger_to_wire(&ledger),
                });
                return;
            }
            Frame::RoundStart {
                round: r,
                loads,
                excluded,
            } => {
                // A commit for the previous round may still be in
                // flight (the initiator reports to the coordinator
                // before our Commit arrives). Finish it first.
                if matches!(lock, Lock::AwaitingCommit(_)) {
                    pending.push_back(Frame::RoundStart {
                        round: r,
                        loads,
                        excluded,
                    });
                    match inbox.recv() {
                        Ok(f) => pending.push_front(f),
                        Err(_) => return,
                    }
                    continue;
                }
                round = r;
                lock = Lock::Free;
                proposal = None;
                reported = false;
                // Serve proposals that arrived before our RoundStart.
                while let Some(p) = early_proposals.pop_front() {
                    pending.push_back(p);
                }
                if excluded.contains(&id) {
                    lock = Lock::Locked; // takes no part this round
                    reported = true;
                    let _ = links.coordinator.send(Frame::Report {
                        from: id,
                        round,
                        outcome: RoundOutcome::NoProposal,
                        load: ledger.sum(),
                        local_cost: local_cost(id, &instance, &ledger),
                        exchange: None,
                    });
                    continue;
                }
                let target = choose_target(id, &instance, &loads, &excluded).or_else(|| {
                    if config.audit {
                        audit_target(id, instance.len(), round, &excluded)
                    } else {
                        None
                    }
                });
                match target {
                    Some(j) => {
                        proposal = Some(j);
                        let _ = links.peers[j as usize].send(Frame::Propose { from: id, round });
                    }
                    None => {
                        reported = true;
                        let _ = links.coordinator.send(Frame::Report {
                            from: id,
                            round,
                            outcome: RoundOutcome::NoProposal,
                            load: ledger.sum(),
                            local_cost: local_cost(id, &instance, &ledger),
                            exchange: None,
                        });
                    }
                }
            }
            Frame::Propose { from, round: r } => {
                if r > round {
                    // Proposer is ahead of us; answer after our
                    // RoundStart arrives.
                    early_proposals.push_back(Frame::Propose { from, round: r });
                    continue;
                }
                if r < round {
                    // Defensive: by the report discipline a proposal
                    // cannot outlive its round, but a NACK is always
                    // safe.
                    let _ = links.peers[from as usize].send(Frame::Busy { from: id, round: r });
                    continue;
                }
                if lock != Lock::Free {
                    let _ = links.peers[from as usize].send(Frame::Busy { from: id, round });
                    continue;
                }
                match proposal {
                    // Collision with our own proposal to the same peer.
                    Some(j) if j == from => {
                        if id < from {
                            // Yield: become the acceptor; our own
                            // proposal will be ignored by the peer.
                            proposal = None;
                            lock = Lock::AwaitingCommit(from);
                            let _ = links.peers[from as usize].send(Frame::Accept {
                                from: id,
                                round,
                                ledger: ledger_to_wire(&ledger),
                            });
                        }
                        // Higher id: ignore — the peer's Accept is
                        // already on the wire.
                    }
                    // Waiting on a different peer: cannot promise our
                    // ledger to two exchanges at once.
                    Some(_) => {
                        let _ = links.peers[from as usize].send(Frame::Busy { from: id, round });
                    }
                    // Free (never proposed, or proposal already
                    // resolved without an exchange): accept.
                    None => {
                        lock = Lock::AwaitingCommit(from);
                        let _ = links.peers[from as usize].send(Frame::Accept {
                            from: id,
                            round,
                            ledger: ledger_to_wire(&ledger),
                        });
                    }
                }
            }
            Frame::Accept {
                from,
                round: r,
                ledger: their_wire,
            } => {
                if r != round || proposal != Some(from) {
                    continue; // stale acceptance; ignore
                }
                let theirs = wire_to_ledger(&their_wire);
                let outcome =
                    calc_best_transfer(&instance, &ledger, &theirs, id as usize, from as usize);
                ledger = outcome.ledger_i;
                let partner_ledger = outcome.ledger_j;
                let partner_load = partner_ledger.sum();
                let partner_cost = local_cost(from, &instance, &partner_ledger);
                let _ = links.peers[from as usize].send(Frame::Commit {
                    from: id,
                    round,
                    ledger: ledger_to_wire(&partner_ledger),
                });
                proposal = None;
                lock = Lock::Locked;
                reported = true;
                let _ = links.coordinator.send(Frame::Report {
                    from: id,
                    round,
                    outcome: RoundOutcome::Exchanged,
                    load: ledger.sum(),
                    local_cost: local_cost(id, &instance, &ledger),
                    exchange: Some((from, partner_load, partner_cost, outcome.moved)),
                });
            }
            Frame::Busy { from, round: r } => {
                if r != round || proposal != Some(from) {
                    continue;
                }
                proposal = None;
                // Stay Free: we may still serve someone else's
                // proposal this round.
                reported = true;
                let _ = links.coordinator.send(Frame::Report {
                    from: id,
                    round,
                    outcome: RoundOutcome::Lost,
                    load: ledger.sum(),
                    local_cost: local_cost(id, &instance, &ledger),
                    exchange: None,
                });
            }
            Frame::Commit {
                from,
                round: r,
                ledger: new_wire,
            } => {
                if r != round || lock != Lock::AwaitingCommit(from) {
                    continue;
                }
                ledger = wire_to_ledger(&new_wire);
                lock = Lock::Locked;
                if !reported {
                    // Collision-yield path: our initiator role ended
                    // in an acceptance; close the round's report.
                    reported = true;
                    let _ = links.coordinator.send(Frame::Report {
                        from: id,
                        round,
                        outcome: RoundOutcome::Accepted,
                        load: ledger.sum(),
                        local_cost: local_cost(id, &instance, &ledger),
                        exchange: None,
                    });
                }
            }
            Frame::Report { .. } | Frame::FinalLedger { .. } => {
                // Control-plane frames never reach node inboxes.
                debug_assert!(false, "node {id} received a coordinator frame");
            }
        }
    }
}

/// Picks the proposal target: the peer with the best closed-form
/// pairwise score computed from the gossiped loads — everything a real
/// organization knows locally. Returns `None` when no peer clears the
/// floor.
fn choose_target(id: u32, instance: &Instance, loads: &[f64], excluded: &[u32]) -> Option<u32> {
    let m = instance.len();
    let mut best: Option<(u32, f64)> = None;
    for j in 0..m as u32 {
        if j == id || excluded.contains(&j) {
            continue;
        }
        let score = partner_score(instance, loads, id as usize, j as usize);
        match best {
            Some((_, b)) if score <= b => {}
            _ => best = Some((j, score)),
        }
    }
    best.filter(|&(_, s)| s > SCORE_FLOOR).map(|(j, _)| j)
}

/// Deterministic audit rotation: visits every live peer once per
/// `m − 1` rounds.
fn audit_target(id: u32, m: usize, round: u64, excluded: &[u32]) -> Option<u32> {
    let candidates: Vec<u32> = (0..m as u32)
        .filter(|&j| j != id && !excluded.contains(&j))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[(round as usize) % candidates.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_target_prefers_imbalanced_peer() {
        let instance = Instance::homogeneous(3, 1.0, 1.0, 0.0);
        // Node 0 idle; node 1 heavily loaded; node 2 idle.
        let loads = vec![0.0, 300.0, 0.0];
        assert_eq!(choose_target(0, &instance, &loads, &[]), Some(1));
        assert_eq!(choose_target(2, &instance, &loads, &[]), Some(1));
    }

    #[test]
    fn choose_target_respects_exclusions() {
        let instance = Instance::homogeneous(3, 1.0, 1.0, 0.0);
        let loads = vec![0.0, 300.0, 100.0];
        assert_eq!(choose_target(0, &instance, &loads, &[1]), Some(2));
    }

    #[test]
    fn choose_target_none_when_balanced() {
        let instance = Instance::homogeneous(4, 1.0, 10.0, 0.0);
        let loads = vec![50.0; 4];
        assert_eq!(choose_target(0, &instance, &loads, &[]), None);
    }

    #[test]
    fn audit_rotation_covers_all_peers() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..3u64 {
            seen.insert(audit_target(1, 4, round, &[]).unwrap());
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn audit_rotation_skips_excluded_and_handles_empty() {
        for round in 0..10u64 {
            let t = audit_target(0, 3, round, &[2]).unwrap();
            assert_eq!(t, 1);
        }
        assert_eq!(audit_target(0, 1, 0, &[]), None);
    }

    #[test]
    fn local_cost_matches_definition() {
        let instance = Instance::homogeneous(2, 2.0, 5.0, 0.0);
        let mut ledger = SparseVec::new();
        ledger.set(0, 6.0); // own requests: no latency
        ledger.set(1, 4.0); // foreign: latency 5
                            // load 10, speed 2 → congestion/request 2.5
                            // cost = 6·2.5 + 4·(2.5 + 5) = 15 + 30 = 45
        let c = local_cost(0, &instance, &ledger);
        assert!((c - 45.0).abs() < 1e-12, "got {c}");
    }
}
