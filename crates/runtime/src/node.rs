//! The per-server actor of the thread runtime.
//!
//! All protocol behavior lives in [`NodeMachine`](crate::machine) —
//! this module only supplies the *thread-shaped driver*: a blocking
//! loop that feeds the machine one frame at a time from its channel
//! inbox and routes its emissions over the channel mesh. The event
//! executor ([`crate::executor`]) drives the very same machine from a
//! virtual-time heap instead; keeping this wrapper thin is what
//! guarantees the two runtimes can only differ in frame *timing*,
//! never in protocol behavior.

use crossbeam::channel::{Receiver, Sender};
use dlb_core::{Instance, SparseVec};
use std::sync::Arc;

use crate::machine::{Dest, NodeMachine, Outbound};
use crate::message::Frame;

pub use crate::machine::NodeConfig;

/// Outbound links of a node: one sender per peer plus the control link
/// to the coordinator.
pub struct NodeLinks {
    /// `peers[j]` delivers to node `j`'s inbox (index `id` is unused).
    pub peers: Vec<Sender<Frame>>,
    /// Control-plane link to the coordinator.
    pub coordinator: Sender<Frame>,
}

/// Runs one node until shutdown. `id` is the node index, `ledger` its
/// initial request ledger (usually all-local). The instance is shared
/// read-only configuration: every organization knows the static speeds
/// and its own latency column.
pub fn run_node(
    id: u32,
    instance: Arc<Instance>,
    ledger: SparseVec,
    config: NodeConfig,
    inbox: Receiver<Frame>,
    links: NodeLinks,
) {
    let mut machine = NodeMachine::new(id, instance, ledger, config);
    let mut out: Vec<Outbound> = Vec::new();
    // recv errors mean the coordinator hung up.
    while let Ok(frame) = inbox.recv() {
        machine.handle(&frame, &mut out);
        for o in out.drain(..) {
            // The machine wraps frames in `Arc` so the executor can
            // broadcast without copying; here each frame has a single
            // recipient, so unwrapping moves it onto the wire for free.
            let frame = Arc::try_unwrap(o.frame).unwrap_or_else(|a| (*a).clone());
            let _ = match o.to {
                Dest::Node(j) => links.peers[j as usize].send(frame),
                Dest::Coordinator => links.coordinator.send(frame),
            };
        }
        if machine.is_done() {
            return;
        }
    }
}
