//! `dlb` — run the paper's systems from a shell.
//!
//! ```text
//! dlb optimize  --servers 50 --network pl --load exp --avg 50
//! dlb nash      --servers 24 --avg 50 --latency 20 --speeds const
//! dlb protocol  --servers 16 --avg 80
//! dlb estimate  --servers 40 --ticks 50
//! ```
//!
//! Every command samples a §VI-A instance (deterministic per
//! `--seed`), runs the relevant system and prints a compact report.
//! The full experiment grids live in `cargo bench -p dlb-bench`.

mod args;

use args::{ArgError, Args};
use dlb_coords::{Estimator, EstimatorConfig};
use dlb_core::cost::total_cost;
use dlb_core::rngutil::rng_for;
use dlb_core::workload::{LoadDistribution, SpeedDistribution, WorkloadSpec};
use dlb_core::{Assignment, Instance, LatencyMatrix};
use dlb_distributed::{Engine, EngineOptions};
use dlb_game::{run_best_response_dynamics, theorem1_bounds, DynamicsOptions};
use dlb_runtime::{run_cluster, ClusterOptions};
use dlb_solver::{objective, solve_bcd};
use dlb_topology::PlanetLabConfig;
use std::process::ExitCode;

const USAGE: &str = "\
dlb — network delay-aware load balancing (Skowron & Rzadca, IPDPS'13)

commands:
  optimize   run the distributed engine to its fixpoint
  nash       run selfish best-response dynamics; report the cost of selfishness
  protocol   run the message-passing cluster (threads + wire frames)
  estimate   run Vivaldi latency estimation against a synthetic network
  help       show this text

common options:
  --servers N     number of organizations            [default 20]
  --network K     homog | pl                         [default homog]
  --latency C     homogeneous latency in ms          [default 20]
  --load D        uniform | exp | peak               [default exp]
  --avg L         average initial load               [default 50]
  --speeds S      uniform | const                    [default uniform]
  --seed N        RNG seed                           [default 1]

optimize/protocol options:
  --max-iters N   iteration/round budget             [default 200]
estimate options:
  --ticks N       estimation ticks                   [default 50]
  --probes N      probes per node per tick           [default 4]
";

fn instance_from(args: &Args) -> Result<Instance, ArgError> {
    let m = args.get_usize("servers", 20)?;
    if m == 0 {
        return Err(ArgError("--servers must be at least 1".into()));
    }
    let seed = args.get_u64("seed", 1)?;
    let network = args.get_choice("network", &["homog", "pl"], "homog")?;
    let c = args.get_f64("latency", 20.0)?;
    let latency = match network.as_str() {
        "pl" => PlanetLabConfig::default().generate(m, seed),
        _ => LatencyMatrix::homogeneous(m, c),
    };
    let load = args.get_choice("load", &["uniform", "exp", "peak"], "exp")?;
    let loads = match load.as_str() {
        "uniform" => LoadDistribution::Uniform,
        "peak" => LoadDistribution::Peak,
        _ => LoadDistribution::Exponential,
    };
    let avg = args.get_f64("avg", 50.0)?;
    let speeds = match args
        .get_choice("speeds", &["uniform", "const"], "uniform")?
        .as_str()
    {
        "const" => SpeedDistribution::Constant(1.0),
        _ => SpeedDistribution::paper_uniform(),
    };
    let mut rng = rng_for(seed, 0xC11);
    Ok(WorkloadSpec {
        loads,
        avg_load: avg,
        speeds,
    }
    .sample(latency, &mut rng))
}

fn cmd_optimize(args: &Args) -> Result<(), ArgError> {
    let instance = instance_from(args)?;
    let max_iters = args.get_usize("max-iters", 200)?;
    let seed = args.get_u64("seed", 1)?;
    let mut engine = Engine::new(
        instance.clone(),
        EngineOptions {
            seed,
            ..Default::default()
        },
    );
    let report = engine.run_to_convergence(1e-10, 3, max_iters);
    println!(
        "m = {}, initial ΣC = {:.1}",
        instance.len(),
        engine.history()[0]
    );
    for (i, c) in engine.history().iter().enumerate().skip(1) {
        println!("iteration {i:>3}: ΣC = {c:.1}");
    }
    println!(
        "\nconverged: {} after {} iterations; final ΣC = {:.1}",
        report.converged, report.iterations, report.final_cost
    );
    if instance.len() <= 30 {
        let (rho, _) = solve_bcd(&instance, 2_000, 1e-10);
        println!("solver optimum (BCD): {:.1}", objective(&instance, &rho));
    }
    Ok(())
}

fn cmd_nash(args: &Args) -> Result<(), ArgError> {
    let instance = instance_from(args)?;
    let mut nash = Assignment::local(&instance);
    let report = run_best_response_dynamics(&instance, &mut nash, &DynamicsOptions::default());
    let nash_cost = total_cost(&instance, &nash);
    let mut engine = Engine::new(instance.clone(), EngineOptions::default());
    let coop = engine.run_to_convergence(1e-12, 3, 300).final_cost;
    println!(
        "Nash ΣC = {nash_cost:.1} after {} rounds (converged: {})",
        report.rounds, report.converged
    );
    println!("cooperative ΣC = {coop:.1}");
    println!("cost of selfishness = {:.4}", nash_cost / coop);
    if instance.is_homogeneous(1e-9) {
        let c = instance.c(0, 1.min(instance.len() - 1));
        let s = instance.speed(0);
        let lav = instance.average_load();
        let (lo, hi) = theorem1_bounds(c, s, lav);
        println!("Theorem 1 PoA band (c={c}, s={s}, l_av={lav:.1}): [{lo:.4}, {hi:.4}]");
    }
    Ok(())
}

fn cmd_protocol(args: &Args) -> Result<(), ArgError> {
    let instance = instance_from(args)?;
    let m = instance.len();
    let max_rounds = args.get_usize("max-iters", 200)?;
    let report = run_cluster(
        &instance,
        &ClusterOptions {
            max_rounds,
            ..ClusterOptions::certified(m)
        },
    );
    println!(
        "rounds: {} (quiescent: {}), exchanges: {}, lost proposals: {}",
        report.rounds, report.quiescent, report.exchanges, report.lost_proposals
    );
    println!("volume moved: {:.0} requests", report.moved);
    println!("final ΣC = {:.1}", report.final_cost);
    let mut engine = Engine::new(instance, EngineOptions::default());
    let coop = engine.run_to_convergence(1e-12, 3, 300).final_cost;
    println!(
        "engine fixpoint = {coop:.1} (ratio {:.4})",
        report.final_cost / coop
    );
    Ok(())
}

fn cmd_estimate(args: &Args) -> Result<(), ArgError> {
    let m = args.get_usize("servers", 40)?;
    let seed = args.get_u64("seed", 1)?;
    let ticks = args.get_usize("ticks", 50)?;
    let probes = args.get_usize("probes", 4)?;
    let truth = PlanetLabConfig::default().generate(m, seed);
    let mut est = Estimator::new(
        m,
        EstimatorConfig {
            probes_per_tick: probes,
            seed,
            ..Default::default()
        },
    );
    println!("tick  median relative error");
    let step = (ticks / 10).max(1);
    for t in 0..ticks {
        est.tick(&truth);
        if t % step == 0 || t + 1 == ticks {
            println!("{:>4}  {:.4}", t + 1, est.median_relative_error(&truth));
        }
    }
    Ok(())
}

fn run() -> Result<(), ArgError> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" || raw[0] == "-h" {
        print!("{USAGE}");
        return Ok(());
    }
    const COMMON: &[&str] = &[
        "servers",
        "network",
        "latency",
        "load",
        "avg",
        "speeds",
        "seed",
        "max-iters",
        "ticks",
        "probes",
    ];
    let args = Args::parse(raw, COMMON)?;
    match args.command.as_str() {
        "optimize" => cmd_optimize(&args),
        "nash" => cmd_nash(&args),
        "protocol" => cmd_protocol(&args),
        "estimate" => cmd_estimate(&args),
        other => Err(ArgError(format!(
            "unknown command '{other}' (try 'dlb help')"
        ))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
