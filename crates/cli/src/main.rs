//! `dlb` — run the paper's systems from a shell.
//!
//! ```text
//! dlb run algo=batched net=pl m=500 load=peak avg=200 seed=7
//! dlb run algo=protocol runtime=events faults=crash:0.1@500ms,loss:0.05 m=2000
//! dlb run algo=protocol runtime=events m=100000 net=homog select=topk:32 patience=8
//! dlb run --scenario "algo=nash m=24 eps=0.01 patience=2" --out nash.jsonl
//! dlb report BENCH_figure2.json
//! dlb optimize --servers 50 --network pl --load exp --avg 50
//! ```
//!
//! Every command names its experiment through one
//! [`dlb_scenario::ScenarioSpec`] (deterministic per `seed`), runs it
//! through the shared [`dlb_scenario::Runner`] layer, prints a compact
//! report, and emits the run as a JSON-lines record through
//! [`dlb_bench::results::JsonlSink`] — `--out FILE` writes to an
//! explicit file, otherwise `DLB_RESULTS_DIR` selects the directory
//! (unset = no record). `dlb report` renders those records (and the
//! committed bench artifacts) as aligned tables. The full experiment
//! grids live in `cargo bench -p dlb-bench`.

mod args;
mod trace;

use args::{ArgError, Args};
use dlb_bench::report::render_report;
use dlb_bench::results::{JsonlSink, Record};
use dlb_coords::{Estimator, EstimatorConfig};
use dlb_scenario::{AlgoSpec, NetSpec, RunRecord, ScenarioSpec};
use std::process::ExitCode;

const USAGE: &str = "\
dlb — network delay-aware load balancing (Skowron & Rzadca, IPDPS'13)

commands:
  run        run one declaratively named scenario
  report     render tables from JSON-lines result files
  trace      inspect, replay-verify, or export a recorded frame log
  optimize   alias for `run algo=sequential` (+ BCD reference on small nets)
  nash       alias for `run algo=nash` vs the cooperative engine
  protocol   alias for `run algo=protocol` (threads + wire frames)
  estimate   run Vivaldi latency estimation against a synthetic network
  help       show this text

run:
  dlb run [KEY=VALUE]... [--scenario TEXT] [--out FILE]
  scenario keys (defaults shown):
    algo=sequential   sequential | batched | nash | protocol | bcd
    net=homog         homog | euclid | pl
    m=20              number of organizations
    lat=20            homogeneous latency in ms (net=homog only)
    load=exp          const | uniform | exp | peak
    avg=50            average initial load per server
    speeds=uniform    uniform | const
    seed=1            RNG seed (sampling + iteration order)
    gran=0            transfer quantum (0 = continuous)
    eps=1e-10         termination tolerance
    patience=3        consecutive calm rounds to stop
    budget=2000       iteration/round/sweep budget
    runtime=threads   threads | events — protocol host: OS threads or
                      the deterministic virtual-time executor (scales
                      to m=5000 in one process; reports simulated
                      protocol seconds)
    select=exact      exact | topk:K — partner selection, algo=protocol
                      only. exact scores every peer per round (O(m)
                      per node); topk:K scores the K delay-nearest
                      peers plus the gossiped hot set (most/least
                      loaded), rebuilt only when the load vector
                      changes. topk:32 runs m=100000 event rounds:
                      dlb run algo=protocol runtime=events m=100000 \\
                        net=homog select=topk:32 patience=8
    faults=           deterministic fault schedule, algo=protocol
                      runtime=events only. Comma-separated primitives:
                      crash:F@Tms[..Tms] (fraction F crashes at T,
                      optional recovery), loss:P[@Tms..Tms] (per-frame
                      loss), spike:Fx@Tms..Tms (delay multiplier),
                      part:Tms..Tms (bipartition), slow:F@Fx[@Tms..Tms]
                      (fraction F straggles at Fx× outbound delay).
                      Example: faults=crash:0.1@500ms,loss:0.05 — one
                      seed fixes workload, delays, and the fault
                      trajectory, so records reproduce bit for bit
    detect=oracle     oracle | timeout:MS | adaptive — liveness source,
                      algo=protocol runtime=events only. oracle consults
                      the fault script directly (the idealized baseline);
                      timeout:MS suspects any node silent MS past the
                      round start; adaptive learns per-node report
                      cadence (phi-accrual-style) and sets per-node
                      deadlines. Suspected nodes are excluded from the
                      next round, wrongly suspected stragglers rejoin
                      with exact load conservation, and the record
                      carries a detector_* summary
    arrivals=         open-system request stream, algo=protocol
                      runtime=events only; requires duration=.
                      Comma-separated processes, rates in requests per
                      second of virtual time: poisson:RATE (constant
                      rate over the whole run), burst:RATE@Tms..Tms
                      (extra rate inside the window),
                      diurnal:RATE@PERIODms (sinusoidal rate, one
                      cycle per period). Requests arrive at their home
                      organization, are routed where the protocol has
                      placed that organization's load, and are served
                      at the host's speed; the protocol keeps
                      rebalancing while the stream runs instead of
                      quiescing. The record carries a stream_* summary
                      (served/dropped counts, p50/p99 sojourn in
                      virtual ms, time spent imbalanced). One seed
                      fixes the arrival times, routing draws, delays,
                      and faults, so records reproduce bit for bit.
                      Example: dlb run algo=protocol runtime=events \\
                        m=2000 arrivals=poisson:500,burst:2000@1000ms..2000ms \\
                        duration=4000
    duration=         stream horizon in virtual ms (accepts an 'ms'
                      suffix); requires arrivals=
    gossip=emulated   emulated[:T] | event:PERIODms — control plane
                      behind the engine's partner scoring,
                      algo=sequential|batched only. emulated:T scores
                      on one shared snapshot refreshed every T
                      iterations (T=0, the default, is fresh; no bytes
                      move). event:PERIODms runs the real delta-gossip
                      protocol from dlb-gossip: per-server views fed
                      by sharded delta frames every PERIOD virtual ms,
                      advanced ~log2(m) periods per engine iteration,
                      with every byte metered — the record carries a
                      gossip_* summary. A non-default value switches
                      the engine to pruned partner selection (stale
                      views only reach the pruned pre-scoring).
                      Example: dlb run algo=batched m=500 net=pl \\
                        gossip=event:100ms
    trace=off         off | summary | frames:FILE — deterministic
                      observability, algo=protocol runtime=events only.
                      off (the default) observes nothing and keeps the
                      run byte-identical to an untraced one. summary
                      attaches the trace plane and adds an obs_*
                      summary to the record (event counts, frame
                      latency percentiles — all stamped in virtual
                      time, so they reproduce bit for bit per seed).
                      frames:FILE additionally writes the full event
                      stream as a binary frame log for `dlb trace`.
                      Example: dlb run algo=protocol runtime=events \\
                        m=2000 faults=crash:0.1@500ms detect=adaptive \\
                        trace=frames:run.dlbf

report:
  dlb report FILE...          (e.g. dlb report BENCH_figure2.json)

trace:
  dlb trace show FILE [--node N|coord] [--kind LABEL|FAMILY]
                      [--from MS] [--to MS] [--limit N]
                      render the recorded event stream as an aligned
                      table; families: frame, timer, round, exchange,
                      detector, gossip, stream
  dlb trace replay FILE
                      re-derive the run from the log's own scenario
                      header and verify it reproduces the recording
                      bit-exactly (event stream, event_hash, outcomes);
                      a divergence is a non-zero exit naming the first
                      disagreement
  dlb trace chrome FILE [--out FILE.json]
                      export Chrome trace-event JSON for
                      chrome://tracing / Perfetto

alias options (translated onto a scenario):
  --servers N   --network homog|euclid|pl   --latency C   --load D
  --avg L       --speeds uniform|const      --seed N      --max-iters N
  --out FILE

estimate options:
  --servers N  --ticks N  --probes N  --seed N  --out FILE
";

/// Opens the run sink: `--out FILE` explicitly, the
/// `DLB_RESULTS_DIR`-driven sink otherwise.
fn open_sink(args: &Args) -> Result<JsonlSink, ArgError> {
    match args.get("out") {
        Some(path) => JsonlSink::create_at(path)
            .map_err(|e| ArgError(format!("--out {path}: cannot create ({e})"))),
        None => Ok(JsonlSink::create("cli")),
    }
}

/// Runs one scenario through the shared runner layer on a prebuilt
/// instance (aliases sample one grid point and share it across their
/// comparison runs), prints the compact report, and emits the
/// `RunRecord` through the sink.
fn execute(spec: &ScenarioSpec, instance: dlb_core::Instance, sink: &mut JsonlSink) -> RunRecord {
    let run = spec.run_on(instance);
    sink.record(&Record::from_run("run", &run));
    println!("scenario: {}", run.scenario);
    println!("m = {}, initial ΣC = {:.1}", run.m, run.initial_cost());
    let trajectory = &run.history[1..];
    let shown = 12usize;
    for (i, c) in trajectory.iter().take(shown).enumerate() {
        println!("iteration {:>3}: ΣC = {c:.1}", i + 1);
    }
    if trajectory.len() > shown {
        println!("... ({} more)", trajectory.len() - shown);
    }
    println!(
        "converged: {} after {} iterations; final ΣC = {:.1} ({:.3} s wall)",
        run.converged,
        run.iterations,
        run.final_cost(),
        run.wall_secs
    );
    if !run.stream.is_quiet() {
        println!(
            "stream: {} served, {} dropped; sojourn p50 = {:.1} ms, p99 = {:.1} ms; \
             imbalanced {:.1} ms",
            run.stream.served,
            run.stream.dropped,
            run.stream.p50_ms,
            run.stream.p99_ms,
            run.stream.imbalance_ms
        );
    }
    if !run.gossip.is_quiet() {
        println!(
            "gossip: {} frames, {:.2} MB on the wire, {} exchanges",
            run.gossip.frames,
            run.gossip.bytes as f64 / 1e6,
            run.gossip.exchanges
        );
    }
    println!();
    run
}

/// Translates the legacy alias flags onto a scenario spec by mapping
/// each flag to its spec key and going through [`ScenarioSpec::parse`]
/// — one token vocabulary, defined once in `dlb-scenario`.
fn spec_from_flags(args: &Args, algo: AlgoSpec) -> Result<ScenarioSpec, ArgError> {
    let mut text = format!("algo={}", algo.label());
    for (flag, key) in [
        ("servers", "m"),
        ("network", "net"),
        ("latency", "lat"),
        ("load", "load"),
        ("avg", "avg"),
        ("speeds", "speeds"),
        ("seed", "seed"),
    ] {
        if let Some(value) = args.get(flag) {
            text.push_str(&format!(" {key}={value}"));
        }
    }
    ScenarioSpec::parse(&text).map_err(|e| ArgError(e.0))
}

fn cmd_run(args: &Args) -> Result<(), ArgError> {
    let mut text = args.positionals.join(" ");
    if let Some(flag) = args.get("scenario") {
        if !text.is_empty() {
            text.push(' ');
        }
        text.push_str(flag);
    }
    let spec = ScenarioSpec::parse(&text).map_err(|e| ArgError(e.0))?;
    let mut sink = open_sink(args)?;
    execute(&spec, spec.build_instance(), &mut sink);
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), ArgError> {
    if args.positionals.is_empty() {
        return Err(ArgError(
            "report needs at least one JSON-lines file (try 'dlb report BENCH_figure2.json')"
                .into(),
        ));
    }
    for path in &args.positionals {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("{path}: cannot read ({e})")))?;
        if args.positionals.len() > 1 {
            println!("-- {path} --");
        }
        println!(
            "{}",
            render_report(&text).map_err(|e| ArgError(format!("{path}: {e}")))?
        );
    }
    Ok(())
}

fn cmd_optimize(args: &Args) -> Result<(), ArgError> {
    let spec = spec_from_flags(args, AlgoSpec::Sequential)?.termination(
        1e-10,
        3,
        args.get_usize("max-iters", 200)?,
    );
    let mut sink = open_sink(args)?;
    let instance = spec.build_instance();
    let run = execute(&spec, instance.clone(), &mut sink);
    if spec.m <= 30 {
        let opt = execute(
            &spec.algo(AlgoSpec::Bcd).termination(1e-10, 3, 2_000),
            instance,
            &mut sink,
        );
        println!(
            "solver optimum (BCD): {:.1} (engine ratio {:.4})",
            opt.final_cost(),
            run.final_cost() / opt.final_cost()
        );
    }
    Ok(())
}

fn cmd_nash(args: &Args) -> Result<(), ArgError> {
    // The paper's §VI-C termination rule: all organizations change by
    // < 1 % for two consecutive rounds.
    let spec = spec_from_flags(args, AlgoSpec::Nash)?.termination(0.01, 2, 10_000);
    let mut sink = open_sink(args)?;
    let instance = spec.build_instance();
    let nash = execute(&spec, instance.clone(), &mut sink);
    let coop = execute(
        &spec.algo(AlgoSpec::Sequential).termination(1e-12, 3, 300),
        instance.clone(),
        &mut sink,
    );
    println!(
        "cost of selfishness = {:.4}",
        nash.final_cost() / coop.final_cost()
    );
    if instance.is_homogeneous(1e-9) {
        let c = instance.c(0, 1.min(instance.len() - 1));
        let s = instance.speed(0);
        let lav = instance.average_load();
        let (lo, hi) = dlb_game::theorem1_bounds(c, s, lav);
        println!("Theorem 1 PoA band (c={c}, s={s}, l_av={lav:.1}): [{lo:.4}, {hi:.4}]");
    }
    Ok(())
}

fn cmd_protocol(args: &Args) -> Result<(), ArgError> {
    let m = args.get_usize("servers", 20)?;
    // `m − 1` quiet rounds certify pairwise optimality (the audit
    // rotation has then re-examined every pair).
    let spec = spec_from_flags(args, AlgoSpec::Protocol)?.termination(
        1e-9,
        m.saturating_sub(1).max(1),
        args.get_usize("max-iters", 200)?,
    );
    let mut sink = open_sink(args)?;
    let instance = spec.build_instance();
    let protocol = execute(&spec, instance.clone(), &mut sink);
    let engine = execute(
        &spec.algo(AlgoSpec::Sequential).termination(1e-12, 3, 300),
        instance,
        &mut sink,
    );
    println!(
        "engine fixpoint = {:.1} (protocol ratio {:.4})",
        engine.final_cost(),
        protocol.final_cost() / engine.final_cost()
    );
    Ok(())
}

fn cmd_estimate(args: &Args) -> Result<(), ArgError> {
    let m = args.get_usize("servers", 40)?;
    let seed = args.get_u64("seed", 1)?;
    let ticks = args.get_usize("ticks", 50)?;
    let probes = args.get_usize("probes", 4)?;
    let truth = ScenarioSpec::new()
        .net(NetSpec::Pl)
        .servers(m)
        .seed(seed)
        .build_latency();
    let mut est = Estimator::new(
        m,
        EstimatorConfig {
            probes_per_tick: probes,
            seed,
            ..Default::default()
        },
    );
    let mut sink = open_sink(args)?;
    println!("tick  median relative error");
    let step = (ticks / 10).max(1);
    let mut errors = Vec::with_capacity(ticks);
    for t in 0..ticks {
        est.tick(&truth);
        errors.push(est.median_relative_error(&truth));
        if t % step == 0 || t + 1 == ticks {
            println!("{:>4}  {:.4}", t + 1, errors[t]);
        }
    }
    sink.record(
        &Record::new("estimate")
            .int("m", m as i64)
            .int("ticks", ticks as i64)
            .int("probes", probes as i64)
            .int("seed", seed as i64)
            .num(
                "final_median_rel_error",
                errors.last().copied().unwrap_or(f64::NAN),
            )
            .nums("history", &errors),
    );
    Ok(())
}

fn run() -> Result<(), ArgError> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" || raw[0] == "-h" {
        print!("{USAGE}");
        return Ok(());
    }
    const ALIAS_KEYS: &[&str] = &[
        "servers",
        "network",
        "latency",
        "load",
        "avg",
        "speeds",
        "seed",
        "max-iters",
        "out",
    ];
    let allowed: &[&str] = match raw[0].as_str() {
        "run" => &["scenario", "out"],
        "report" => &[],
        "trace" => &["node", "kind", "from", "to", "limit", "out"],
        "estimate" => &["servers", "ticks", "probes", "seed", "out"],
        _ => ALIAS_KEYS,
    };
    let args = Args::parse(raw, allowed)?;
    // Only `run` (scenario tokens), `report` (file paths), and `trace`
    // (action + file) take bare positionals; everywhere else a stray
    // token is an error, not a silently ignored flag.
    if !matches!(args.command.as_str(), "run" | "report" | "trace") {
        if let Some(tok) = args.positionals.first() {
            return Err(ArgError(format!(
                "unexpected argument '{tok}' for '{}' (key=value scenario tokens only work \
                 with 'dlb run')",
                args.command
            )));
        }
    }
    match args.command.as_str() {
        "run" => cmd_run(&args),
        "report" => cmd_report(&args),
        "trace" => trace::cmd_trace(&args),
        "optimize" => cmd_optimize(&args),
        "nash" => cmd_nash(&args),
        "protocol" => cmd_protocol(&args),
        "estimate" => cmd_estimate(&args),
        other => Err(ArgError(format!(
            "unknown command '{other}' (try 'dlb help')"
        ))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
